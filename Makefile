# Convenience targets for the reproduction.

PYTHON ?= python

.PHONY: install test lint bench bench-session faults guard chaos chaos-smoke corruption-smoke scrub meta meta-smoke service report examples clean

# Meta-campaign knobs for `make meta` (override on the command line).
META_SEEDS ?= 2
META_CANDIDATES ?= 4
META_NMAX ?= 30

# Chaos knobs for `make chaos` (override on the command line).
CHAOS_RATE ?= 0.5
CHAOS_HANG_RATE ?= 0.2
CHAOS_SEED ?= 7
CHAOS_PLANS ?= 13

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/
	$(PYTHON) -m pytest -x -q tests/reliability

test-fast:
	$(PYTHON) -m pytest tests/ -x -q -m "not slow"

# Import-graph discipline (no runtime cycles, no TYPE_CHECKING-hidden
# internal imports) and a dead-code sweep over the search package.
lint:
	$(PYTHON) -m repro.devtools.lint

# --benchmark-only deselects the plain perf-regression suites, so run
# them explicitly; they write benchmarks/results/BENCH_ml.json,
# BENCH_session.json and BENCH_service.json and fail on >25%
# regressions vs the committed baselines (override with
# REPRO_BENCH_ALLOW_REGRESSION=1 when rebaselining on new hardware).
bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only
	$(PYTHON) -m pytest benchmarks/test_perf_ml.py -q -s
	$(PYTHON) -m pytest benchmarks/test_perf_session.py -q -s
	$(PYTHON) -m pytest benchmarks/test_perf_service.py -q -s

# Full-session macro-benchmark: batched engine + native kernels vs the
# reconstructed PR-2-era serial session (trace-identical by assertion),
# with the >=5x native / >=2.5x NumPy-fallback floors and the 25%
# regression gate vs the committed BENCH_session.json.
bench-session:
	$(PYTHON) -m pytest benchmarks/test_perf_session.py -q -s

faults:
	$(PYTHON) -m pytest -x -q benchmarks/test_ablations.py::test_fault_ablation --benchmark-only

# Negative-transfer guardrails: adversarial sources x guard on/off,
# written to benchmarks/results/ablation_guard.txt (journaled grid,
# REPRO_RESUME applies).
guard:
	$(PYTHON) -m pytest -x -q benchmarks/test_ablations.py::test_negative_transfer --benchmark-only

# Full chaos gauntlet: (1) the executor test suite under amplified
# deterministic worker kills and hangs (REPRO_CHAOS_* injection), (2) a
# seeded cross-layer chaos campaign — CHAOS_PLANS seeds x two
# intensities, each cell running search+grid+service under composed
# evaluator/worker/filesystem/deadline faults and verified against the
# crash-consistency oracle — then (3) the tier-1 suite to prove the
# chaos run left nothing broken behind.
chaos:
	REPRO_CHAOS_RATE=$(CHAOS_RATE) REPRO_CHAOS_HANG_RATE=$(CHAOS_HANG_RATE) \
		REPRO_CHAOS_SEED=$(CHAOS_SEED) \
		$(PYTHON) -m pytest -x -q tests/exec
	$(PYTHON) -m repro.chaos.campaign --seeds $(CHAOS_PLANS)
	$(PYTHON) -m pytest -x -q tests/

# Bounded (<60s asserted in-test) chaos smoke: two full oracle cells
# mixing all five fault layers — the tier-1-friendly slice of `make
# chaos`.
chaos-smoke:
	$(PYTHON) -m pytest -x -q tests/chaos/test_smoke.py

# Bounded bit-rot smoke: oracle cells whose plans are checked to cover
# bit-flip, mid-file truncate, and flip-during-compaction against the
# registry/store/checkpoints — the tier-1-friendly slice of the
# silent-corruption layer.
corruption-smoke:
	$(PYTHON) -m pytest -x -q tests/chaos/test_corruption_smoke.py

# Offline integrity pass: verify CRC32 framing of every journal under
# benchmarks/results/ (and the meta campaign registry), quarantining
# damaged records to .quarantine sidecars and reporting salvage
# provenance.  `--check` would report without rewriting.
scrub:
	$(PYTHON) -m repro.exec.scrub benchmarks/results

# The self-meta-tuning campaign: search TunerSpec knobs over
# (kernel, machine-pair) cells through the journaled grid and write the
# recommendation artifacts (benchmarks/results/meta_recommendations.*).
# Journaled under benchmarks/results/registry/, so a killed campaign
# resumes with zero re-executed cells (REPRO_RESUME applies).
meta:
	$(PYTHON) -m repro.meta.campaign --seeds $(META_SEEDS) \
		--candidates $(META_CANDIDATES) --nmax $(META_NMAX) \
		--registry benchmarks/results/registry/meta.jsonl

# Bounded meta-tuning smoke: a tiny meta-grid run as a subprocess,
# SIGKILLed mid-campaign, and resumed with zero re-executed cells —
# the tier-1-friendly slice of `make meta`.
meta-smoke:
	$(PYTHON) -m pytest -x -q tests/meta/test_smoke.py

# The tuning-service robustness suite: multi-tenant load (latency
# percentiles vs the committed BENCH_service.json baseline) plus the
# SIGKILL/recovery and fault-injection chaos tests.
service:
	$(PYTHON) -m pytest -x -q tests/service
	$(PYTHON) -m pytest benchmarks/test_perf_service.py -q -s

report:
	$(PYTHON) -m repro report --output EXPERIMENTS.generated.md

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/codegen_tour.py
	$(PYTHON) examples/cross_architecture_study.py
	$(PYTHON) examples/compiler_flag_tuning.py
	$(PYTHON) examples/beyond_the_paper.py

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
