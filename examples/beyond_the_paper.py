#!/usr/bin/env python3
"""Beyond the paper: warm-started heuristics and online refinement.

The paper's conclusion proposes two directions this library implements:
testing the transfer idea with "other sophisticated search algorithms",
and generalizing the approach.  This example runs both extensions on
the LU kernel (Westmere -> Sandybridge):

1. a genetic algorithm and an AUC bandit, cold vs. warm-started from
   the source-trained surrogate;
2. frozen RSb vs. RSb with online refits on target observations.

Run:  python examples/beyond_the_paper.py
"""

from repro.experiments.ablations import run_online, run_warm_start
from repro.ml.model_selection import cross_validate
from repro.ml import RandomForestRegressor, RidgeRegressor
from repro.kernels import get_kernel
from repro.machines import get_machine
from repro.orio.evaluator import OrioEvaluator
from repro.utils.rng import spawn_rng

import numpy as np


def surrogate_quality_check() -> None:
    print("=== which learner models the LU landscape? (5-fold CV) ===")
    kernel = get_kernel("lu", n=512)
    rng = spawn_rng("beyond-example")
    configs = kernel.space.sample(rng, 100)
    evaluator = OrioEvaluator(kernel, get_machine("westmere"))
    y = np.log([evaluator.measure(c).runtime_seconds for c in configs])
    X = kernel.space.encode_many(configs)
    for label, factory in (
        ("random forest", lambda: RandomForestRegressor(n_estimators=40, seed=0)),
        ("ridge", lambda: RidgeRegressor()),
    ):
        cv = cross_validate(factory, X, y, k=5)
        print(
            f"  {label:14s} held-out R^2 {cv.mean_r2:5.2f}   "
            f"rank corr {cv.mean_rank_correlation:5.2f}"
        )
    print("  (RSb consumes only the ranking, so rank correlation is what counts)\n")


def main() -> None:
    surrogate_quality_check()
    print(run_warm_start(seed="example").render())
    print()
    print(run_online(seed="example").render())


if __name__ == "__main__":
    main()
