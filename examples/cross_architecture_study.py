#!/usr/bin/env python3
"""A cross-architecture transfer study: when does knowledge port?

Runs the biased model-based variant (RSb) for one kernel across all
source/target pairs, prints the Table IV-style grid, and relates the
outcomes to machine dissimilarity (the paper's §VII future-work
question, answered with the response-vector distance).

Run:  python examples/cross_architecture_study.py [kernel]
"""

import sys

from repro.experiments.ablations import run_dissimilarity
from repro.kernels import get_kernel
from repro.machines import MACHINES, get_machine
from repro.transfer import TransferSession
from repro.utils.tables import format_table


def main(kernel_name: str = "lu") -> None:
    kernel = get_kernel(kernel_name)
    machines = ["westmere", "sandybridge", "power7", "xgene"]
    print(f"=== RSb transfer grid for {kernel.name} "
          f"(Prf.Imp/Srh.Imp over RS; rows=target) ===\n")
    rows = []
    for target in machines:
        row = [target]
        for source in machines:
            if source == target:
                row.append("-")
                continue
            session = TransferSession(
                kernel=get_kernel(kernel_name),
                source=get_machine(source),
                target=get_machine(target),
                seed=("study", source, target),
                variants=("RSb",),
            )
            rep = session.run().report("RSb")
            mark = "*" if rep.successful else " "
            row.append(f"{rep.performance:.2f}/{rep.search_time:.1f}{mark}")
        rows.append(row)
    print(format_table(["target \\ source"] + machines, rows))

    print("\n=== why: machine dissimilarity vs. runtime correlation ===\n")
    print(run_dissimilarity(n_configs=100, kernel_name=kernel_name).render())
    print(
        "\nReading: transfers succeed (*) between machines with small "
        "response distance\nand high rank correlation; the distant "
        "X-Gene breaks both."
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "lu")
