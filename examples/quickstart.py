#!/usr/bin/env python3
"""Quickstart: transfer-accelerated autotuning in ~20 lines.

Reproduces the paper's core workflow on its flagship pair: collect LU
autotuning data on (simulated) Intel Westmere, fit a random-forest
surrogate, and use it to bias the search on Sandybridge — then compare
every variant against plain random search.

Run:  python examples/quickstart.py
"""

from repro import TransferSession, get_machine
from repro.kernels import get_kernel
from repro.utils.asciiplot import Series, step_plot


def main() -> None:
    session = TransferSession(
        kernel=get_kernel("LU"),
        source=get_machine("westmere"),
        target=get_machine("sandybridge"),
        nmax=100,  # evaluation budget per search (the paper's setting)
        pool_size=10_000,  # configurations ranked by the surrogate
        seed="quickstart",
    )
    outcome = session.run()

    print(outcome.summary_table())
    rho_p, rho_s = outcome.correlation()
    print(f"\nsource/target correlation: rho_p={rho_p:.2f}, rho_s={rho_s:.2f}")

    series = []
    for name, marker in (("RS", "."), ("RSp", "p"), ("RSb", "b")):
        xs, ys = outcome.traces[name].best_so_far()
        series.append(Series(name, xs, ys, marker=marker))
    print()
    print(step_plot(series, title="LU on Sandybridge: best run time vs search time"))

    best = outcome.traces["RSb"].best()
    print("\nbest configuration found by RSb:")
    for param, value in best.config.items():
        print(f"  {param:6s} = {value}")
    print(f"  run time = {best.runtime:.3f} s")


if __name__ == "__main__":
    main()
