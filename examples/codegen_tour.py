#!/usr/bin/env python3
"""A tour of the mini-Orio pipeline: annotation -> transforms -> C code.

Shows what actually happens to a kernel when the autotuner picks a
configuration: the annotated source is parsed, cache/register tiling
and unroll-and-jam are applied as real AST transformations, C code is
generated (with min/max-clamped tile loops and remainder loops), and
the static analyzer prices the variant on two machines.

Run:  python examples/codegen_tour.py
"""

from repro.kernels import get_kernel
from repro.machines import GCC, SANDYBRIDGE, XGENE
from repro.orio.analysis import analyze_variant
from repro.perf.costmodel import CostModel


def main() -> None:
    # A small LU instance so the generated code stays readable.
    kernel = get_kernel("lu", n=64)
    print("=== annotated source ===")
    print(kernel.source.strip())

    config = kernel.space.configuration(
        {
            "U_K": 1, "U_I": 2, "U_J": 2,
            "T1_K": 8, "T1_I": 16, "T1_J": 16,
            "RT_K": 1, "RT_I": 1, "RT_J": 4,
        }
    )
    print("\n=== configuration ===")
    for name, value in config.items():
        print(f"  {name:5s} = {value}")

    print("\n=== generated C (tiled + register-tiled + unrolled) ===")
    print(kernel.generate_source(config))

    variant = kernel.variants_for(config)[0]
    metrics = analyze_variant(variant)
    print("=== static analysis ===")
    print(f"  flops                {metrics.flops:.3e}")
    print(f"  loads / stores       {metrics.loads:.3e} / {metrics.stores:.3e}")
    print(f"  loop-header execs    {metrics.header_executions:.3e}")
    print(f"  generated statements {metrics.statements_generated}")
    print(f"  register demand      {metrics.register_demand:.1f}")
    print(f"  body replication     {metrics.replication}x")
    print(f"  stride-1 fraction    {metrics.stride1_fraction:.2f}")

    print("\n=== cost model: same variant, two machines ===")
    for machine in (SANDYBRIDGE, XGENE):
        model = CostModel(machine, GCC)
        bd = model.breakdown(metrics)
        seconds = model.runtime_seconds(metrics, config.index, kernel.tag)
        print(
            f"  {machine.display_name:38s} {seconds * 1e3:9.2f} ms   "
            f"bound={bd.bound:8s} spill={bd.spill_factor:.2f} "
            f"vec={bd.vector_speedup:.2f}"
        )


if __name__ == "__main__":
    main()
