#!/usr/bin/env python3
"""Tuning g++ flags for the raytracer with the OpenTuner-style stack.

Mirrors the paper's RT mini-application study: a 247-dimensional space
(143 on/off flags + 104 --param values) tuned on one machine with the
AUC-bandit meta-technique, then transferred to another machine with the
random-forest surrogate.

Run:  python examples/compiler_flag_tuning.py
"""

from repro.machines import get_machine
from repro.miniapps import MiniappEvaluator, make_raytracer
from repro.perf.simclock import SimClock
from repro.transfer import TransferSession
from repro.tuner import (
    AUCBanditMetaTechnique,
    GeneticAlgorithm,
    RandomTechnique,
    SimulatedAnnealing,
    TuningRun,
)


def tune_locally() -> None:
    print("=== OpenTuner-style tuning on Sandybridge (60 rebuilds) ===")
    model = make_raytracer()
    evaluator = MiniappEvaluator(model, get_machine("sandybridge"), clock=SimClock())
    bandit = AUCBanditMetaTechnique(
        [
            RandomTechnique(),
            GeneticAlgorithm(population_size=12),
            SimulatedAnnealing(),
        ]
    )
    run = TuningRun(evaluator, bandit, nmax=60)
    trace = run.run()
    best = trace.best()
    print(f"  best render time  : {best.runtime:.2f} s")
    print(f"  baseline (median) : {sorted(trace.runtimes())[len(trace.records) // 2]:.2f} s")
    print(f"  tuning wall time  : {evaluator.clock.now / 3600:.1f} simulated hours")
    print(f"  budget allocation : {bandit.allocation()}")
    enabled = [name for name, value in best.config.items()
               if value is True][:8]
    print(f"  some enabled flags: {', '.join('-' + f for f in enabled)}")


def transfer() -> None:
    print("\n=== transferring Westmere flag data to Sandybridge ===")
    model = make_raytracer()
    session = TransferSession(
        kernel=model,
        source=get_machine("westmere"),
        target=get_machine("sandybridge"),
        seed="rt-example",
        evaluator_factory=lambda machine, clock: MiniappEvaluator(
            model, machine, clock=clock
        ),
        variants=("RSb", "RSbf"),
    )
    outcome = session.run()
    print(outcome.summary_table())
    rho_p, rho_s = outcome.correlation()
    print(f"cross-machine correlation: rho_p={rho_p:.2f} rho_s={rho_s:.2f}")
    print("(flag landscapes are flat: expect Prf ~1.0, wins in search time only)")


if __name__ == "__main__":
    tune_locally()
    transfer()
