"""The full chaos campaign: >=25 seeded plans vs the oracle.

The acceptance bar for the chaos subsystem: a campaign of at least 25
seed-derived plans — collectively mixing all five fault layers
(evaluator faults, worker kills/hangs, filesystem faults, kill/restart
deadline pressure, and silent bit rot against the registry, the
session store, and search checkpoints) — passes every
crash-consistency invariant, including bounded loss under corruption.
The campaign journals through ``registry_dir`` like every other
figure/table grid, so a killed run resumes instead of restarting, and
the rendered table lands in
``benchmarks/results/chaos_campaign.txt``.
"""

from repro.chaos import render_campaign_report, run_chaos_campaign
from repro.chaos.plan import ChaosPlan

#: 13 seeds x 2 intensities = 26 plans (the >=25-plan acceptance bar).
N_SEEDS = 13
INTENSITIES = (0.5, 1.0)


def test_chaos_campaign(registry_dir, save_artifact):
    seeds = [f"campaign-{i}" for i in range(N_SEEDS)]

    # The seed set must collectively exercise every filesystem fault
    # mode — otherwise a pass proves less than it claims.
    modes = {ChaosPlan.derive(s).fs_mode for s in seeds}
    assert modes == {"refuse", "partial", "fsync", "rename"}

    # Likewise the bit-rot layer: both corruption shapes must land on
    # both journals across the seed set, and at least one plan must rot
    # a freshly compacted registry (flip-during-compaction).
    plans = [ChaosPlan.derive(s) for s in seeds]
    assert {p.corrupt_mode for p in plans} == {"bitflip", "truncate"}
    assert {p.store_corrupt_mode for p in plans} == {"bitflip", "truncate"}
    assert {p.ckpt_corrupt_mode for p in plans} == {"bitflip", "truncate"}
    assert any(p.corrupt_compaction for p in plans)

    summary = run_chaos_campaign(
        seeds,
        intensities=INTENSITIES,
        registry_path=registry_dir / "chaos_campaign.jsonl",
    )
    save_artifact("chaos_campaign", render_campaign_report(summary))

    assert summary["n_plans"] == N_SEEDS * len(INTENSITIES) >= 25
    assert summary["passed"], render_campaign_report(summary)

    # Every fault layer fired somewhere in the campaign: the invariants
    # were defended under attack, not in calm weather.
    counters = summary["counters"]
    assert counters["evaluator_faults"] > 0
    assert counters["fs_faults"] > 0
    assert counters["chaos_kills"] > 0
    assert counters["search_resumes"] > 0
    # The bit-rot layer actually damaged records somewhere — the
    # bounded-loss invariant was defended under real corruption.
    assert counters["corrupt_records"] > 0
