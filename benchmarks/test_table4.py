"""Benchmark: regenerate Table IV (RSb speedups, all problems x pairs).

Paper shape targets:

* X-Gene rows for MM and COR are "-" (data collection infeasible);
* Intel <-> Intel and most Power 7 transfers succeed for the kernels;
* HPL and RT earn search-time-only wins (performance ~1.0);
* transfers onto X-Gene are largely unrewarding.
"""

from repro.experiments import run_table4
from repro.experiments.table4 import SOURCES


def test_table4(benchmark, save_artifact, registry_dir):
    result = benchmark.pedantic(
        lambda: run_table4(
            seed=0, nmax=100, registry_path=registry_dir / "table4.jsonl"
        ),
        rounds=1,
        iterations=1,
    )
    save_artifact("table4", result.render())

    # X-Gene MM/COR: no data, like the paper.
    for problem in ("MM", "COR"):
        for source in SOURCES:
            assert not result.cell(problem, source, "xgene").has_data

    # X-Gene LU/ATAX/HPL/RT rows: data exists (collection completed).
    for problem in ("ATAX", "LU", "HPL", "RT"):
        assert any(
            result.cell(problem, s, "xgene").has_data for s in SOURCES
        )

    # Intel<->Intel kernel transfers succeed.
    for problem in ("MM", "LU"):
        assert result.cell(problem, "westmere", "sandybridge").successful
        assert result.cell(problem, "sandybridge", "westmere").successful

    # Mini-app performance speedups stay near 1.0 (flat landscapes).
    for problem in ("HPL", "RT"):
        cells = [c for c in result.cells if c.problem == problem and c.has_data]
        assert all(c.performance < 1.35 for c in cells)

    # Overall success/failure agreement with the published table.
    assert result.success_agreement() >= 0.6
