"""Benchmark: regenerate Figure 2 (MM decision tree on Sandybridge).

Paper: a regression tree over the MM tuning parameters whose splits
involve the unroll (U_*) and register-tiling (RT_*) parameters.
"""

from repro.experiments import run_figure2


def test_figure2(benchmark, save_artifact):
    result = benchmark.pedantic(
        lambda: run_figure2(n_train=200, seed=0), rounds=1, iterations=1
    )
    save_artifact("figure2", result.render())
    assert result.reproduced()  # splits over U_*/RT_* parameters
    assert result.n_leaves >= 4
    assert result.depth <= 3  # display-depth tree, as in the paper
