"""Benchmarks: regenerate the static tables (I, II, III).

These validate the reproduction's fixed structures against the paper:
transformation ranges, machine specifications, and kernel search-space
sizes.
"""

from repro.experiments import run_table1, run_table2, run_table3


def test_table1(benchmark, save_artifact):
    result = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    save_artifact("table1", result.render())
    assert result.reproduced()


def test_table2(benchmark, save_artifact):
    result = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    save_artifact("table2", result.render())
    assert result.reproduced()  # every cell matches the published table


def test_table3(benchmark, save_artifact):
    result = benchmark.pedantic(run_table3, rounds=1, iterations=1)
    save_artifact("table3", result.render())
    assert result.reproduced()  # |D| within 0.25% of Table III, ni exact
