"""Benchmark: regenerate Figure 4 (Sandybridge -> IBM Power 7 panels).

Paper: despite the vendor difference, RSb and RSbf still beat RS;
global correlation is lower than the Intel pair's, but the
high-performing region transfers.
"""

from repro.experiments import run_figure1, run_figure4


def test_figure4(benchmark, save_artifact, registry_dir):
    panels = benchmark.pedantic(
        lambda: run_figure4(
            seed=0, nmax=100, registry_path=registry_dir / "figure4.jsonl"
        ),
        rounds=1,
        iterations=1,
    )
    save_artifact("figure4", panels.render())

    # The paper's Figure-4 claim is about the *biased family*: "RSb and
    # RSbf are better than RS, RSp and RSpf".  Per problem, the better
    # of RSb/RSbf must reach RS's quality faster than RS (single runs
    # put individual cells within noise of 1.0, as in the paper's own
    # mixed Power-7 rows of Table IV).
    for p in ("ATAX", "LU", "HPL", "RT"):
        reports = panels.panel(p).reports()
        best_biased = max(
            reports["RSb"].search_time, reports["RSbf"].search_time
        )
        assert best_biased > 1.0, p
    # And the biased variants never lose meaningful performance.
    rsb = [panels.panel(p).reports()["RSb"] for p in ("ATAX", "LU", "HPL", "RT")]
    assert all(r.performance >= 0.9 for r in rsb)

    # Cross-vendor correlation visibly below the Intel pair's (Fig. 1).
    intel = run_figure1(n_configs=100, seed=0)
    assert panels.panel("LU").spearman < intel.spearman
