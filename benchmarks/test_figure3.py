"""Benchmark: regenerate Figure 3 (Westmere -> Sandybridge panels).

Paper: for ATAX, LU, HPL, RT — model-based panels (RS/RSp/RSb),
model-free panels (RS/RSpf/RSbf) and correlation panels.  RS variants
dominate RS; RSb's search speedups range 1.6X-130X; correlation is
high except for HPL.
"""

import numpy as np

from repro.experiments import run_figure3


def test_figure3(benchmark, save_artifact, registry_dir):
    panels = benchmark.pedantic(
        lambda: run_figure3(
            seed=0, nmax=100, registry_path=registry_dir / "figure3.jsonl"
        ),
        rounds=1,
        iterations=1,
    )
    save_artifact("figure3", panels.render())
    from pathlib import Path

    panels.export_csv(Path(__file__).parent / "results")

    # Kernel panels correlate strongly; HPL visibly weaker (paper text,
    # "Except for HPL, the plots exhibit a high correlation").
    kernel_rhos = [panels.panel(p).spearman for p in ("ATAX", "LU")]
    assert min(kernel_rhos) > 0.6
    assert panels.panel("HPL").spearman < min(kernel_rhos)

    # RSb succeeds on the majority of problems (the paper's trend).
    rsb = [panels.panel(p).reports()["RSb"] for p in ("ATAX", "LU", "HPL", "RT")]
    successes = sum(r.successful for r in rsb)
    assert successes >= 2

    # Search-time speedups dominate performance speedups.
    med_srh = np.median([r.search_time for r in rsb])
    med_prf = np.median([r.performance for r in rsb])
    assert med_srh > med_prf

    # Model-free biased variant never improves on the source's best.
    for p in ("ATAX", "LU", "HPL", "RT"):
        assert panels.panel(p).reports()["RSbf"].performance <= 1.0 + 1e-9
