"""Shared benchmark plumbing.

Every benchmark regenerates one of the paper's tables or figures and
saves the rendered artefact under ``benchmarks/results/`` so the output
can be inspected after the run (pytest captures stdout by default).
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def registry_dir(results_dir) -> Path:
    """Journal directory for the resumable figure/table grids.

    Every grid benchmark passes ``registry_path`` into this directory,
    so a killed or crashed benchmark run resumes instead of restarting:
    completed cells are merged back from the journal bit-identically.
    Set ``REPRO_RESUME=0`` to force a cold re-run (e.g. when timing),
    or delete the directory.  The journals are gitignored.
    """
    path = results_dir / "registry"
    path.mkdir(exist_ok=True)
    return path


@pytest.fixture
def save_artifact(results_dir):
    """save_artifact(name, text): persist a rendered table/figure.

    Written atomically (tmp + fsync + rename), so a run killed
    mid-write leaves either the previous artefact or the new one —
    never a truncated table."""

    def _save(name: str, text: str) -> Path:
        from repro.reliability.checkpoint import atomic_write_text

        path = results_dir / f"{name}.txt"
        atomic_write_text(path, text + "\n")
        return path

    return _save
