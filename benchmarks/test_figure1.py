"""Benchmark: regenerate Figure 1 (LU variants on Westmere vs Sandybridge).

Paper: 200 LU configurations on both machines, Pearson and Spearman
correlation both above 0.8.
"""

from repro.experiments import run_figure1


def test_figure1(benchmark, save_artifact):
    result = benchmark.pedantic(
        lambda: run_figure1(n_configs=200, seed=0), rounds=1, iterations=1
    )
    save_artifact("figure1", result.render())
    # Paper-shape assertions: both correlations above 0.8.
    assert result.pearson > 0.8
    assert result.spearman > 0.8
    assert len(result.runtimes_a) == 200
