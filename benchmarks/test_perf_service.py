"""Load benchmark for the tuning service (BENCH_service.json).

Drives thousands of interleaved requests from eight tenants through
the dict transport against a service instance — session churn, job
submission under quota pressure, event polling, dispatch — and records
request-latency percentiles to ``benchmarks/results/BENCH_service.json``.
The workload runs three times against fresh service roots and each
gated metric is the **best across runs** (fastest latency, highest
throughput) — the standard noise-robust regression statistic: random
scheduler hiccups inflate individual runs but never deflate the best
one, while a genuine slowdown raises all three.  The committed report is a regression baseline:
``make bench`` fails when a tracked metric slows down more than 25%
(set ``REPRO_BENCH_ALLOW_REGRESSION=1`` to regenerate on other
hardware).

Beyond timing, every run asserts the service's load contract:

* every request is answered — accepted requests reach a journaled
  terminal state, rejected ones carry a structured reason and
  ``retry_after`` (nothing is ever silently dropped);
* memory and disk stay bounded under churn: the event buffer is capped
  and the store journal is rotated by compaction.

Run via ``make service`` / ``make bench`` or directly:
``PYTHONPATH=src python -m pytest benchmarks/test_perf_service.py -q -s``.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.perf.benchreport import (
    ALLOW_REGRESSION_ENV,
    find_regressions,
    load_report,
    make_entry,
    write_report,
)
from repro.service import ServiceHandler, TenantQuota, TuningService

REPORT_NAME = "BENCH_service.json"
#: Entries checked against the committed report by the 25% gate.
TRACKED = ("request_p50", "request_p99", "submit_p99", "pump_throughput")

N_TENANTS = 8
N_REQUESTS = 1_200  # per run; three runs = 3600 interleaved requests
N_RUNS = 3
STORE_MAX_BYTES = 256 * 1024


@pytest.fixture
def bench_root(tmp_path):
    """Service roots on tmpfs when available.

    Request latency is fsync-bound; on spinning/virtio storage the
    fsync p99 swings by milliseconds with unrelated system load, which
    would drown the service-layer overhead this suite tracks.  tmpfs
    makes the journal writes deterministic (~10us) so the regression
    gate measures the code, not the disk scheduler."""
    import shutil
    import tempfile

    if os.path.isdir("/dev/shm"):
        root = tempfile.mkdtemp(prefix="repro-bench-svc-", dir="/dev/shm")
        yield Path(root)
        shutil.rmtree(root, ignore_errors=True)
    else:
        yield tmp_path


def _run_workload(root):
    """One full multi-tenant load pass; returns the run's metrics."""
    svc = TuningService(
        root,
        n_workers=1,  # serial executor: measures the service layer itself
        batch_size=16,
        max_total_queued=48,
        default_quota=TenantQuota(max_live_sessions=2, max_queued_jobs=8),
        store_max_bytes=STORE_MAX_BYTES,
    ).open()
    handler = ServiceHandler(svc)
    tenants = [f"tenant-{i}" for i in range(N_TENANTS)]
    sessions = {
        t: handler.handle({"op": "create_session", "tenant": t})
        ["session"]["session_id"]
        for t in tenants
    }

    latencies: list[float] = []
    submit_latencies: list[float] = []
    submitted: list[str] = []
    rejections: list[dict] = []
    cursors = {t: 0 for t in tenants}

    rng = np.random.default_rng(0)
    ops = rng.choice(["submit", "events", "job", "stats"], size=N_REQUESTS,
                     p=[0.5, 0.3, 0.15, 0.05])
    for i, op in enumerate(ops):
        tenant = tenants[i % N_TENANTS]
        sid = sessions[tenant]
        if op == "submit":
            request = {
                "op": "submit", "session": sid, "tenant": tenant,
                "payload": {"kind": "probe", "seed": i, "work": 8},
            }
        elif op == "events":
            request = {"op": "events", "session": sid,
                       "after": cursors[tenant]}
        elif op == "job" and submitted:
            request = {"op": "job", "job": submitted[-1]}
        else:
            request = {"op": "stats"}
        start = time.perf_counter()
        response = handler.handle(request)
        elapsed = time.perf_counter() - start
        latencies.append(elapsed)
        if request["op"] == "submit":
            submit_latencies.append(elapsed)
            if response["ok"]:
                submitted.append(response["job"]["job_id"])
            else:
                rejections.append(response["error"])
        elif request["op"] == "events" and response["ok"] and response["events"]:
            cursors[tenant] = response["events"][-1]["seq"]
        # Interleave dispatch with request traffic, as a live service
        # pump thread would.
        if i % 40 == 39:
            svc.pump(max_batches=1)

    # Drain everything, timing dispatch throughput.
    drain_start = time.perf_counter()
    drained = 0
    while True:
        n = svc.pump()
        drained += n
        if n == 0:
            break
    drain_elapsed = time.perf_counter() - drain_start

    # -- per-run contract assertions ------------------------------------
    assert len(latencies) == N_REQUESTS
    # Quota pressure produced rejections, every one structured.
    assert rejections, "expected quota/queue rejections under this load"
    for error in rejections:
        assert error["reason"] in ("quota-exceeded", "queue-full", "overloaded")
        assert error["retry_after"] > 0
    # Nothing silently dropped: every accepted job reached a journaled
    # terminal state.
    assert all(svc.job(jid).terminal for jid in submitted)
    completed = sum(
        1 for jid in submitted if svc.job(jid).state == "completed"
    )
    assert completed > 0
    # Bounded memory and disk under churn.
    assert len(svc.store.events) <= svc.store.events.maxlen
    assert svc.store.size_bytes() < 4 * STORE_MAX_BYTES
    assert svc.stats()["ok"] is True

    throughput = drained / drain_elapsed if drain_elapsed > 0 else float("inf")
    return {
        "request_p50": float(np.percentile(latencies, 50)),
        "request_p99": float(np.percentile(latencies, 99)),
        "submit_p99": float(np.percentile(submit_latencies, 99)),
        "throughput": throughput,
        "accepted": len(submitted),
        "rejected": len(rejections),
        "completed": completed,
    }


def test_service_load(results_dir, bench_root):
    runs = [_run_workload(bench_root / f"svc{i}") for i in range(N_RUNS)]
    best = lambda key: float(min(r[key] for r in runs))  # noqa: E731

    throughput = max(r["throughput"] for r in runs)
    entries = [
        make_entry("request_p50", best("request_p50"),
                   n_requests=N_REQUESTS, n_tenants=N_TENANTS, runs=N_RUNS),
        make_entry("request_p99", best("request_p99"),
                   n_requests=N_REQUESTS, n_tenants=N_TENANTS, runs=N_RUNS),
        make_entry("submit_p99", best("submit_p99"), runs=N_RUNS),
        # Throughput is gated via its inverse so "bigger seconds = worse"
        # holds for every tracked entry.
        make_entry("pump_throughput", 1.0 / throughput,
                   jobs_per_second=round(throughput, 1)),
    ]

    path = results_dir / REPORT_NAME
    committed = load_report(str(path))
    write_report(
        str(path), entries, suite="BENCH_service",
        accepted=sum(r["accepted"] for r in runs),
        rejected=sum(r["rejected"] for r in runs),
        completed=sum(r["completed"] for r in runs),
    )

    lines = ["", f"{'entry':<20} {'value':>12}",
             f"{'request_p50':<20} {best('request_p50') * 1e6:>10.0f}us",
             f"{'request_p99':<20} {best('request_p99') * 1e6:>10.0f}us",
             f"{'submit_p99':<20} {best('submit_p99') * 1e6:>10.0f}us",
             f"{'pump_throughput':<20} {throughput:>9.0f}/s",
             f"{'accepted':<20} {sum(r['accepted'] for r in runs):>12}",
             f"{'rejected':<20} {sum(r['rejected'] for r in runs):>12}",
             f"{'completed':<20} {sum(r['completed'] for r in runs):>12}"]
    print("\n".join(lines))

    regressions = find_regressions(entries, committed, TRACKED)
    if regressions and os.environ.get(ALLOW_REGRESSION_ENV) != "1":
        pytest.fail(
            "performance regression vs committed BENCH_service.json:\n  "
            + "\n  ".join(regressions)
        )
