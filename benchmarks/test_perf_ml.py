"""Performance benchmarks for the ML hot paths (BENCH_ml.json).

Times tree fit, forest fit, 10k-pool prediction, and a full RSb
session, each against the legacy implementation it replaced (the
legacy split-search engine and the per-tree prediction loops, which
ship unchanged as the reference).  Writes the machine-readable report
to ``benchmarks/results/BENCH_ml.json`` and fails when a tracked entry
regresses more than 25% against the committed baseline (set
``REPRO_BENCH_ALLOW_REGRESSION=1`` to regenerate a baseline on
different hardware).

Run via ``make bench`` or directly:
``PYTHONPATH=src python -m pytest benchmarks/test_perf_ml.py -q -s``.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.kernels import get_kernel
from repro.machines import SANDYBRIDGE, WESTMERE
from repro.ml import _native
from repro.ml.forest import RandomForestRegressor
from repro.ml.tree import DecisionTreeRegressor
from repro.orio.evaluator import OrioEvaluator
from repro.perf.benchreport import (
    ALLOW_REGRESSION_ENV,
    find_regressions,
    load_report,
    make_entry,
    time_callable,
    write_report,
)
from repro.perf.simclock import SimClock
from repro.search import SharedStream, biased_search, random_search
from repro.transfer.surrogate import Surrogate
from repro.utils.rng import RngFactory

REPORT_NAME = "BENCH_ml.json"
#: Entries checked against the committed report by the 25% gate.
TRACKED = ("forest_fit", "pool_predict", "pool_predict_std")


class _LegacyForest(RandomForestRegressor):
    """The pre-optimization forest: legacy split search, per-node
    argsort growth, ``np.setdiff1d`` OOB bookkeeping, and per-tree
    Python prediction loops.  Used as the honest "before" timing."""

    def __init__(self, **kwargs) -> None:
        super().__init__(engine="legacy", **kwargs)

    def fit(self, X, y):
        n, p = X.shape
        factory = RngFactory("random-forest", seed=self.seed)
        self.trees = []
        oob_sum = np.zeros(n)
        oob_count = np.zeros(n)
        importances = np.zeros(p)
        for t in range(self.n_estimators):
            rng = factory.child("tree", t)
            sample = rng.integers(0, n, size=n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                rng=factory.child("split", t),
                engine="legacy",
            )
            tree.fit(X[sample], y[sample])
            self.trees.append(tree)
            importances += tree.feature_importances_
            out_of_bag = np.setdiff1d(np.arange(n), sample, assume_unique=False)
            if out_of_bag.size:
                oob_sum[out_of_bag] += tree.predict(X[out_of_bag])
                oob_count[out_of_bag] += 1
        self._n_features = p
        with np.errstate(invalid="ignore", divide="ignore"):
            self._oob_prediction = np.where(oob_count > 0, oob_sum / oob_count, np.nan)
        total = importances.sum()
        self._importances = importances / total if total > 0 else importances
        self._y_train = y
        return self

    def predict(self, X):
        acc = np.zeros(np.asarray(X).shape[0])
        for tree in self.trees:
            acc += tree.predict(X)
        return acc / len(self.trees)

    def predict_std(self, X):
        return np.stack([tree.predict(X) for tree in self.trees]).std(axis=0)


def _training_set(n: int, p: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, p))
    y = np.abs(rng.normal(size=n) + 2.0 * X[:, 0]) + 0.1
    return X, y


#: Engine batch size used by the session benchmark (the factory
#: default); recorded in the entry meta alongside the engine mode.
SESSION_BATCH = 64


def _rsb_session(kernel, training, learner_factory) -> None:
    """Model-facing half of an RSb session: surrogate fit, 10k-pool
    scoring, and the target evaluations (the source trace that produces
    ``training`` is identical for both engines, so it is built once
    outside the timed region)."""
    surrogate = Surrogate(kernel.space, learner=learner_factory())
    surrogate.fit(training)
    target = OrioEvaluator(kernel, SANDYBRIDGE, clock=SimClock())
    biased_search(target, kernel.space, surrogate, nmax=40, pool_size=10_000,
                  batch_size=SESSION_BATCH)


def test_perf_ml_suite(results_dir):
    X, y = _training_set(100, 8)
    Xpool = _training_set(10_000, 8, seed=1)[0]
    entries = []

    # -- single-tree fit (full split search, deeper data) ---------------
    Xt, yt = _training_set(1_000, 8, seed=2)
    legacy_tree = DecisionTreeRegressor(min_samples_leaf=2, engine="legacy")
    fast_tree = DecisionTreeRegressor(min_samples_leaf=2, engine="presort")
    entries.append(make_entry(
        "tree_fit",
        time_callable(lambda: fast_tree.fit(Xt, yt)),
        time_callable(lambda: legacy_tree.fit(Xt, yt), repeats=3),
        n=1_000, p=8, max_features=None,
    ))

    # -- forest fit: full split search (headline) and surrogate default -
    for name, mf, reps in (
        ("forest_fit", None, 5),
        ("forest_fit_surrogate_default", "third", 5),
    ):
        legacy = _LegacyForest(n_estimators=64, max_features=mf, seed=0)
        fast = RandomForestRegressor(n_estimators=64, max_features=mf, seed=0)
        entries.append(make_entry(
            name,
            time_callable(lambda: fast.fit(X, y), repeats=reps),
            time_callable(lambda: legacy.fit(X, y), repeats=3),
            n=100, p=8, n_estimators=64, max_features=str(mf),
        ))

    # -- 10k-pool prediction -------------------------------------------
    legacy = _LegacyForest(n_estimators=64, seed=0).fit(X, y)
    fast = RandomForestRegressor(n_estimators=64, seed=0).fit(X, y)
    assert np.array_equal(legacy.predict(Xpool), fast.predict(Xpool))
    assert np.array_equal(legacy.predict_std(Xpool), fast.predict_std(Xpool))
    entries.append(make_entry(
        "pool_predict",
        time_callable(lambda: fast.predict(Xpool)),
        time_callable(lambda: legacy.predict(Xpool), repeats=3),
        n_rows=10_000, n_estimators=64,
    ))
    entries.append(make_entry(
        "pool_predict_std",
        time_callable(lambda: fast.predict_std(Xpool)),
        time_callable(lambda: legacy.predict_std(Xpool), repeats=3),
        n_rows=10_000, n_estimators=64,
    ))

    # -- full RSb session ----------------------------------------------
    kernel = get_kernel("lu", n=128)
    source = OrioEvaluator(kernel, WESTMERE, clock=SimClock())
    training = random_search(
        source, SharedStream(kernel.space, seed="bench"), nmax=60
    ).training_data()
    entries.append(make_entry(
        "rsb_session",
        time_callable(
            lambda: _rsb_session(kernel, training, lambda: RandomForestRegressor(
                n_estimators=64, min_samples_leaf=2, seed=0)),
            repeats=3,
        ),
        time_callable(
            lambda: _rsb_session(kernel, training, lambda: _LegacyForest(
                n_estimators=64, min_samples_leaf=2, seed=0)),
            repeats=3,
        ),
        nmax=40, pool_size=10_000, kernel="lu",
        batch_size=SESSION_BATCH, engine_mode="batched",
        native_kernel=_native.available(),
    ))

    path = results_dir / REPORT_NAME
    committed = load_report(str(path))
    write_report(str(path), entries)

    lines = ["", f"{'entry':<30} {'before':>10} {'after':>10} {'speedup':>8}"]
    for e in entries:
        before = e.get("baseline_seconds")
        lines.append(
            f"{e['name']:<30} "
            f"{(before * 1e3 if before else float('nan')):>8.1f}ms "
            f"{e['seconds'] * 1e3:>8.1f}ms "
            f"{e.get('speedup', float('nan')):>7.1f}x"
        )
    print("\n".join(lines))

    regressions = find_regressions(entries, committed, TRACKED)
    if regressions and os.environ.get(ALLOW_REGRESSION_ENV) != "1":
        pytest.fail(
            "performance regression vs committed BENCH_ml.json:\n  "
            + "\n  ".join(regressions)
        )
