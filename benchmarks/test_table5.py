"""Benchmark: regenerate Table V (Xeon Phi experiments, icc + OpenMP).

Paper shape targets: MM flat (no performance speedups — the icc idiom
anomaly), LU transfers onto the Phi with the study's largest
search-time speedups.
"""

from repro.experiments import run_table5


def test_table5(benchmark, save_artifact, registry_dir):
    result = benchmark.pedantic(
        lambda: run_table5(
            seed=0, nmax=100, registry_path=registry_dir / "table5.jsonl"
        ),
        rounds=1,
        iterations=1,
    )
    save_artifact("table5", result.render())

    assert result.mm_is_flat()
    assert result.phi_lu_dominates()

    # LU onto the Phi: performance gains exist (paper: 1.61-1.63X).
    lu_phi = [result.cell("LU", s, "xeonphi") for s in ("westmere", "sandybridge")]
    assert all(c.performance >= 1.0 for c in lu_phi)
