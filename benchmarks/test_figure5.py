"""Benchmark: regenerate Figure 5 (Sandybridge -> Xeon Phi, icc + OpenMP).

Paper: MM shows no clear trend (icc's idiom handling makes the default
variant best and manual transforms detrimental); LU shows dominant RSb;
COR shows fast early progress with a mixed final outcome.
"""

import numpy as np

from repro.experiments import run_figure5
from repro.kernels import get_kernel
from repro.machines import ICC, get_machine
from repro.orio.evaluator import OrioEvaluator


def test_figure5(benchmark, save_artifact, registry_dir):
    panels = benchmark.pedantic(
        lambda: run_figure5(
            seed=0, nmax=100, registry_path=registry_dir / "figure5.jsonl"
        ),
        rounds=1,
        iterations=1,
    )
    save_artifact("figure5", panels.render())

    # MM is flat: transfer cannot buy real performance there.
    mm = panels.panel("MM").reports()["RSb"]
    assert mm.performance <= 1.25

    # LU dominates with a large search-time speedup.
    lu = panels.panel("LU").reports()["RSb"]
    assert lu.search_time > 10.0
    assert lu.performance >= 1.0


def test_figure5_mm_default_is_best(benchmark, save_artifact):
    """The MM anomaly, measured directly: the untransformed default
    beats every sampled transformed variant under icc on the Phi."""

    def measure():
        kernel = get_kernel("mm")
        ev = OrioEvaluator(kernel, get_machine("xeonphi"), compiler=ICC,
                           threads=60, openmp=True)
        default = ev.measure(kernel.space.default()).runtime_seconds
        rng = np.random.default_rng(0)
        sampled = [ev.measure(c).runtime_seconds
                   for c in kernel.space.sample(rng, 60)]
        return default, sampled

    default, sampled = benchmark.pedantic(measure, rounds=1, iterations=1)
    save_artifact(
        "figure5_mm_default",
        f"default: {default:.3f}s\nbest sampled: {min(sampled):.3f}s\n"
        f"median sampled: {float(np.median(sampled)):.3f}s",
    )
    assert default < min(sampled)
