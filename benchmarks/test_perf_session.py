"""Full-session macro-benchmark (BENCH_session.json).

Times a complete RSb transfer session end to end — surrogate fit,
10k-pool scoring, ranking, and 40 target evaluations — against the
PR-2-era implementation reconstructed in-file: serial engine loop,
legacy forest (per-node argsort growth, per-tree prediction loops),
and the eager pool path that materialized every Configuration and
encoded it row by row.  The legacy and fast sessions are verified to
produce *identical* traces before any timing happens, so the speedup
is an apples-to-apples measurement of the same computation.

The batched engine with native kernels must be >= 5x the legacy
session; with ``REPRO_NATIVE=0`` (pure-NumPy fallback) it must still
be >= 2.5x.  Writes ``benchmarks/results/BENCH_session.json`` and
fails when a tracked entry regresses more than 25% against the
committed baseline (``REPRO_BENCH_ALLOW_REGRESSION=1`` to regenerate
a baseline on different hardware).

Run via ``make bench-session`` or directly:
``PYTHONPATH=src python -m pytest benchmarks/test_perf_session.py -q -s``.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.kernels import get_kernel
from repro.machines import SANDYBRIDGE, WESTMERE
from repro.ml import _native
from repro.ml.forest import RandomForestRegressor
from repro.orio.evaluator import OrioEvaluator
from repro.perf.benchreport import (
    ALLOW_REGRESSION_ENV,
    find_regressions,
    load_report,
    make_entry,
    time_callable,
    write_report,
)
from repro.perf.simclock import SimClock
from repro.reliability.checkpoint import trace_to_dict
from repro.search import SharedStream, random_search
from repro.search.engine import SearchEngine
from repro.search.proposers import PoolRankProposer
from repro.transfer.surrogate import Surrogate
from repro.utils.rng import spawn_rng

from test_perf_ml import _LegacyForest

REPORT_NAME = "BENCH_session.json"
#: Entries checked against the committed report by the 25% gate.
TRACKED = ("rsb_session", "rsb_session_numpy")

#: Acceptance floors for this PR: batched + native kernels vs the
#: PR-2-era serial session, and the pure-NumPy fallback vs the same.
MIN_SPEEDUP_NATIVE = 5.0
MIN_SPEEDUP_NUMPY = 2.5

SESSION_BATCH = 64
NMAX = 40
POOL_SIZE = 10_000


class _LegacyPool(PoolRankProposer):
    """The PR-2-era pool path: materialize every pool Configuration,
    encode each one through ``surrogate.predict``, and rank with a
    full stable argsort.  Draws from the same RNG key as the bulk
    path, so the traces are identical."""

    def setup(self, ctx) -> None:
        clock = ctx.clock
        if not ctx.resumed:
            clock.advance(self.surrogate.fit_seconds)
        pool_rng = spawn_rng(self.rng_label, self.space.name, ctx.name)
        pool = self.space.sample(pool_rng, min(self.pool_size, self.space.cardinality))
        predictions = self.surrogate.predict(pool)
        if not ctx.resumed:
            clock.advance(self.surrogate.predict_seconds(len(pool)))
        self._pool_configs = list(pool)
        self._pool_indices = None
        self.predictions = predictions
        self._order = np.argsort(predictions, kind="stable")
        self._order_upto = len(predictions)
        ctx.trace.metadata["pool_size"] = len(pool)


def _legacy_session(kernel, training):
    """Serial engine + legacy forest + eager pool: the honest before."""
    surrogate = Surrogate(
        kernel.space,
        learner=_LegacyForest(n_estimators=64, min_samples_leaf=2, seed=0),
    )
    surrogate.fit(training)
    target = OrioEvaluator(kernel, SANDYBRIDGE, clock=SimClock())
    engine = SearchEngine(
        target,
        _LegacyPool(kernel.space, surrogate, pool_size=POOL_SIZE),
        nmax=NMAX,
        name="RSb",
        space=kernel.space,
        batch_size=None,
    )
    return engine.run()


def _fast_session(kernel, training):
    """Batched engine + current forest + bulk index-based pool."""
    surrogate = Surrogate(
        kernel.space,
        learner=RandomForestRegressor(n_estimators=64, min_samples_leaf=2, seed=0),
    )
    surrogate.fit(training)
    target = OrioEvaluator(kernel, SANDYBRIDGE, clock=SimClock())
    engine = SearchEngine(
        target,
        PoolRankProposer(kernel.space, surrogate, pool_size=POOL_SIZE),
        nmax=NMAX,
        name="RSb",
        space=kernel.space,
        batch_size=SESSION_BATCH,
    )
    return engine.run()


def test_perf_session(results_dir):
    kernel = get_kernel("lu", n=128)
    source = OrioEvaluator(kernel, WESTMERE, clock=SimClock())
    training = random_search(
        source, SharedStream(kernel.space, seed="bench"), nmax=60
    ).training_data()

    # The speedup claim only means something if both engines run the
    # same search: prove trace identity before timing anything.
    assert trace_to_dict(_legacy_session(kernel, training)) == trace_to_dict(
        _fast_session(kernel, training)
    )

    legacy_seconds = time_callable(lambda: _legacy_session(kernel, training),
                                   repeats=3)

    entries = []
    native_available = _native.available()
    fast_seconds = time_callable(lambda: _fast_session(kernel, training),
                                 repeats=5)
    entries.append(make_entry(
        "rsb_session",
        fast_seconds,
        legacy_seconds,
        nmax=NMAX, pool_size=POOL_SIZE, kernel="lu",
        batch_size=SESSION_BATCH, engine_mode="batched",
        native_kernel=native_available,
    ))

    # Same session with the native kernels disabled: the NumPy
    # fallback must carry the floor on machines without a C compiler.
    # ``_native.available()`` consults the env var before its latch,
    # so in-process toggling is safe.
    old = os.environ.get("REPRO_NATIVE")
    os.environ["REPRO_NATIVE"] = "0"
    try:
        assert not _native.available()
        numpy_seconds = time_callable(lambda: _fast_session(kernel, training),
                                      repeats=5)
    finally:
        if old is None:
            del os.environ["REPRO_NATIVE"]
        else:  # pragma: no cover - env already set by the caller
            os.environ["REPRO_NATIVE"] = old
    entries.append(make_entry(
        "rsb_session_numpy",
        numpy_seconds,
        legacy_seconds,
        nmax=NMAX, pool_size=POOL_SIZE, kernel="lu",
        batch_size=SESSION_BATCH, engine_mode="batched",
        native_kernel=False,
    ))

    path = results_dir / REPORT_NAME
    committed = load_report(str(path))
    write_report(str(path), entries)

    lines = ["", f"{'entry':<24} {'before':>10} {'after':>10} {'speedup':>8}"]
    for e in entries:
        lines.append(
            f"{e['name']:<24} "
            f"{e['baseline_seconds'] * 1e3:>8.1f}ms "
            f"{e['seconds'] * 1e3:>8.1f}ms "
            f"{e['speedup']:>7.2f}x"
        )
    print("\n".join(lines))

    if native_available:
        assert entries[0]["speedup"] >= MIN_SPEEDUP_NATIVE, (
            f"native batched session speedup {entries[0]['speedup']:.2f}x "
            f"is below the {MIN_SPEEDUP_NATIVE}x floor"
        )
    assert entries[1]["speedup"] >= MIN_SPEEDUP_NUMPY, (
        f"NumPy-fallback session speedup {entries[1]['speedup']:.2f}x "
        f"is below the {MIN_SPEEDUP_NUMPY}x floor"
    )

    regressions = find_regressions(entries, committed, TRACKED)
    if regressions and os.environ.get(ALLOW_REGRESSION_ENV) != "1":
        pytest.fail(
            "performance regression vs committed BENCH_session.json:\n  "
            + "\n  ".join(regressions)
        )
