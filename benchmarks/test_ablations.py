"""Benchmarks: the extension experiments (beyond the paper's artefacts).

* δ sweep for RSp (the paper blames δ=20% for RSp's weakness);
* surrogate-learner ablation (§III-A: learner choice is crucial);
* pool-size sweep for RSb;
* machine-dissimilarity quantification (§VII future work);
* multi-source transfer.
"""

from repro.experiments.ablations import (
    run_delta_sweep,
    run_dissimilarity,
    run_multisource,
    run_pool_sweep,
    run_surrogate_ablation,
)


def test_delta_sweep(benchmark, save_artifact):
    result = benchmark.pedantic(
        lambda: run_delta_sweep(seed=0), rounds=1, iterations=1
    )
    save_artifact("ablation_delta", result.render())
    assert len(result.rows) == 5


def test_surrogate_ablation(benchmark, save_artifact):
    result = benchmark.pedantic(
        lambda: run_surrogate_ablation(seed=0), rounds=1, iterations=1
    )
    save_artifact("ablation_surrogate", result.render())
    by_label = {r.label: r for r in result.rows}
    # Recursive partitioning should not lose to the linear baseline.
    assert by_label["random-forest"].performance >= by_label["ridge"].performance * 0.9


def test_pool_sweep(benchmark, save_artifact):
    result = benchmark.pedantic(
        lambda: run_pool_sweep(seed=0), rounds=1, iterations=1
    )
    save_artifact("ablation_pool", result.render())
    # Larger pools cannot hurt the best achievable predicted quality.
    rows = {r.label: r for r in result.rows}
    assert rows["N=50000"].performance >= rows["N=100"].performance * 0.8


def test_dissimilarity(benchmark, save_artifact):
    result = benchmark.pedantic(
        lambda: run_dissimilarity(seed=0), rounds=1, iterations=1
    )
    save_artifact("ablation_dissimilarity", result.render())
    # §VII's hypothesis: response distance anti-correlates with the
    # empirical rank correlation of configuration runtimes.
    assert result.correlation < -0.4
    # Intel pair: smallest distance, highest correlation among pairs.
    by_pair = {(a, b): (d, r) for a, b, d, r in result.pairs}
    intel = by_pair[("westmere", "sandybridge")]
    xgene_pairs = [v for (a, b), v in by_pair.items() if "xgene" in (a, b)]
    assert all(intel[0] < d for d, _ in xgene_pairs)
    assert all(intel[1] > r for _, r in xgene_pairs)


def test_multisource(benchmark, save_artifact):
    result = benchmark.pedantic(
        lambda: run_multisource(seed=0), rounds=1, iterations=1
    )
    save_artifact("ablation_multisource", result.render())
    assert len(result.rows) == 3  # two single sources + pooled


def test_warm_start(benchmark, save_artifact):
    from repro.experiments.ablations import run_warm_start

    result = benchmark.pedantic(
        lambda: run_warm_start(seed=0), rounds=1, iterations=1
    )
    save_artifact("ablation_warm_start", result.render())
    by_label = {r.label: r for r in result.rows}
    # Warm starting must not hurt any technique's best-found quality.
    for tech in ("ga", "anneal", "bandit"):
        warm = by_label[f"{tech} (warm)"]
        cold = by_label[f"{tech} (cold)"]
        assert warm.performance >= cold.performance * 0.9


def test_online(benchmark, save_artifact):
    from repro.experiments.ablations import run_online

    result = benchmark.pedantic(lambda: run_online(seed=0), rounds=1, iterations=1)
    save_artifact("ablation_online", result.render())
    by_label = {r.label.split(" ")[0]: r for r in result.rows}
    assert by_label["RSb+online"].performance >= by_label["RSb"].performance * 0.85


def test_fault_ablation(benchmark, save_artifact):
    """Regenerate the robustness ablation: RSb under injected faults at
    0/5/10/20% rates, fail-fast vs retry/backoff recovery."""
    from repro.experiments.ablations import run_fault_ablation

    result = benchmark.pedantic(
        lambda: run_fault_ablation(seed=0), rounds=1, iterations=1
    )
    save_artifact("ablation_faults", result.render())
    rows = {r.label: r for r in result.rows}
    assert len(result.rows) == 8  # 4 rates x {fail-fast, retries}
    # The fault-free cells are identical: retries never trigger.
    clean_ff = rows["rate=0% (fail-fast)"]
    clean_rt = rows["rate=0% (retries)"]
    assert (clean_rt.performance, clean_rt.search_time) == (
        clean_ff.performance, clean_ff.search_time,
    )
    # Even at 20% faults with retries the search finds a real optimum.
    assert rows["rate=20% (retries)"].performance > 0.0


def test_machine_calibration(benchmark, save_artifact):
    """Regenerate the machine-model calibration report (the evidence
    that the simulated Table II machines behave like their namesakes)."""
    from repro.perf.validation import validation_table

    text = benchmark.pedantic(validation_table, rounds=1, iterations=1)
    save_artifact("machine_calibration", text)
    assert "sandybridge" in text


def test_search_comparison(benchmark, save_artifact):
    """Regenerate the cross-family search comparison (Section II's full
    catalog of techniques, cold vs transfer-assisted)."""
    from repro.experiments.ablations import run_search_comparison

    result = benchmark.pedantic(
        lambda: run_search_comparison(seed=0), rounds=1, iterations=1
    )
    save_artifact("ablation_search_comparison", result.render())
    rows = {r.label: r for r in result.rows}
    # Transfer must rescue at least half the population-free techniques
    # that fail cold (the §VII hypothesis, demonstrated).
    rescued = sum(
        1
        for t in ("orthogonal", "pattern", "ga", "anneal")
        if rows[f"{t} (transfer)"].performance >= rows[f"{t} (cold)"].performance
    )
    assert rescued >= 2


def test_hybrid(benchmark, save_artifact, registry_dir):
    """Regenerate the prune-then-bias hybrid ablation: RSpb (the
    engine-composed Proposer x Gate cross) vs its parents RSp and RSb
    across delta cutoffs, journaled by the supervised grid."""
    from repro.experiments.ablations import run_hybrid

    result = benchmark.pedantic(
        lambda: run_hybrid(seed=0, registry_path=registry_dir / "hybrid.jsonl"),
        rounds=1, iterations=1,
    )
    save_artifact("ablation_hybrid", result.render())
    rows = {r.label: r for r in result.rows}
    assert len(result.rows) == 9  # 3 deltas x {RSp, RSb, RSpb}
    # Gating the biased order must not forfeit RSb's found quality.
    for delta in (10.0, 20.0, 40.0):
        hybrid = rows[f"RSpb (delta={delta:g}%)"]
        parent = rows[f"RSb (delta={delta:g}%)"]
        assert hybrid.performance >= parent.performance * 0.9


def test_negative_transfer(benchmark, save_artifact, registry_dir):
    """Regenerate the negative-transfer guard ablation: adversarial
    sources (runtime-inverted, label-shuffled, wrong-machine,
    stale-partial) x guard on/off, journaled by the supervised grid."""
    from repro.experiments.ablations import run_negative_transfer

    result = benchmark.pedantic(
        lambda: run_negative_transfer(
            seed=0, registry_path=registry_dir / "negative_transfer.jsonl"
        ),
        rounds=1, iterations=1,
    )
    save_artifact("ablation_guard", result.render())
    rows = {r.label: r for r in result.rows}
    assert len(result.rows) == 20  # 5 modes x {bare, guard} x {RSp, RSb}
    for variant in ("RSp", "RSb"):
        # Hostile source: the guard's fallback must recover plain RS's
        # quality to within 5% while the bare run is measurably worse.
        guarded = rows[f"inverted/{variant} (guard)"]
        bare = rows[f"inverted/{variant} (bare)"]
        assert guarded.performance >= 1.0 / 1.05
        assert bare.performance < guarded.performance * 0.9
        # Faithful source: the guard must not change the run at all.
        g, b = rows[f"faithful/{variant} (guard)"], rows[f"faithful/{variant} (bare)"]
        assert (g.performance, g.search_time) == (b.performance, b.search_time)
    # And the faithful guards report zero interventions in the notes.
    for variant in ("RSp", "RSb"):
        assert (
            f"faithful/{variant} (guard): state=trusted, interventions=0"
            in result.note
        )


def test_variance_study(benchmark, save_artifact):
    """Quantify the run-to-run variance behind single-run table cells."""
    from repro.experiments.variance import run_variance_study

    result = benchmark.pedantic(
        lambda: run_variance_study(n_seeds=5), rounds=1, iterations=1
    )
    save_artifact("ablation_variance", result.render())
    # The flagship LU transfer succeeds in the clear majority of seeds.
    assert result.success_rate() >= 0.6
    # Search-time speedups stay in the paper's successful regime.
    import numpy as np

    assert np.median(result.search_times) > 1.6
