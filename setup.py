"""Setuptools shim.

This offline environment lacks the ``wheel`` package that PEP 660
editable installs require, so ``pip install -e .`` falls back to the
legacy ``setup.py develop`` path, which needs this file.  All project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
