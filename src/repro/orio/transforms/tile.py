"""Cache tiling (loop blocking).

Strip-mines the requested loops and hoists the resulting tile loops to
the outside of the nest, producing the classic blocked structure::

    for (it = 0; it < N; it += T_I)
      for (jt = 0; jt < N; jt += T_J)
        for (i = it; i < min(it + T_I, N); i++)
          for (j = jt; j < min(jt + T_J, N); j++)
            ...

Triangular nests (LU) are handled with the standard ``max``/``min``
bound adjustment: the tile loop covers the rectangular hull of the
iteration space and the point loop clamps back to the true triangular
bounds, so the transformed nest executes exactly the original
iterations (verified by the interpreter-based equivalence tests).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Mapping

from repro.errors import TransformError
from repro.orio.ast import (
    BinOp,
    Expr,
    ForLoop,
    IntLit,
    MaxExpr,
    MinExpr,
    Var,
    fold,
    loop_chain,
)
from repro.orio.transforms.base import Transform, collect_names, fresh_name

__all__ = ["CacheTile", "tile_nest", "rectangular_hull"]


def _free_loop_vars(expr: Expr, loop_vars: set[str]) -> set[str]:
    """Loop variables appearing in an expression."""
    if isinstance(expr, Var):
        return {expr.name} & loop_vars
    if isinstance(expr, (BinOp, MinExpr, MaxExpr)):
        return _free_loop_vars(expr.left, loop_vars) | _free_loop_vars(expr.right, loop_vars)
    if isinstance(expr, IntLit):
        return set()
    raise TransformError(f"unexpected bound expression {expr!r}")


def rectangular_hull(chain: list[ForLoop]) -> dict[str, tuple[int, int]]:
    """Constant ``[lo, hi)`` hull of each loop's range.

    For triangular bounds that reference outer loop variables, the hull
    substitutes the extreme values of those variables, yielding the
    smallest machine-independent rectangle containing the iteration
    space.  Requires the outermost loop to have constant bounds.
    """
    hull: dict[str, tuple[int, int]] = {}
    for loop in chain:
        lo_min = fold(loop.lower, {v: lo for v, (lo, hi) in hull.items()})
        lo_alt = fold(loop.lower, {v: hi - 1 for v, (lo, hi) in hull.items()})
        hi_max = fold(loop.upper, {v: hi - 1 for v, (lo, hi) in hull.items()})
        hi_alt = fold(loop.upper, {v: lo for v, (lo, hi) in hull.items()})
        if not all(isinstance(e, IntLit) for e in (lo_min, lo_alt, hi_max, hi_alt)):
            raise TransformError(
                f"loop {loop.var}: bounds reference symbols outside the nest"
            )
        hull[loop.var] = (
            min(lo_min.value, lo_alt.value),
            max(hi_max.value, hi_alt.value),
        )
    return hull


def tile_nest(nest: ForLoop, tiles: Mapping[str, int]) -> ForLoop:
    """Tile the perfect loop chain of ``nest`` with the given sizes.

    Sizes of 1 (or at least the loop's full hull extent) are no-ops for
    that loop; Table I's tile range starts at ``2^0 = 1``, i.e. "no
    tiling".
    """
    chain = loop_chain(nest)
    chain_vars = {l.var for l in chain}
    for var, size in tiles.items():
        if var not in chain_vars:
            raise TransformError(f"cannot tile {var!r}: not in the perfect loop chain")
        if size < 1:
            raise TransformError(f"tile size for {var!r} must be >= 1, got {size}")
    hull = rectangular_hull(chain)

    effective: dict[str, int] = {}
    for loop in chain:
        size = int(tiles.get(loop.var, 1))
        lo, hi = hull[loop.var]
        extent = max(0, hi - lo)
        span = size * loop.step
        if size > 1 and span < extent:
            effective[loop.var] = size
    if not effective:
        return nest

    taken = collect_names(nest)
    tile_var = {v: fresh_name(f"{v}t", taken) for v in effective}

    # Point-loop bounds, outermost first, clamped for tiled vars.
    body = chain[-1].body
    point_bounds: list[tuple[ForLoop, Expr, Expr]] = []
    for loop in chain:
        if loop.var in effective:
            span = effective[loop.var] * loop.step
            tv = Var(tile_var[loop.var])
            lower: Expr = tv
            if _free_loop_vars(loop.lower, chain_vars):
                # Triangular lower bound: clamp to the true start.
                lower = MaxExpr(tv, loop.lower)
            upper: Expr = MinExpr(fold(BinOp("+", tv, IntLit(span))), loop.upper)
            point_bounds.append((loop, lower, upper))
        else:
            point_bounds.append((loop, loop.lower, loop.upper))

    # Rebuild inside-out: innermost point loop wraps the original body.
    inner: tuple = body
    for loop, lower, upper in reversed(point_bounds):
        inner = (replace(loop, lower=lower, upper=upper, body=inner),)

    # Tile loops, in the original loop order, wrap the point nest.
    for loop in reversed(chain):
        if loop.var not in effective:
            continue
        lo, hi = hull[loop.var]
        span = effective[loop.var] * loop.step
        tile_loop = ForLoop(
            var=tile_var[loop.var],
            lower=IntLit(lo),
            upper=IntLit(hi),
            step=span,
            body=inner,
            pragmas=loop.pragmas if loop is chain[0] else (),
        )
        inner = (tile_loop,)

    result = inner[0]
    assert isinstance(result, ForLoop)
    return result


class CacheTile(Transform):
    """Tile one or more loops of a perfect nest (Table I, row 2)."""

    def __init__(self, tiles: Mapping[str, int]) -> None:
        self.tiles = dict(tiles)

    def apply(self, nest: ForLoop) -> ForLoop:
        return tile_nest(nest, self.tiles)

    def __repr__(self) -> str:
        return f"CacheTile({self.tiles!r})"
