"""Source-level loop transformations (Table I).

All three transformations are real AST-to-AST passes over the IR in
:mod:`repro.orio.ast`:

* :class:`CacheTile` — strip-mine + hoist to create cache-blocked tile
  loops (``T`` in ``2^0 .. 2^11``);
* :class:`RegisterTile` — strip-mine by a small factor and fully unroll
  the resulting point loop (``RT`` in ``2^0 .. 2^5``);
* :class:`UnrollJam` — unroll-and-jam a loop by ``U`` in ``1 .. 32``.

:func:`compose` applies a kernel's :class:`TransformSpec` for one
concrete configuration, mirroring Orio's ``Composite`` transform.
"""

from repro.orio.transforms.base import Transform, find_loop, replace_loop, fresh_name
from repro.orio.transforms.tile import CacheTile, tile_nest
from repro.orio.transforms.unroll import UnrollJam, expand_unroll, expand_all_unrolls
from repro.orio.transforms.regtile import RegisterTile
from repro.orio.transforms.interchange import (
    Interchange,
    dependence_directions,
    interchange_legal,
)
from repro.orio.transforms.scalarrep import ScalarReplacement, replaceable_targets
from repro.orio.transforms.distribute import LoopDistribution, distribution_legal
from repro.orio.transforms.pipeline import compose, TransformPlan

__all__ = [
    "Transform",
    "find_loop",
    "replace_loop",
    "fresh_name",
    "CacheTile",
    "tile_nest",
    "UnrollJam",
    "expand_unroll",
    "expand_all_unrolls",
    "RegisterTile",
    "Interchange",
    "dependence_directions",
    "interchange_legal",
    "ScalarReplacement",
    "replaceable_targets",
    "LoopDistribution",
    "distribution_legal",
    "compose",
    "TransformPlan",
]
