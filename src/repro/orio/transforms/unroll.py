"""Unroll-and-jam (Table I, row 1).

:class:`UnrollJam` records the factor on the loop's ``unroll``
attribute — semantically "replicate the body with induction offsets
``0..(u-1)*step`` and step by ``u*step``, with a remainder loop".
:func:`expand_unroll` materializes that semantics as plain loops, which
is what the code generator emits and what the interpreter-based
equivalence tests execute.  Keeping the factor symbolic until
materialization lets the analyzer cost a ``32x32x32``-way unrolled nest
without building its ~3e4-statement body.
"""

from __future__ import annotations

from dataclasses import replace

from repro.errors import TransformError
from repro.orio.ast import (
    BinOp,
    ForLoop,
    IntLit,
    Stmt,
    fold,
    shift_var,
)
from repro.orio.transforms.base import Transform, find_loop, replace_loop

__all__ = ["UnrollJam", "expand_unroll", "expand_all_unrolls", "materialized_statements"]


class UnrollJam(Transform):
    """Set the unroll-and-jam factor of the loop over ``var``."""

    def __init__(self, var: str, factor: int) -> None:
        if factor < 1:
            raise TransformError(f"unroll factor must be >= 1, got {factor}")
        self.var = var
        self.factor = factor

    def apply(self, nest: ForLoop) -> ForLoop:
        if self.factor == 1:
            return nest
        loop = find_loop(nest, self.var)
        if loop.unroll != 1:
            raise TransformError(f"loop {self.var!r} already has an unroll factor")
        return replace_loop(nest, self.var, replace(loop, unroll=self.factor))

    def __repr__(self) -> str:
        return f"UnrollJam({self.var!r}, {self.factor})"


def expand_unroll(loop: ForLoop) -> list[Stmt]:
    """Materialize one loop's unroll attribute as explicit statements.

    Produces a main loop stepping ``u*step`` whose body is ``u`` shifted
    copies of the original body, plus a remainder loop.  When the trip
    count is constant and divisible by ``u``, the remainder is omitted;
    with symbolic (min/max) bounds the remainder is always emitted, as a
    compiler must.
    """
    u = loop.unroll
    if u == 1:
        return [loop]
    base = replace(loop, unroll=1)

    # Main loop: runs while the whole group of u iterations is in
    # range, i.e. var + (u-1)*step < upper.
    guard = fold(BinOp("-", loop.upper, IntLit((u - 1) * loop.step)))
    copies: list[Stmt] = []
    for k in range(u):
        for stmt in base.body:
            copies.append(shift_var(stmt, loop.var, k * loop.step))
    main = ForLoop(
        var=loop.var,
        lower=loop.lower,
        upper=guard,
        step=u * loop.step,
        body=tuple(copies),
        pragmas=loop.pragmas,
    )

    # Remainder: picks up where the main loop stopped.  Since the IR has
    # no loop-carried scalar for "where the main loop stopped", the
    # remainder recomputes its start: lower + floor(trip/u)*u*step.  For
    # constant bounds this folds to a constant; for symbolic bounds the
    # materializer falls back to a conservative full-range tail guarded
    # by the main loop having executed multiples of u only.
    try:
        trip = base.trip_count()
    except TransformError:
        trip = None
    if trip is not None:
        done = (trip // u) * u
        if done == trip:
            return [main] if trip > 0 else [main]
        start = fold(BinOp("+", loop.lower, IntLit(done * loop.step)))
        remainder = replace(base, lower=start, pragmas=())
        return [main, remainder]
    # Symbolic bounds: emit a remainder loop that starts at the first
    # index not covered by the main loop.  Expressible in the IR via
    # lower' = lower + ((upper - lower + step-1)/step // u)*u*step.
    span = fold(BinOp("-", loop.upper, loop.lower))
    trips = fold(BinOp("/", fold(BinOp("+", span, IntLit(loop.step - 1))), IntLit(loop.step)))
    done_expr = fold(
        BinOp("*", fold(BinOp("*", fold(BinOp("/", trips, IntLit(u))), IntLit(u))), IntLit(loop.step))
    )
    start = fold(BinOp("+", loop.lower, done_expr))
    remainder = replace(base, lower=start, pragmas=())
    return [main, remainder]


def expand_all_unrolls(stmt: Stmt, max_statements: int = 100_000) -> list[Stmt]:
    """Recursively materialize every unroll factor in a subtree.

    ``max_statements`` guards against code-size explosion (a fully
    transformed MM variant can exceed 10^4 statements); the size is
    estimated analytically *before* expanding, so an oversized request
    fails fast instead of exhausting memory.
    """
    estimate = materialized_statements(stmt)
    if estimate > max_statements:
        raise TransformError(
            f"materialized variant would have ~{estimate} statements "
            f"(limit {max_statements})"
        )

    def go(s: Stmt) -> list[Stmt]:
        if not isinstance(s, ForLoop):
            return [s]
        body: list[Stmt] = []
        for child in s.body:
            body.extend(go(child))
        return expand_unroll(s.with_body(body))

    return go(stmt)


def materialized_statements(stmt: Stmt) -> int:
    """Statement count of the fully unroll-expanded subtree, computed
    analytically (without materializing)."""
    if not isinstance(stmt, ForLoop):
        return 1
    inner = sum(materialized_statements(s) for s in stmt.body)
    if stmt.unroll == 1:
        return inner + 1  # the loop header itself
    # main loop body (u copies) + remainder loop body + two headers
    return stmt.unroll * inner + inner + 2
