"""Composite transformation (Orio's ``Composite``): tile, then register-
tile, then unroll-and-jam, driven by one configuration of the tuning
parameters."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import TransformError
from repro.orio.annotations import TransformSpec
from repro.orio.ast import ForLoop
from repro.orio.transforms.regtile import RegisterTile
from repro.orio.transforms.tile import tile_nest
from repro.orio.transforms.unroll import UnrollJam

__all__ = ["TransformPlan", "TransformedVariant", "compose"]


@dataclass(frozen=True)
class TransformPlan:
    """Concrete transformation factors for one configuration."""

    tile: Mapping[str, int] = field(default_factory=dict)  # loop var -> T
    regtile: Mapping[str, int] = field(default_factory=dict)  # loop var -> RT
    unroll: Mapping[str, int] = field(default_factory=dict)  # loop var -> U
    scalars: Mapping[str, object] = field(default_factory=dict)  # option -> value

    @classmethod
    def from_spec(cls, spec: TransformSpec, config: Mapping[str, object]) -> "TransformPlan":
        """Bind a kernel's :class:`TransformSpec` to configuration values.

        Parameters referenced by the spec but absent from ``config``
        are an error; extra configuration keys are ignored (they may
        drive other nests of the same kernel or non-loop options).
        """

        def bind(pairs) -> dict[str, int]:
            out = {}
            for var, param in pairs:
                if param not in config:
                    raise TransformError(f"configuration missing parameter {param!r}")
                out[var] = int(config[param])  # type: ignore[call-overload]
            return out

        scalars = {}
        for option, param in spec.scalars.items():
            if param not in config:
                raise TransformError(f"configuration missing parameter {param!r}")
            scalars[option] = config[param]
        return cls(
            tile=bind(spec.tile),
            regtile=bind(spec.regtile),
            unroll=bind(spec.unrolljam),
            scalars=scalars,
        )


@dataclass(frozen=True)
class TransformedVariant:
    """A transformed nest plus the roles of its loops.

    ``roles`` maps each loop variable in the transformed nest to a
    ``(role, original_var)`` pair with role in ``{"tile", "strip",
    "point"}``.
    """

    nest: ForLoop
    plan: TransformPlan
    roles: Mapping[str, tuple[str, str]]


def compose(nest: ForLoop, plan: TransformPlan) -> TransformedVariant:
    """Apply cache tiling, register tiling and unroll-and-jam in order.

    The unroll factor for a register-tiled variable targets its strip
    loop (jamming whole register blocks); otherwise it targets the
    point loop directly.
    """
    original_vars = set(plan.tile) | set(plan.regtile) | set(plan.unroll)
    roles: dict[str, tuple[str, str]] = {}

    # 1. Cache tiling (may introduce <var>t loops).
    before = {v for v in _loop_vars(nest)}
    result = tile_nest(nest, dict(plan.tile))
    for v in _loop_vars(result):
        if v in before:
            roles[v] = ("point", v)
        else:
            roles[v] = ("tile", _strip_suffix(v, "t", before))

    # 2. Register tiling (may introduce <var>r strip loops).
    unroll_target = {v: v for v in original_vars}
    for var, rt in plan.regtile.items():
        transform = RegisterTile(var, rt)
        result = transform.apply(result)
        if transform.strip_var is not None:
            roles[transform.strip_var] = ("strip", var)
            unroll_target[var] = transform.strip_var

    # 3. Unroll-and-jam.
    for var, u in plan.unroll.items():
        if u > 1:
            result = UnrollJam(unroll_target[var], u).apply(result)

    return TransformedVariant(nest=result, plan=plan, roles=roles)


def _loop_vars(nest: ForLoop) -> list[str]:
    out: list[str] = []
    stack: list = [nest]
    while stack:
        s = stack.pop()
        if isinstance(s, ForLoop):
            out.append(s.var)
            stack.extend(s.body)
    return out


def _strip_suffix(name: str, suffix: str, known: set[str]) -> str:
    """Recover the original variable from a generated tile-loop name."""
    base = name.rstrip("0123456789")
    if base.endswith(suffix):
        candidate = base[: -len(suffix)]
        if candidate in known:
            return candidate
    return name
