"""Loop distribution (fission) of multi-statement bodies.

Splits ``for (i) { S1; S2; }`` into ``for (i) S1; for (i) S2;`` —
the enabling transformation for tiling/vectorizing fused kernels like
BICG or GEMVER per-statement.

Legality (conservative): statement order is preserved, so a
distribution is safe when every cross-statement dependence through a
shared array is *same-cell* — both statements touch the array with
identical index expressions, meaning iteration ``i`` of the later
statement consumes exactly what iteration ``i`` of the earlier one
produced (already produced when the earlier loop ran to completion).
Any shared array with at least one write and differing index
expressions is rejected: the later statement might read a cell the
earlier loop has already overwritten for a *different* iteration
(the classic fission-breaking anti-dependence).
"""

from __future__ import annotations

from dataclasses import replace
from itertools import combinations

from repro.errors import TransformError
from repro.orio.ast import ArrayRef, Assign, BinOp, Expr, ForLoop, MaxExpr, MinExpr
from repro.orio.transforms.base import Transform, find_loop, replace_loop

__all__ = ["LoopDistribution", "distribution_legal"]


def _accesses(stmt: Assign) -> list[tuple[ArrayRef, bool]]:
    out: list[tuple[ArrayRef, bool]] = []
    if isinstance(stmt.target, ArrayRef):
        out.append((stmt.target, True))

    def walk(e: Expr) -> None:
        if isinstance(e, ArrayRef):
            out.append((e, False))
        elif isinstance(e, (BinOp, MinExpr, MaxExpr)):
            walk(e.left)
            walk(e.right)

    walk(stmt.value)
    return out


def distribution_legal(loop: ForLoop) -> bool:
    """Whether the loop's statements can be distributed in order."""
    stmts = loop.body
    if any(not isinstance(s, Assign) for s in stmts):
        return False  # nested control flow: out of scope
    for s_a, s_b in combinations(stmts, 2):
        acc_a = _accesses(s_a)  # type: ignore[arg-type]
        acc_b = _accesses(s_b)  # type: ignore[arg-type]
        for ref_a, write_a in acc_a:
            for ref_b, write_b in acc_b:
                if ref_a.name != ref_b.name or not (write_a or write_b):
                    continue
                if ref_a.indices != ref_b.indices:
                    return False  # differing-cell dependence: unsafe
    return True


class LoopDistribution(Transform):
    """Distribute the statements of the loop over ``var`` into separate
    loops, preserving statement order."""

    def __init__(self, var: str, force: bool = False) -> None:
        self.var = var
        self.force = force

    def apply(self, nest: ForLoop) -> ForLoop:
        loop = find_loop(nest, self.var)
        if len(loop.body) < 2:
            return nest
        if loop.unroll != 1:
            raise TransformError(
                f"distribute {self.var!r} before applying unroll factors"
            )
        if not self.force and not distribution_legal(loop):
            raise TransformError(
                f"distributing loop {self.var!r} would break a cross-statement dependence"
            )
        pieces = [replace(loop, body=(stmt,)) for stmt in loop.body]
        if loop is nest:
            raise TransformError(
                "cannot distribute the outermost loop in place; wrap it in a nest"
            )
        return replace_loop(nest, self.var, pieces)

    def __repr__(self) -> str:
        return f"LoopDistribution({self.var!r})"
