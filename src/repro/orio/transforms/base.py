"""Transform infrastructure: the pass interface and nest surgery helpers."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import replace

from repro.errors import TransformError
from repro.orio.ast import ForLoop, Stmt

__all__ = ["Transform", "find_loop", "replace_loop", "fresh_name", "collect_names"]


class Transform(ABC):
    """A loop transformation: a pure function from nest to nest."""

    @abstractmethod
    def apply(self, nest: ForLoop) -> ForLoop:
        """Return the transformed nest; the input is never mutated."""

    def __call__(self, nest: ForLoop) -> ForLoop:
        return self.apply(nest)


def find_loop(nest: ForLoop, var: str) -> ForLoop:
    """The (unique) loop with induction variable ``var`` in the nest."""
    found: list[ForLoop] = []

    def walk(stmt: Stmt) -> None:
        if isinstance(stmt, ForLoop):
            if stmt.var == var:
                found.append(stmt)
            for s in stmt.body:
                walk(s)

    walk(nest)
    if not found:
        raise TransformError(f"no loop over {var!r} in the nest")
    if len(found) > 1:
        raise TransformError(f"loop variable {var!r} is not unique in the nest")
    return found[0]


def replace_loop(nest: ForLoop, var: str, replacement: Stmt | list[Stmt]) -> ForLoop:
    """Replace the loop over ``var`` with new statement(s), rebuilding the
    spine of the nest above it."""
    new_stmts = replacement if isinstance(replacement, list) else [replacement]
    hits = 0

    def walk(stmt: Stmt) -> list[Stmt]:
        nonlocal hits
        if isinstance(stmt, ForLoop):
            if stmt.var == var:
                hits += 1
                return list(new_stmts)
            body: list[Stmt] = []
            for s in stmt.body:
                body.extend(walk(s))
            return [stmt.with_body(body)]
        return [stmt]

    if isinstance(nest, ForLoop) and nest.var == var:
        if len(new_stmts) != 1 or not isinstance(new_stmts[0], ForLoop):
            raise TransformError("replacing the outermost loop requires a single loop")
        return new_stmts[0]
    result = walk(nest)
    if hits == 0:
        raise TransformError(f"no loop over {var!r} in the nest")
    if hits > 1:
        raise TransformError(f"loop variable {var!r} is not unique in the nest")
    assert len(result) == 1 and isinstance(result[0], ForLoop)
    return result[0]


def collect_names(nest: ForLoop) -> set[str]:
    """All loop-variable names appearing in the nest."""
    names: set[str] = set()

    def walk(stmt: Stmt) -> None:
        if isinstance(stmt, ForLoop):
            names.add(stmt.var)
            for s in stmt.body:
                walk(s)

    walk(nest)
    return names


def fresh_name(base: str, taken: set[str]) -> str:
    """A loop-variable name derived from ``base`` that avoids ``taken``."""
    candidate = base
    suffix = 2
    while candidate in taken:
        candidate = f"{base}{suffix}"
        suffix += 1
    taken.add(candidate)
    return candidate
