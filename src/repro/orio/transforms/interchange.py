"""Loop interchange (permutation of a perfect nest).

Orio's Composite also supports ``permut``; this pass reorders the loops
of a perfect nest.  Interchange is only *legal* when it does not
reverse any dependence, so the pass includes a conservative dependence
test for the affine, constant-offset accesses our kernels use:

* Two references to the same array conflict when one of them writes.
* For constant-distance dependences (e.g. ``A[i][j]`` vs
  ``A[i-1][j+1]``), the direction vector per loop is the sign of the
  distance; a permutation is legal iff every dependence's permuted
  direction vector stays lexicographically non-negative.
* Variable-distance dependences (LU's ``A[i][k]`` vs ``A[i][j]``,
  where the distance depends on loop values) make every loop-pair
  swap that spans them illegal — the conservative answer.

The interpreter-based tests exercise both the legality verdicts and
the semantics of accepted permutations.
"""

from __future__ import annotations

from itertools import combinations

from repro.errors import TransformError
from repro.orio.ast import (
    ArrayRef,
    Assign,
    ForLoop,
    affine_coefficients,
    loop_chain,
    walk_exprs,
)
from repro.orio.transforms.base import Transform

__all__ = ["Interchange", "interchange_legal", "dependence_directions"]


def _references(body) -> list[tuple[ArrayRef, bool]]:
    refs: list[tuple[ArrayRef, bool]] = []
    for stmt in body:
        if not isinstance(stmt, Assign):
            raise TransformError("interchange requires straight-line loop bodies")
        if isinstance(stmt.target, ArrayRef):
            refs.append((stmt.target, True))

        def walk(e) -> None:
            if isinstance(e, ArrayRef):
                refs.append((e, False))
            elif hasattr(e, "left"):
                walk(e.left)
                walk(e.right)

        walk(stmt.value)
    return refs


def dependence_directions(nest: ForLoop) -> list[tuple[int, ...]] | None:
    """Direction vectors of all (potential) dependences in the nest.

    Each vector has one entry per loop (outermost first): -1, 0 or +1
    (the sign of the constant dependence distance along that loop).
    Returns ``None`` when a dependence with *variable* distance exists
    — the conservative "don't touch anything" verdict.
    """
    chain = loop_chain(nest)
    loop_vars = [l.var for l in chain]
    body = chain[-1].body
    refs = _references(body)
    vectors: list[tuple[int, ...]] = []
    for (ref_a, write_a), (ref_b, write_b) in combinations(refs, 2):
        if ref_a.name != ref_b.name or not (write_a or write_b):
            continue
        if len(ref_a.indices) != len(ref_b.indices):
            return None  # shape confusion: be conservative
        # Compute per-dimension distance; must be constant.
        distance: dict[str, int] = {v: 0 for v in loop_vars}
        constant = True
        aliases = True
        for ia, ib in zip(ref_a.indices, ref_b.indices):
            ca, ka = affine_coefficients(ia, loop_vars)
            cb, kb = affine_coefficients(ib, loop_vars)
            if ca != cb:
                constant = False
                break
            # Same linear part: the constant offset is delinearized over
            # the dimension's variables greedily (largest coefficient
            # first, rounding to the nearest multiple — the canonical
            # decomposition for in-bounds flattened indices).
            offset = kb - ka
            if offset == 0:
                continue
            remainder = offset
            for var, coef in sorted(ca.items(), key=lambda vc: -abs(vc[1])):
                step = round(remainder / coef)
                distance[var] += step
                remainder -= step * coef
            if remainder != 0:
                aliases = False  # offsets never line up: no dependence
                break
        if not constant:
            return None
        if not aliases:
            continue
        vector = list(
            (0 if distance[v] == 0 else (1 if distance[v] > 0 else -1))
            for v in loop_vars
        )
        if any(vector):
            # Canonicalize: dependences flow forward in execution order,
            # so the leading nonzero entry must be positive.
            for entry in vector:
                if entry < 0:
                    vector = [-e for e in vector]
                    break
                if entry > 0:
                    break
            vectors.append(tuple(vector))
    return vectors


def interchange_legal(nest: ForLoop, order: list[str]) -> bool:
    """Whether permuting the nest's loops into ``order`` is legal."""
    chain = loop_chain(nest)
    loop_vars = [l.var for l in chain]
    if sorted(order) != sorted(loop_vars):
        raise TransformError(
            f"order {order} is not a permutation of the nest's loops {loop_vars}"
        )
    vectors = dependence_directions(nest)
    if vectors is None:
        return order == loop_vars  # only the identity is safely legal
    perm = [loop_vars.index(v) for v in order]
    for vector in vectors:
        permuted = [vector[i] for i in perm]
        # Lexicographic sign must remain non-negative.
        for entry in permuted:
            if entry > 0:
                break
            if entry < 0:
                return False
    return True


class Interchange(Transform):
    """Permute a perfect nest's loops into the given variable order."""

    def __init__(self, order: list[str], force: bool = False) -> None:
        self.order = list(order)
        self.force = force

    def apply(self, nest: ForLoop) -> ForLoop:
        chain = loop_chain(nest)
        loop_vars = [l.var for l in chain]
        if self.order == loop_vars:
            return nest
        if not self.force and not interchange_legal(nest, self.order):
            raise TransformError(
                f"interchange to {self.order} would violate a dependence"
            )
        # Interchange also requires rectangular (independent) bounds:
        # a loop may not use another chain variable in its bounds.
        by_var = {l.var: l for l in chain}
        chain_set = set(loop_vars)
        for loop in chain:
            free = set()
            for expr in (loop.lower, loop.upper):
                stack = [expr]
                while stack:
                    e = stack.pop()
                    if hasattr(e, "name") and not hasattr(e, "indices"):
                        free.add(e.name)
                    if hasattr(e, "left"):
                        stack.extend((e.left, e.right))
            if free & chain_set and not self.force:
                raise TransformError(
                    f"loop {loop.var!r} has bounds depending on {sorted(free & chain_set)}; "
                    "cannot safely interchange a non-rectangular nest"
                )
        body = chain[-1].body
        result: tuple = body
        for var in reversed(self.order):
            loop = by_var[var]
            result = (loop.with_body(result),)
        out = result[0]
        assert isinstance(out, ForLoop)
        return out

    def __repr__(self) -> str:
        return f"Interchange({self.order!r})"
