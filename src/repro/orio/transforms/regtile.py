"""Register tiling (Table I, row 3).

Strip-mines a loop by a small factor ``RT`` and *fully unrolls* the
resulting point loop, so the RT-wide block of iterations is live in
registers simultaneously (cache-to-register blocking)::

    for (ir = lo; ir < hi; ir += RT)          // strip loop
      for (i = ir; i < min(ir + RT, hi); i++)  // fully unrolled
        ...

The strip loop keeps a derived name (``ir``); :func:`~repro.orio
.transforms.pipeline.compose` directs any unroll-and-jam for the same
original variable at the strip loop, mirroring Orio's Composite
semantics.
"""

from __future__ import annotations

from dataclasses import replace

from repro.errors import TransformError
from repro.orio.ast import BinOp, ForLoop, IntLit, MinExpr, Var, fold
from repro.orio.transforms.base import (
    Transform,
    collect_names,
    find_loop,
    fresh_name,
    replace_loop,
)

__all__ = ["RegisterTile"]


class RegisterTile(Transform):
    """Register-tile the loop over ``var`` by ``factor``.

    After :meth:`apply`, :attr:`strip_var` holds the name of the new
    strip loop (or ``None`` when the transform was a no-op).
    """

    def __init__(self, var: str, factor: int) -> None:
        if factor < 1:
            raise TransformError(f"register-tile factor must be >= 1, got {factor}")
        self.var = var
        self.factor = factor
        self.strip_var: str | None = None

    def apply(self, nest: ForLoop) -> ForLoop:
        if self.factor == 1:
            self.strip_var = None
            return nest
        loop = find_loop(nest, self.var)
        if loop.unroll != 1:
            raise TransformError(
                f"cannot register-tile {self.var!r}: loop already unrolled"
            )
        taken = collect_names(nest)
        strip = fresh_name(f"{self.var}r", taken)
        span = self.factor * loop.step
        point = ForLoop(
            var=self.var,
            lower=Var(strip),
            upper=MinExpr(fold(BinOp("+", Var(strip), IntLit(span))), loop.upper),
            step=loop.step,
            body=loop.body,
            unroll=self.factor,  # fully unrolled register block
        )
        strip_loop = ForLoop(
            var=strip,
            lower=loop.lower,
            upper=loop.upper,
            step=span,
            body=(point,),
            pragmas=loop.pragmas,
        )
        self.strip_var = strip
        return replace_loop(nest, self.var, strip_loop)

    def __repr__(self) -> str:
        return f"RegisterTile({self.var!r}, {self.factor})"
