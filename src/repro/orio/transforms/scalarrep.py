"""Scalar replacement (register promotion of reduction targets).

The SPAPT problems expose an ``SCR`` switch; its effect is keeping a
loop-invariant read-modify-write array reference (MM's ``C[i*N+j]``
inside the k loop, ATAX's ``t[i]`` inside the j loop) in a scalar for
the duration of the innermost loop::

    for (k = ...)                      double s0 = C[i*N+j];
      C[i*N+j] = C[i*N+j] + ...   =>   for (k = ...)
                                         s0 = s0 + ...;
                                       C[i*N+j] = s0;

The cost model accounts for SCR analytically; this pass implements the
*actual program transformation* for the code-generation path, verified
semantics-preserving by the interpreter tests.
"""

from __future__ import annotations

from dataclasses import replace

from repro.errors import TransformError
from repro.orio.ast import (
    ArrayRef,
    Assign,
    BinOp,
    Expr,
    ForLoop,
    MaxExpr,
    MinExpr,
    Stmt,
    Var,
    loop_chain,
)
from repro.orio.transforms.base import Transform, collect_names

__all__ = ["ScalarReplacement", "replaceable_targets"]


def _uses_var(expr: Expr, var: str) -> bool:
    if isinstance(expr, Var):
        return expr.name == var
    if isinstance(expr, (BinOp, MinExpr, MaxExpr)):
        return _uses_var(expr.left, var) or _uses_var(expr.right, var)
    if isinstance(expr, ArrayRef):
        return any(_uses_var(i, var) for i in expr.indices)
    return False


def _replace_ref(expr: Expr, ref: ArrayRef, scalar: Var) -> Expr:
    if expr == ref:
        return scalar
    if isinstance(expr, BinOp):
        return BinOp(expr.op, _replace_ref(expr.left, ref, scalar),
                     _replace_ref(expr.right, ref, scalar))
    if isinstance(expr, MinExpr):
        return MinExpr(_replace_ref(expr.left, ref, scalar),
                       _replace_ref(expr.right, ref, scalar))
    if isinstance(expr, MaxExpr):
        return MaxExpr(_replace_ref(expr.left, ref, scalar),
                       _replace_ref(expr.right, ref, scalar))
    return expr


def replaceable_targets(loop: ForLoop) -> list[ArrayRef]:
    """Array references promotable to scalars across ``loop``.

    A target qualifies when (a) it is the target of an assignment in
    the loop body, (b) its index does not involve the loop variable
    (same location every iteration), and (c) no *other* statement in
    the body writes to the same array (which could alias).
    """
    targets = []
    written_arrays: dict[str, int] = {}
    for stmt in loop.body:
        if isinstance(stmt, Assign) and isinstance(stmt.target, ArrayRef):
            written_arrays[stmt.target.name] = written_arrays.get(stmt.target.name, 0) + 1
    for stmt in loop.body:
        if not isinstance(stmt, Assign) or not isinstance(stmt.target, ArrayRef):
            continue
        ref = stmt.target
        if any(_uses_var(i, loop.var) for i in ref.indices):
            continue
        if written_arrays[ref.name] > 1:
            continue  # conservative: another write to the array may alias
        targets.append(ref)
    return targets


class ScalarReplacement(Transform):
    """Promote innermost-loop-invariant reduction targets to scalars."""

    def __init__(self, prefix: str = "scr") -> None:
        self.prefix = prefix
        self.n_replaced = 0

    def apply(self, nest: ForLoop) -> ForLoop:
        chain = loop_chain(nest)
        innermost = chain[-1]
        targets = replaceable_targets(innermost)
        self.n_replaced = len(targets)
        if not targets:
            return nest
        taken = collect_names(nest)
        scalars: dict[ArrayRef, Var] = {}
        for i, ref in enumerate(targets):
            name = f"{self.prefix}{i}"
            while name in taken:
                name += "_"
            taken.add(name)
            scalars[ref] = Var(name)

        new_body: list[Stmt] = []
        for stmt in innermost.body:
            if isinstance(stmt, Assign) and isinstance(stmt.target, ArrayRef) and stmt.target in scalars:
                scalar = scalars[stmt.target]
                new_body.append(
                    Assign(scalar, _replace_ref(stmt.value, stmt.target, scalar), stmt.op)
                )
            elif isinstance(stmt, Assign):
                value = stmt.value
                for ref, scalar in scalars.items():
                    value = _replace_ref(value, ref, scalar)
                new_body.append(Assign(stmt.target, value, stmt.op))
            else:  # pragma: no cover - innermost bodies are straight-line
                raise TransformError("scalar replacement requires straight-line bodies")

        pre = [Assign(scalar, ref) for ref, scalar in scalars.items()]
        post = [Assign(ref, scalar) for ref, scalar in scalars.items()]
        new_innermost = replace(innermost, body=tuple(new_body))
        replacement: list[Stmt] = pre + [new_innermost] + post

        # Rebuild the spine: the parent of the innermost loop gets the
        # pre/loop/post sequence in place of the single loop.
        if len(chain) == 1:
            raise TransformError(
                "cannot scalar-replace the outermost loop in place; wrap it in a nest"
            )
        result: list[Stmt] = replacement
        for parent in reversed(chain[:-1]):
            result = [parent.with_body(result)]
        out = result[0]
        assert isinstance(out, ForLoop)
        return out

    def __repr__(self) -> str:
        return f"ScalarReplacement(prefix={self.prefix!r})"
