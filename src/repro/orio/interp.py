"""A reference interpreter for the loop-nest IR.

Used by the test suite to prove that the source-level transformations
are *semantics-preserving*: the transformed nest, executed on small
arrays, must produce bit-identical results to the original.  Runtime
performance does not matter here; correctness does.
"""

from __future__ import annotations

from typing import Callable, Mapping, MutableMapping

import numpy as np

from repro.errors import EvaluationError
from repro.orio.ast import (
    ArrayRef,
    Assign,
    BinOp,
    Expr,
    ForLoop,
    IntLit,
    MaxExpr,
    MinExpr,
    Stmt,
    Var,
)

__all__ = ["run_nest", "eval_expr"]


AccessHook = Callable[[str, int, bool], None]
"""Callback for memory accesses: (array name, flat element index, is_write)."""


def eval_expr(
    expr: Expr,
    scalars: Mapping[str, float],
    arrays: Mapping[str, np.ndarray],
    on_access: AccessHook | None = None,
):
    """Evaluate an expression in the given environment.

    Integer arithmetic follows C semantics for the index computations
    (``/`` truncates); floating-point values flow through unchanged.
    """
    if isinstance(expr, IntLit):
        return expr.value
    if isinstance(expr, Var):
        try:
            return scalars[expr.name]
        except KeyError:
            raise EvaluationError(f"unbound scalar {expr.name!r}") from None
    if isinstance(expr, BinOp):
        a = eval_expr(expr.left, scalars, arrays, on_access)
        b = eval_expr(expr.right, scalars, arrays, on_access)
        if expr.op == "+":
            return a + b
        if expr.op == "-":
            return a - b
        if expr.op == "*":
            return a * b
        if expr.op == "/":
            if isinstance(a, (int, np.integer)) and isinstance(b, (int, np.integer)):
                if b == 0:
                    raise EvaluationError("integer division by zero")
                q = abs(a) // abs(b)  # C truncates toward zero
                return q if (a >= 0) == (b >= 0) else -q
            return a / b
        if expr.op == "%":
            if b == 0:
                raise EvaluationError("modulo by zero")
            # np.fmod truncates toward zero, matching C's % for integers.
            return int(np.fmod(a, b))
        raise EvaluationError(f"unknown operator {expr.op!r}")
    if isinstance(expr, MinExpr):
        return min(eval_expr(expr.left, scalars, arrays, on_access),
                   eval_expr(expr.right, scalars, arrays, on_access))
    if isinstance(expr, MaxExpr):
        return max(eval_expr(expr.left, scalars, arrays, on_access),
                   eval_expr(expr.right, scalars, arrays, on_access))
    if isinstance(expr, ArrayRef):
        arr = _array(arrays, expr.name)
        idx = tuple(int(eval_expr(i, scalars, arrays, on_access)) for i in expr.indices)
        try:
            value = arr[idx if len(idx) > 1 else idx[0]]
        except IndexError:
            raise EvaluationError(f"index {idx} out of bounds for array {expr.name!r}") from None
        if on_access is not None:
            flat = int(np.ravel_multi_index(idx, arr.shape)) if len(idx) > 1 else idx[0]
            on_access(expr.name, flat, False)
        return value
    raise EvaluationError(f"cannot evaluate {expr!r}")


def _array(arrays: Mapping[str, np.ndarray], name: str) -> np.ndarray:
    try:
        return arrays[name]
    except KeyError:
        raise EvaluationError(f"unbound array {name!r}") from None


def _exec(
    stmt: Stmt,
    scalars: MutableMapping[str, float],
    arrays: Mapping[str, np.ndarray],
    on_access: AccessHook | None = None,
) -> None:
    if isinstance(stmt, Assign):
        value = eval_expr(stmt.value, scalars, arrays, on_access)
        target = stmt.target
        if isinstance(target, Var):
            if stmt.op == "+=":
                scalars[target.name] = scalars.get(target.name, 0) + value
            else:
                scalars[target.name] = value
            return
        arr = _array(arrays, target.name)
        idx = tuple(int(eval_expr(i, scalars, arrays, on_access)) for i in target.indices)
        key = idx if len(idx) > 1 else idx[0]
        try:
            if stmt.op == "+=":
                arr[key] += value
            else:
                arr[key] = value
        except IndexError:
            raise EvaluationError(f"index {idx} out of bounds for array {target.name!r}") from None
        if on_access is not None:
            flat = int(np.ravel_multi_index(idx, arr.shape)) if len(idx) > 1 else key
            on_access(target.name, flat, True)
        return
    if isinstance(stmt, ForLoop):
        # The unroll attribute does not change semantics; execute plainly.
        lo = int(eval_expr(stmt.lower, scalars, arrays))
        hi = int(eval_expr(stmt.upper, scalars, arrays))
        saved = scalars.get(stmt.var, None)
        v = lo
        while v < hi:
            scalars[stmt.var] = v
            for s in stmt.body:
                _exec(s, scalars, arrays, on_access)
            # Re-read in case an inner statement (never in our kernels)
            # modified the induction variable; C forbids it, so do we.
            if scalars[stmt.var] != v:
                raise EvaluationError(f"loop variable {stmt.var!r} modified in body")
            v += stmt.step
        if saved is None:
            scalars.pop(stmt.var, None)
        else:
            scalars[stmt.var] = saved
        return
    raise EvaluationError(f"cannot execute {stmt!r}")


def run_nest(
    stmt: Stmt | list[Stmt],
    arrays: Mapping[str, np.ndarray],
    scalars: Mapping[str, float] | None = None,
    on_access: AccessHook | None = None,
) -> dict[str, float]:
    """Execute statements, mutating ``arrays`` in place.

    Returns the final scalar environment (useful for scalar
    accumulators).  ``on_access`` receives every array element touch
    (name, flat index, is_write) — the hook behind the trace-driven
    cache simulator that validates the analytic traffic model.
    """
    env: dict[str, float] = dict(scalars or {})
    stmts = stmt if isinstance(stmt, list) else [stmt]
    for s in stmts:
        _exec(s, env, arrays, on_access)
    return env
