"""Static analysis of transformed loop nests.

Produces the machine-independent quantities the performance model
needs:

* executed flops / loads / stores;
* loop-header executions (branch + induction overhead);
* per-reference, per-loop-level *footprints* — the number of distinct
  elements an array reference touches during one complete execution of
  the loops at or inside a level.  The cost model combines these with a
  machine's cache capacities to locate, per cache level, the loop level
  at which the working set first fits, and from that the memory traffic
  (the classical analytical cache model for affine loop nests);
* register demand of the unrolled innermost body and the total body
  replication (ILP exposure);
* stride classification of each reference with respect to the innermost
  loop (vectorizability, spatial locality);
* the generated-statement count (compile-time model).

Trip counts and iteration totals for triangular loops (LU) are
estimated by unbiased deterministic path sampling (:func:`_level_stats`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import TransformError
from repro.orio.ast import (
    ArrayRef,
    Assign,
    BinOp,
    Expr,
    ForLoop,
    IntLit,
    MaxExpr,
    MinExpr,
    Stmt,
    Var,
    affine_coefficients,
    fold,
    loop_chain,
)
from repro.orio.transforms.pipeline import TransformedVariant
from repro.orio.transforms.unroll import materialized_statements
from repro.utils.rng import hash_uniform

__all__ = ["LevelInfo", "RefInfo", "VariantMetrics", "analyze_nest", "analyze_variant"]

ELEM_BYTES = 8  # all kernels use double precision


@dataclass(frozen=True)
class LevelInfo:
    """One loop level of the transformed nest, outermost first."""

    var: str
    orig_var: str  # original loop variable this level controls
    role: str  # "tile" | "strip" | "point"
    trip: float  # average iterations per entry
    unroll: int
    step: int


@dataclass(frozen=True)
class RefInfo:
    """One array reference with per-level locality information.

    ``elements[l]`` is the number of distinct elements touched during a
    complete execution of loop levels ``l..innermost``;
    ``unit_extent[l]`` the extent of the unit-stride direction at that
    level (1 when the reference has no unit-stride direction).
    """

    array: str
    is_store: bool
    vars: tuple[str, ...]  # original loop vars appearing in the index
    elements: tuple[float, ...]  # len == n_levels + 1 (level n == single iteration)
    unit_extent: tuple[float, ...]
    has_unit_stride: bool
    innermost_invariant: bool

    def lines(self, level: int, line_bytes: int, fractional: bool = False) -> float:
        """Distinct cache lines touched at ``level``.

        With ``fractional=True``, runs shorter than a line may count as
        a fraction of a line — correct when consecutive *entries* into
        this level continue the same contiguous run (the enclosing loop
        advances the unit-stride direction), so the line is shared
        across entries.  Without it, each short run pays a whole line.
        """
        elems = self.elements[level]
        if elems <= 0:
            return 0.0
        per_line = max(1.0, line_bytes / ELEM_BYTES)
        if not self.has_unit_stride:
            return elems  # every element on its own line (worst case)
        run = max(1.0, self.unit_extent[level])
        n_runs = elems / run
        if run >= per_line:
            lines_per_run = run / per_line
        elif fractional:
            lines_per_run = run / per_line  # shared with neighbouring entries
        else:
            lines_per_run = 1.0  # a short, isolated run still costs a line
        return n_runs * lines_per_run

    def parent_advances_unit(self, level: int) -> bool:
        """Whether the loop directly outside ``level`` extends this
        reference's unit-stride direction (enabling cross-entry line
        sharing)."""
        if level == 0 or not self.has_unit_stride:
            return False
        return self.unit_extent[level - 1] > self.unit_extent[level]

    def bytes_at(self, level: int) -> float:
        return self.elements[level] * ELEM_BYTES


@dataclass(frozen=True)
class VariantMetrics:
    """Everything the cost model needs to price one code variant."""

    levels: tuple[LevelInfo, ...]
    refs: tuple[RefInfo, ...]
    entry_counts: tuple[float, ...]  # entries into each level; [-1] = body executions
    flops: float
    loads: float
    stores: float
    body_executions: float
    header_executions: float
    statements_generated: int
    replication: int  # total innermost body replication (unroll product)
    register_demand: float
    stride1_fraction: float
    invariant_fraction: float

    @property
    def n_levels(self) -> int:
        return len(self.levels)

    def executions_before(self, level: int) -> float:
        """Number of entries into ``level`` (unbiased path estimate)."""
        return self.entry_counts[level]

    def working_set_bytes(self, level: int) -> float:
        """Total bytes live during one execution of levels ``level..``.

        References to the same array over the same index variables (the
        load and store of a read-modify-write target) occupy the same
        cache lines, so they are counted once.
        """
        seen = set()
        total = 0.0
        for r in self.refs:
            key = (r.array, r.vars)
            if key in seen:
                continue
            seen.add(key)
            total += r.bytes_at(level)
        return total

    def fit_level(self, capacity_bytes: float) -> int:
        """Outermost level whose working set fits in ``capacity_bytes``.

        Returns ``n_levels`` when even a single iteration's data does
        not fit (capacity smaller than one body's refs).
        """
        for level in range(self.n_levels + 1):
            if self.working_set_bytes(level) <= capacity_bytes:
                return level
        return self.n_levels  # pragma: no cover - loop always returns

    def traffic_bytes(self, capacity_bytes: float, line_bytes: int) -> float:
        """Bytes fetched *into* a cache of the given capacity.

        Classical model: find the outermost loop level at which the
        working set fits; everything inside that level is a hit, and
        each entry into the level refetches the footprint.
        """
        level = self.fit_level(capacity_bytes)
        entries = self.executions_before(level)
        per_entry = sum(
            r.lines(level, line_bytes, fractional=r.parent_advances_unit(level))
            * line_bytes
            for r in self.refs
        )
        return entries * per_entry


# ----------------------------------------------------------------------
# Analysis driver
# ----------------------------------------------------------------------
def _compute_ops(expr: Expr) -> int:
    """Arithmetic ops excluding address (index) arithmetic."""
    if isinstance(expr, BinOp):
        return 1 + _compute_ops(expr.left) + _compute_ops(expr.right)
    if isinstance(expr, (MinExpr, MaxExpr)):
        return 1 + _compute_ops(expr.left) + _compute_ops(expr.right)
    return 0  # ArrayRef indices and leaves contribute no compute flops


def _collect_refs(stmts: Sequence[Stmt]) -> list[tuple[ArrayRef, bool]]:
    """(reference, is_store) pairs from the innermost body."""
    refs: list[tuple[ArrayRef, bool]] = []
    for stmt in stmts:
        if not isinstance(stmt, Assign):
            raise TransformError("innermost body must be straight-line assignments")
        if isinstance(stmt.target, ArrayRef):
            refs.append((stmt.target, True))
            if stmt.op == "+=":
                refs.append((stmt.target, False))  # read-modify-write loads too

        def walk(e: Expr) -> None:
            if isinstance(e, ArrayRef):
                refs.append((e, False))
            elif isinstance(e, (BinOp, MinExpr, MaxExpr)):
                walk(e.left)
                walk(e.right)

        walk(stmt.value)
    return refs


_TRIP_SAMPLES = 64


def _level_stats(chain: list[ForLoop]) -> tuple[list[float], list[float]]:
    """(conditional trips per level, entry counts per boundary).

    Bounds may reference outer loop variables (triangular nests, tiled
    point loops), so statistics are estimated by descending the nest
    along ``_TRIP_SAMPLES`` deterministic sample paths: at each level
    the bounds are folded with the sampled outer bindings, the trip
    count recorded, and one iteration sampled uniformly to bind the
    level's variable.

    ``trips[l]`` is the mean trip count of level ``l`` *given that the
    level is reached* (used for footprint extents).  ``entries[l]`` is
    an unbiased estimate of the total number of entries into level
    ``l`` — the per-path product of the trip counts of levels above it
    (the sampling probability of a path is the reciprocal of exactly
    that product, so the sample mean telescopes to the true iteration
    count, triangular shapes included).  ``entries[n]`` is the total
    innermost-body execution count.
    """
    n = len(chain)
    trip_sum = [0.0] * n
    reach_count = [0] * n
    entry_sum = [0.0] * (n + 1)
    for s in range(_TRIP_SAMPLES):
        bindings: dict[str, int] = {}
        prod = 1.0
        alive = True
        for idx, loop in enumerate(chain):
            if not alive:
                break
            entry_sum[idx] += prod
            lo = fold(loop.lower, bindings)
            hi = fold(loop.upper, bindings)
            if not isinstance(lo, IntLit) or not isinstance(hi, IntLit):
                raise TransformError(
                    f"loop {loop.var}: cannot resolve bounds {loop.lower}..{loop.upper}"
                )
            span = hi.value - lo.value
            trip = -(-span // loop.step) if span > 0 else 0
            trip_sum[idx] += trip
            reach_count[idx] += 1
            if trip == 0:
                alive = False
                break
            prod *= trip
            u = hash_uniform("trip-sample", idx, loop.var, s)
            bindings[loop.var] = lo.value + int(u * trip) * loop.step
        if alive:
            entry_sum[n] += prod
    trips = [
        max(trip_sum[i] / reach_count[i], 1e-3) if reach_count[i] else 1e-3
        for i in range(n)
    ]
    entries = [max(e / _TRIP_SAMPLES, 1e-6) for e in entry_sum]
    return trips, entries


def analyze_variant(variant: TransformedVariant) -> VariantMetrics:
    """Analyze a composed variant, using its role map for extents."""
    return analyze_nest(variant.nest, roles=variant.roles)


def analyze_nest(
    nest: ForLoop,
    roles: Mapping[str, tuple[str, str]] | None = None,
) -> VariantMetrics:
    """Analyze a perfect (post-transformation) loop nest.

    ``roles`` maps transformed loop variables to ``(role, orig_var)``;
    untransformed nests may omit it (every loop is then its own point
    loop).
    """
    chain = loop_chain(nest)
    if not chain:
        raise TransformError("expected a loop nest")
    body = chain[-1].body
    trips, entries = _level_stats(chain)
    n = len(chain)

    level_infos: list[LevelInfo] = []
    for loop, trip in zip(chain, trips):
        role, orig = ("point", loop.var)
        if roles and loop.var in roles:
            role, orig = roles[loop.var]
        level_infos.append(
            LevelInfo(var=loop.var, orig_var=orig, role=role, trip=trip,
                      unroll=loop.unroll, step=loop.step)
        )

    # Extent of each *original* variable over levels >= l: product of the
    # trips of its controlling loops at those levels.
    orig_vars = {li.orig_var for li in level_infos}
    extent: dict[str, list[float]] = {}
    for ov in orig_vars:
        per_level = []
        for l in range(n + 1):
            prod = 1.0
            for li, trip in zip(level_infos[l:], trips[l:]):
                if li.orig_var == ov:
                    prod *= trip
            per_level.append(prod)
        extent[ov] = per_level

    # Innermost point variable (for stride classification).
    innermost_var = level_infos[-1].orig_var

    raw_refs = _collect_refs(body)
    point_vars = [li.orig_var for li in level_infos if li.role == "point"]
    ref_infos: list[RefInfo] = []
    stride1 = 0
    invariant = 0
    for ref, is_store in raw_refs:
        coef_by_var: dict[str, int] = {}
        unit_var: str | None = None
        for dim, idx in enumerate(ref.indices):
            coefs, _ = affine_coefficients(idx, point_vars)
            for v, c in coefs.items():
                coef_by_var[v] = coef_by_var.get(v, 0) + abs(c)
            if dim == len(ref.indices) - 1:
                for v, c in coefs.items():
                    if abs(c) == 1:
                        unit_var = v
        ref_vars = tuple(sorted(coef_by_var))
        elements = []
        unit_ext = []
        for l in range(n + 1):
            prod = 1.0
            for v in ref_vars:
                prod *= extent[v][l]
            elements.append(prod)
            unit_ext.append(extent[unit_var][l] if unit_var else 1.0)
        inv = innermost_var not in coef_by_var
        has_unit = unit_var is not None
        if has_unit and unit_var == innermost_var:
            stride1 += 1
        if inv:
            invariant += 1
        ref_infos.append(
            RefInfo(
                array=ref.name,
                is_store=is_store,
                vars=ref_vars,
                elements=tuple(elements),
                unit_extent=tuple(unit_ext),
                has_unit_stride=has_unit,
                innermost_invariant=inv,
            )
        )

    body_execs = entries[n]

    header_execs = 0.0
    for idx, li in enumerate(level_infos):
        header_execs += entries[idx + 1] / li.unroll

    flops_per_body = float(sum(_compute_ops(s.value) for s in body if isinstance(s, Assign)))
    loads_per_body = float(sum(1 for _, st in raw_refs if not st))
    stores_per_body = float(sum(1 for _, st in raw_refs if st))

    # Replication attributable to each original variable: product of the
    # unroll factors of its controlling loops.
    repl: dict[str, int] = {ov: 1 for ov in orig_vars}
    total_repl = 1
    for li in level_infos:
        repl[li.orig_var] *= li.unroll
        total_repl *= li.unroll

    register_demand = 0.0
    seen: set[tuple] = set()
    for ri in ref_infos:
        key = (ri.array, ri.vars)
        if key in seen:
            continue
        seen.add(key)
        live = 1.0
        for v in ri.vars:
            live *= repl.get(v, 1)
        register_demand += live
    register_demand += 2  # scratch temporaries

    n_refs = max(1, len(raw_refs))
    return VariantMetrics(
        levels=tuple(level_infos),
        refs=tuple(ref_infos),
        entry_counts=tuple(entries),
        flops=flops_per_body * body_execs,
        loads=loads_per_body * body_execs,
        stores=stores_per_body * body_execs,
        body_executions=body_execs,
        header_executions=header_execs,
        statements_generated=materialized_statements(nest),
        replication=total_repl,
        register_demand=register_demand,
        stride1_fraction=stride1 / n_refs,
        invariant_fraction=invariant / n_refs,
    )
