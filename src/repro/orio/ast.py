"""Loop-nest intermediate representation.

The IR models the subset of C the SPAPT kernels use: perfect (or
near-perfect) ``for`` nests over affine array accesses.  Expressions
are immutable trees; statements form the loop structure.  A ``ForLoop``
carries an ``unroll`` attribute representing unroll-and-jam: the loop
semantically executes ``unroll`` copies of its body per iteration (with
the induction variable offset by ``k*step``) plus a remainder loop.
Code generation expands the copies; analysis reads the factor directly,
so a 32x32x32-way unrolled nest never has to be materialized to be
costed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, Mapping, Sequence, Union

from repro.errors import TransformError

__all__ = [
    "Expr",
    "IntLit",
    "Var",
    "BinOp",
    "MinExpr",
    "MaxExpr",
    "ArrayRef",
    "Stmt",
    "Assign",
    "ForLoop",
    "fold",
    "substitute",
    "shift_var",
    "affine_coefficients",
    "loop_chain",
    "innermost_body",
    "count_ops",
    "walk_exprs",
]


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class IntLit:
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Var:
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class BinOp:
    op: str  # + - * / %
    left: "Expr"
    right: "Expr"

    def __post_init__(self) -> None:
        if self.op not in ("+", "-", "*", "/", "%"):
            raise TransformError(f"unsupported operator {self.op!r}")

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class MinExpr:
    """C ``min(a, b)`` — appears in tile-loop upper bounds."""

    left: "Expr"
    right: "Expr"

    def __str__(self) -> str:
        return f"min({self.left}, {self.right})"


@dataclass(frozen=True)
class MaxExpr:
    """C ``max(a, b)`` — appears in tiled triangular-loop lower bounds."""

    left: "Expr"
    right: "Expr"

    def __str__(self) -> str:
        return f"max({self.left}, {self.right})"


@dataclass(frozen=True)
class ArrayRef:
    """``name[idx0][idx1]...`` — usable as an expression or lvalue."""

    name: str
    indices: tuple["Expr", ...]

    def __str__(self) -> str:
        return self.name + "".join(f"[{i}]" for i in self.indices)


Expr = Union[IntLit, Var, BinOp, MinExpr, MaxExpr, ArrayRef]


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Assign:
    """``target op value;`` where op is ``=`` or ``+=``."""

    target: Union[ArrayRef, Var]
    value: Expr
    op: str = "="

    def __post_init__(self) -> None:
        if self.op not in ("=", "+="):
            raise TransformError(f"unsupported assignment operator {self.op!r}")

    def __str__(self) -> str:
        return f"{self.target} {self.op} {self.value};"


@dataclass(frozen=True)
class ForLoop:
    """``for (var = lower; var < upper; var += step)`` with unroll-jam.

    ``upper`` is *exclusive*.  ``unroll > 1`` means the loop body is
    semantically replicated ``unroll`` times per iteration with ``var``
    offsets ``0, step, ..., (unroll-1)*step``, followed by a remainder
    loop when the trip count is not divisible.
    """

    var: str
    lower: Expr
    upper: Expr
    step: int
    body: tuple["Stmt", ...]
    unroll: int = 1
    pragmas: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.step < 1:
            raise TransformError(f"loop {self.var}: step must be >= 1, got {self.step}")
        if self.unroll < 1:
            raise TransformError(f"loop {self.var}: unroll must be >= 1, got {self.unroll}")
        if not self.body:
            raise TransformError(f"loop {self.var}: empty body")

    def with_body(self, body: Sequence["Stmt"]) -> "ForLoop":
        return replace(self, body=tuple(body))

    def trip_count(self, bindings: Mapping[str, int] | None = None) -> int:
        """Number of iterations of the *original* (pre-unroll) loop.

        Requires constant-foldable bounds; tile loops with ``min()``
        upper bounds report the full-tile trip count.
        """
        lo = fold(self.lower, bindings)
        hi = fold(self.upper, bindings)
        if not isinstance(lo, IntLit) or not isinstance(hi, IntLit):
            raise TransformError(
                f"loop {self.var}: bounds are not constant ({self.lower} .. {self.upper})"
            )
        span = hi.value - lo.value
        return max(0, -(-span // self.step))


Stmt = Union[Assign, ForLoop]


# ----------------------------------------------------------------------
# Expression utilities
# ----------------------------------------------------------------------
def fold(expr: Expr, bindings: Mapping[str, int] | None = None) -> Expr:
    """Constant-fold, substituting ``bindings`` for free variables."""
    if isinstance(expr, IntLit):
        return expr
    if isinstance(expr, Var):
        if bindings and expr.name in bindings:
            return IntLit(int(bindings[expr.name]))
        return expr
    if isinstance(expr, BinOp):
        left = fold(expr.left, bindings)
        right = fold(expr.right, bindings)
        if isinstance(left, IntLit) and isinstance(right, IntLit):
            a, b = left.value, right.value
            if expr.op == "+":
                return IntLit(a + b)
            if expr.op == "-":
                return IntLit(a - b)
            if expr.op == "*":
                return IntLit(a * b)
            if expr.op == "/":
                if b == 0:
                    raise TransformError("division by zero in constant fold")
                return IntLit(a // b)
            if b == 0:
                raise TransformError("modulo by zero in constant fold")
            return IntLit(a % b)
        # Algebraic identities keep generated code readable.
        if expr.op == "+" and isinstance(right, IntLit) and right.value == 0:
            return left
        if expr.op == "+" and isinstance(left, IntLit) and left.value == 0:
            return right
        if expr.op == "*" and isinstance(right, IntLit) and right.value == 1:
            return left
        if expr.op == "*" and isinstance(left, IntLit) and left.value == 1:
            return right
        if expr.op == "*" and IntLit(0) in (left, right):
            return IntLit(0)
        return BinOp(expr.op, left, right)
    if isinstance(expr, MinExpr):
        left = fold(expr.left, bindings)
        right = fold(expr.right, bindings)
        if isinstance(left, IntLit) and isinstance(right, IntLit):
            return IntLit(min(left.value, right.value))
        if left == right:
            return left
        return MinExpr(left, right)
    if isinstance(expr, MaxExpr):
        left = fold(expr.left, bindings)
        right = fold(expr.right, bindings)
        if isinstance(left, IntLit) and isinstance(right, IntLit):
            return IntLit(max(left.value, right.value))
        if left == right:
            return left
        return MaxExpr(left, right)
    if isinstance(expr, ArrayRef):
        return ArrayRef(expr.name, tuple(fold(i, bindings) for i in expr.indices))
    raise TransformError(f"cannot fold {expr!r}")


def substitute(expr: Expr, var: str, replacement: Expr) -> Expr:
    """Replace every occurrence of ``var`` in ``expr`` with ``replacement``."""
    if isinstance(expr, IntLit):
        return expr
    if isinstance(expr, Var):
        return replacement if expr.name == var else expr
    if isinstance(expr, BinOp):
        return BinOp(expr.op, substitute(expr.left, var, replacement),
                     substitute(expr.right, var, replacement))
    if isinstance(expr, MinExpr):
        return MinExpr(substitute(expr.left, var, replacement),
                       substitute(expr.right, var, replacement))
    if isinstance(expr, MaxExpr):
        return MaxExpr(substitute(expr.left, var, replacement),
                       substitute(expr.right, var, replacement))
    if isinstance(expr, ArrayRef):
        return ArrayRef(expr.name, tuple(substitute(i, var, replacement) for i in expr.indices))
    raise TransformError(f"cannot substitute in {expr!r}")


def shift_var(stmt: Stmt, var: str, offset: int) -> Stmt:
    """Statement copy with ``var`` replaced by ``var + offset``."""
    if offset == 0:
        return stmt
    repl = BinOp("+", Var(var), IntLit(offset))

    def sub_expr(e: Expr) -> Expr:
        return fold(substitute(e, var, repl))

    if isinstance(stmt, Assign):
        target = sub_expr(stmt.target)
        if not isinstance(target, (ArrayRef, Var)):  # pragma: no cover - guarded
            raise TransformError("assignment target degenerated during shift")
        return Assign(target, sub_expr(stmt.value), stmt.op)
    if isinstance(stmt, ForLoop):
        if stmt.var == var:
            return stmt  # inner loop rebinds the name; nothing to shift
        return replace(
            stmt,
            lower=sub_expr(stmt.lower),
            upper=sub_expr(stmt.upper),
            body=tuple(shift_var(s, var, offset) for s in stmt.body),
        )
    raise TransformError(f"cannot shift {stmt!r}")


def affine_coefficients(expr: Expr, loop_vars: Sequence[str]) -> tuple[dict[str, int], int]:
    """Decompose an index expression as ``sum(coef[v] * v) + const``.

    Raises :class:`TransformError` for non-affine expressions (e.g.
    ``i*j``), which the SPAPT kernels never produce.
    """
    loop_set = set(loop_vars)

    def go(e: Expr) -> tuple[dict[str, int], int]:
        if isinstance(e, IntLit):
            return {}, e.value
        if isinstance(e, Var):
            if e.name in loop_set:
                return {e.name: 1}, 0
            raise TransformError(f"free symbol {e.name!r} in index (bind constants first)")
        if isinstance(e, BinOp):
            lc, lk = go(e.left)
            rc, rk = go(e.right)
            if e.op == "+":
                merged = dict(lc)
                for v, c in rc.items():
                    merged[v] = merged.get(v, 0) + c
                return merged, lk + rk
            if e.op == "-":
                merged = dict(lc)
                for v, c in rc.items():
                    merged[v] = merged.get(v, 0) - c
                return merged, lk - rk
            if e.op == "*":
                if lc and rc:
                    raise TransformError(f"non-affine index: {e}")
                if lc:
                    return {v: c * rk for v, c in lc.items()}, lk * rk
                return {v: c * lk for v, c in rc.items()}, lk * rk
            raise TransformError(f"non-affine operator {e.op!r} in index: {e}")
        raise TransformError(f"non-affine index component: {e}")

    coefs, const = go(fold(expr))
    return {v: c for v, c in coefs.items() if c != 0}, const


# ----------------------------------------------------------------------
# Structure utilities
# ----------------------------------------------------------------------
def loop_chain(stmt: Stmt) -> list[ForLoop]:
    """The chain of singly-nested loops from ``stmt`` inwards.

    Stops at the first body that is not exactly one ``ForLoop`` — the
    innermost compute body, for perfect nests.
    """
    chain: list[ForLoop] = []
    cur = stmt
    while isinstance(cur, ForLoop):
        chain.append(cur)
        if len(cur.body) == 1 and isinstance(cur.body[0], ForLoop):
            cur = cur.body[0]
        else:
            break
    return chain


def innermost_body(stmt: Stmt) -> tuple[Stmt, ...]:
    """The statement list inside the innermost loop of a perfect nest."""
    chain = loop_chain(stmt)
    if not chain:
        return (stmt,)
    return chain[-1].body


def walk_exprs(stmt: Stmt) -> Iterator[Expr]:
    """Yield every expression in a statement subtree (targets included)."""
    if isinstance(stmt, Assign):
        yield stmt.target
        yield stmt.value
    elif isinstance(stmt, ForLoop):
        yield stmt.lower
        yield stmt.upper
        for s in stmt.body:
            yield from walk_exprs(s)


def count_ops(expr: Expr) -> int:
    """Number of arithmetic operations in an expression tree."""
    if isinstance(expr, BinOp):
        return 1 + count_ops(expr.left) + count_ops(expr.right)
    if isinstance(expr, (MinExpr, MaxExpr)):
        return 1 + count_ops(expr.left) + count_ops(expr.right)
    if isinstance(expr, ArrayRef):
        return sum(count_ops(i) for i in expr.indices)
    return 0
