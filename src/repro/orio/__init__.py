"""A working mini-Orio (annotation-driven empirical tuning, Section IV-A).

Orio takes annotated C code, applies source-level loop transformations
(Table I: loop unrolling, cache tiling, register tiling), generates one
code variant per parameter configuration, and measures each variant.
This package rebuilds that pipeline:

* :mod:`repro.orio.ast` — loop-nest IR with constant folding and affine
  index analysis;
* :mod:`repro.orio.parser` — recursive-descent parser for the annotated
  C subset the SPAPT kernels are written in;
* :mod:`repro.orio.annotations` — ``/*@ begin Loop(...) @*/`` extraction;
* :mod:`repro.orio.transforms` — cache tiling, register tiling and
  unroll-and-jam as real AST-to-AST passes;
* :mod:`repro.orio.codegen` — C source emission (with remainder loops);
* :mod:`repro.orio.analysis` — static variant metrics (flops, per-level
  cache traffic, register demand, generated code size) consumed by the
  performance model;
* :mod:`repro.orio.evaluator` — "run" a variant on a machine model,
  charging simulated compile + execution time.
"""

from repro.orio.annotations import AnnotatedKernel, parse_annotated_source
from repro.orio.parser import parse_statement, parse_loop_nest
from repro.orio.codegen import generate_c
from repro.orio.analysis import VariantMetrics, analyze_nest
from repro.orio.evaluator import Measurement, OrioEvaluator

__all__ = [
    "AnnotatedKernel",
    "parse_annotated_source",
    "parse_statement",
    "parse_loop_nest",
    "generate_c",
    "VariantMetrics",
    "analyze_nest",
    "Measurement",
    "OrioEvaluator",
]
