"""C source emission for transformed loop nests.

Orio's pipeline ends by writing a C file per variant and compiling it;
this generator produces that file's compute section.  Unroll factors
are materialized into real replicated statements with remainder loops
(:func:`~repro.orio.transforms.unroll.expand_all_unrolls`), so the
emitted code is exactly what a compiler would see.
"""

from __future__ import annotations

from repro.orio.ast import (
    ArrayRef,
    Assign,
    BinOp,
    Expr,
    ForLoop,
    IntLit,
    MaxExpr,
    MinExpr,
    Stmt,
    Var,
)
from repro.orio.transforms.unroll import expand_all_unrolls

__all__ = ["generate_c", "emit_expr", "emit_stmt"]

_PRELUDE = (
    "#ifndef min\n#define min(a, b) (((a) < (b)) ? (a) : (b))\n#endif\n"
    "#ifndef max\n#define max(a, b) (((a) > (b)) ? (a) : (b))\n#endif\n"
)

_PRECEDENCE = {"+": 1, "-": 1, "*": 2, "/": 2, "%": 2}


def emit_expr(expr: Expr, parent_prec: int = 0) -> str:
    """Render an expression with minimal parentheses."""
    if isinstance(expr, IntLit):
        return str(expr.value)
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, ArrayRef):
        return expr.name + "".join(f"[{emit_expr(i)}]" for i in expr.indices)
    if isinstance(expr, MinExpr):
        return f"min({emit_expr(expr.left)}, {emit_expr(expr.right)})"
    if isinstance(expr, MaxExpr):
        return f"max({emit_expr(expr.left)}, {emit_expr(expr.right)})"
    if isinstance(expr, BinOp):
        prec = _PRECEDENCE[expr.op]
        left = emit_expr(expr.left, prec)
        # Right operand of -, / and % needs parens at equal precedence.
        right = emit_expr(expr.right, prec + (0 if expr.op in "+*" else 1))
        text = f"{left} {expr.op} {right}"
        if prec < parent_prec:
            return f"({text})"
        return text
    raise TypeError(f"cannot emit {expr!r}")


def emit_stmt(stmt: Stmt, indent: int = 0) -> list[str]:
    """Render a statement subtree as indented C lines."""
    pad = "  " * indent
    if isinstance(stmt, Assign):
        return [f"{pad}{emit_expr(stmt.target)} {stmt.op} {emit_expr(stmt.value)};"]
    if isinstance(stmt, ForLoop):
        lines = [f"{pad}{p}" for p in stmt.pragmas]
        header = (
            f"{pad}for ({stmt.var} = {emit_expr(stmt.lower)}; "
            f"{stmt.var} < {emit_expr(stmt.upper)}; "
            + (f"{stmt.var}++)" if stmt.step == 1 else f"{stmt.var} += {stmt.step})")
        )
        body_lines: list[str] = []
        for s in stmt.body:
            body_lines.extend(emit_stmt(s, indent + 1))
        if len(stmt.body) == 1:
            return lines + [header] + body_lines
        return lines + [header + " {"] + body_lines + [f"{pad}}}"]
    raise TypeError(f"cannot emit {stmt!r}")


def generate_c(
    nest: Stmt,
    declare: dict[str, str] | None = None,
    max_statements: int = 100_000,
    expand_unrolls: bool = True,
) -> str:
    """Generate the C text for a (possibly unrolled) nest.

    ``declare`` optionally maps loop-variable names to C types for an
    ``int i, j, ...;`` declaration line.  ``expand_unrolls=False``
    keeps unroll factors implicit (annotated with a comment) for
    human-readable summaries of very large variants.
    """
    stmts: list[Stmt]
    if expand_unrolls:
        stmts = expand_all_unrolls(nest, max_statements=max_statements)
    else:
        stmts = [nest]
    lines = [_PRELUDE]
    if declare:
        by_type: dict[str, list[str]] = {}
        for name, ctype in declare.items():
            by_type.setdefault(ctype, []).append(name)
        for ctype, names in sorted(by_type.items()):
            lines.append(f"{ctype} {', '.join(sorted(names))};")
        lines.append("")
    for s in stmts:
        lines.extend(emit_stmt(s))
    return "\n".join(lines) + "\n"
