"""Empirical evaluation of code variants on simulated machines.

This is the mini-Orio's measurement stage: given a kernel configuration
it composes the transformations, analyzes the variant, and charges the
simulated clock for compiling and running it — exactly the costs a real
autotuning search pays per evaluation (Section IV-D's elapsed search
time).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EvaluationError
from repro.machines.compiler import CompilerModel, GCC
from repro.machines.spec import MachineSpec
from repro.perf.simclock import SimClock
from repro.searchspace.space import Configuration

__all__ = ["Measurement", "OrioEvaluator"]


@dataclass(frozen=True)
class Measurement:
    """One empirical evaluation of a configuration."""

    config: Configuration
    runtime_seconds: float  # mean measured kernel run time (the objective)
    compile_seconds: float
    repetitions: int

    @property
    def evaluation_cost(self) -> float:
        """Simulated wall-clock cost of obtaining this measurement."""
        return self.compile_seconds + self.repetitions * self.runtime_seconds


class OrioEvaluator:
    """Evaluate configurations of one kernel on one machine.

    Parameters
    ----------
    kernel:
        A :class:`repro.kernels.base.SpaptKernel` (anything exposing
        ``space``, ``tag``, ``metrics_for`` and ``scalar_options``).
    machine, compiler:
        Target platform.
    threads:
        OpenMP thread count used when ``openmp=True``.
    openmp:
        Run variants in parallel (the paper's Xeon Phi experiments add
        OpenMP pragmas and use 8/8/60 threads; the base SPAPT runs are
        serial).
    repetitions:
        Timing runs per variant; the reported runtime is their mean.
    clock:
        Optional shared :class:`SimClock`; every call to
        :meth:`evaluate` advances it by the evaluation cost.
    """

    def __init__(
        self,
        kernel,
        machine: MachineSpec,
        compiler: CompilerModel = GCC,
        threads: int = 1,
        openmp: bool = False,
        repetitions: int = 1,
        clock: SimClock | None = None,
        quirk_sigma: float | None = None,
    ) -> None:
        if repetitions < 1:
            raise EvaluationError(f"repetitions must be >= 1, got {repetitions}")
        if quirk_sigma is not None and quirk_sigma < 0:
            raise EvaluationError(f"quirk_sigma must be >= 0, got {quirk_sigma}")
        compiler.check_supports(machine)
        self.kernel = kernel
        self.machine = machine
        self.compiler = compiler
        self.openmp = openmp
        self.repetitions = repetitions
        self.clock = clock if clock is not None else SimClock()
        self.quirk_sigma = quirk_sigma
        # Imported here: repro.perf.costmodel imports repro.orio.analysis,
        # so a module-level import would be circular via the package
        # __init__ files.
        from repro.perf.costmodel import CostModel

        self.cost_model = CostModel(machine, compiler, threads=threads)
        self.n_evaluations = 0
        # Reference (default-configuration) metrics anchor the
        # compression model; computed lazily and cached.
        self._ref_metrics = kernel.metrics_for(kernel.space.default())

    # ------------------------------------------------------------------
    def measure(self, config: Configuration) -> Measurement:
        """Measure one configuration without advancing the clock."""
        if config.space is not self.kernel.space:
            raise EvaluationError(
                f"configuration belongs to space {config.space.name!r}, "
                f"not kernel {self.kernel.name!r}"
            )
        options = self.kernel.scalar_options(config)
        metrics_list = self.kernel.metrics_for(config)
        is_default = config.index == 0
        runtime = 0.0
        compile_time = 0.0
        for nest_idx, metrics in enumerate(metrics_list):
            compile_time += self.cost_model.compile_seconds(metrics)
            reps = []
            for rep in range(self.repetitions):
                reps.append(
                    self.cost_model.runtime_seconds(
                        metrics,
                        config_key=(config.index, nest_idx),
                        kernel_tag=self.kernel.tag,
                        vectorize=bool(options.get("vectorize", True)),
                        scalar_replacement=bool(options.get("scalar_replacement", True)),
                        parallel=self.openmp,
                        is_default=is_default,
                        rep=rep,
                        quirk_sigma=self.quirk_sigma,
                        ref_metrics=self._ref_metrics[nest_idx],
                    )
                )
            runtime += sum(reps) / len(reps)
        return Measurement(
            config=config,
            runtime_seconds=runtime,
            compile_seconds=compile_time,
            repetitions=self.repetitions,
        )

    def evaluate(self, config: Configuration) -> Measurement:
        """Measure a configuration and charge the simulated clock.

        Raises :class:`repro.errors.BudgetExhaustedError` when the
        clock's budget cannot afford the evaluation (the paper's
        X-Gene data-collection failure mode).
        """
        m = self.measure(config)
        self.clock.advance(m.evaluation_cost)
        self.n_evaluations += 1
        return m

    def __call__(self, config: Configuration) -> float:
        """Objective-function view: evaluate and return the runtime."""
        return self.evaluate(config).runtime_seconds
