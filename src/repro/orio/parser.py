"""Recursive-descent parser for the annotated-C kernel subset.

Grammar (the subset the SPAPT kernels use)::

    stmt    := for | assign
    for     := 'for' '(' ID '=' expr ';' ID ('<'|'<=') expr ';' incr ')'
               ( stmt | '{' stmt+ '}' )
    incr    := ID '++' | ID '+=' INT
    assign  := lvalue ('='|'+=') expr ';'
    lvalue  := ID ('[' expr ']')*
    expr    := add
    add     := mul (('+'|'-') mul)*
    mul     := unary (('*'|'/'|'%') unary)*
    unary   := '-' unary | primary
    primary := INT | ID ('[' expr ']')* | '(' expr ')'

Problem-size symbols (``N`` etc.) are folded away at parse time through
the ``consts`` mapping, so downstream passes see concrete integer
bounds and pure-affine indices.
"""

from __future__ import annotations

import re
from typing import Mapping

from repro.errors import ParseError
from repro.orio.ast import (
    ArrayRef,
    Assign,
    BinOp,
    Expr,
    ForLoop,
    IntLit,
    Stmt,
    Var,
    fold,
)

__all__ = ["parse_statement", "parse_loop_nest", "tokenize"]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|//[^\n]*|/\*(?:[^*]|\*(?!/))*\*/)
  | (?P<num>\d+)
  | (?P<id>[A-Za-z_]\w*)
  | (?P<op>\+\+|\+=|<=|==|[-+*/%<>=;,()\[\]{}])
    """,
    re.VERBOSE,
)


class _Token:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind: str, text: str, line: int) -> None:
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r}, line {self.line})"


def tokenize(source: str) -> list[_Token]:
    """Lex the source into tokens, skipping whitespace and comments."""
    tokens: list[_Token] = []
    pos = 0
    line = 1
    while pos < len(source):
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            raise ParseError(f"unexpected character {source[pos]!r}", line)
        text = m.group(0)
        if m.lastgroup == "num":
            tokens.append(_Token("num", text, line))
        elif m.lastgroup == "id":
            tokens.append(_Token("id", text, line))
        elif m.lastgroup == "op":
            tokens.append(_Token("op", text, line))
        line += text.count("\n")
        pos = m.end()
    return tokens


class _Parser:
    def __init__(self, tokens: list[_Token], consts: Mapping[str, int]) -> None:
        self.tokens = tokens
        self.pos = 0
        self.consts = dict(consts)

    # -- token plumbing -------------------------------------------------
    def _peek(self) -> _Token | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _line(self) -> int:
        tok = self._peek()
        return tok.line if tok else (self.tokens[-1].line if self.tokens else 1)

    def _next(self) -> _Token:
        tok = self._peek()
        if tok is None:
            raise ParseError("unexpected end of input", self._line())
        self.pos += 1
        return tok

    def _expect(self, text: str) -> _Token:
        tok = self._next()
        if tok.text != text:
            raise ParseError(f"expected {text!r}, found {tok.text!r}", tok.line)
        return tok

    def _accept(self, text: str) -> bool:
        tok = self._peek()
        if tok is not None and tok.text == text:
            self.pos += 1
            return True
        return False

    def at_end(self) -> bool:
        return self.pos >= len(self.tokens)

    # -- expressions ----------------------------------------------------
    def expression(self) -> Expr:
        return self._additive()

    def _additive(self) -> Expr:
        left = self._multiplicative()
        while True:
            tok = self._peek()
            if tok is not None and tok.text in ("+", "-"):
                self.pos += 1
                left = BinOp(tok.text, left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> Expr:
        left = self._unary()
        while True:
            tok = self._peek()
            if tok is not None and tok.text in ("*", "/", "%"):
                self.pos += 1
                left = BinOp(tok.text, left, self._unary())
            else:
                return left

    def _unary(self) -> Expr:
        if self._accept("-"):
            return BinOp("-", IntLit(0), self._unary())
        return self._primary()

    def _primary(self) -> Expr:
        tok = self._next()
        if tok.kind == "num":
            return IntLit(int(tok.text))
        if tok.kind == "id":
            name = tok.text
            indices: list[Expr] = []
            while self._accept("["):
                indices.append(self.expression())
                self._expect("]")
            if indices:
                return ArrayRef(name, tuple(indices))
            if name in self.consts:
                return IntLit(int(self.consts[name]))
            return Var(name)
        if tok.text == "(":
            e = self.expression()
            self._expect(")")
            return e
        raise ParseError(f"unexpected token {tok.text!r} in expression", tok.line)

    # -- statements -----------------------------------------------------
    def statement(self) -> Stmt:
        tok = self._peek()
        if tok is None:
            raise ParseError("expected a statement", self._line())
        if tok.kind == "id" and tok.text == "for":
            return self._for()
        return self._assignment()

    def _for(self) -> ForLoop:
        start = self._expect("for")
        self._expect("(")
        var_tok = self._next()
        if var_tok.kind != "id":
            raise ParseError(f"expected loop variable, found {var_tok.text!r}", var_tok.line)
        var = var_tok.text
        self._expect("=")
        lower = fold(self.expression(), self.consts)
        self._expect(";")
        cond_var = self._next()
        if cond_var.kind != "id" or cond_var.text != var:
            raise ParseError(
                f"loop condition must test {var!r}, found {cond_var.text!r}", cond_var.line
            )
        cmp_tok = self._next()
        if cmp_tok.text not in ("<", "<="):
            raise ParseError(f"expected '<' or '<=', found {cmp_tok.text!r}", cmp_tok.line)
        bound = fold(self.expression(), self.consts)
        if cmp_tok.text == "<=":
            bound = fold(BinOp("+", bound, IntLit(1)), self.consts)
        self._expect(";")
        inc_var = self._next()
        if inc_var.kind != "id" or inc_var.text != var:
            raise ParseError(
                f"increment must update {var!r}, found {inc_var.text!r}", inc_var.line
            )
        op_tok = self._next()
        if op_tok.text == "++":
            step = 1
        elif op_tok.text == "+=":
            step_tok = self._next()
            if step_tok.kind != "num":
                raise ParseError(f"expected step constant, found {step_tok.text!r}", step_tok.line)
            step = int(step_tok.text)
        else:
            raise ParseError(f"expected '++' or '+=', found {op_tok.text!r}", op_tok.line)
        self._expect(")")
        body: list[Stmt] = []
        if self._accept("{"):
            while not self._accept("}"):
                if self._peek() is None:
                    raise ParseError("unterminated '{' block", start.line)
                body.append(self.statement())
        else:
            body.append(self.statement())
        if not body:
            raise ParseError(f"loop over {var!r} has an empty body", start.line)
        return ForLoop(var=var, lower=lower, upper=bound, step=step, body=tuple(body))

    def _assignment(self) -> Assign:
        tok = self._next()
        if tok.kind != "id":
            raise ParseError(f"expected an lvalue, found {tok.text!r}", tok.line)
        indices: list[Expr] = []
        while self._accept("["):
            indices.append(fold(self.expression(), self.consts))
            self._expect("]")
        target: ArrayRef | Var
        target = ArrayRef(tok.text, tuple(indices)) if indices else Var(tok.text)
        op_tok = self._next()
        if op_tok.text not in ("=", "+="):
            raise ParseError(f"expected '=' or '+=', found {op_tok.text!r}", op_tok.line)
        value = fold(self.expression(), self.consts)
        self._expect(";")
        return Assign(target, value, op_tok.text)


def parse_statement(source: str, consts: Mapping[str, int] | None = None) -> Stmt:
    """Parse a single statement (usually the outermost ``for``)."""
    parser = _Parser(tokenize(source), consts or {})
    stmt = parser.statement()
    if not parser.at_end():
        tok = parser._peek()
        assert tok is not None
        raise ParseError(f"trailing input starting at {tok.text!r}", tok.line)
    return stmt


def parse_loop_nest(source: str, consts: Mapping[str, int] | None = None) -> ForLoop:
    """Parse a statement and require it to be a ``for`` loop."""
    stmt = parse_statement(source, consts)
    if not isinstance(stmt, ForLoop):
        raise ParseError("expected a for-loop at top level")
    return stmt
