"""Orio-style annotation parsing.

Orio kernels embed tuning directives in structured comments::

    /*@ begin Loop (
      transform Composite(
        tile      = [("i", "T1_I"), ("j", "T1_J"), ("k", "T1_K")],
        unrolljam = [("i", "U_I"),  ("j", "U_J"),  ("k", "U_K")],
        regtile   = [("i", "RT_I"), ("j", "RT_J"), ("k", "RT_K")],
        vector    = "VEC",
        openmp    = "OMP"
      )
    ) @*/
    for (i = 0; i <= N-1; i++) ...
    /*@ end @*/

Each ``("loopvar", "PARAM")`` pair binds a transformation at one loop
level to a named tuning parameter; scalar entries (``vector``,
``openmp``, ``scalar_replacement``) bind boolean switches.  The comment
body is Python-expression syntax, so it is parsed with :mod:`ast` and
validated structurally — no ``eval``.
"""

from __future__ import annotations

import ast as python_ast
import re
from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import ParseError
from repro.orio.ast import ForLoop
from repro.orio.parser import parse_loop_nest

__all__ = [
    "TransformSpec",
    "AnnotatedKernel",
    "parse_annotated_source",
    "parse_annotated_blocks",
]

_BLOCK_RE = re.compile(
    r"/\*@\s*begin\s+Loop\s*\((?P<header>.*?)\)\s*@\*/(?P<body>.*?)/\*@\s*end\s*@\*/",
    re.DOTALL,
)

_LIST_KEYS = ("tile", "unrolljam", "regtile")
_SCALAR_KEYS = ("vector", "openmp", "scalar_replacement")


@dataclass(frozen=True)
class TransformSpec:
    """Which transformation parameter controls which loop level."""

    tile: tuple[tuple[str, str], ...] = ()
    unrolljam: tuple[tuple[str, str], ...] = ()
    regtile: tuple[tuple[str, str], ...] = ()
    scalars: Mapping[str, str] = field(default_factory=dict)  # option -> param name

    def parameter_names(self) -> list[str]:
        """Every tuning-parameter name referenced, in annotation order."""
        names = [p for _, p in self.tile]
        names += [p for _, p in self.unrolljam]
        names += [p for _, p in self.regtile]
        names += list(self.scalars.values())
        return names


@dataclass(frozen=True)
class AnnotatedKernel:
    """A parsed annotated kernel: the loop nest plus its transform spec."""

    nest: ForLoop
    spec: TransformSpec
    body_source: str


def _parse_pairs(node: python_ast.expr, key: str) -> tuple[tuple[str, str], ...]:
    try:
        value = python_ast.literal_eval(node)
    except (ValueError, SyntaxError) as exc:
        raise ParseError(f"annotation key {key!r}: not a literal list: {exc}") from None
    if not isinstance(value, list):
        raise ParseError(f"annotation key {key!r}: expected a list of pairs")
    pairs: list[tuple[str, str]] = []
    for item in value:
        if (
            not isinstance(item, tuple)
            or len(item) != 2
            or not all(isinstance(x, str) for x in item)
        ):
            raise ParseError(f"annotation key {key!r}: entries must be (loopvar, param) strings")
        pairs.append((item[0], item[1]))
    seen_vars = [v for v, _ in pairs]
    if len(set(seen_vars)) != len(seen_vars):
        raise ParseError(f"annotation key {key!r}: duplicate loop variable")
    return tuple(pairs)


def _parse_header(header: str) -> TransformSpec:
    header = header.strip()
    if not header.startswith("transform"):
        raise ParseError("Loop annotation must contain a 'transform' clause")
    expr_src = header[len("transform") :].strip()
    try:
        tree = python_ast.parse(expr_src, mode="eval")
    except SyntaxError as exc:
        raise ParseError(f"malformed transform clause: {exc}") from None
    call = tree.body
    if not isinstance(call, python_ast.Call) or not isinstance(call.func, python_ast.Name):
        raise ParseError("transform clause must be a Composite(...) call")
    if call.func.id != "Composite":
        raise ParseError(f"unsupported transform {call.func.id!r} (only Composite)")
    if call.args:
        raise ParseError("Composite takes keyword arguments only")
    lists: dict[str, tuple[tuple[str, str], ...]] = {}
    scalars: dict[str, str] = {}
    for kw in call.keywords:
        if kw.arg is None:
            raise ParseError("Composite does not accept **kwargs")
        if kw.arg in _LIST_KEYS:
            lists[kw.arg] = _parse_pairs(kw.value, kw.arg)
        elif kw.arg in _SCALAR_KEYS:
            try:
                value = python_ast.literal_eval(kw.value)
            except (ValueError, SyntaxError) as exc:
                raise ParseError(f"annotation key {kw.arg!r}: {exc}") from None
            if not isinstance(value, str):
                raise ParseError(f"annotation key {kw.arg!r}: expected a parameter name string")
            scalars[kw.arg] = value
        else:
            raise ParseError(f"unknown Composite option {kw.arg!r}")
    return TransformSpec(
        tile=lists.get("tile", ()),
        unrolljam=lists.get("unrolljam", ()),
        regtile=lists.get("regtile", ()),
        scalars=scalars,
    )


def parse_annotated_source(
    source: str, consts: Mapping[str, int] | None = None
) -> AnnotatedKernel:
    """Extract and parse the single annotated loop of a kernel source.

    ``consts`` binds problem-size symbols (e.g. ``{"N": 2000}``) so the
    parsed nest has concrete bounds.
    """
    matches = list(_BLOCK_RE.finditer(source))
    if not matches:
        raise ParseError("no /*@ begin Loop ... @*/ ... /*@ end @*/ block found")
    if len(matches) > 1:
        raise ParseError(f"expected exactly one annotated block, found {len(matches)}")
    return _parse_block(matches[0], consts)


def parse_annotated_blocks(
    source: str, consts: Mapping[str, int] | None = None
) -> list[AnnotatedKernel]:
    """Extract every annotated loop block of a kernel source, in order.

    Multi-phase kernels (ATAX: ``t = A x`` then ``y = A^T t``) annotate
    each phase separately; the phases share the configuration namespace.
    """
    matches = list(_BLOCK_RE.finditer(source))
    if not matches:
        raise ParseError("no /*@ begin Loop ... @*/ ... /*@ end @*/ block found")
    return [_parse_block(m, consts) for m in matches]


def _parse_block(m: "re.Match[str]", consts: Mapping[str, int] | None) -> AnnotatedKernel:
    spec = _parse_header(m.group("header"))
    body_source = m.group("body").strip()
    nest = parse_loop_nest(body_source, consts)
    # Every loop variable referenced by the spec must exist in the nest.
    loop_vars = set()
    stack = [nest]
    while stack:
        node = stack.pop()
        if isinstance(node, ForLoop):
            loop_vars.add(node.var)
            stack.extend(s for s in node.body if isinstance(s, ForLoop))
    for key, pairs in (("tile", spec.tile), ("unrolljam", spec.unrolljam), ("regtile", spec.regtile)):
        for var, _ in pairs:
            if var not in loop_vars:
                raise ParseError(f"annotation {key} references unknown loop {var!r}")
    return AnnotatedKernel(nest=nest, spec=spec, body_source=body_source)
