"""Optional compiled kernel for packed-forest traversal.

Pure-NumPy tree traversal pays a few nanoseconds of fancy-indexing
overhead per (tree, row, level) step — across 64 trees and a
10,000-configuration pool that is the dominant cost of surrogate
prediction.  The traversal itself is only comparisons and pointer
chasing, so a ~20-line C kernel compiled on the fly with the system
compiler removes that overhead while performing the exact same
``x[feature] <= threshold`` double comparisons — results are
bit-identical to the NumPy path.

The kernel is entirely optional: if no C compiler is present, the
compile fails, or ``REPRO_NATIVE=0`` is set, callers fall back to the
NumPy traversal.  Nothing is installed — the shared object lives in a
per-process temporary directory.
"""

from __future__ import annotations

import ctypes
import os
import shutil
import subprocess
import tempfile

import numpy as np

__all__ = ["available", "tree_values", "ensemble_std"]

_SOURCE = r"""
#include <stdint.h>
#include <math.h>

void tree_values(
    const int64_t *feature, const double *threshold,
    const int64_t *left, const int64_t *right, const double *value,
    const int64_t *roots, int64_t n_trees,
    const double *X, int64_t n, int64_t p,
    double *out)
{
    for (int64_t t = 0; t < n_trees; ++t) {
        int64_t root = roots[t];
        double *row_out = out + t * n;
        for (int64_t i = 0; i < n; ++i) {
            const double *x = X + i * p;
            int64_t cur = root;
            int64_t f = feature[cur];
            while (f >= 0) {
                cur = (x[f] <= threshold[cur]) ? left[cur] : right[cur];
                f = feature[cur];
            }
            row_out[i] = value[cur];
        }
    }
}

/* Column std of a C-order (n_trees, n) matrix, replaying NumPy's
 * axis-0 reduction exactly: a strict t = 0..T-1 accumulation per
 * column for both the mean and the squared deviations (NumPy reduces
 * the outer axis row by row, so its summation order is sequential,
 * not pairwise).  Division and sqrt are correctly rounded in IEEE
 * double, so the result is bit-identical to vals.std(axis=0). */
void ensemble_std(
    const double *vals, int64_t n_trees, int64_t n,
    double *mean, double *out)
{
    for (int64_t i = 0; i < n; ++i) mean[i] = 0.0;
    for (int64_t t = 0; t < n_trees; ++t) {
        const double *row = vals + t * n;
        for (int64_t i = 0; i < n; ++i) mean[i] += row[i];
    }
    for (int64_t i = 0; i < n; ++i) { mean[i] /= (double) n_trees; out[i] = 0.0; }
    for (int64_t t = 0; t < n_trees; ++t) {
        const double *row = vals + t * n;
        for (int64_t i = 0; i < n; ++i) {
            double d = row[i] - mean[i];
            out[i] += d * d;
        }
    }
    for (int64_t i = 0; i < n; ++i) out[i] = sqrt(out[i] / (double) n_trees);
}
"""

_lib: ctypes.CDLL | None = None
_tried = False
_workdir: tempfile.TemporaryDirectory | None = None  # keeps the .so alive


def _compiler() -> str | None:
    for name in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if name and shutil.which(name):
            return name
    return None


def _build() -> ctypes.CDLL | None:
    global _workdir
    cc = _compiler()
    if cc is None:
        return None
    _workdir = tempfile.TemporaryDirectory(prefix="repro-native-")
    src = os.path.join(_workdir.name, "kernel.c")
    so = os.path.join(_workdir.name, "kernel.so")
    with open(src, "w") as fh:
        fh.write(_SOURCE)
    proc = subprocess.run(
        [cc, "-O3", "-shared", "-fPIC", "-o", so, src, "-lm"],
        capture_output=True,
        timeout=120,
    )
    if proc.returncode != 0:
        return None
    lib = ctypes.CDLL(so)
    i64 = np.ctypeslib.ndpointer(np.int64, flags="C_CONTIGUOUS")
    f64 = np.ctypeslib.ndpointer(np.float64, flags="C_CONTIGUOUS")
    lib.tree_values.argtypes = [
        i64, f64, i64, i64, f64, i64, ctypes.c_int64,
        f64, ctypes.c_int64, ctypes.c_int64, f64,
    ]
    lib.tree_values.restype = None
    lib.ensemble_std.argtypes = [
        f64, ctypes.c_int64, ctypes.c_int64, f64, f64,
    ]
    lib.ensemble_std.restype = None
    return lib


def available() -> bool:
    """Whether the compiled kernel can be used in this process."""
    global _lib, _tried
    if os.environ.get("REPRO_NATIVE", "1") == "0":
        return False
    if not _tried:
        _tried = True
        try:
            _lib = _build()
        except (OSError, subprocess.SubprocessError):
            _lib = None
    return _lib is not None


def tree_values(
    feature: np.ndarray,
    threshold: np.ndarray,
    left: np.ndarray,
    right: np.ndarray,
    value: np.ndarray,
    roots: np.ndarray,
    X: np.ndarray,
    out: np.ndarray | None = None,
) -> np.ndarray | None:
    """Packed traversal via the compiled kernel; ``None`` if unavailable.

    When ``out`` (a C-order ``(n_trees, n)`` float64 array) is given,
    results are written into it and it is returned — callers that score
    many pools can reuse one buffer and skip the page-fault cost of a
    fresh multi-megabyte allocation per call.
    """
    if not available():
        return None
    assert _lib is not None
    n, p = X.shape
    n_trees = len(roots)
    if out is None:
        out = np.empty((n_trees, n))
    _lib.tree_values(
        np.ascontiguousarray(feature, dtype=np.int64),
        np.ascontiguousarray(threshold, dtype=np.float64),
        np.ascontiguousarray(left, dtype=np.int64),
        np.ascontiguousarray(right, dtype=np.int64),
        np.ascontiguousarray(value, dtype=np.float64),
        np.ascontiguousarray(roots, dtype=np.int64),
        n_trees,
        np.ascontiguousarray(X, dtype=np.float64),
        n,
        p,
        out,
    )
    return out


def ensemble_std(vals: np.ndarray) -> np.ndarray | None:
    """Column std of a C-order ``(n_trees, n)`` value matrix, replaying
    NumPy's sequential axis-0 reduction order exactly (bit-identical to
    ``vals.std(axis=0)``); ``None`` if the kernel is unavailable."""
    if not available():
        return None
    assert _lib is not None
    n_trees, n = vals.shape
    mean = np.empty(n)
    out = np.empty(n)
    _lib.ensemble_std(
        np.ascontiguousarray(vals, dtype=np.float64), n_trees, n, mean, out
    )
    return out
