"""Optional compiled kernels for the ML and search hot paths.

Pure-NumPy tree traversal pays a few nanoseconds of fancy-indexing
overhead per (tree, row, level) step — across 64 trees and a
10,000-configuration pool that is the dominant cost of surrogate
prediction.  The traversal itself is only comparisons and pointer
chasing, so a small C kernel compiled on the fly with the system
compiler removes that overhead while performing the exact same
``x[feature] <= threshold`` double comparisons — results are
bit-identical to the NumPy path.

The same argument extends to the other kernels here:

* ``split_scan`` — the tree-fit prefix-sum split scan: one fused pass
  over a node's presorted candidate rows replaying the NumPy engine's
  sequential cumulative sums, SSE arithmetic, first-argmin and
  tie-break arithmetic operation for operation;
* ``partition_node`` — the fused stable node partition: one call per
  split routes the node's rows (``x[f] <= thr``), splits every
  presorted feature row, and computes both children's statistics in
  the NumPy engine's exact arithmetic order;
* ``fit_node`` — the per-node driver fusing ``split_scan`` and
  ``partition_node`` behind a two-pointer param-block calling
  convention, because ctypes argument conversion at 13-16 arguments
  costs more than the kernels themselves;
* ``ensemble_mean`` / ``ensemble_std`` — column mean/std of the
  per-tree value matrix in NumPy's exact sequential axis-0 reduction
  order;
* ``gate_topk`` — fused threshold filter + stable partial top-k over
  predicted scores: the first ``k`` entries of
  ``np.argsort(scores, kind="stable")`` (ties by index, NaNs last)
  plus each entry's ``not (score >= cutoff)`` admission verdict.

Floating-point contraction is disabled at compile time
(``-ffp-contract=off``): a fused multiply-add would round differently
from NumPy's separate multiply and add, breaking bit-identity on FMA
hardware.

The kernels are entirely optional: if no C compiler is present, the
compile fails, or ``REPRO_NATIVE=0`` is set, callers fall back to the
NumPy paths.  Nothing is installed — the shared object lives in a
per-process temporary directory.  A failed compile is *not* silent:
the first :func:`available` probe emits a one-time ``RuntimeWarning``
with the compiler error, and :func:`diagnostics` exposes the probe
outcome for the forest/engine diagnostics surfaces.
"""

from __future__ import annotations

import ctypes
import os
import shutil
import subprocess
import tempfile
import warnings

import numpy as np

__all__ = [
    "available",
    "diagnostics",
    "handle",
    "tree_values",
    "ensemble_std",
    "ensemble_mean",
    "gate_topk",
]

#: ``fit_node`` param-block slot indices — must match the FN_* / FD_*
#: enums in the C source below.  The int64 block carries pointers and
#: integer parameters; the double block carries the NumPy-computed
#: sums, the tie-break tolerance, and the scan/stat outputs.
(FN_X, FN_P, FN_Y, FN_T, FN_IDX, FN_YS, FN_M, FN_CAND, FN_K,
 FN_MSL, FN_MSS, FN_DEPTH_OK, FN_OUT_IDX, FN_OUT_YS, FN_OUT_T,
 FN_MEMBER, FN_SCALAR_MAX, FN_OUT_F, FN_SLOTS) = range(19)
(FD_Y_SUM, FD_Y_SQ_SUM, FD_TOL, FD_THR, FD_SSE, FD_STATS) = range(6)
FD_SLOTS = FD_STATS + 8

_SOURCE = r"""
#include <stdint.h>
#include <math.h>

void tree_values(
    const int64_t *feature, const double *threshold,
    const int64_t *left, const int64_t *right, const double *value,
    const int64_t *roots, int64_t n_trees,
    const double *X, int64_t n, int64_t p,
    double *out)
{
    for (int64_t t = 0; t < n_trees; ++t) {
        int64_t root = roots[t];
        double *row_out = out + t * n;
        for (int64_t i = 0; i < n; ++i) {
            const double *x = X + i * p;
            int64_t cur = root;
            int64_t f = feature[cur];
            while (f >= 0) {
                cur = (x[f] <= threshold[cur]) ? left[cur] : right[cur];
                f = feature[cur];
            }
            row_out[i] = value[cur];
        }
    }
}

/* Column std of a C-order (n_trees, n) matrix, replaying NumPy's
 * axis-0 reduction exactly: a strict t = 0..T-1 accumulation per
 * column for both the mean and the squared deviations (NumPy reduces
 * the outer axis row by row, so its summation order is sequential,
 * not pairwise).  Division and sqrt are correctly rounded in IEEE
 * double, so the result is bit-identical to vals.std(axis=0). */
void ensemble_std(
    const double *vals, int64_t n_trees, int64_t n,
    double *mean, double *out)
{
    for (int64_t i = 0; i < n; ++i) mean[i] = 0.0;
    for (int64_t t = 0; t < n_trees; ++t) {
        const double *row = vals + t * n;
        for (int64_t i = 0; i < n; ++i) mean[i] += row[i];
    }
    for (int64_t i = 0; i < n; ++i) { mean[i] /= (double) n_trees; out[i] = 0.0; }
    for (int64_t t = 0; t < n_trees; ++t) {
        const double *row = vals + t * n;
        for (int64_t i = 0; i < n; ++i) {
            double d = row[i] - mean[i];
            out[i] += d * d;
        }
    }
    for (int64_t i = 0; i < n; ++i) out[i] = sqrt(out[i] / (double) n_trees);
}

/* Column mean in the forest's historical accumulation order: one
 * zeroed accumulator, rows added t = 0..T-1, then one division. */
void ensemble_mean(
    const double *vals, int64_t n_trees, int64_t n, double *out)
{
    for (int64_t i = 0; i < n; ++i) out[i] = 0.0;
    for (int64_t t = 0; t < n_trees; ++t) {
        const double *row = vals + t * n;
        for (int64_t i = 0; i < n; ++i) out[i] += row[i];
    }
    for (int64_t i = 0; i < n; ++i) out[i] /= (double) n_trees;
}

/* Fused best-split scan over a node's presorted candidate rows.
 *
 * Replays the NumPy presort engine exactly: per candidate feature a
 * sequential prefix sum of y and y*y in sorted order (identical to
 * cumsum), the same SSE expression with the same operation order and
 * grouping, validity = value-change and min_samples_leaf, first-min
 * argmin (NaN wins like np.argmin), then the cross-candidate
 * tie-break loop (first candidate better than best - tol wins) with
 * the midpoint-threshold guard.  y_sum / y_sq_sum are computed by the
 * caller with NumPy (pairwise reduce / BLAS dot are not replicable
 * here) and passed in.
 *
 * Returns the winning candidate slot j (feature cand[j]) or -1. */
int64_t split_scan(
    const double *X, int64_t p, const double *y,
    const int64_t *sorted_T, int64_t m,
    const int64_t *cand, int64_t k,
    double y_sum, double y_sq_sum,
    int64_t msl, double tol,
    double *out_thr, double *out_sse)
{
    double best_sse = INFINITY;
    int64_t best_j = -1;
    for (int64_t j = 0; j < k; ++j) {
        int64_t f = cand[j];
        const int64_t *rows = sorted_T + f * m;
        double csum = 0.0, csq = 0.0;
        double prev_x = X[rows[0] * p + f];
        double col_best = INFINITY;
        int64_t col_pos = -1;
        for (int64_t i = 0; i + 1 < m; ++i) {
            double yv = y[rows[i]];
            csum += yv;
            csq += yv * yv;
            double next_x = X[rows[i + 1] * p + f];
            int64_t sl = i + 1, sr = m - i - 1;
            if (next_x > prev_x && (msl <= 1 || (sl >= msl && sr >= msl))) {
                double sright = y_sum - csum;
                double sse = (csq - (csum * csum) / (double) sl)
                           + ((y_sq_sum - csq) - (sright * sright) / (double) sr);
                if (sse < col_best || (isnan(sse) && !isnan(col_best))) {
                    col_best = sse;
                    col_pos = i;
                }
            }
            prev_x = next_x;
        }
        if (col_pos >= 0 && col_best < best_sse - tol) {
            best_sse = col_best;
            double xlo = X[rows[col_pos] * p + f];
            double xhi = X[rows[col_pos + 1] * p + f];
            double thr = 0.5 * (xlo + xhi);
            if (thr <= xlo) thr = xhi;
            *out_thr = thr;
            *out_sse = best_sse;
            best_j = j;
        }
    }
    return best_j;
}

/* Per-child node statistics in the Python engine's exact order.
 * st = [mean, var, pure, small].  Purity (an all-equal scan, order
 * independent) is computed for every size; mean/variance only below
 * scalar_max, where NumPy's pairwise summation degenerates to the same
 * plain left-to-right loop — larger children are flagged small=0 and
 * the caller computes their stats with NumPy's pairwise reduce. */
static void child_stats(const double *ys, int64_t m, int64_t scalar_max,
                        double *st)
{
    double first = ys[0];
    int pure = 1;
    for (int64_t i = 0; i < m; ++i)
        if (ys[i] != first) { pure = 0; break; }
    st[2] = (double) pure;
    if (m < scalar_max) {
        double s = 0.0;
        for (int64_t i = 0; i < m; ++i) s += ys[i];
        double mean = s / (double) m;
        double q = 0.0;
        for (int64_t i = 0; i < m; ++i) { double d = ys[i] - mean; q += d * d; }
        st[0] = mean;
        st[1] = q / (double) m;
        st[3] = 1.0;
    } else {
        st[0] = 0.0;
        st[1] = 0.0;
        st[3] = 0.0;
    }
}

/* Fused node partition: one call per split replaces the historical
 * partition_rows + partition_sorted pair and both children's stats.
 *
 * Routes the node's rows left/right of (f, thr) stably into
 * idx_out/ys_out, fills stats[0:4]/stats[4:8] with each child's
 * [mean, var, pure, small] (see child_stats), and — when either child
 * is still splittable (depth_ok, >= mss rows, impure) — splits every
 * presorted feature row by membership into out_T: the left child's
 * (p, n_left) block first, the right child's (p, n_right) block after
 * it, both row-major.  The membership scratch is clean on return.
 * Degenerate partitions (n_left of 0 or m) return immediately with no
 * writes.  Returns the left count. */
int64_t partition_node(
    const double *X, int64_t p,
    const int64_t *idx, const double *ys, int64_t m,
    int64_t f, double thr,
    int64_t *idx_out, double *ys_out, unsigned char *member,
    const int64_t *sorted_T, int64_t depth_ok, int64_t mss,
    int64_t *out_T, int64_t scalar_max, double *stats)
{
    int64_t n_left = 0;
    for (int64_t i = 0; i < m; ++i)
        if (X[idx[i] * p + f] <= thr) ++n_left;
    if (n_left == 0 || n_left == m) return n_left;
    int64_t li = 0, ri = n_left;
    for (int64_t i = 0; i < m; ++i) {
        int64_t g = idx[i];
        if (X[g * p + f] <= thr) {
            member[g] = 1;
            idx_out[li] = g;
            ys_out[li] = ys[i];
            ++li;
        } else {
            idx_out[ri] = g;
            ys_out[ri] = ys[i];
            ++ri;
        }
    }
    int64_t n_right = m - n_left;
    child_stats(ys_out, n_left, scalar_max, stats);
    child_stats(ys_out + n_left, n_right, scalar_max, stats + 4);
    int l_ok = depth_ok && n_left >= mss && stats[2] == 0.0;
    int r_ok = depth_ok && n_right >= mss && stats[6] == 0.0;
    if (l_ok || r_ok) {
        int64_t *ro_base = out_T + p * n_left;
        for (int64_t r = 0; r < p; ++r) {
            const int64_t *row = sorted_T + r * m;
            int64_t *lo = out_T + r * n_left;
            int64_t *ro = ro_base + r * n_right;
            int64_t a = 0, b = 0;
            for (int64_t i = 0; i < m; ++i) {
                int64_t g = row[i];
                if (member[g]) lo[a++] = g;
                else ro[b++] = g;
            }
        }
    }
    for (int64_t i = 0; i < n_left; ++i) member[idx_out[i]] = 0;
    return n_left;
}

/* fit_node param-block slot layout.  ctypes converts every argument
 * of every call, and at 13-16 arguments a split costs more in
 * conversion than in kernel work — so the per-node driver takes just
 * two preconstructed pointers: an int64 block (pointers and integer
 * parameters) and a double block (sums, tolerance, and outputs).
 * Must stay in sync with the FN_* / FD_* constants in this module's
 * Python half. */
enum {
    FN_X = 0, FN_P, FN_Y, FN_T, FN_IDX, FN_YS, FN_M, FN_CAND, FN_K,
    FN_MSL, FN_MSS, FN_DEPTH_OK, FN_OUT_IDX, FN_OUT_YS, FN_OUT_T,
    FN_MEMBER, FN_SCALAR_MAX, FN_OUT_F, FN_SLOTS
};
enum { FD_Y_SUM = 0, FD_Y_SQ_SUM, FD_TOL, FD_THR, FD_SSE, FD_STATS,
       FD_SLOTS = FD_STATS + 8 };

/* One fused call per split: split_scan then partition_node, reading
 * every argument from the two param blocks.  Returns -1 when no valid
 * split exists, else partition_node's left count; the chosen global
 * feature lands in ip[FN_OUT_F], threshold/SSE/child stats in dp. */
int64_t fit_node(int64_t *ip, double *dp)
{
    int64_t m = ip[FN_M];
    const int64_t *cand = (const int64_t *) ip[FN_CAND];
    double thr, sse;
    int64_t j = split_scan(
        (const double *) ip[FN_X], ip[FN_P], (const double *) ip[FN_Y],
        (const int64_t *) ip[FN_T], m, cand, ip[FN_K],
        dp[FD_Y_SUM], dp[FD_Y_SQ_SUM], ip[FN_MSL], dp[FD_TOL],
        &thr, &sse);
    if (j < 0) return -1;
    int64_t f = cand[j];
    ip[FN_OUT_F] = f;
    dp[FD_THR] = thr;
    dp[FD_SSE] = sse;
    return partition_node(
        (const double *) ip[FN_X], ip[FN_P],
        (const int64_t *) ip[FN_IDX], (const double *) ip[FN_YS], m,
        f, thr,
        (int64_t *) ip[FN_OUT_IDX], (double *) ip[FN_OUT_YS],
        (unsigned char *) ip[FN_MEMBER],
        (const int64_t *) ip[FN_T], ip[FN_DEPTH_OK], ip[FN_MSS],
        (int64_t *) ip[FN_OUT_T], ip[FN_SCALAR_MAX], dp + FD_STATS);
}

/* Does (av, ai) sort strictly after (bv, bi) in a stable ascending
 * float sort?  NaNs last (in index order), ties by index — exactly
 * np.argsort(kind="stable") on doubles. */
static int topk_after(double av, int64_t ai, double bv, int64_t bi)
{
    int an = isnan(av), bn = isnan(bv);
    if (an != bn) return an;
    if (!an && av != bv) return av > bv;
    return ai > bi;
}

static void topk_sift_down(double *vals, int64_t *idx, int64_t size)
{
    int64_t c = 0;
    for (;;) {
        int64_t l = 2 * c + 1, r = l + 1, largest = c;
        if (l < size && topk_after(vals[l], idx[l], vals[largest], idx[largest]))
            largest = l;
        if (r < size && topk_after(vals[r], idx[r], vals[largest], idx[largest]))
            largest = r;
        if (largest == c) return;
        double tv = vals[c]; vals[c] = vals[largest]; vals[largest] = tv;
        int64_t ti = idx[c]; idx[c] = idx[largest]; idx[largest] = ti;
        c = largest;
    }
}

/* Fused threshold gate + stable partial top-k: fills out_idx with the
 * first min(k, n) entries of the stable ascending argsort of scores
 * and out_admit with each entry's `!(score >= cutoff)` verdict
 * (cutoff = +inf admits everything).  Returns the count filled. */
int64_t gate_topk(
    const double *scores, int64_t n, int64_t k, double cutoff,
    int64_t *out_idx, unsigned char *out_admit,
    double *heap_vals, int64_t *heap_idx)
{
    if (k > n) k = n;
    if (k <= 0) return 0;
    int64_t size = 0;
    for (int64_t i = 0; i < n; ++i) {
        double v = scores[i];
        if (size < k) {
            int64_t c = size++;
            heap_vals[c] = v;
            heap_idx[c] = i;
            while (c > 0) {
                int64_t parent = (c - 1) / 2;
                if (!topk_after(heap_vals[c], heap_idx[c],
                                heap_vals[parent], heap_idx[parent]))
                    break;
                double tv = heap_vals[c];
                heap_vals[c] = heap_vals[parent]; heap_vals[parent] = tv;
                int64_t ti = heap_idx[c];
                heap_idx[c] = heap_idx[parent]; heap_idx[parent] = ti;
                c = parent;
            }
        } else if (topk_after(heap_vals[0], heap_idx[0], v, i)) {
            heap_vals[0] = v;
            heap_idx[0] = i;
            topk_sift_down(heap_vals, heap_idx, size);
        }
    }
    for (int64_t s = size; s > 0; --s) {
        double v = heap_vals[0];
        out_idx[s - 1] = heap_idx[0];
        out_admit[s - 1] = !(v >= cutoff);
        heap_vals[0] = heap_vals[s - 1];
        heap_idx[0] = heap_idx[s - 1];
        topk_sift_down(heap_vals, heap_idx, s - 1);
    }
    return size;
}
"""

_lib: ctypes.CDLL | None = None
_tried = False
_workdir: tempfile.TemporaryDirectory | None = None  # keeps the .so alive
_diag: dict = {"status": "untried", "compiler": None, "error": None}


def _compiler() -> str | None:
    for name in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if name and shutil.which(name):
            return name
    return None


def _build() -> ctypes.CDLL | None:
    global _workdir
    cc = _compiler()
    if cc is None:
        _diag.update(
            status="no-compiler",
            error="no C compiler on PATH (tried $CC, cc, gcc, clang)",
        )
        return None
    _diag["compiler"] = cc
    _workdir = tempfile.TemporaryDirectory(prefix="repro-native-")
    src = os.path.join(_workdir.name, "kernel.c")
    so = os.path.join(_workdir.name, "kernel.so")
    with open(src, "w") as fh:
        fh.write(_SOURCE)
    proc = subprocess.run(
        [cc, "-O3", "-ffp-contract=off", "-shared", "-fPIC", "-o", so, src, "-lm"],
        capture_output=True,
        timeout=120,
    )
    if proc.returncode != 0:
        stderr = proc.stderr.decode(errors="replace").strip()
        _diag.update(
            status="compile-failed",
            error=stderr[-500:] if stderr else f"{cc} exited with {proc.returncode}",
        )
        return None
    try:
        lib = ctypes.CDLL(so)
    except OSError as exc:
        _diag.update(status="load-failed", error=str(exc))
        return None
    i64 = np.ctypeslib.ndpointer(np.int64, flags="C_CONTIGUOUS")
    f64 = np.ctypeslib.ndpointer(np.float64, flags="C_CONTIGUOUS")
    u8 = np.ctypeslib.ndpointer(np.uint8, flags="C_CONTIGUOUS")
    c_i64 = ctypes.c_int64
    c_f64 = ctypes.c_double
    lib.tree_values.argtypes = [
        i64, f64, i64, i64, f64, i64, c_i64, f64, c_i64, c_i64, f64,
    ]
    lib.tree_values.restype = None
    lib.ensemble_std.argtypes = [f64, c_i64, c_i64, f64, f64]
    lib.ensemble_std.restype = None
    lib.ensemble_mean.argtypes = [f64, c_i64, c_i64, f64]
    lib.ensemble_mean.restype = None
    # The per-node tree-fit kernels are called thousands of times per
    # forest; raw pointers skip ndpointer's per-call flag validation
    # (callers construct the arrays, so dtype/contiguity hold by
    # construction).
    ptr = ctypes.c_void_p
    lib.split_scan.argtypes = [
        ptr, c_i64, ptr, ptr, c_i64, ptr, c_i64,
        c_f64, c_f64, c_i64, c_f64, ptr, ptr,
    ]
    lib.split_scan.restype = c_i64
    lib.partition_node.argtypes = [
        ptr, c_i64, ptr, ptr, c_i64, c_i64, c_f64, ptr, ptr, ptr,
        ptr, c_i64, c_i64, ptr, c_i64, ptr,
    ]
    lib.partition_node.restype = c_i64
    lib.fit_node.argtypes = [ptr, ptr]
    lib.fit_node.restype = c_i64
    lib.gate_topk.argtypes = [f64, c_i64, c_i64, c_f64, i64, u8, f64, i64]
    lib.gate_topk.restype = c_i64
    _diag.update(status="ok", error=None)
    return lib


def available() -> bool:
    """Whether the compiled kernels can be used in this process."""
    global _lib, _tried
    if os.environ.get("REPRO_NATIVE", "1") == "0":
        return False
    if not _tried:
        _tried = True
        try:
            _lib = _build()
        except (OSError, subprocess.SubprocessError) as exc:
            _diag.update(status="compile-failed", error=str(exc))
            _lib = None
        if _lib is None and _diag["status"] in ("compile-failed", "load-failed"):
            # One-time probe warning: a host that *has* a compiler but
            # cannot build the kernel should not degrade silently.
            warnings.warn(
                "repro native kernel build failed "
                f"({_diag['status']}: {_diag['error']}); "
                "falling back to the NumPy paths. Set REPRO_NATIVE=0 to "
                "silence this probe.",
                RuntimeWarning,
                stacklevel=2,
            )
    return _lib is not None


def diagnostics() -> dict:
    """Outcome of the one-time compile probe, for diagnostics surfaces.

    Keys: ``available`` (bool), ``status`` (``"ok"``, ``"disabled"``,
    ``"no-compiler"``, ``"compile-failed"``, or ``"load-failed"``),
    ``compiler`` (the compiler probed, or ``None``), and ``error``
    (the failure detail, or ``None``).
    """
    if os.environ.get("REPRO_NATIVE", "1") == "0":
        return {
            "available": False,
            "status": "disabled",
            "compiler": None,
            "error": None,
        }
    available()
    return {
        "available": _lib is not None,
        "status": _diag["status"],
        "compiler": _diag["compiler"],
        "error": _diag["error"],
    }


def handle() -> ctypes.CDLL | None:
    """The loaded library, or ``None`` — for hot loops that amortize the
    :func:`available` check over many raw-pointer kernel calls."""
    return _lib if available() else None


def tree_values(
    feature: np.ndarray,
    threshold: np.ndarray,
    left: np.ndarray,
    right: np.ndarray,
    value: np.ndarray,
    roots: np.ndarray,
    X: np.ndarray,
    out: np.ndarray | None = None,
) -> np.ndarray | None:
    """Packed traversal via the compiled kernel; ``None`` if unavailable.

    When ``out`` (a C-order ``(n_trees, n)`` float64 array) is given,
    results are written into it and it is returned — callers that score
    many pools can reuse one buffer and skip the page-fault cost of a
    fresh multi-megabyte allocation per call.
    """
    if not available():
        return None
    assert _lib is not None
    n, p = X.shape
    n_trees = len(roots)
    if out is None:
        out = np.empty((n_trees, n))
    _lib.tree_values(
        np.ascontiguousarray(feature, dtype=np.int64),
        np.ascontiguousarray(threshold, dtype=np.float64),
        np.ascontiguousarray(left, dtype=np.int64),
        np.ascontiguousarray(right, dtype=np.int64),
        np.ascontiguousarray(value, dtype=np.float64),
        np.ascontiguousarray(roots, dtype=np.int64),
        n_trees,
        np.ascontiguousarray(X, dtype=np.float64),
        n,
        p,
        out,
    )
    return out


def ensemble_std(vals: np.ndarray) -> np.ndarray | None:
    """Column std of a C-order ``(n_trees, n)`` value matrix, replaying
    NumPy's sequential axis-0 reduction order exactly (bit-identical to
    ``vals.std(axis=0)``); ``None`` if the kernel is unavailable."""
    if not available():
        return None
    assert _lib is not None
    n_trees, n = vals.shape
    mean = np.empty(n)
    out = np.empty(n)
    _lib.ensemble_std(
        np.ascontiguousarray(vals, dtype=np.float64), n_trees, n, mean, out
    )
    return out


def ensemble_mean(vals: np.ndarray) -> np.ndarray | None:
    """Column mean of a C-order ``(n_trees, n)`` value matrix in the
    forest's historical sequential accumulation order (bit-identical to
    ``acc += vals[t]; acc / n_trees``); ``None`` if unavailable."""
    if not available():
        return None
    assert _lib is not None
    n_trees, n = vals.shape
    out = np.empty(n)
    _lib.ensemble_mean(
        np.ascontiguousarray(vals, dtype=np.float64), n_trees, n, out
    )
    return out


def gate_topk(
    scores: np.ndarray, k: int, cutoff: float = np.inf
) -> tuple[np.ndarray, np.ndarray] | None:
    """Fused threshold filter + stable partial top-k over scores.

    Returns ``(order, admit)`` where ``order`` is the first
    ``min(k, len(scores))`` entries of
    ``np.argsort(scores, kind="stable")`` (ascending, ties by index,
    NaNs last) and ``admit[i]`` is the gate verdict
    ``not (scores[order[i]] >= cutoff)`` (NaN admits, matching the
    pruning gates).  ``None`` if the kernel is unavailable.
    """
    if not available():
        return None
    assert _lib is not None
    scores = np.ascontiguousarray(scores, dtype=np.float64)
    n = len(scores)
    k = min(int(k), n)
    out_idx = np.empty(k, dtype=np.int64)
    out_admit = np.empty(k, dtype=np.uint8)
    heap_vals = np.empty(k if k else 1, dtype=np.float64)
    heap_idx = np.empty(k if k else 1, dtype=np.int64)
    filled = _lib.gate_topk(
        scores, n, k, float(cutoff), out_idx, out_admit, heap_vals, heap_idx
    )
    return out_idx[:filled], out_admit[:filled].astype(bool)
