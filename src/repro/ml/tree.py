"""CART regression trees (the building block of the paper's surrogate).

Section III-A: the input space is recursively partitioned into
hyperrectangles; each leaf predicts the mean runtime of the training
configurations that fall inside it (Figure 2 shows such a tree for the
matrix-multiplication kernel).

The implementation stores the tree in flat parallel arrays so that
prediction over a 10,000-configuration pool (the paper's ``N``) is a
handful of vectorized index operations rather than a Python recursion
per row.

Two split-search engines are available and produce bit-identical trees:

* ``"presort"`` (default) — one global stable argsort per feature at
  ``fit()``; sorted index partitions are maintained down the tree
  (sklearn-style), and all candidate features of a node are scanned in
  a single batched prefix-sum pass.  Growth is O(depth · p · n) after
  the initial O(p · n log n) sort, and the constant factor is kept low
  by computing node statistics with raw ufunc reductions (scalar
  arithmetic for tiny nodes, where NumPy's pairwise summation is
  defined to be plain left-to-right).
* ``"legacy"`` — the original per-node-per-feature ``np.argsort``
  search, O(depth · p · n log n).  Kept verbatim as the reference
  implementation for equivalence tests and benchmarking.

The bit-identity argument: node rows are always kept in ascending
global order, so the legacy engine's per-node stable argsort orders
ties by global row index — exactly the order obtained by restricting a
global stable argsort to the node's rows, which is what the presorted
partitions maintain.  Identical element order means identical prefix
sums, identical SSE values, and identical chosen thresholds.
"""

from __future__ import annotations

import ctypes
from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.ml import _native
from repro.ml.base import Regressor, check_X, check_Xy

__all__ = ["DecisionTreeRegressor", "TreeNodes"]

_NO_CHILD = -1

#: Strict-improvement margin shared by both engines so their tie-breaks
#: (first candidate feature wins within the margin) agree bit-for-bit.
_SSE_TOL = 1e-12

_ENGINES = ("presort", "legacy")

#: Below this size NumPy's pairwise summation degenerates to a plain
#: left-to-right loop, so Python scalar arithmetic reproduces it
#: bit-for-bit and skips several array-op dispatches per node.
_SCALAR_SUM_MAX = 8

#: Largest node size routed to the scalar split scan in the NumPy
#: presort engine — below this the batched (k, m) matrix pipeline is
#: dominated by per-op dispatch, and a plain Python loop over the same
#: IEEE-double arithmetic is faster (and bit-identical; the cutoff
#: only picks an implementation, never changes a result).
_SCALAR_SCAN_MAX = 128


@dataclass
class TreeNodes:
    """Flat array representation of a fitted tree.

    ``feature[i] == -1`` marks node ``i`` as a leaf.  For internal
    nodes, rows with ``x[feature] <= threshold`` go to ``left``,
    the rest to ``right``.
    """

    feature: np.ndarray  # (n_nodes,) int
    threshold: np.ndarray  # (n_nodes,) float
    left: np.ndarray  # (n_nodes,) int
    right: np.ndarray  # (n_nodes,) int
    value: np.ndarray  # (n_nodes,) float — mean target in the node
    n_samples: np.ndarray  # (n_nodes,) int
    impurity: np.ndarray  # (n_nodes,) float — within-node MSE

    @property
    def n_nodes(self) -> int:
        return len(self.feature)

    def is_leaf(self, i: int) -> bool:
        return self.feature[i] == -1


def _best_split(
    X: np.ndarray,
    y: np.ndarray,
    feature_ids: np.ndarray,
    min_samples_leaf: int,
) -> tuple[int, float, float] | None:
    """Best (feature, threshold, sse_after) over candidate features.

    Uses the classic prefix-sum trick: with rows sorted by the feature,
    the sum of left+right SSE for every split position comes from the
    cumulative sums of ``y`` and ``y**2``.  Returns ``None`` if no valid
    split exists (all candidate features constant, or leaf-size limits).
    """
    n = len(y)
    best: tuple[int, float, float] | None = None
    best_sse = np.inf
    y_sum = y.sum()
    y_sq_sum = float(np.dot(y, y))
    for f in feature_ids:
        col = X[:, f]
        order = np.argsort(col, kind="stable")
        xs = col[order]
        ys = y[order]
        # Candidate split after position i (1-based left size i+1).
        csum = np.cumsum(ys)
        csq = np.cumsum(ys * ys)
        sizes_left = np.arange(1, n, dtype=float)
        sum_left = csum[:-1]
        sq_left = csq[:-1]
        sum_right = y_sum - sum_left
        sq_right = y_sq_sum - sq_left
        sizes_right = n - sizes_left
        sse = (sq_left - sum_left**2 / sizes_left) + (sq_right - sum_right**2 / sizes_right)
        # Valid positions: value actually changes, and both sides large enough.
        valid = xs[1:] > xs[:-1]
        if min_samples_leaf > 1:
            valid &= (sizes_left >= min_samples_leaf) & (sizes_right >= min_samples_leaf)
        if not np.any(valid):
            continue
        sse = np.where(valid, sse, np.inf)
        pos = int(np.argmin(sse))
        if sse[pos] < best_sse - _SSE_TOL:
            best_sse = float(sse[pos])
            threshold = 0.5 * (xs[pos] + xs[pos + 1])
            # Guard against midpoint rounding onto the left value.
            if threshold <= xs[pos]:
                threshold = xs[pos + 1]
            best = (int(f), float(threshold), best_sse)
    return best


class DecisionTreeRegressor(Regressor):
    """CART regression tree with a vectorized split search.

    Parameters
    ----------
    max_depth:
        Maximum depth (root = depth 0); ``None`` grows until pure.
    min_samples_split:
        Smallest node size eligible for splitting.
    min_samples_leaf:
        Smallest allowed leaf size.
    max_features:
        Number of features examined per split: an int, a fraction in
        (0, 1], ``"sqrt"``, ``"third"`` (the classic regression-forest
        default p/3), or ``None`` for all features.
    rng:
        Generator used for feature subsampling (only consulted when
        ``max_features`` restricts the candidate set).
    engine:
        ``"presort"`` (default, fast) or ``"legacy"`` (reference).
        Both produce bit-identical trees for the same inputs and rng.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | float | str | None = None,
        rng: np.random.Generator | None = None,
        engine: str = "presort",
    ) -> None:
        if max_depth is not None and max_depth < 0:
            raise ModelError(f"max_depth must be >= 0, got {max_depth}")
        if min_samples_split < 2:
            raise ModelError(f"min_samples_split must be >= 2, got {min_samples_split}")
        if min_samples_leaf < 1:
            raise ModelError(f"min_samples_leaf must be >= 1, got {min_samples_leaf}")
        if engine not in _ENGINES:
            raise ModelError(f"unknown engine {engine!r} (expected one of {_ENGINES})")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.engine = engine
        self.nodes: TreeNodes | None = None
        self._importances: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _n_candidate_features(self, p: int) -> int:
        mf = self.max_features
        if mf is None:
            return p
        if isinstance(mf, str):
            if mf == "sqrt":
                return max(1, int(np.sqrt(p)))
            if mf == "third":
                return max(1, p // 3)
            raise ModelError(f"unknown max_features spec {mf!r}")
        if isinstance(mf, float):
            if not 0.0 < mf <= 1.0:
                raise ModelError(f"fractional max_features must be in (0, 1], got {mf}")
            return max(1, int(round(mf * p)))
        k = int(mf)
        if not 1 <= k <= p:
            raise ModelError(f"max_features {k} out of range [1, {p}]")
        return k

    def fit(self, X, y) -> "DecisionTreeRegressor":
        X, y = check_Xy(X, y)
        return self._fit_arrays(X, y)

    def _fit_arrays(
        self, X: np.ndarray, y: np.ndarray, root_sorted: np.ndarray | None = None
    ) -> "DecisionTreeRegressor":
        """Fit on already-validated float arrays.

        ``root_sorted`` optionally supplies the (n, p) global stable
        argsort of ``X`` (the forest batches these across trees).
        """
        if self.engine == "presort":
            return self._fit_presort(X, y, root_sorted)
        return self._fit_legacy(X, y)

    # -- legacy engine (reference implementation) ----------------------
    def _fit_legacy(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        n, p = X.shape
        k = self._n_candidate_features(p)

        feature: list[int] = []
        threshold: list[float] = []
        left: list[int] = []
        right: list[int] = []
        value: list[float] = []
        counts: list[int] = []
        impurity: list[float] = []
        importances = np.zeros(p)

        def new_node(idx: np.ndarray) -> int:
            node = len(feature)
            ys = y[idx]
            feature.append(-1)
            threshold.append(np.nan)
            left.append(_NO_CHILD)
            right.append(_NO_CHILD)
            value.append(float(ys.mean()))
            counts.append(len(idx))
            impurity.append(float(ys.var()))
            return node

        # Iterative depth-first growth with an explicit stack: recursion
        # depth is unbounded for pathological data otherwise.
        root_idx = np.arange(n)
        stack = [(new_node(root_idx), root_idx, 0)]
        while stack:
            node, idx, depth = stack.pop()
            ys = y[idx]
            if (
                len(idx) < self.min_samples_split
                or (self.max_depth is not None and depth >= self.max_depth)
                or np.all(ys == ys[0])
            ):
                continue
            if k < p:
                cand = self.rng.choice(p, size=k, replace=False)
            else:
                cand = np.arange(p)
            found = _best_split(X[idx], ys, cand, self.min_samples_leaf)
            if found is None:
                continue
            f, thr, sse_after = found
            sse_before = float(ys.var()) * len(idx)
            importances[f] += max(0.0, sse_before - sse_after)
            go_left = X[idx, f] <= thr
            left_idx = idx[go_left]
            right_idx = idx[~go_left]
            if len(left_idx) == 0 or len(right_idx) == 0:  # pragma: no cover - guarded
                continue
            feature[node] = f
            threshold[node] = thr
            lchild = new_node(left_idx)
            left[node] = lchild
            stack.append((lchild, left_idx, depth + 1))
            rchild = new_node(right_idx)
            right[node] = rchild
            stack.append((rchild, right_idx, depth + 1))

        self._store(feature, threshold, left, right, value, counts, impurity,
                    importances, p)
        return self

    # -- presort engine (fast path) ------------------------------------
    def _fit_presort(
        self, X: np.ndarray, y: np.ndarray, root_sorted: np.ndarray | None
    ) -> "DecisionTreeRegressor":
        # The native kernels index X/y by raw pointer; contiguity is a
        # no-op copy for the arrays the forest passes in.
        X = np.ascontiguousarray(X)
        y = np.ascontiguousarray(y)
        n, p = X.shape
        k = self._n_candidate_features(p)
        msl = self.min_samples_leaf
        mss = self.min_samples_split
        max_depth = self.max_depth
        rng_choice = self.rng.choice
        add = np.add.reduce  # identical C path to ndarray.sum()
        lib = _native.handle()

        feature: list[int] = []
        threshold: list[float] = []
        left: list[int] = []
        right: list[int] = []
        value: list[float] = []
        counts: list[int] = []
        impurity: list[float] = []
        importances = np.zeros(p)

        def new_node(ys: np.ndarray, m: int) -> tuple[int, bool]:
            """Record a node; returns (id, pure).  Mean/variance follow
            the exact reduction order of ``ndarray.mean``/``var`` (plain
            left-to-right below the pairwise-summation cutoff).  Purity
            needs the explicit all-equal scan: a pure node can still
            report ``var > 0`` when the mean rounds away from the
            common value."""
            node = len(feature)
            if m < _SCALAR_SUM_MAX:
                vals = ys.tolist()
                s = 0.0
                for v in vals:
                    s += v
                mean = s / m
                q = 0.0
                for v in vals:
                    d = v - mean
                    q += d * d
                var = q / m
                first = vals[0]
                pure = True
                for v in vals:
                    if v != first:
                        pure = False
                        break
            else:
                mean_np = add(ys) / m
                d = ys - mean_np
                mean = float(mean_np)
                var = float(add(d * d) / m)
                pure = bool((ys == ys[0]).all())
            feature.append(-1)
            threshold.append(np.nan)
            left.append(_NO_CHILD)
            right.append(_NO_CHILD)
            value.append(mean)
            counts.append(m)
            impurity.append(var)
            return node, pure

        # Per-node-size scratch reused across the whole growth:
        # split-position sizes as broadcastable rows plus the
        # min_samples_leaf validity row.
        sizes_cache: dict[int, tuple[np.ndarray, np.ndarray, np.ndarray | None]] = {}

        def sizes_for(m: int):
            got = sizes_cache.get(m)
            if got is None:
                sl = np.arange(1, m, dtype=float)
                sr = m - sl
                mask = (sl >= msl) & (sr >= msl) if msl > 1 else None
                got = (sl, sr, mask)
                sizes_cache[m] = got
            return got

        arange_p = np.arange(p)
        arange_k = np.arange(k)
        inf = np.inf
        colsT = np.ascontiguousarray(X.T)

        def best_split_scalar(ys, sorted_T, cand, m):
            """Scalar replay of the batched scan for small nodes, where
            the (k, m) matrix pipeline is pure dispatch overhead.
            Python floats are IEEE doubles, so the per-position
            arithmetic below — the native ``split_scan`` loop, already
            proven bit-identical to the matrix pass — rounds exactly
            the same way."""
            y_sum = float(add(ys))
            y_sq_sum = float(np.dot(ys, ys))
            best = None
            best_sse = inf
            # Positions with a left or right side below min_samples_leaf
            # can never split: accumulate their prefix silently and scan
            # only the eligible band [lo, hi).
            lo = msl - 1 if msl > 1 else 0
            hi = m - msl if msl > 1 else m - 1
            for f in cand:
                f = int(f)
                rows = sorted_T[f]
                xs = colsT[f].take(rows).tolist()
                yv = y.take(rows).tolist()
                csum = 0.0
                csq = 0.0
                col_best = inf
                col_pos = -1
                for v in yv[:lo]:
                    csum += v
                    csq += v * v
                prev_x = xs[lo]
                for i, (v, next_x) in enumerate(
                    zip(yv[lo:hi], xs[lo + 1:hi + 1]), start=lo
                ):
                    csum += v
                    csq += v * v
                    if next_x > prev_x:
                        sl = i + 1
                        sright = y_sum - csum
                        sse = (csq - csum * csum / sl) + (
                            (y_sq_sum - csq) - sright * sright / (m - sl)
                        )
                        # NaN wins once, like np.argmin: a NaN column
                        # best is never displaced.
                        if sse < col_best or (sse != sse and col_best == col_best):
                            col_best = sse
                            col_pos = i
                    prev_x = next_x
                if col_pos >= 0 and col_best < best_sse - _SSE_TOL:
                    best_sse = col_best
                    xlo = xs[col_pos]
                    xhi = xs[col_pos + 1]
                    thr = 0.5 * (xlo + xhi)
                    if thr <= xlo:
                        thr = xhi
                    best = (f, thr, best_sse)
            return best

        def best_split(ys, sorted_T, cand, m):
            """Batched :func:`_best_split` over presorted row-major
            (feature, position) matrices — one pass for all candidates."""
            if m <= _SCALAR_SCAN_MAX:
                return best_split_scalar(ys, sorted_T, cand, m)
            y_sum = add(ys)
            y_sq_sum = float(np.dot(ys, ys))
            sub = sorted_T[cand]  # (k, m) global row ids, contiguous rows
            xs = X[sub, cand[:, np.newaxis]]  # (k, m) sorted feature values
            ysm = y[sub]
            csum = ysm.cumsum(axis=1)
            csq = (ysm * ysm).cumsum(axis=1)
            sum_left = csum[:, :-1]
            sq_left = csq[:, :-1]
            sum_right = y_sum - sum_left
            sq_right = y_sq_sum - sq_left
            sl, sr, msl_mask = sizes_for(m)
            sse = (sq_left - sum_left**2 / sl) + (sq_right - sum_right**2 / sr)
            valid = xs[:, 1:] > xs[:, :-1]
            if msl_mask is not None:
                valid &= msl_mask
            col_ok = valid.any(axis=1)
            if not col_ok.any():
                return None
            sse[~valid] = inf
            pos = sse.argmin(axis=1)
            cand_best = sse[arange_k if len(cand) == k else arange_p, pos]
            # Scalar tie-break replaying the legacy per-feature loop:
            # the first candidate within _SSE_TOL of the running best wins.
            best = None
            best_sse = inf
            for j in range(len(cand)):
                if not col_ok[j]:
                    continue
                if cand_best[j] < best_sse - _SSE_TOL:
                    best_sse = float(cand_best[j])
                    p0 = int(pos[j])
                    thr = 0.5 * (xs[j, p0] + xs[j, p0 + 1])
                    if thr <= xs[j, p0]:
                        thr = xs[j, p0 + 1]
                    best = (int(cand[j]), float(thr), best_sse)
            return best

        root_idx = np.arange(n)
        if root_sorted is None:
            root_sorted = np.argsort(X, axis=0, kind="stable")
        # Row-major (feature, position) layout keeps every per-node op
        # on contiguous memory (row slices, axis-1 cumsums, row-major
        # boolean partition).
        sorted_T0 = np.ascontiguousarray(root_sorted.T)
        member = np.zeros(n, dtype=bool)

        def eligible(m: int, depth: int, pure: bool) -> bool:
            return not (
                m < mss or (max_depth is not None and depth >= max_depth) or pure
            )

        root, root_pure = new_node(y, n)

        if lib is not None:
            # Native growth: ONE fused C call per split (fit_node =
            # split_scan + partition_node), replaying the batched NumPy
            # pass above: sequential cumulative sums, same SSE
            # arithmetic and grouping, first-min argmin, same scalar
            # tie-break, stable row routing, presorted-row splits, and
            # both children's statistics in new_node's exact arithmetic
            # order.  Compiled with -ffp-contract=off, so every double
            # op rounds exactly like NumPy's.  Arguments travel through
            # two preconstructed param blocks — ctypes converts every
            # argument of every call, which at this call rate costs
            # more than the kernels — and node buffers bump-allocate
            # from arena blocks, so the loop never re-derives a pointer
            # through ndarray.ctypes.
            native_fit = lib.fit_node
            ip = np.zeros(_native.FN_SLOTS, dtype=np.int64)
            dp = np.zeros(_native.FD_SLOTS)
            cand_buf = np.empty(p, dtype=np.int64)
            ip[_native.FN_X] = X.ctypes.data
            ip[_native.FN_P] = p
            ip[_native.FN_Y] = y.ctypes.data
            ip[_native.FN_CAND] = cand_buf.ctypes.data
            ip[_native.FN_K] = min(k, p)
            ip[_native.FN_MSL] = msl
            ip[_native.FN_MSS] = mss
            ip[_native.FN_MEMBER] = member.ctypes.data
            ip[_native.FN_SCALAR_MAX] = _SCALAR_SUM_MAX
            # y_sum/y_sq_sum stay in NumPy: pairwise reduce and BLAS
            # dot have summation orders plain C loops cannot replay.
            dp[_native.FD_TOL] = _SSE_TOL
            ip_arg = ctypes.c_void_p(ip.ctypes.data)
            dp_arg = ctypes.c_void_p(dp.ctypes.data)
            if k >= p:
                cand_buf[:] = arange_p
            fn_idx = _native.FN_IDX
            fn_ys = _native.FN_YS
            fn_t = _native.FN_T
            fn_m = _native.FN_M
            fn_depth_ok = _native.FN_DEPTH_OK
            fn_out_idx = _native.FN_OUT_IDX
            fn_out_ys = _native.FN_OUT_YS
            fn_out_t = _native.FN_OUT_T
            fd_stats = _native.FD_STATS

            def record_child(ys_c, mc, off):
                """Record a child whose purity fit_node already
                determined; small children arrive with their scalar
                mean/var, larger ones replay new_node's pairwise path."""
                if dp[off + 3]:
                    mean = float(dp[off])
                    var = float(dp[off + 1])
                else:
                    mean_np = add(ys_c) / mc
                    d = ys_c - mean_np
                    mean = float(mean_np)
                    var = float(add(d * d) / mc)
                child = len(feature)
                feature.append(-1)
                threshold.append(np.nan)
                left.append(_NO_CHILD)
                right.append(_NO_CHILD)
                value.append(mean)
                counts.append(mc)
                impurity.append(var)
                return child

            # Arena blocks for node buffers (out_idx + out_T share an
            # int64 block, out_ys a float64 block); kept alive for the
            # whole fit, grown on demand.
            blocks: list = []
            arena_i = arena_f = None
            base_i = base_f = cap_i = cap_f = off_i = off_f = 0

            stack = []
            if eligible(n, 0, root_pure):
                stack.append(
                    (root, y, 0, root_idx.ctypes.data, y.ctypes.data,
                     sorted_T0.ctypes.data)
                )
            while stack:
                node, ys, depth, idx_ptr, ys_ptr, T_ptr = stack.pop()
                m = len(ys)
                if k < p:
                    cand_buf[:k] = rng_choice(p, size=k, replace=False)
                need_i = (p + 1) * m
                if off_i + need_i > cap_i:
                    arena_i = np.empty(max(need_i, 1 << 14), dtype=np.int64)
                    blocks.append(arena_i)
                    base_i = arena_i.ctypes.data
                    cap_i = len(arena_i)
                    off_i = 0
                if off_f + m > cap_f:
                    arena_f = np.empty(max(m, 1 << 12))
                    blocks.append(arena_f)
                    base_f = arena_f.ctypes.data
                    cap_f = len(arena_f)
                    off_f = 0
                oy = off_f
                oi_p = base_i + 8 * off_i
                oy_p = base_f + 8 * oy
                bT_p = oi_p + 8 * m
                off_i += need_i
                off_f += m
                child_depth = depth + 1
                depth_ok = max_depth is None or child_depth < max_depth
                ip[fn_idx] = idx_ptr
                ip[fn_ys] = ys_ptr
                ip[fn_t] = T_ptr
                ip[fn_m] = m
                ip[fn_depth_ok] = depth_ok
                ip[fn_out_idx] = oi_p
                ip[fn_out_ys] = oy_p
                ip[fn_out_t] = bT_p
                dp[0] = add(ys)
                dp[1] = np.dot(ys, ys)
                n_left = native_fit(ip_arg, dp_arg)
                if n_left < 0:
                    continue
                f = int(ip[_native.FN_OUT_F])
                sse_before = impurity[node] * m
                importances[f] += max(0.0, sse_before - dp[_native.FD_SSE])
                if n_left == 0 or n_left == m:  # pragma: no cover - guarded
                    continue
                n_right = m - n_left
                feature[node] = f
                threshold[node] = dp[_native.FD_THR]
                ys_left = arena_f[oy:oy + n_left]
                ys_right = arena_f[oy + n_left:oy + m]
                lchild = record_child(ys_left, n_left, fd_stats)
                left[node] = lchild
                rchild = record_child(ys_right, n_right, fd_stats + 4)
                right[node] = rchild
                if depth_ok and n_left >= mss and not dp[fd_stats + 2]:
                    stack.append(
                        (lchild, ys_left, child_depth, oi_p, oy_p, bT_p)
                    )
                if depth_ok and n_right >= mss and not dp[fd_stats + 6]:
                    stack.append(
                        (rchild, ys_right, child_depth,
                         oi_p + 8 * n_left, oy_p + 8 * n_left,
                         bT_p + 8 * p * n_left)
                    )
            self._store(feature, threshold, left, right, value, counts,
                        impurity, importances, p)
            return self

        stack = []
        if eligible(n, 0, root_pure):
            stack.append((root, root_idx, y, 0, sorted_T0))
        while stack:
            node, idx, ys, depth, sorted_T = stack.pop()
            m = len(idx)
            cand = rng_choice(p, size=k, replace=False) if k < p else arange_p
            found = best_split(ys, sorted_T, cand, m)
            if found is None:
                continue
            f, thr, sse_after = found
            sse_before = impurity[node] * m  # impurity is exactly float(ys.var())
            importances[f] += max(0.0, sse_before - sse_after)
            # Flat take on the transposed copy beats the strided 2-D
            # fancy index; the compared values are identical either way.
            go_left = colsT[f].take(idx) <= thr
            not_left = ~go_left
            ys_left = ys[go_left]
            ys_right = ys[not_left]
            n_left = len(ys_left)
            if n_left == 0 or n_left == m:  # pragma: no cover - guarded by valid
                continue
            feature[node] = f
            threshold[node] = thr
            lchild, lpure = new_node(ys_left, n_left)
            left[node] = lchild
            rchild, rpure = new_node(ys_right, m - n_left)
            right[node] = rchild
            child_depth = depth + 1
            l_ok = eligible(n_left, child_depth, lpure)
            r_ok = eligible(m - n_left, child_depth, rpure)
            if l_ok or r_ok:
                # Stable partition of every presorted row: each row holds
                # the same row set, so each keeps exactly n_left
                # left-members, in unchanged relative order.  Skipped
                # entirely when both children are terminal leaves.
                left_idx = idx[go_left]
                member[left_idx] = True
                sel = member[sorted_T]
                left_T = sorted_T[sel].reshape(p, n_left)
                right_T = sorted_T[~sel].reshape(p, m - n_left)
                member[left_idx] = False
                if l_ok:
                    stack.append((lchild, left_idx, ys_left, child_depth, left_T))
                if r_ok:
                    stack.append(
                        (rchild, idx[not_left], ys_right, child_depth, right_T)
                    )

        self._store(feature, threshold, left, right, value, counts, impurity,
                    importances, p)
        return self

    def _store(self, feature, threshold, left, right, value, counts, impurity,
               importances, p) -> None:
        self.nodes = TreeNodes(
            feature=np.array(feature, dtype=int),
            threshold=np.array(threshold, dtype=float),
            left=np.array(left, dtype=int),
            right=np.array(right, dtype=int),
            value=np.array(value, dtype=float),
            n_samples=np.array(counts, dtype=int),
            impurity=np.array(impurity, dtype=float),
        )
        total = importances.sum()
        self._importances = importances / total if total > 0 else importances
        self._n_features = p

    # ------------------------------------------------------------------
    def apply(self, X) -> np.ndarray:
        """Leaf index reached by each row of ``X``."""
        p = self._require_fitted()
        X = check_X(X, p)
        nodes = self.nodes
        assert nodes is not None
        pos = np.zeros(X.shape[0], dtype=int)
        active = nodes.feature[pos] != -1
        while np.any(active):
            cur = pos[active]
            f = nodes.feature[cur]
            thr = nodes.threshold[cur]
            rows = np.flatnonzero(active)
            go_left = X[rows, f] <= thr
            nxt = np.where(go_left, nodes.left[cur], nodes.right[cur])
            pos[rows] = nxt
            active = nodes.feature[pos] != -1
        return pos

    def predict(self, X) -> np.ndarray:
        nodes = self.nodes
        if nodes is None:
            self._require_fitted()
        leaves = self.apply(X)
        return self.nodes.value[leaves]  # type: ignore[union-attr]

    # ------------------------------------------------------------------
    @property
    def feature_importances_(self) -> np.ndarray:
        self._require_fitted()
        assert self._importances is not None
        return self._importances

    @property
    def depth(self) -> int:
        """Depth of the fitted tree (root = 0)."""
        self._require_fitted()
        nodes = self.nodes
        assert nodes is not None
        if nodes.n_nodes == 0:  # pragma: no cover - fit always creates a root
            return 0
        # Level-order frontier walk: one vectorized step per level
        # instead of a Python loop over every node.
        depth = 0
        frontier = np.array([0])
        while True:
            internal = frontier[nodes.feature[frontier] != -1]
            if internal.size == 0:
                return depth
            frontier = np.concatenate([nodes.left[internal], nodes.right[internal]])
            depth += 1

    @property
    def n_leaves(self) -> int:
        self._require_fitted()
        assert self.nodes is not None
        return int(np.sum(self.nodes.feature == -1))
