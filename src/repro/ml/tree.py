"""CART regression trees (the building block of the paper's surrogate).

Section III-A: the input space is recursively partitioned into
hyperrectangles; each leaf predicts the mean runtime of the training
configurations that fall inside it (Figure 2 shows such a tree for the
matrix-multiplication kernel).

The implementation stores the tree in flat parallel arrays so that
prediction over a 10,000-configuration pool (the paper's ``N``) is a
handful of vectorized index operations rather than a Python recursion
per row.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.ml.base import Regressor, check_X, check_Xy

__all__ = ["DecisionTreeRegressor", "TreeNodes"]

_NO_CHILD = -1


@dataclass
class TreeNodes:
    """Flat array representation of a fitted tree.

    ``feature[i] == -1`` marks node ``i`` as a leaf.  For internal
    nodes, rows with ``x[feature] <= threshold`` go to ``left``,
    the rest to ``right``.
    """

    feature: np.ndarray  # (n_nodes,) int
    threshold: np.ndarray  # (n_nodes,) float
    left: np.ndarray  # (n_nodes,) int
    right: np.ndarray  # (n_nodes,) int
    value: np.ndarray  # (n_nodes,) float — mean target in the node
    n_samples: np.ndarray  # (n_nodes,) int
    impurity: np.ndarray  # (n_nodes,) float — within-node MSE

    @property
    def n_nodes(self) -> int:
        return len(self.feature)

    def is_leaf(self, i: int) -> bool:
        return self.feature[i] == -1


def _best_split(
    X: np.ndarray,
    y: np.ndarray,
    feature_ids: np.ndarray,
    min_samples_leaf: int,
) -> tuple[int, float, float] | None:
    """Best (feature, threshold, sse_after) over candidate features.

    Uses the classic prefix-sum trick: with rows sorted by the feature,
    the sum of left+right SSE for every split position comes from the
    cumulative sums of ``y`` and ``y**2``.  Returns ``None`` if no valid
    split exists (all candidate features constant, or leaf-size limits).
    """
    n = len(y)
    best: tuple[int, float, float] | None = None
    best_sse = np.inf
    y_sum = y.sum()
    y_sq_sum = float(np.dot(y, y))
    for f in feature_ids:
        col = X[:, f]
        order = np.argsort(col, kind="stable")
        xs = col[order]
        ys = y[order]
        # Candidate split after position i (1-based left size i+1).
        csum = np.cumsum(ys)
        csq = np.cumsum(ys * ys)
        sizes_left = np.arange(1, n, dtype=float)
        sum_left = csum[:-1]
        sq_left = csq[:-1]
        sum_right = y_sum - sum_left
        sq_right = y_sq_sum - sq_left
        sizes_right = n - sizes_left
        sse = (sq_left - sum_left**2 / sizes_left) + (sq_right - sum_right**2 / sizes_right)
        # Valid positions: value actually changes, and both sides large enough.
        valid = xs[1:] > xs[:-1]
        if min_samples_leaf > 1:
            valid &= (sizes_left >= min_samples_leaf) & (sizes_right >= min_samples_leaf)
        if not np.any(valid):
            continue
        sse = np.where(valid, sse, np.inf)
        pos = int(np.argmin(sse))
        if sse[pos] < best_sse - 1e-12:
            best_sse = float(sse[pos])
            threshold = 0.5 * (xs[pos] + xs[pos + 1])
            # Guard against midpoint rounding onto the left value.
            if threshold <= xs[pos]:
                threshold = xs[pos + 1]
            best = (int(f), float(threshold), best_sse)
    return best


class DecisionTreeRegressor(Regressor):
    """CART regression tree with a vectorized split search.

    Parameters
    ----------
    max_depth:
        Maximum depth (root = depth 0); ``None`` grows until pure.
    min_samples_split:
        Smallest node size eligible for splitting.
    min_samples_leaf:
        Smallest allowed leaf size.
    max_features:
        Number of features examined per split: an int, a fraction in
        (0, 1], ``"sqrt"``, ``"third"`` (the classic regression-forest
        default p/3), or ``None`` for all features.
    rng:
        Generator used for feature subsampling (only consulted when
        ``max_features`` restricts the candidate set).
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | float | str | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if max_depth is not None and max_depth < 0:
            raise ModelError(f"max_depth must be >= 0, got {max_depth}")
        if min_samples_split < 2:
            raise ModelError(f"min_samples_split must be >= 2, got {min_samples_split}")
        if min_samples_leaf < 1:
            raise ModelError(f"min_samples_leaf must be >= 1, got {min_samples_leaf}")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.nodes: TreeNodes | None = None
        self._importances: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _n_candidate_features(self, p: int) -> int:
        mf = self.max_features
        if mf is None:
            return p
        if isinstance(mf, str):
            if mf == "sqrt":
                return max(1, int(np.sqrt(p)))
            if mf == "third":
                return max(1, p // 3)
            raise ModelError(f"unknown max_features spec {mf!r}")
        if isinstance(mf, float):
            if not 0.0 < mf <= 1.0:
                raise ModelError(f"fractional max_features must be in (0, 1], got {mf}")
            return max(1, int(round(mf * p)))
        k = int(mf)
        if not 1 <= k <= p:
            raise ModelError(f"max_features {k} out of range [1, {p}]")
        return k

    def fit(self, X, y) -> "DecisionTreeRegressor":
        X, y = check_Xy(X, y)
        n, p = X.shape
        k = self._n_candidate_features(p)

        feature: list[int] = []
        threshold: list[float] = []
        left: list[int] = []
        right: list[int] = []
        value: list[float] = []
        counts: list[int] = []
        impurity: list[float] = []
        importances = np.zeros(p)

        def new_node(idx: np.ndarray) -> int:
            node = len(feature)
            ys = y[idx]
            feature.append(-1)
            threshold.append(np.nan)
            left.append(_NO_CHILD)
            right.append(_NO_CHILD)
            value.append(float(ys.mean()))
            counts.append(len(idx))
            impurity.append(float(ys.var()))
            return node

        # Iterative depth-first growth with an explicit stack: recursion
        # depth is unbounded for pathological data otherwise.
        root_idx = np.arange(n)
        stack = [(new_node(root_idx), root_idx, 0)]
        while stack:
            node, idx, depth = stack.pop()
            ys = y[idx]
            if (
                len(idx) < self.min_samples_split
                or (self.max_depth is not None and depth >= self.max_depth)
                or np.all(ys == ys[0])
            ):
                continue
            if k < p:
                cand = self.rng.choice(p, size=k, replace=False)
            else:
                cand = np.arange(p)
            found = _best_split(X[idx], ys, cand, self.min_samples_leaf)
            if found is None:
                continue
            f, thr, sse_after = found
            sse_before = float(ys.var()) * len(idx)
            importances[f] += max(0.0, sse_before - sse_after)
            go_left = X[idx, f] <= thr
            left_idx = idx[go_left]
            right_idx = idx[~go_left]
            if len(left_idx) == 0 or len(right_idx) == 0:  # pragma: no cover - guarded
                continue
            feature[node] = f
            threshold[node] = thr
            lchild = new_node(left_idx)
            left[node] = lchild
            stack.append((lchild, left_idx, depth + 1))
            rchild = new_node(right_idx)
            right[node] = rchild
            stack.append((rchild, right_idx, depth + 1))

        self.nodes = TreeNodes(
            feature=np.array(feature, dtype=int),
            threshold=np.array(threshold, dtype=float),
            left=np.array(left, dtype=int),
            right=np.array(right, dtype=int),
            value=np.array(value, dtype=float),
            n_samples=np.array(counts, dtype=int),
            impurity=np.array(impurity, dtype=float),
        )
        total = importances.sum()
        self._importances = importances / total if total > 0 else importances
        self._n_features = p
        return self

    # ------------------------------------------------------------------
    def apply(self, X) -> np.ndarray:
        """Leaf index reached by each row of ``X``."""
        p = self._require_fitted()
        X = check_X(X, p)
        nodes = self.nodes
        assert nodes is not None
        pos = np.zeros(X.shape[0], dtype=int)
        active = nodes.feature[pos] != -1
        while np.any(active):
            cur = pos[active]
            f = nodes.feature[cur]
            thr = nodes.threshold[cur]
            rows = np.flatnonzero(active)
            go_left = X[rows, f] <= thr
            nxt = np.where(go_left, nodes.left[cur], nodes.right[cur])
            pos[rows] = nxt
            active = nodes.feature[pos] != -1
        return pos

    def predict(self, X) -> np.ndarray:
        nodes = self.nodes
        if nodes is None:
            self._require_fitted()
        leaves = self.apply(X)
        return self.nodes.value[leaves]  # type: ignore[union-attr]

    # ------------------------------------------------------------------
    @property
    def feature_importances_(self) -> np.ndarray:
        self._require_fitted()
        assert self._importances is not None
        return self._importances

    @property
    def depth(self) -> int:
        """Depth of the fitted tree (root = 0)."""
        self._require_fitted()
        nodes = self.nodes
        assert nodes is not None
        depths = np.zeros(nodes.n_nodes, dtype=int)
        # Children always appear after their parent in the arrays.
        for i in range(nodes.n_nodes):
            if nodes.feature[i] != -1:
                depths[nodes.left[i]] = depths[i] + 1
                depths[nodes.right[i]] = depths[i] + 1
        return int(depths.max()) if nodes.n_nodes else 0

    @property
    def n_leaves(self) -> int:
        self._require_fitted()
        assert self.nodes is not None
        return int(np.sum(self.nodes.feature == -1))
