"""Random forest regression (Breiman 2001) — the paper's surrogate model.

Each tree is grown on a bootstrap resample of the training set with a
random feature subset considered at every split; the forest predicts
the mean of its trees.  Out-of-bag (OOB) predictions give an unbiased
generalization estimate without a held-out set — useful because the
paper's training sets are only ``nmax = 100`` evaluations.

Prediction runs through a *packed* representation: every tree's flat
node arrays are concatenated into one offset-indexed structure, so
scoring the 10k-configuration pool is a single vectorized traversal of
all trees at once instead of a Python loop of ``n_estimators``
``tree.predict`` calls.  The packed path routes each row through
exactly the same comparisons as the per-tree path, so its outputs are
bit-identical.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from repro.errors import ModelError
from repro.ml import _native
from repro.ml.base import Regressor, check_X, check_Xy
from repro.ml.tree import DecisionTreeRegressor
from repro.utils.parallel import default_workers, parallel_map
from repro.utils.rng import RngFactory

__all__ = ["PackedTrees", "RandomForestRegressor"]


class PackedTrees:
    """Offset-indexed concatenation of an ensemble's flat node arrays.

    Child pointers are rebased into the concatenated index space, so a
    single (tree, row) cursor array can walk every tree of the ensemble
    simultaneously.  Traversal decisions are the same
    ``x[feature] <= threshold`` comparisons each tree's own ``apply``
    performs, so per-tree values read from the packed arrays are
    bit-identical to ``tree.predict``.
    """

    __slots__ = (
        "feature", "threshold", "left", "right", "value", "roots", "_scratch",
    )

    def __init__(self, trees: list[DecisionTreeRegressor]) -> None:
        if not trees:
            raise ModelError("cannot pack an empty ensemble")
        sizes = np.array([t.nodes.n_nodes for t in trees])
        offsets = np.concatenate([[0], np.cumsum(sizes)[:-1]])
        self.feature = np.concatenate([t.nodes.feature for t in trees])
        self.threshold = np.concatenate([t.nodes.threshold for t in trees])
        self.value = np.concatenate([t.nodes.value for t in trees])
        # Rebase child ids; leaves keep a self-loop-free sentinel as-is.
        self.left = np.concatenate(
            [t.nodes.left + off for t, off in zip(trees, offsets)]
        )
        self.right = np.concatenate(
            [t.nodes.right + off for t, off in zip(trees, offsets)]
        )
        self.roots = offsets
        self._scratch: np.ndarray | None = None

    @property
    def n_trees(self) -> int:
        return len(self.roots)

    def _values_scratch(self, n: int) -> np.ndarray:
        """Reusable ``(n_trees, n)`` output buffer.  Scoring a 10k pool
        materializes a multi-megabyte matrix; a fresh allocation per
        call pays mmap page faults, so internal hot paths (predict,
        predict_std, OOB) reuse one buffer.  Only for callers that
        fully consume the values before the next call — the public
        ``tree_values`` default stays a fresh allocation."""
        if self._scratch is None or self._scratch.shape[1] != n:
            self._scratch = np.empty((self.n_trees, n))
        return self._scratch

    def tree_values(self, X: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Per-tree predictions, shape ``(n_trees, n_rows)``.

        Uses the compiled traversal kernel when the host has a C
        compiler (bit-identical — same comparisons, same leaf values),
        otherwise a NumPy traversal with a shrinking active set: each
        step advances every (tree, row) cursor still at an internal
        node, dropping cursors as they reach leaves.

        ``out`` is an optional preallocated result buffer; the returned
        array is authoritative (the NumPy fallback may ignore ``out``).
        """
        native = _native.tree_values(
            self.feature, self.threshold, self.left, self.right,
            self.value, self.roots, X, out,
        )
        if native is not None:
            return native
        # NumPy fallback: per-tree depth-first row partitioning.  Each
        # internal node splits its surviving row set with one comparison
        # gather, so work is O(rows reaching the node) instead of the
        # per-level full-cursor updates of the historical traversal —
        # about 3x faster on a 10k-row pool, and trivially bit-identical
        # (the leaf values are copied, not computed).
        n_trees = len(self.roots)
        n = X.shape[0]
        if out is None or out.shape != (n_trees, n):
            out = np.empty((n_trees, n))
        feature, threshold = self.feature, self.threshold
        left, right, value = self.left, self.right, self.value
        # Column-major copy of the pool: each node compares one feature
        # across its surviving rows, and a contiguous column turns that
        # gather into a flat 1-D take instead of a strided 2-D fancy
        # index.  Values are copied, not computed, so the layout cannot
        # affect the result.
        cols = np.ascontiguousarray(X.T)
        all_rows = np.arange(n)
        for t in range(n_trees):
            row_out = out[t]
            stack = [(int(self.roots[t]), all_rows)]
            while stack:
                node, rows = stack.pop()
                f = feature[node]
                if f < 0:
                    row_out[rows] = value[node]
                    continue
                go_left = cols[f].take(rows) <= threshold[node]
                stack.append((int(left[node]), rows[go_left]))
                stack.append((int(right[node]), rows[~go_left]))
        return out

    def values_std(self, X: np.ndarray) -> np.ndarray:
        """Column std of the per-tree predictions, bit-identical to
        ``tree_values(X).std(axis=0)``.  The fused kernel skips the two
        extra ``(n_trees, n)`` temporaries NumPy's ``std`` allocates."""
        vals = self.tree_values(X, out=self._values_scratch(X.shape[0]))
        std = _native.ensemble_std(vals)
        if std is not None:
            return std
        return vals.std(axis=0)


def _fit_one_tree(
    X: np.ndarray,
    y: np.ndarray,
    params: dict,
    seed: int,
    t: int,
) -> tuple[DecisionTreeRegressor, np.ndarray]:
    """Grow bootstrap tree ``t`` (module-level so process pools can
    pickle it).  Both the bootstrap and split streams are independent
    children of the forest seed, so results do not depend on which
    worker grows which tree."""
    factory = RngFactory("random-forest", seed=seed)
    rng = factory.child("tree", t)
    sample = rng.integers(0, len(y), size=len(y))
    tree = DecisionTreeRegressor(rng=factory.child("split", t), **params)
    tree._fit_arrays(X[sample], y[sample])
    return tree, sample


class RandomForestRegressor(Regressor):
    """Bagged ensemble of CART trees.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_features:
        Per-split feature subset (default ``"third"``, the classic
        regression-forest choice of p/3).
    max_depth, min_samples_split, min_samples_leaf:
        Passed through to each tree.
    seed:
        Root seed; tree ``i`` draws from an independent child stream,
        so results do not depend on construction order.
    n_jobs:
        Worker processes for tree fitting: ``None``/``1`` fits
        serially, ``-1`` uses :func:`default_workers`.  The child-seed
        streams make every setting produce identical forests.
    engine:
        Split-search engine passed to each tree (``"presort"`` or
        ``"legacy"``); both grow bit-identical trees.
    """

    def __init__(
        self,
        n_estimators: int = 64,
        max_features: int | float | str | None = "third",
        max_depth: int | None = None,
        min_samples_split: int = 5,
        min_samples_leaf: int = 2,
        seed: int = 0,
        n_jobs: int | None = None,
        engine: str = "presort",
    ) -> None:
        if n_estimators < 1:
            raise ModelError(f"n_estimators must be >= 1, got {n_estimators}")
        if n_jobs is not None and n_jobs == 0:
            raise ModelError("n_jobs must be a positive count, -1, or None")
        self.n_estimators = n_estimators
        self.max_features = max_features
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.seed = seed
        self.n_jobs = n_jobs
        self.engine = engine
        self.trees: list[DecisionTreeRegressor] = []
        self._packed: PackedTrees | None = None
        self._oob_prediction: np.ndarray | None = None
        self._importances: np.ndarray | None = None

    @classmethod
    def from_spec(
        cls, spec=None, n_jobs: int | None = None, engine: str = "presort"
    ) -> "RandomForestRegressor":
        """Build a forest from a :class:`repro.spec.ForestSpec`.

        The single construction path for every forest the tuner builds
        (surrogate and SMBO refit alike), so hyperparameter defaults
        live in one place.  ``n_jobs``/``engine`` stay separate: they
        are execution details, not tuner hyperparameters.
        """
        from repro.spec import ForestSpec

        if spec is None:
            spec = ForestSpec()
        return cls(
            n_estimators=spec.n_estimators,
            max_features=spec.max_features,
            max_depth=spec.max_depth,
            min_samples_split=spec.min_samples_split,
            min_samples_leaf=spec.min_samples_leaf,
            seed=spec.seed,
            n_jobs=n_jobs,
            engine=engine,
        )

    def _tree_params(self) -> dict:
        return {
            "max_depth": self.max_depth,
            "min_samples_split": self.min_samples_split,
            "min_samples_leaf": self.min_samples_leaf,
            "max_features": self.max_features,
            "engine": self.engine,
        }

    def fit(self, X, y) -> "RandomForestRegressor":
        X, y = check_Xy(X, y)
        n, p = X.shape
        n_jobs = self.n_jobs
        if n_jobs == -1:
            n_jobs = default_workers()
        if n_jobs is not None and n_jobs > 1:
            grown = parallel_map(
                partial(_fit_one_tree, X, y, self._tree_params(), self.seed),
                range(self.n_estimators),
                n_workers=n_jobs,
                chunksize=max(1, self.n_estimators // (4 * n_jobs)),
            )
            samples = np.stack([sample for _, sample in grown])
            self.trees = [tree for tree, _ in grown]
        else:
            self.trees, samples = self._fit_serial(X, y, n, p)
        importances = np.zeros(p)
        for tree in self.trees:
            importances += tree.feature_importances_
        self._packed = PackedTrees(self.trees)
        # OOB bookkeeping, batched: one bincount per tree gives the O(n)
        # out-of-bag mask, and one packed traversal of the training rows
        # yields every tree's predictions at once.
        vals = self._packed.tree_values(X)
        oob_sum = np.zeros(n)
        oob_count = np.zeros(n)
        for t in range(self.n_estimators):
            out_of_bag = np.flatnonzero(np.bincount(samples[t], minlength=n) == 0)
            if out_of_bag.size:
                oob_sum[out_of_bag] += vals[t, out_of_bag]
                oob_count[out_of_bag] += 1
        self._n_features = p
        with np.errstate(invalid="ignore", divide="ignore"):
            self._oob_prediction = np.where(oob_count > 0, oob_sum / oob_count, np.nan)
        total = importances.sum()
        self._importances = importances / total if total > 0 else importances
        self._y_train = y
        return self

    def _fit_serial(
        self, X: np.ndarray, y: np.ndarray, n: int, p: int
    ) -> tuple[list[DecisionTreeRegressor], np.ndarray]:
        """Serial growth with the per-tree root argsorts batched into a
        single (T, n, p) stable sort — the forest-level half of the
        presorted split search."""
        factory = RngFactory("random-forest", seed=self.seed)
        params = self._tree_params()
        samples = np.stack(
            [
                factory.child("tree", t).integers(0, n, size=n)
                for t in range(self.n_estimators)
            ]
        )
        Xb = X[samples]  # (T, n, p) bootstrap designs
        if self.engine == "presort":
            root_sorted = np.argsort(Xb, axis=1, kind="stable")
        trees = []
        for t in range(self.n_estimators):
            tree = DecisionTreeRegressor(rng=factory.child("split", t), **params)
            tree._fit_arrays(
                Xb[t],
                y[samples[t]],
                root_sorted=root_sorted[t] if self.engine == "presort" else None,
            )
            trees.append(tree)
        return trees, samples

    def predict(self, X) -> np.ndarray:
        p = self._require_fitted()
        X = check_X(X, p)
        vals = self._tree_values(X)
        # Accumulate tree-by-tree in index order: the exact addition
        # sequence of the historical per-tree loop, so results stay
        # bit-identical to pre-packed forests.  The fused kernel replays
        # that order in C.
        mean = _native.ensemble_mean(vals)
        if mean is not None:
            return mean
        acc = np.zeros(X.shape[0])
        for t in range(vals.shape[0]):
            acc += vals[t]
        return acc / len(self.trees)

    def predict_std(self, X) -> np.ndarray:
        """Ensemble disagreement (std of per-tree predictions).

        The cheap epistemic-uncertainty estimate behind model-based
        search: high where the forest has seen little training data.
        """
        p = self._require_fitted()
        X = check_X(X, p)
        if self._packed is None:
            self._packed = PackedTrees(self.trees)
        return self._packed.values_std(X)

    def _tree_values(self, X: np.ndarray) -> np.ndarray:
        """Per-tree predictions via the packed traversal (scratch
        buffer reused — consume before the next prediction call)."""
        if self._packed is None:
            self._packed = PackedTrees(self.trees)
        return self._packed.tree_values(
            X, out=self._packed._values_scratch(X.shape[0])
        )

    # ------------------------------------------------------------------
    @staticmethod
    def diagnostics() -> dict:
        """Native-kernel probe outcome for this process (see
        :func:`repro.ml._native.diagnostics`): whether the compiled
        fit/predict kernels are in use and, if not, why the build
        failed.  A degraded forest still produces bit-identical results
        through the NumPy paths — this surfaces the *speed* regression."""
        return _native.diagnostics()

    @property
    def oob_prediction_(self) -> np.ndarray:
        """Per-training-row OOB prediction (NaN where always in-bag)."""
        self._require_fitted()
        assert self._oob_prediction is not None
        return self._oob_prediction

    def oob_score(self) -> float:
        """OOB R² over the rows that received at least one OOB vote."""
        from repro.ml.metrics import r2_score

        pred = self.oob_prediction_
        mask = np.isfinite(pred)
        if mask.sum() < 2:
            raise ModelError("too few OOB rows to compute a score; add trees")
        return r2_score(self._y_train[mask], pred[mask])

    @property
    def feature_importances_(self) -> np.ndarray:
        self._require_fitted()
        assert self._importances is not None
        return self._importances
