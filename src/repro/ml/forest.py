"""Random forest regression (Breiman 2001) — the paper's surrogate model.

Each tree is grown on a bootstrap resample of the training set with a
random feature subset considered at every split; the forest predicts
the mean of its trees.  Out-of-bag (OOB) predictions give an unbiased
generalization estimate without a held-out set — useful because the
paper's training sets are only ``nmax = 100`` evaluations.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.ml.base import Regressor, check_X, check_Xy
from repro.ml.tree import DecisionTreeRegressor
from repro.utils.rng import RngFactory

__all__ = ["RandomForestRegressor"]


class RandomForestRegressor(Regressor):
    """Bagged ensemble of CART trees.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_features:
        Per-split feature subset (default ``"third"``, the classic
        regression-forest choice of p/3).
    max_depth, min_samples_split, min_samples_leaf:
        Passed through to each tree.
    seed:
        Root seed; tree ``i`` draws from an independent child stream,
        so results do not depend on construction order.
    """

    def __init__(
        self,
        n_estimators: int = 64,
        max_features: int | float | str | None = "third",
        max_depth: int | None = None,
        min_samples_split: int = 5,
        min_samples_leaf: int = 2,
        seed: int = 0,
    ) -> None:
        if n_estimators < 1:
            raise ModelError(f"n_estimators must be >= 1, got {n_estimators}")
        self.n_estimators = n_estimators
        self.max_features = max_features
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.seed = seed
        self.trees: list[DecisionTreeRegressor] = []
        self._oob_prediction: np.ndarray | None = None
        self._importances: np.ndarray | None = None

    def fit(self, X, y) -> "RandomForestRegressor":
        X, y = check_Xy(X, y)
        n, p = X.shape
        factory = RngFactory("random-forest", seed=self.seed)
        self.trees = []
        oob_sum = np.zeros(n)
        oob_count = np.zeros(n)
        importances = np.zeros(p)
        for t in range(self.n_estimators):
            rng = factory.child("tree", t)
            sample = rng.integers(0, n, size=n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                rng=factory.child("split", t),
            )
            tree.fit(X[sample], y[sample])
            self.trees.append(tree)
            importances += tree.feature_importances_
            out_of_bag = np.setdiff1d(np.arange(n), sample, assume_unique=False)
            if out_of_bag.size:
                oob_sum[out_of_bag] += tree.predict(X[out_of_bag])
                oob_count[out_of_bag] += 1
        self._n_features = p
        with np.errstate(invalid="ignore", divide="ignore"):
            self._oob_prediction = np.where(oob_count > 0, oob_sum / oob_count, np.nan)
        total = importances.sum()
        self._importances = importances / total if total > 0 else importances
        self._y_train = y
        return self

    def predict(self, X) -> np.ndarray:
        p = self._require_fitted()
        X = check_X(X, p)
        acc = np.zeros(X.shape[0])
        for tree in self.trees:
            acc += tree.predict(X)
        return acc / len(self.trees)

    def predict_std(self, X) -> np.ndarray:
        """Ensemble disagreement (std of per-tree predictions).

        The cheap epistemic-uncertainty estimate behind model-based
        search: high where the forest has seen little training data.
        """
        p = self._require_fitted()
        X = check_X(X, p)
        preds = np.stack([tree.predict(X) for tree in self.trees])
        return preds.std(axis=0)

    # ------------------------------------------------------------------
    @property
    def oob_prediction_(self) -> np.ndarray:
        """Per-training-row OOB prediction (NaN where always in-bag)."""
        self._require_fitted()
        assert self._oob_prediction is not None
        return self._oob_prediction

    def oob_score(self) -> float:
        """OOB R² over the rows that received at least one OOB vote."""
        from repro.ml.metrics import r2_score

        pred = self.oob_prediction_
        mask = np.isfinite(pred)
        if mask.sum() < 2:
            raise ModelError("too few OOB rows to compute a score; add trees")
        return r2_score(self._y_train[mask], pred[mask])

    @property
    def feature_importances_(self) -> np.ndarray:
        self._require_fitted()
        assert self._importances is not None
        return self._importances
