"""Common regressor interface and input validation."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import ModelError, NotFittedError

__all__ = ["Regressor", "check_Xy", "check_X"]


def check_Xy(X, y) -> tuple[np.ndarray, np.ndarray]:
    """Validate and coerce a training set to float arrays."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float).ravel()
    if X.ndim != 2:
        raise ModelError(f"X must be 2-D, got shape {X.shape}")
    if X.shape[0] != y.shape[0]:
        raise ModelError(f"X has {X.shape[0]} rows but y has {y.shape[0]} values")
    if X.shape[0] == 0:
        raise ModelError("cannot fit on an empty training set")
    if not np.all(np.isfinite(X)) or not np.all(np.isfinite(y)):
        raise ModelError("training data contains NaN or infinity")
    return X, y


def check_X(X, n_features: int) -> np.ndarray:
    """Validate and coerce a prediction input."""
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = X.reshape(1, -1)
    if X.ndim != 2 or X.shape[1] != n_features:
        raise ModelError(f"expected shape (*, {n_features}), got {X.shape}")
    if not np.all(np.isfinite(X)):
        raise ModelError("prediction input contains NaN or infinity")
    return X


class Regressor(ABC):
    """Minimal fit/predict interface shared by all surrogate learners."""

    _n_features: int | None = None

    @abstractmethod
    def fit(self, X, y) -> "Regressor":
        """Fit on training matrix ``X`` (n, p) and targets ``y`` (n,)."""

    @abstractmethod
    def predict(self, X) -> np.ndarray:
        """Predicted targets for rows of ``X``."""

    @property
    def is_fitted(self) -> bool:
        return self._n_features is not None

    def _require_fitted(self) -> int:
        if self._n_features is None:
            raise NotFittedError(f"{type(self).__name__} has not been fitted")
        return self._n_features

    def score(self, X, y) -> float:
        """Coefficient of determination R² on a held-out set."""
        from repro.ml.metrics import r2_score

        return r2_score(np.asarray(y, dtype=float).ravel(), self.predict(X))
