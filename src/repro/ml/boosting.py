"""Gradient-boosted regression trees (squared loss).

An extension beyond the paper (Section VII suggests testing other
learners): stage-wise fitting of shallow CART trees to the residuals,
shrunk by a learning rate.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.ml.base import Regressor, check_X, check_Xy
from repro.ml.forest import PackedTrees
from repro.ml.tree import DecisionTreeRegressor
from repro.utils.rng import RngFactory

__all__ = ["GradientBoostingRegressor"]


class GradientBoostingRegressor(Regressor):
    """L2 gradient boosting with optional row subsampling."""

    def __init__(
        self,
        n_estimators: int = 200,
        learning_rate: float = 0.05,
        max_depth: int = 3,
        subsample: float = 1.0,
        min_samples_leaf: int = 2,
        seed: int = 0,
        engine: str = "presort",
    ) -> None:
        if n_estimators < 1:
            raise ModelError(f"n_estimators must be >= 1, got {n_estimators}")
        if not 0.0 < learning_rate <= 1.0:
            raise ModelError(f"learning_rate must be in (0, 1], got {learning_rate}")
        if not 0.0 < subsample <= 1.0:
            raise ModelError(f"subsample must be in (0, 1], got {subsample}")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.subsample = subsample
        self.min_samples_leaf = min_samples_leaf
        self.seed = seed
        self.engine = engine
        self.trees: list[DecisionTreeRegressor] = []
        self._packed: PackedTrees | None = None
        self._base: float = 0.0

    def fit(self, X, y) -> "GradientBoostingRegressor":
        X, y = check_Xy(X, y)
        n, p = X.shape
        factory = RngFactory("gbrt", seed=self.seed)
        self._base = float(y.mean())
        pred = np.full(n, self._base)
        self.trees = []
        m = max(1, int(round(self.subsample * n)))
        for t in range(self.n_estimators):
            residual = y - pred
            rng = factory.child("round", t)
            rows = rng.choice(n, size=m, replace=False) if m < n else np.arange(n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                rng=factory.child("split", t),
                engine=self.engine,
            )
            tree._fit_arrays(X[rows] if m < n else X, residual[rows] if m < n else residual)
            self.trees.append(tree)
            pred += self.learning_rate * tree.predict(X)
        self._n_features = p
        self._packed = PackedTrees(self.trees)
        return self

    def _tree_values(self, X: np.ndarray) -> np.ndarray:
        if self._packed is None:
            self._packed = PackedTrees(self.trees)
        return self._packed.tree_values(X)

    def predict(self, X) -> np.ndarray:
        p = self._require_fitted()
        X = check_X(X, p)
        vals = self._tree_values(X)
        # Stage-by-stage accumulation in round order — the exact
        # addition sequence of the per-tree loop, so packed prediction
        # stays bit-identical.
        pred = np.full(X.shape[0], self._base)
        for t in range(vals.shape[0]):
            pred += self.learning_rate * vals[t]
        return pred

    def staged_predict(self, X) -> np.ndarray:
        """Predictions after each boosting round, shape (rounds, rows)."""
        p = self._require_fitted()
        X = check_X(X, p)
        vals = self._tree_values(X)
        pred = np.full(X.shape[0], self._base)
        stages = np.empty((len(self.trees), X.shape[0]))
        for t in range(vals.shape[0]):
            pred = pred + self.learning_rate * vals[t]
            stages[t] = pred
        return stages
