"""From-scratch supervised learning for surrogate performance models.

The paper builds its surrogate with a random forest (Breiman 2001,
reference [9]); scikit-learn is not available in this environment, so
this subpackage implements the full stack: CART regression trees with a
vectorized NumPy split search, bagged random forests with out-of-bag
error and impurity-based feature importances, and simpler baselines
(ridge regression, k-nearest-neighbours, gradient-boosted trees) used by
the surrogate-choice ablation in :mod:`repro.experiments`.
"""

from repro.ml.base import Regressor
from repro.ml.tree import DecisionTreeRegressor
from repro.ml.forest import RandomForestRegressor
from repro.ml.linear import RidgeRegressor
from repro.ml.knn import KNeighborsRegressor
from repro.ml.boosting import GradientBoostingRegressor
from repro.ml.metrics import mae, rmse, r2_score
from repro.ml.export import export_text

__all__ = [
    "Regressor",
    "DecisionTreeRegressor",
    "RandomForestRegressor",
    "RidgeRegressor",
    "KNeighborsRegressor",
    "GradientBoostingRegressor",
    "mae",
    "rmse",
    "r2_score",
    "export_text",
]
