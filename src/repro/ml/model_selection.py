"""Model selection: k-fold cross-validation and grid search.

Section III-A: "The choice of the supervised-learning algorithm for
building the surrogate performance model is crucial" and "should be
driven by an exploratory analysis".  These utilities are that analysis:
estimate a learner's generalization on the small ``Ta`` training sets
the paper works with (100 points), and pick hyperparameters by grid
search — all with deterministic fold assignment.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.errors import ModelError
from repro.ml.base import Regressor, check_Xy
from repro.ml.metrics import r2_score, rmse
from repro.utils.rng import spawn_rng
from repro.utils.stats import spearman

__all__ = ["CvResult", "cross_validate", "GridSearchResult", "grid_search"]


@dataclass(frozen=True)
class CvResult:
    """Per-fold generalization scores of one learner."""

    r2: tuple[float, ...]
    rmse: tuple[float, ...]
    rank_correlation: tuple[float, ...]

    @property
    def n_folds(self) -> int:
        return len(self.r2)

    @property
    def mean_r2(self) -> float:
        return float(np.mean(self.r2))

    @property
    def mean_rmse(self) -> float:
        return float(np.mean(self.rmse))

    @property
    def mean_rank_correlation(self) -> float:
        """Mean held-out Spearman — the score that matters for biasing:
        RSb only uses the model's *ranking* of the pool."""
        return float(np.mean(self.rank_correlation))


def _fold_indices(n: int, k: int, seed: object) -> list[np.ndarray]:
    rng = spawn_rng("cv-folds", str(seed))
    perm = rng.permutation(n)
    return [perm[i::k] for i in range(k)]


def cross_validate(
    learner_factory: Callable[[], Regressor],
    X,
    y,
    k: int = 5,
    seed: object = 0,
) -> CvResult:
    """k-fold CV of a learner; a fresh model is fitted per fold."""
    X, y = check_Xy(X, y)
    n = X.shape[0]
    if k < 2:
        raise ModelError(f"need at least 2 folds, got {k}")
    if n < k:
        raise ModelError(f"cannot make {k} folds from {n} rows")
    folds = _fold_indices(n, k, seed)
    r2s, rmses, rhos = [], [], []
    for held in folds:
        mask = np.ones(n, dtype=bool)
        mask[held] = False
        model = learner_factory()
        model.fit(X[mask], y[mask])
        pred = model.predict(X[held])
        r2s.append(r2_score(y[held], pred))
        rmses.append(rmse(y[held], pred))
        if len(held) >= 3 and np.std(pred) > 0 and np.std(y[held]) > 0:
            rhos.append(spearman(y[held], pred))
        else:
            rhos.append(0.0)
    return CvResult(r2=tuple(r2s), rmse=tuple(rmses), rank_correlation=tuple(rhos))


@dataclass(frozen=True)
class GridSearchResult:
    """All grid points with their CV scores, best first."""

    entries: tuple[tuple[dict, CvResult], ...]  # sorted by score, best first
    scoring: str

    @property
    def best_params(self) -> dict:
        return self.entries[0][0]

    @property
    def best_score(self) -> float:
        return _score_of(self.entries[0][1], self.scoring)

    def table(self) -> list[tuple[str, float]]:
        return [
            (", ".join(f"{k}={v}" for k, v in params.items()) or "(defaults)",
             _score_of(cv, self.scoring))
            for params, cv in self.entries
        ]


def _score_of(cv: CvResult, scoring: str) -> float:
    if scoring == "r2":
        return cv.mean_r2
    if scoring == "rank":
        return cv.mean_rank_correlation
    if scoring == "neg_rmse":
        return -cv.mean_rmse
    raise ModelError(f"unknown scoring {scoring!r} (r2 | rank | neg_rmse)")


def grid_search(
    learner_factory: Callable[..., Regressor],
    param_grid: Mapping[str, Sequence],
    X,
    y,
    k: int = 5,
    scoring: str = "rank",
    seed: object = 0,
) -> GridSearchResult:
    """Exhaustive CV grid search over learner keyword arguments.

    ``scoring='rank'`` (held-out Spearman) is the default because the
    biasing strategy consumes only the model's ordering.
    """
    if not param_grid:
        raise ModelError("empty parameter grid")
    names = list(param_grid)
    entries = []
    for values in product(*(param_grid[name] for name in names)):
        params = dict(zip(names, values))
        cv = cross_validate(lambda p=params: learner_factory(**p), X, y, k=k, seed=seed)
        entries.append((params, cv))
    entries.sort(key=lambda e: -_score_of(e[1], scoring))
    return GridSearchResult(entries=tuple(entries), scoring=scoring)
