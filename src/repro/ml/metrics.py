"""Regression quality metrics."""

from __future__ import annotations

import numpy as np

__all__ = ["mae", "rmse", "r2_score"]


def _pair(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    yt = np.asarray(y_true, dtype=float).ravel()
    yp = np.asarray(y_pred, dtype=float).ravel()
    if yt.shape != yp.shape:
        raise ValueError(f"length mismatch: {yt.shape[0]} vs {yp.shape[0]}")
    if yt.size == 0:
        raise ValueError("empty input")
    return yt, yp


def mae(y_true, y_pred) -> float:
    """Mean absolute error."""
    yt, yp = _pair(y_true, y_pred)
    return float(np.mean(np.abs(yt - yp)))


def rmse(y_true, y_pred) -> float:
    """Root mean squared error."""
    yt, yp = _pair(y_true, y_pred)
    return float(np.sqrt(np.mean((yt - yp) ** 2)))


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination; 1 is perfect, 0 matches the mean.

    Returns 0 for a constant truth perfectly predicted and ``-inf``-like
    large negatives for badly wrong predictions of a constant truth,
    matching the usual convention.
    """
    yt, yp = _pair(y_true, y_pred)
    ss_res = float(np.sum((yt - yp) ** 2))
    ss_tot = float(np.sum((yt - yt.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot
