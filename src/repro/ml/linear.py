"""Ridge regression — a linear baseline for the surrogate ablation.

The paper argues recursive partitioning suits performance surrogates
because runtime responds nonlinearly to tiling/unrolling; a linear
model is the natural straw man to quantify that claim.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.ml.base import Regressor, check_X, check_Xy

__all__ = ["RidgeRegressor"]


class RidgeRegressor(Regressor):
    """L2-regularized least squares with feature standardization."""

    def __init__(self, alpha: float = 1.0) -> None:
        if alpha < 0:
            raise ModelError(f"alpha must be >= 0, got {alpha}")
        self.alpha = alpha
        self._coef: np.ndarray | None = None
        self._intercept: float = 0.0
        self._mean: np.ndarray | None = None
        self._scale: np.ndarray | None = None

    def fit(self, X, y) -> "RidgeRegressor":
        X, y = check_Xy(X, y)
        self._mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0.0] = 1.0
        self._scale = scale
        Z = (X - self._mean) / scale
        y_mean = y.mean()
        yc = y - y_mean
        # Solve (Z'Z + alpha I) w = Z'y via a stable lstsq on the
        # augmented system [Z; sqrt(alpha) I] w = [yc; 0].
        p = Z.shape[1]
        if self.alpha > 0:
            aug = np.vstack([Z, np.sqrt(self.alpha) * np.eye(p)])
            rhs = np.concatenate([yc, np.zeros(p)])
        else:
            aug, rhs = Z, yc
        coef, *_ = np.linalg.lstsq(aug, rhs, rcond=None)
        self._coef = coef
        self._intercept = float(y_mean)
        self._n_features = p
        return self

    def predict(self, X) -> np.ndarray:
        p = self._require_fitted()
        X = check_X(X, p)
        Z = (X - self._mean) / self._scale
        return Z @ self._coef + self._intercept

    @property
    def coef_(self) -> np.ndarray:
        """Coefficients in standardized feature units."""
        self._require_fitted()
        assert self._coef is not None
        return self._coef
