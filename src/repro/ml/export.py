"""Textual rendering of fitted decision trees.

Figure 2 of the paper displays the decision tree learned from
matrix-multiplication data on Sandybridge, with if/else rules over the
unroll (U_I, U_J, U_K) and register-tiling (RT_I, RT_J, RT_K)
parameters.  :func:`export_text` reproduces that view for any fitted
tree; :func:`export_rules` lists the leaf hyperrectangles as
root-to-leaf rule chains.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import NotFittedError
from repro.ml.tree import DecisionTreeRegressor

__all__ = ["export_text", "export_rules"]


def _names(tree: DecisionTreeRegressor, feature_names: Sequence[str] | None) -> list[str]:
    if tree.nodes is None:
        raise NotFittedError("cannot export an unfitted tree")
    p = tree._require_fitted()
    if feature_names is None:
        return [f"x{i}" for i in range(p)]
    names = list(feature_names)
    if len(names) != p:
        raise ValueError(f"got {len(names)} feature names for {p} features")
    return names


def export_text(
    tree: DecisionTreeRegressor,
    feature_names: Sequence[str] | None = None,
    value_fmt: str = ".4g",
    max_depth: int | None = None,
) -> str:
    """Indented if/else rendering of a fitted tree (Figure 2 style)."""
    names = _names(tree, feature_names)
    nodes = tree.nodes
    assert nodes is not None
    lines: list[str] = []

    def walk(i: int, depth: int) -> None:
        pad = "|   " * depth
        if nodes.feature[i] == -1 or (max_depth is not None and depth >= max_depth):
            mean = format(nodes.value[i], value_fmt)
            lines.append(f"{pad}|-- value: {mean}  (n={nodes.n_samples[i]})")
            return
        name = names[nodes.feature[i]]
        thr = format(nodes.threshold[i], ".4g")
        lines.append(f"{pad}|-- {name} <= {thr}")
        walk(nodes.left[i], depth + 1)
        lines.append(f"{pad}|-- {name} >  {thr}")
        walk(nodes.right[i], depth + 1)

    walk(0, 0)
    return "\n".join(lines)


def export_rules(
    tree: DecisionTreeRegressor,
    feature_names: Sequence[str] | None = None,
    value_fmt: str = ".4g",
) -> list[str]:
    """One line per leaf: the conjunction of split conditions -> value."""
    names = _names(tree, feature_names)
    nodes = tree.nodes
    assert nodes is not None
    rules: list[str] = []

    def walk(i: int, conds: list[str]) -> None:
        if nodes.feature[i] == -1:
            body = " and ".join(conds) if conds else "true"
            mean = format(nodes.value[i], value_fmt)
            rules.append(f"if {body}: predict {mean}  (n={nodes.n_samples[i]})")
            return
        name = names[nodes.feature[i]]
        thr = format(nodes.threshold[i], ".4g")
        walk(nodes.left[i], conds + [f"{name} <= {thr}"])
        walk(nodes.right[i], conds + [f"{name} > {thr}"])

    walk(0, [])
    return rules
