"""k-nearest-neighbours regression baseline (standardized Euclidean)."""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.ml.base import Regressor, check_X, check_Xy

__all__ = ["KNeighborsRegressor"]


class KNeighborsRegressor(Regressor):
    """Mean (optionally distance-weighted) of the k nearest neighbours."""

    def __init__(self, n_neighbors: int = 5, weights: str = "uniform") -> None:
        if n_neighbors < 1:
            raise ModelError(f"n_neighbors must be >= 1, got {n_neighbors}")
        if weights not in ("uniform", "distance"):
            raise ModelError(f"weights must be 'uniform' or 'distance', got {weights!r}")
        self.n_neighbors = n_neighbors
        self.weights = weights
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._mean: np.ndarray | None = None
        self._scale: np.ndarray | None = None

    def fit(self, X, y) -> "KNeighborsRegressor":
        X, y = check_Xy(X, y)
        if X.shape[0] < self.n_neighbors:
            raise ModelError(
                f"training set of {X.shape[0]} rows is smaller than k={self.n_neighbors}"
            )
        self._mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0.0] = 1.0
        self._scale = scale
        self._X = (X - self._mean) / scale
        self._y = y
        self._n_features = X.shape[1]
        return self

    def predict(self, X) -> np.ndarray:
        p = self._require_fitted()
        X = check_X(X, p)
        Z = (X - self._mean) / self._scale
        # Pairwise squared distances without forming (a-b) explicitly.
        d2 = (
            np.sum(Z**2, axis=1)[:, None]
            - 2.0 * Z @ self._X.T
            + np.sum(self._X**2, axis=1)[None, :]
        )
        np.maximum(d2, 0.0, out=d2)
        k = self.n_neighbors
        nn = np.argpartition(d2, k - 1, axis=1)[:, :k]
        neigh_y = self._y[nn]
        if self.weights == "uniform":
            return neigh_y.mean(axis=1)
        dist = np.sqrt(np.take_along_axis(d2, nn, axis=1))
        w = 1.0 / np.maximum(dist, 1e-12)
        return np.sum(w * neigh_y, axis=1) / np.sum(w, axis=1)
