"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show the available machines, kernels and mini-applications.
``transfer``
    Run one transfer experiment (the paper's core workflow).
``figure1 | figure2 | figure3 | figure4 | figure5``
    Regenerate a figure and print its rendering.
``table1 | table2 | table3 | table4 | table5``
    Regenerate a table and print it.
``report``
    Run everything and write EXPERIMENTS-style markdown to a file.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_list(_args) -> int:
    from repro.kernels import KERNELS, get_kernel
    from repro.machines import MACHINES

    print("machines (Table II):")
    for name, spec in MACHINES.items():
        print(f"  {name:12s} {spec.display_name} — {spec.cores} cores @ {spec.clock_ghz} GHz")
    print("\nkernels (Table III):")
    for name in KERNELS:
        k = get_kernel(name)
        print(f"  {name:6s} dim={k.space.dimension:3d} |D|={k.space.cardinality:.3g} "
              f"input={k.input_size}")
    print("\nmini-applications: HPL (15 params), RT (143 flags + 104 params)")
    return 0


def _cmd_transfer(args) -> int:
    from repro.experiments.harness import build_session

    session = build_session(
        args.problem, args.source, args.target,
        compiler=args.compiler, seed=args.seed, nmax=args.nmax,
    )
    outcome = session.run()
    print(outcome.summary_table())
    rho_p, rho_s = outcome.correlation()
    print(f"correlation: rho_p={rho_p:.2f} rho_s={rho_s:.2f}")
    return 0


def _cmd_artifact(name: str):
    def run(args) -> int:
        import repro.experiments as exp

        runner = getattr(exp, f"run_{name}")
        kwargs = {}
        if name not in ("table1", "table2", "table3"):
            kwargs["seed"] = args.seed
        result = runner(**kwargs)
        print(result.render())
        return 0

    return run


def _cmd_report(args) -> int:
    from repro.experiments.report import generate_report

    text = generate_report(seed=args.seed, nmax=args.nmax, stream=sys.stderr)
    with open(args.output, "w") as fh:
        fh.write(text)
    print(f"wrote {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Exploiting Performance Portability in "
        "Search Algorithms for Autotuning' (Roy et al., 2016)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show machines and problems").set_defaults(func=_cmd_list)

    t = sub.add_parser("transfer", help="run one transfer experiment")
    t.add_argument("problem", help="MM | ATAX | LU | COR | HPL | RT")
    t.add_argument("source", help="source machine (e.g. westmere)")
    t.add_argument("target", help="target machine (e.g. sandybridge)")
    t.add_argument("--compiler", default="gcc", choices=["gcc", "icc"])
    t.add_argument("--nmax", type=int, default=100)
    t.add_argument("--seed", default="cli")
    t.set_defaults(func=_cmd_transfer)

    for name in ("figure1", "figure2", "figure3", "figure4", "figure5",
                 "table1", "table2", "table3", "table4", "table5"):
        p = sub.add_parser(name, help=f"regenerate {name}")
        p.add_argument("--seed", default=0)
        p.set_defaults(func=_cmd_artifact(name))

    r = sub.add_parser("report", help="run everything, write markdown")
    r.add_argument("--output", default="EXPERIMENTS.generated.md")
    r.add_argument("--nmax", type=int, default=100)
    r.add_argument("--seed", default=0)
    r.set_defaults(func=_cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
