"""JSON checkpoint/resume for searches, tuning runs, and sessions.

An outage mid-search (the paper's X-Gene budget blow-up, a killed job,
a crashed node) should not force re-evaluating everything.  A
checkpoint captures, in one JSON document:

* the :class:`~repro.search.result.SearchTrace` so far (configurations
  by linear index, runtimes, elapsed times, failure/censoring flags);
* the :class:`~repro.perf.simclock.SimClock` state (elapsed seconds and
  budget), so resumed work keeps paying into the same budget;
* the number of proposal steps consumed (a
  :class:`~repro.search.stream.SharedStream` position for RS/RSp, a
  pool rank for RSb), so the resumed search continues at the exact
  point it stopped;
* the reliability state (fault-injector outage window, circuit breaker,
  stats) when the evaluator exposes ``reliability_state()``.

Configurations serialize as linear indices — the space itself is code,
not data, so a checkpoint is small and the resumed process rebuilds
bit-identical :class:`Configuration` objects via ``space.config_at``.
CRN alignment survives a resume because a rebuilt
:class:`SharedStream` regenerates the same sequence from its seed and
the manager re-materializes exactly the checkpointed prefix.
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import dataclass, field

from repro.errors import CheckpointError
from repro.exec.journal import frame_line, unframe_obj
from repro.search.result import EvaluationRecord, SearchTrace
from repro.searchspace.space import SearchSpace

__all__ = [
    "FORMAT_VERSION",
    "atomic_write_text",
    "trace_to_dict",
    "trace_from_dict",
    "SearchCheckpoint",
    "CheckpointManager",
    "save_traces",
    "load_traces",
]

FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Trace (de)serialization
# ----------------------------------------------------------------------
def _record_to_dict(record: EvaluationRecord) -> dict:
    return {
        "config": record.config.index,
        "runtime": record.runtime,
        "elapsed": record.elapsed,
        "skipped_before": record.skipped_before,
        "failed": record.failed,
        "censored": record.censored,
    }


def _record_from_dict(space: SearchSpace, data: dict) -> EvaluationRecord:
    return EvaluationRecord(
        config=space.config_at(int(data["config"])),
        runtime=float(data["runtime"]),
        elapsed=float(data["elapsed"]),
        skipped_before=int(data.get("skipped_before", 0)),
        failed=bool(data.get("failed", False)),
        censored=bool(data.get("censored", False)),
    )


def _json_safe(mapping: dict) -> dict:
    """The JSON-serializable subset of a metadata mapping."""
    safe = {}
    for key, value in mapping.items():
        try:
            json.dumps(value)
        except (TypeError, ValueError):
            continue
        safe[str(key)] = value
    return safe


def trace_to_dict(trace: SearchTrace) -> dict:
    """JSON-serializable snapshot of a search trace."""
    return {
        "algorithm": trace.algorithm,
        "records": [_record_to_dict(r) for r in trace.records],
        "total_elapsed": trace.total_elapsed,
        "exhausted_budget": trace.exhausted_budget,
        "metadata": _json_safe(trace.metadata),
    }


def trace_from_dict(space: SearchSpace, data: dict) -> SearchTrace:
    """Rebuild a trace against the (code-defined) search space."""
    trace = SearchTrace(algorithm=data["algorithm"])
    for rec in data["records"]:
        trace.add(_record_from_dict(space, rec))
    trace.total_elapsed = float(data["total_elapsed"])
    trace.exhausted_budget = bool(data["exhausted_budget"])
    trace.metadata.update(data.get("metadata", {}))
    return trace


# Infinity is not valid JSON under the strictest readers; Python's json
# module emits/parses it by default, which is what we rely on — but the
# checkpoint should survive allow_nan-strict tooling, so encode as str.
_INF = "Infinity"
_NEG_INF = "-Infinity"


def _encode_floats(obj):
    if isinstance(obj, float):
        if obj == float("inf"):
            return _INF
        if obj == float("-inf"):
            return _NEG_INF
        return obj
    if isinstance(obj, dict):
        return {k: _encode_floats(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [_encode_floats(v) for v in obj]
    return obj


def _decode_floats(obj):
    if obj == _INF:
        return float("inf")
    if obj == _NEG_INF:
        return float("-inf")
    if isinstance(obj, dict):
        return {k: _decode_floats(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [_decode_floats(v) for v in obj]
    return obj


# ----------------------------------------------------------------------
# Search checkpoints
# ----------------------------------------------------------------------
@dataclass
class SearchCheckpoint:
    """One resumable snapshot of a running search."""

    algorithm: str
    position: int  # proposal steps consumed (stream position / pool rank)
    trace: dict
    clock: dict
    reliability: dict | None = None
    extra: dict = field(default_factory=dict)
    version: int = FORMAT_VERSION

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "algorithm": self.algorithm,
            "position": self.position,
            "trace": self.trace,
            "clock": self.clock,
            "reliability": self.reliability,
            "extra": self.extra,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SearchCheckpoint":
        version = int(data.get("version", -1))
        if version != FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint format version {version} not supported "
                f"(expected {FORMAT_VERSION})"
            )
        return cls(
            algorithm=data["algorithm"],
            position=int(data["position"]),
            trace=data["trace"],
            clock=data["clock"],
            reliability=data.get("reliability"),
            extra=data.get("extra", {}),
            version=version,
        )


def _backup_path(path: str) -> str:
    return f"{path}.bak"


def _offset_label(exc: CheckpointError) -> str:
    """The byte offset an error located, or ``n/a`` (semantic reject)."""
    return "n/a" if getattr(exc, "offset", None) is None else str(exc.offset)


def _verifies(path: str) -> bool:
    """Whether ``path`` currently holds a checkpoint that passes
    verification (parses, and its CRC32 envelope — if framed — holds)."""
    try:
        _read_json(path)
    except CheckpointError:
        return False
    return True


def _atomic_write(path: str, payload: dict, keep_backup: bool = False) -> None:
    """Write-then-fsync-then-rename; with ``keep_backup`` the previous
    file survives as ``<path>.bak`` — the recovery target when the live
    file is later found truncated or corrupt.  Only a previous file
    that still *verifies* is promoted: a corrupt primary never
    overwrites the last good backup.

    The document is wrapped in the journal layer's CRC32 envelope
    (:func:`~repro.exec.journal.frame_line`), so *any* bit flip at rest
    — even one that still parses as JSON — fails verification on load
    instead of resuming from quietly wrong state; legacy unframed
    checkpoints keep loading.
    """
    tmp = f"{path}.tmp"
    doc = json.dumps(
        _encode_floats(payload), sort_keys=True, separators=(",", ":"),
        allow_nan=False,
    )
    try:
        with open(tmp, "w") as fh:
            fh.write(frame_line(doc))
            fh.flush()
            os.fsync(fh.fileno())
        if keep_backup and os.path.exists(path) and _verifies(path):
            # Rotation is gated on verification: promoting a bit-rotted
            # primary would clobber the last good backup, and the very
            # next corruption hit would leave *both* copies bad.  A
            # primary that fails its CRC is simply discarded by the
            # rename below — the existing backup stays the recovery
            # target.
            os.replace(path, _backup_path(path))
        os.replace(tmp, path)
    except OSError as exc:
        raise CheckpointError(
            f"could not write checkpoint {path!r}: {exc}", path=path
        ) from exc


def atomic_write_text(path, text: str) -> None:
    """Crash-safe plain-text write: tmp file, fsync, rename.

    A reader (or a crash) never sees a half-written file — it sees the
    old content or the new, nothing in between.  Benchmark artefacts
    under ``benchmarks/results/`` are written through this, so a killed
    run cannot leave a truncated table behind masquerading as results.
    """
    path = os.fspath(path)
    tmp = f"{path}.tmp"
    try:
        with open(tmp, "w") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except OSError as exc:
        raise CheckpointError(f"could not write {path!r}: {exc}") from exc


def _read_json(path: str) -> dict:
    try:
        with open(path) as fh:
            blob = fh.read()
    except OSError as exc:
        raise CheckpointError(
            f"could not read checkpoint {path!r}: {exc}", path=path
        ) from exc
    try:
        document = json.loads(blob)
    except json.JSONDecodeError as exc:
        # exc.pos is a character offset; report the byte offset so the
        # message matches what `truncate`, `dd`, and hexdumps show.
        offset = len(blob[: exc.pos].encode("utf-8"))
        raise CheckpointError(
            f"corrupt checkpoint {path!r} at byte offset {offset}: {exc.msg}",
            path=path,
            offset=offset,
        ) from exc
    try:
        payload, _framed = unframe_obj(document)
    except ValueError as exc:
        # The envelope is one checksum over the whole document, so a
        # verification failure locates the file, not a byte: offset 0.
        raise CheckpointError(
            f"corrupt checkpoint {path!r}: {exc}", path=path, offset=0
        ) from exc
    return _decode_floats(payload)


class CheckpointManager:
    """Save/restore one search's progress at a JSON path.

    Pass an instance as the ``checkpoint=`` argument of
    :func:`~repro.search.random_search.random_search`,
    :func:`~repro.search.pruning.pruned_search`,
    :func:`~repro.search.biasing.biased_search`, or
    :meth:`~repro.tuner.runner.TuningRun.run`.  The search saves every
    ``every`` completed proposal steps and once at the end; calling the
    search again with the same manager resumes from the last snapshot
    without re-evaluating anything.
    """

    def __init__(self, path, every: int = 10) -> None:
        if every < 1:
            raise CheckpointError(f"checkpoint interval must be >= 1, got {every}")
        self.path = os.fspath(path)
        self.every = every
        self._last_saved_position = -1

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def load(self) -> SearchCheckpoint | None:
        """The stored snapshot, or ``None`` when no file exists.

        A truncated or corrupt snapshot (a crash mid-save, a flipped
        bit caught by the CRC32 envelope) raises
        :class:`CheckpointError` naming the path and byte offset —
        unless the ``.bak`` of the last good checkpoint (kept by every
        :meth:`save`) still verifies, in which case the resume falls
        back to it with a warning: strictly better than restarting, and
        exact because every save point is a complete snapshot.  When
        the backup *also* fails verification, the error reports both
        paths and both byte offsets (and carries the backup's on
        ``backup_path``/``backup_offset``).
        """
        if not self.exists():
            return None
        try:
            return SearchCheckpoint.from_dict(_read_json(self.path))
        except CheckpointError as exc:
            backup = _backup_path(self.path)
            if not os.path.exists(backup):
                raise
            try:
                snapshot = SearchCheckpoint.from_dict(_read_json(backup))
            except CheckpointError as bak_exc:
                combined = CheckpointError(
                    "checkpoint and backup both failed verification — "
                    f"primary {self.path!r} (byte offset "
                    f"{_offset_label(exc)}): {exc}; backup {backup!r} "
                    f"(byte offset {_offset_label(bak_exc)}): {bak_exc}",
                    path=self.path,
                    offset=exc.offset,
                )
                combined.backup_path = backup
                combined.backup_offset = bak_exc.offset
                raise combined from exc
            warnings.warn(
                f"checkpoint {self.path!r} is unreadable ({exc}); "
                f"resuming from backup {backup!r}",
                RuntimeWarning,
                stacklevel=2,
            )
            return snapshot

    # ------------------------------------------------------------------
    def restore(
        self,
        trace: SearchTrace,
        space: SearchSpace,
        evaluator=None,
        stream=None,
    ) -> tuple[int, dict]:
        """Apply the stored snapshot; returns ``(position, extra)``.

        With no snapshot on disk this is a no-op returning ``(0, {})``.
        The trace is filled in place, the evaluator's clock and
        reliability state are restored, and the stream is re-materialized
        up to the checkpointed position so its generator state matches
        the interrupted run exactly (CRN alignment).
        """
        snapshot = self.load()
        if snapshot is None:
            return 0, {}
        if snapshot.algorithm != trace.algorithm:
            raise CheckpointError(
                f"checkpoint belongs to algorithm {snapshot.algorithm!r}, "
                f"not {trace.algorithm!r}"
            )
        restored = trace_from_dict(space, snapshot.trace)
        trace.records[:] = restored.records
        trace.total_elapsed = restored.total_elapsed
        trace.exhausted_budget = restored.exhausted_budget
        trace.metadata.update(restored.metadata)
        if evaluator is not None:
            evaluator.clock.load_state(snapshot.clock)
            loader = getattr(evaluator, "load_reliability_state", None)
            if callable(loader) and snapshot.reliability is not None:
                loader(snapshot.reliability)
        if stream is not None and snapshot.position > 0:
            stream.prefix(snapshot.position)
        self._last_saved_position = snapshot.position
        return snapshot.position, dict(snapshot.extra)

    def save(
        self,
        trace: SearchTrace,
        position: int,
        evaluator=None,
        extra: dict | None = None,
    ) -> None:
        """Write a snapshot unconditionally."""
        reliability = None
        if evaluator is not None:
            getter = getattr(evaluator, "reliability_state", None)
            if callable(getter):
                reliability = getter()
        snapshot = SearchCheckpoint(
            algorithm=trace.algorithm,
            position=position,
            trace=trace_to_dict(trace),
            clock=evaluator.clock.state_dict() if evaluator is not None else {},
            reliability=reliability,
            extra=extra or {},
        )
        _atomic_write(self.path, snapshot.to_dict(), keep_backup=True)
        self._last_saved_position = position

    def maybe_save(
        self,
        trace: SearchTrace,
        position: int,
        evaluator=None,
        extra: dict | None = None,
    ) -> bool:
        """Save when ``every`` new proposal steps accumulated since the
        last snapshot; returns whether a snapshot was written."""
        if position - self._last_saved_position < self.every:
            return False
        self.save(trace, position, evaluator=evaluator, extra=extra)
        return True

    def clear(self) -> None:
        """Delete the snapshot and its backup (a completed, consumed run)."""
        if self.exists():
            os.remove(self.path)
        backup = _backup_path(self.path)
        if os.path.exists(backup):
            os.remove(backup)
        self._last_saved_position = -1


# ----------------------------------------------------------------------
# Session-level checkpoints (transfer/session.py)
# ----------------------------------------------------------------------
def save_traces(path, traces: dict[str, SearchTrace]) -> None:
    """Persist a mapping of finished traces (one transfer session)."""
    payload = {
        "version": FORMAT_VERSION,
        "traces": {name: trace_to_dict(t) for name, t in traces.items()},
    }
    _atomic_write(os.fspath(path), payload)


def load_traces(path, space: SearchSpace) -> dict[str, SearchTrace]:
    """Load the finished traces of an interrupted transfer session."""
    path = os.fspath(path)
    if not os.path.exists(path):
        return {}
    data = _read_json(path)
    version = int(data.get("version", -1))
    if version != FORMAT_VERSION:
        raise CheckpointError(
            f"session checkpoint version {version} not supported "
            f"(expected {FORMAT_VERSION})"
        )
    return {
        name: trace_from_dict(space, tdata)
        for name, tdata in data.get("traces", {}).items()
    }
