"""Deterministic fault injection for evaluation pipelines.

The paper's own data collection failed on the X-Gene machine — compile
and run times blew the budget (Section V) — and real autotuning runs
additionally hit compiler crashes, flaky measurements, timeouts, and
machine outages.  This module simulates those operational hazards
*deterministically*: every fault decision is a pure function of the
fault seed, the configuration index, and the attempt number, computed
with the stateless :func:`repro.utils.rng.hash_uniform`.  Crucially,
injection consumes **no** state from any shared generator, so the
common-random-numbers streams of Section IV-D stay bit-aligned whether
or not faults fire, and a checkpoint/resume replays identical faults.

Failure modes
-------------
``transient``
    A one-off measurement glitch.  Burns a fraction of the evaluation
    cost, then raises :class:`TransientEvaluationError`.  A retry of the
    same configuration draws a fresh decision and usually succeeds.
``compile-crash``
    The (simulated) compiler crashes on the variant.  Burns the compile
    time, then raises :class:`CompileCrashError`.  Deterministic per
    (config, attempt) key — retrying is modelled as useless.
``timeout``
    The variant runs past the runtime cap.  Burns the compile time plus
    the cap, then raises :class:`EvaluationTimeout` carrying the cap as
    a censored (lower-bound) measurement.
``outage``
    The machine goes down for a recovery horizon of simulated seconds.
    Raises :class:`MachineOutageError`; until the horizon passes, every
    further evaluation on the machine fails the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import (
    CompileCrashError,
    EvaluationError,
    EvaluationTimeout,
    MachineOutageError,
    TransientEvaluationError,
)
from repro.utils.rng import hash_uniform

__all__ = ["FaultSpec", "FaultInjector", "FaultyEvaluator", "FAULT_MODES"]

FAULT_MODES: tuple[str, ...] = ("transient", "compile-crash", "timeout", "outage")


@dataclass(frozen=True)
class FaultSpec:
    """Per-mode fault rates and severities (all rates per attempt)."""

    transient_rate: float = 0.0
    compile_crash_rate: float = 0.0
    timeout_rate: float = 0.0
    outage_rate: float = 0.0
    timeout_cap_seconds: float = 120.0  # runtime cap => censored value
    outage_horizon_seconds: float = 600.0  # machine recovery horizon
    transient_cost_fraction: float = 0.5  # evaluation cost a glitch burns
    seed: object = 0

    def __post_init__(self) -> None:
        for name in ("transient_rate", "compile_crash_rate", "timeout_rate", "outage_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise EvaluationError(f"{name} must be in [0, 1], got {rate}")
        if self.total_rate > 1.0:
            raise EvaluationError(
                f"fault rates sum to {self.total_rate:.3g}; must be <= 1"
            )
        if self.timeout_cap_seconds <= 0:
            raise EvaluationError("timeout_cap_seconds must be positive")
        if self.outage_horizon_seconds <= 0:
            raise EvaluationError("outage_horizon_seconds must be positive")
        if not 0.0 <= self.transient_cost_fraction <= 1.0:
            raise EvaluationError("transient_cost_fraction must be in [0, 1]")

    @property
    def total_rate(self) -> float:
        return (
            self.transient_rate
            + self.compile_crash_rate
            + self.timeout_rate
            + self.outage_rate
        )

    @classmethod
    def uniform(cls, rate: float, seed: object = 0, **overrides) -> "FaultSpec":
        """A spec with total fault probability ``rate``, split across the
        modes in a representative mixture (half transient glitches, the
        rest split between compile crashes, timeouts, and rare outages).
        """
        if not 0.0 <= rate <= 1.0:
            raise EvaluationError(f"rate must be in [0, 1], got {rate}")
        spec = cls(
            transient_rate=0.5 * rate,
            compile_crash_rate=0.2 * rate,
            timeout_rate=0.2 * rate,
            outage_rate=0.1 * rate,
            seed=seed,
        )
        return replace(spec, **overrides) if overrides else spec


class FaultInjector:
    """Seeded, order-independent fault decisions plus outage bookkeeping.

    The only mutable state is the outage window (``outage_until``, in
    simulated seconds) and diagnostic counters; both serialize through
    :meth:`state_dict` so a resumed search replays the exact hazard
    history of the interrupted one.
    """

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        self.outage_until = 0.0
        self.counts: dict[str, int] = {mode: 0 for mode in FAULT_MODES}

    def draw(self, config_index: int, attempt: int) -> str | None:
        """The fault mode (or None) for one evaluation attempt.

        Pure in (spec.seed, config_index, attempt): no generator state
        is consumed, so CRN alignment and resume determinism hold.
        """
        u = hash_uniform("fault-injector", self.spec.seed, int(config_index), int(attempt))
        edge = 0.0
        for mode, rate in (
            ("transient", self.spec.transient_rate),
            ("compile-crash", self.spec.compile_crash_rate),
            ("timeout", self.spec.timeout_rate),
            ("outage", self.spec.outage_rate),
        ):
            edge += rate
            if u < edge:
                return mode
        return None

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {"outage_until": self.outage_until, "counts": dict(self.counts)}

    def load_state(self, state: dict) -> None:
        self.outage_until = float(state["outage_until"])
        self.counts = {mode: int(state["counts"].get(mode, 0)) for mode in FAULT_MODES}


class FaultyEvaluator:
    """An evaluator wrapper that injects the spec's faults.

    Follows the :class:`repro.orio.evaluator.OrioEvaluator` protocol:
    ``evaluate(config)`` either returns the inner measurement or charges
    the simulated cost the failure burned and raises the matching
    :class:`~repro.errors.EvaluationFailure` subclass.  Failed attempts
    are real work — their compile/run seconds hit the clock, so
    unreliability honestly degrades search-time speedups.
    """

    def __init__(self, evaluator, spec: FaultSpec, injector: FaultInjector | None = None) -> None:
        self.evaluator = evaluator
        self.injector = injector if injector is not None else FaultInjector(spec)
        self._attempts: dict[int, int] = {}  # config index -> attempts so far

    # Pass-through surface of the evaluator protocol -------------------
    @property
    def clock(self):
        return self.evaluator.clock

    @property
    def spec(self) -> FaultSpec:
        return self.injector.spec

    def __getattr__(self, name: str):
        # kernel/space/machine/n_evaluations etc. come from the wrapped
        # evaluator; only reliability state lives here.
        return getattr(self.evaluator, name)

    # ------------------------------------------------------------------
    def measure(self, config):
        """Fault-free measurement (no clock charge), for cost inspection."""
        return self.evaluator.measure(config)

    def evaluate(self, config):
        spec = self.injector.spec
        if self.clock.now < self.injector.outage_until:
            raise MachineOutageError(
                f"machine down until t={self.injector.outage_until:.3g}s "
                f"(now {self.clock.now:.3g}s)",
                retry_after=self.injector.outage_until - self.clock.now,
            )
        attempt = self._attempts.get(config.index, 0)
        self._attempts[config.index] = attempt + 1
        mode = self.injector.draw(config.index, attempt)
        if mode is None:
            return self.evaluator.evaluate(config)

        self.injector.counts[mode] += 1
        if mode == "outage":
            # The machine drops *before* any work happens; nothing to
            # charge yet — waiting out the horizon is the caller's cost.
            self.injector.outage_until = self.clock.now + spec.outage_horizon_seconds
            raise MachineOutageError(
                f"machine outage at t={self.clock.now:.3g}s "
                f"(horizon {spec.outage_horizon_seconds:g}s)",
                retry_after=spec.outage_horizon_seconds,
            )
        m = self.evaluator.measure(config)
        if mode == "transient":
            self.clock.advance(spec.transient_cost_fraction * m.evaluation_cost)
            raise TransientEvaluationError(
                f"transient measurement glitch on config {config.index}"
            )
        if mode == "compile-crash":
            self.clock.advance(m.compile_seconds)
            raise CompileCrashError(
                f"compiler crashed on config {config.index}"
            )
        # timeout: pay the compile plus the capped run, learn only a bound.
        self.clock.advance(m.compile_seconds + spec.timeout_cap_seconds)
        raise EvaluationTimeout(
            f"config {config.index} exceeded the {spec.timeout_cap_seconds:g}s cap",
            censored_at=spec.timeout_cap_seconds,
        )

    def __call__(self, config) -> float:
        return self.evaluate(config).runtime_seconds

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def reliability_state(self) -> dict:
        return {
            "injector": self.injector.state_dict(),
            "attempts": {str(k): v for k, v in self._attempts.items()},
        }

    def load_reliability_state(self, state: dict) -> None:
        self.injector.load_state(state["injector"])
        self._attempts = {int(k): int(v) for k, v in state["attempts"].items()}
