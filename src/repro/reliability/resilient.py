"""Resilient evaluation: retry, back off, trip breakers, degrade.

A :class:`ResilientEvaluator` wraps any evaluator following the
:class:`repro.orio.evaluator.OrioEvaluator` protocol and turns the
recoverable :class:`~repro.errors.EvaluationFailure` exceptions into
policy-driven behavior:

* **transient glitches** are retried with exponential backoff, every
  backoff interval charged to the :class:`~repro.perf.simclock.SimClock`
  (robustness is not free — it shows up in search-time speedups);
* **machine outages** are waited out (clock-charged) up to the retry
  budget;
* **timeouts** yield a *censored* result — the runtime cap is a lower
  bound on the true runtime — and are not retried;
* **compile crashes** are deterministic per configuration and are not
  retried;
* a per-machine :class:`~repro.reliability.policy.CircuitBreaker` stops
  hammering a host after repeated consecutive failures.

When recovery fails, the evaluator *degrades gracefully*: instead of
raising, it returns a :class:`FailedMeasurement` so the search records
the configuration as failed and keeps walking its stream — one bad
configuration no longer kills an RS/RSp/RSb run or desynchronizes the
common-random-numbers comparison.  Only
:class:`~repro.errors.BudgetExhaustedError` still propagates: when the
simulated budget is gone, the search is over.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import (
    BudgetExhaustedError,
    CompileCrashError,
    EvaluationTimeout,
    MachineOutageError,
    TransientEvaluationError,
)
from repro.reliability.policy import CircuitBreaker, RetryPolicy
from repro.reliability.stats import ReliabilityStats
from repro.searchspace.space import Configuration

__all__ = ["FailedMeasurement", "ResilientEvaluator"]


@dataclass(frozen=True)
class FailedMeasurement:
    """A gracefully degraded evaluation outcome.

    Mirrors :class:`repro.orio.evaluator.Measurement` closely enough for
    the search layer (``runtime_seconds``, ``evaluation_cost``) while
    flagging itself via ``failed=True``.  ``runtime_seconds`` is the
    censored bound for timeouts and the penalty value otherwise; the
    cost of the failed attempts was already charged to the clock when
    they happened, so ``evaluation_cost`` is zero.
    """

    config: Configuration
    runtime_seconds: float
    fault: str  # which failure mode ended the attempt sequence
    attempts: int  # how many evaluation attempts were made
    censored: bool = False
    compile_seconds: float = 0.0
    repetitions: int = 0
    failed: bool = True

    @property
    def evaluation_cost(self) -> float:
        return 0.0


class ResilientEvaluator:
    """Wrap an evaluator with retry, circuit-breaking, and degradation.

    Parameters
    ----------
    evaluator:
        The wrapped evaluator (typically an
        :class:`~repro.reliability.faults.FaultyEvaluator` in tests and
        ablations, or a real evaluator in production use).
    retry:
        Backoff policy for transient failures and outage waits; defaults
        to 3 retries at 1 s doubling.  Use :meth:`RetryPolicy.none` to
        fail fast.
    circuit:
        Optional per-machine breaker; ``None`` disables breaking.
    penalty_runtime:
        Objective value recorded for unrecovered, uncensored failures
        (``inf`` by default — failed configs can never look attractive).
    wait_for_outage:
        Whether outages are waited out (clock-charged) or degrade
        immediately.
    """

    def __init__(
        self,
        evaluator,
        retry: RetryPolicy | None = None,
        circuit: CircuitBreaker | None = None,
        penalty_runtime: float = float("inf"),
        wait_for_outage: bool = True,
        stats: ReliabilityStats | None = None,
    ) -> None:
        self.evaluator = evaluator
        self.retry = retry if retry is not None else RetryPolicy()
        self.circuit = circuit
        self.penalty_runtime = penalty_runtime
        self.wait_for_outage = wait_for_outage
        self.stats = stats if stats is not None else ReliabilityStats()

    # Pass-through surface of the evaluator protocol -------------------
    @property
    def clock(self):
        return self.evaluator.clock

    def __getattr__(self, name: str):
        return getattr(self.evaluator, name)

    def measure(self, config):
        return self.evaluator.measure(config)

    # ------------------------------------------------------------------
    def _record_failure(self) -> None:
        if self.circuit is not None:
            self.circuit.record_failure(self.clock.now)

    def _degrade(
        self, config, fault: str, attempts: int, censored_at: float | None = None
    ) -> FailedMeasurement:
        self.stats.degraded += 1
        self.stats.record_failure_mode(fault)
        if censored_at is not None:
            self.stats.censored += 1
        return FailedMeasurement(
            config=config,
            runtime_seconds=self.penalty_runtime if censored_at is None else censored_at,
            fault=fault,
            attempts=attempts,
            censored=censored_at is not None,
        )

    def evaluate(self, config):
        """Evaluate with recovery; returns a measurement, never raises a
        recoverable failure (only :class:`BudgetExhaustedError` and
        genuine programming errors propagate)."""
        if self.circuit is not None and not self.circuit.allow(self.clock.now):
            self.stats.short_circuited += 1
            return self._degrade(config, "circuit-open", attempts=0)
        retries_used = 0
        attempts = 0
        while True:
            attempts += 1
            self.stats.attempts += 1
            try:
                measurement = self.evaluator.evaluate(config)
            except BudgetExhaustedError:
                raise
            except EvaluationTimeout as exc:
                self._record_failure()
                return self._degrade(
                    config, "timeout", attempts, censored_at=exc.censored_at
                )
            except CompileCrashError:
                self._record_failure()
                return self._degrade(config, "compile-crash", attempts)
            except MachineOutageError as exc:
                self._record_failure()
                if not self.wait_for_outage or retries_used >= self.retry.max_retries:
                    return self._degrade(config, "outage", attempts)
                # Wait out the recovery horizon on the simulated clock;
                # an unaffordable wait exhausts the budget for real.
                self.clock.advance(exc.retry_after)
                self.stats.outage_wait_seconds += exc.retry_after
                self.stats.retries += 1
                retries_used += 1
            except TransientEvaluationError:
                self._record_failure()
                if retries_used >= self.retry.max_retries:
                    return self._degrade(config, "transient", attempts)
                backoff = self.retry.backoff(retries_used)
                self.clock.advance(backoff)
                self.stats.backoff_seconds += backoff
                self.stats.retries += 1
                retries_used += 1
            else:
                if self.circuit is not None:
                    self.circuit.record_success()
                self.stats.successes += 1
                return measurement

    def __call__(self, config) -> float:
        return self.evaluate(config).runtime_seconds

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def reliability_state(self) -> dict:
        state: dict = {"stats": self.stats.as_dict()}
        if self.circuit is not None:
            state["circuit"] = self.circuit.state_dict()
        inner = getattr(self.evaluator, "reliability_state", None)
        if callable(inner):
            state["inner"] = inner()
        return state

    def load_reliability_state(self, state: dict) -> None:
        self.stats.load_state(state["stats"])
        if self.circuit is not None and "circuit" in state:
            self.circuit.load_state(state["circuit"])
        inner = getattr(self.evaluator, "load_reliability_state", None)
        if callable(inner) and "inner" in state:
            inner(state["inner"])
