"""Counters describing how much reliability machinery actually worked."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ReliabilityStats"]


@dataclass
class ReliabilityStats:
    """Aggregated evaluation-pipeline health for one search run."""

    attempts: int = 0  # inner evaluate() calls issued
    successes: int = 0  # evaluations that returned a real measurement
    retries: int = 0  # re-attempts after a recoverable failure
    degraded: int = 0  # configs recorded as failed instead of raising
    censored: int = 0  # degraded configs carrying a censored bound
    short_circuited: int = 0  # skipped because the circuit was open
    backoff_seconds: float = 0.0  # simulated wait charged by retries
    outage_wait_seconds: float = 0.0  # simulated wait for machine recovery
    failures_by_mode: dict = field(default_factory=dict)

    def record_failure_mode(self, mode: str) -> None:
        self.failures_by_mode[mode] = self.failures_by_mode.get(mode, 0) + 1

    @property
    def failures(self) -> int:
        return sum(self.failures_by_mode.values())

    def as_dict(self) -> dict:
        return {
            "attempts": self.attempts,
            "successes": self.successes,
            "retries": self.retries,
            "degraded": self.degraded,
            "censored": self.censored,
            "short_circuited": self.short_circuited,
            "backoff_seconds": self.backoff_seconds,
            "outage_wait_seconds": self.outage_wait_seconds,
            "failures_by_mode": dict(self.failures_by_mode),
        }

    def load_state(self, state: dict) -> None:
        self.attempts = int(state["attempts"])
        self.successes = int(state["successes"])
        self.retries = int(state["retries"])
        self.degraded = int(state["degraded"])
        self.censored = int(state["censored"])
        self.short_circuited = int(state["short_circuited"])
        self.backoff_seconds = float(state["backoff_seconds"])
        self.outage_wait_seconds = float(state["outage_wait_seconds"])
        self.failures_by_mode = {k: int(v) for k, v in state["failures_by_mode"].items()}

    def render(self) -> str:
        modes = ", ".join(
            f"{mode}={count}" for mode, count in sorted(self.failures_by_mode.items())
        ) or "none"
        return (
            f"attempts={self.attempts} ok={self.successes} retries={self.retries} "
            f"degraded={self.degraded} (censored={self.censored}) "
            f"short-circuited={self.short_circuited} "
            f"backoff={self.backoff_seconds:g}s outage-wait={self.outage_wait_seconds:g}s "
            f"failures: {modes}"
        )
