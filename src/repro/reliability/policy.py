"""Retry and circuit-breaking policies for resilient evaluation.

Both policies are *simulated-time* citizens: backoff intervals and
cooldown windows are expressed in the same simulated seconds the
:class:`repro.perf.simclock.SimClock` accounts, so choosing an
aggressive retry policy visibly costs search time — exactly how the
paper's search-time speedup metric would see it on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SearchError

__all__ = ["RetryPolicy", "CircuitBreaker"]


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff: retry ``k`` waits ``backoff * factor**k``."""

    max_retries: int = 3
    backoff_seconds: float = 1.0
    backoff_factor: float = 2.0
    max_backoff_seconds: float = 300.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise SearchError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_seconds < 0:
            raise SearchError(f"backoff_seconds must be >= 0, got {self.backoff_seconds}")
        if self.backoff_factor < 1.0:
            raise SearchError(f"backoff_factor must be >= 1, got {self.backoff_factor}")

    def backoff(self, retry: int) -> float:
        """Simulated seconds to wait before retry number ``retry`` (0-based)."""
        if retry < 0:
            raise SearchError(f"retry index must be >= 0, got {retry}")
        return min(
            self.backoff_seconds * self.backoff_factor**retry,
            self.max_backoff_seconds,
        )

    def schedule(self) -> list[float]:
        """The full backoff schedule, one entry per allowed retry."""
        return [self.backoff(k) for k in range(self.max_retries)]

    def total_backoff(self, retries: int | None = None) -> float:
        """Total wait charged by ``retries`` consecutive backoffs."""
        n = self.max_retries if retries is None else min(retries, self.max_retries)
        return sum(self.backoff(k) for k in range(n))

    @classmethod
    def none(cls) -> "RetryPolicy":
        """The no-retry policy (fail fast, degrade immediately)."""
        return cls(max_retries=0, backoff_seconds=0.0)


class CircuitBreaker:
    """Per-machine breaker: trip after consecutive failures, cool down.

    While open (``now < open_until``) the evaluator short-circuits:
    configurations are recorded as failed without touching the machine,
    sparing the budget from hammering a host that is clearly down.
    """

    def __init__(self, threshold: int = 5, cooldown_seconds: float = 900.0) -> None:
        if threshold < 1:
            raise SearchError(f"threshold must be >= 1, got {threshold}")
        if cooldown_seconds < 0:
            raise SearchError(f"cooldown_seconds must be >= 0, got {cooldown_seconds}")
        self.threshold = threshold
        self.cooldown_seconds = cooldown_seconds
        self.consecutive_failures = 0
        self.open_until = 0.0
        self.n_trips = 0

    def allow(self, now: float) -> bool:
        """Whether an evaluation may proceed at simulated time ``now``."""
        return now >= self.open_until

    def record_success(self) -> None:
        self.consecutive_failures = 0

    def record_failure(self, now: float) -> None:
        self.consecutive_failures += 1
        if self.consecutive_failures >= self.threshold:
            self.open_until = now + self.cooldown_seconds
            self.n_trips += 1
            self.consecutive_failures = 0

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "consecutive_failures": self.consecutive_failures,
            "open_until": self.open_until,
            "n_trips": self.n_trips,
        }

    def load_state(self, state: dict) -> None:
        self.consecutive_failures = int(state["consecutive_failures"])
        self.open_until = float(state["open_until"])
        self.n_trips = int(state["n_trips"])

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(threshold={self.threshold}, "
            f"cooldown={self.cooldown_seconds:g}s, open_until={self.open_until:g}s)"
        )
