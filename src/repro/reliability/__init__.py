"""Fault tolerance for the evaluation pipeline.

The paper's Section V reports a real-world reliability failure: on the
ARM X-Gene machine, compile and run times exceeded the experiment
budget and data could not be collected.  This package makes the
reproduction's evaluation path production-grade around exactly that
class of hazard:

* :mod:`~repro.reliability.faults` — seeded, deterministic fault
  injection (glitches, compile crashes, timeouts, outages) that never
  perturbs the common-random-numbers streams;
* :mod:`~repro.reliability.policy` — retry/backoff schedules and a
  per-machine circuit breaker, all in simulated seconds;
* :mod:`~repro.reliability.resilient` — the
  :class:`ResilientEvaluator` wrapper: retries with clock-charged
  exponential backoff, waits out outages, degrades gracefully to
  censored/penalty measurements instead of raising;
* :mod:`~repro.reliability.checkpoint` — JSON checkpoint/resume for
  searches, tuning runs and transfer sessions, preserving CRN
  alignment bit-for-bit across the interruption;
* :mod:`~repro.reliability.stats` — counters describing how much the
  reliability machinery actually worked.
"""

from repro.reliability.checkpoint import (
    CheckpointManager,
    SearchCheckpoint,
    load_traces,
    save_traces,
    trace_from_dict,
    trace_to_dict,
)
from repro.reliability.faults import FAULT_MODES, FaultInjector, FaultSpec, FaultyEvaluator
from repro.reliability.policy import CircuitBreaker, RetryPolicy
from repro.reliability.resilient import FailedMeasurement, ResilientEvaluator
from repro.reliability.stats import ReliabilityStats

__all__ = [
    "FAULT_MODES",
    "FaultSpec",
    "FaultInjector",
    "FaultyEvaluator",
    "RetryPolicy",
    "CircuitBreaker",
    "FailedMeasurement",
    "ResilientEvaluator",
    "ReliabilityStats",
    "CheckpointManager",
    "SearchCheckpoint",
    "trace_to_dict",
    "trace_from_dict",
    "save_traces",
    "load_traces",
]
