"""Tunable-parameter spaces.

A :class:`SearchSpace` is an ordered collection of named, finite
parameters (Table I of the paper: loop unrolling factors, cache-tile and
register-tile sizes; plus booleans and enums for the mini-applications).
It provides a bijection between configurations and integers in
``[0, |D|)``, uniform sampling without replacement over astronomically
large spaces, and a numeric encoding for the surrogate models.
"""

from repro.searchspace.parameters import (
    Parameter,
    IntegerParameter,
    PowerOfTwoParameter,
    BooleanParameter,
    EnumParameter,
)
from repro.searchspace.space import Configuration, SearchSpace

__all__ = [
    "Parameter",
    "IntegerParameter",
    "PowerOfTwoParameter",
    "BooleanParameter",
    "EnumParameter",
    "Configuration",
    "SearchSpace",
]
