"""Parameter primitives for autotuning search spaces.

Each parameter is a finite, ordered domain with

* a bijection between its values and indices ``0 .. cardinality-1``,
* a numeric *encoding* used as a feature by surrogate models (power-of-
  two parameters encode as their exponent so that the model sees the
  natural log-scale the hardware responds to), and
* a ``mutate`` operation used by the local-search techniques in
  :mod:`repro.tuner`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Sequence

import numpy as np

from repro.errors import SearchSpaceError

__all__ = [
    "Parameter",
    "IntegerParameter",
    "PowerOfTwoParameter",
    "BooleanParameter",
    "EnumParameter",
]

_NAME_FORBIDDEN = set(" \t\n,;=")


class Parameter(ABC):
    """A named, finite, ordered tuning parameter."""

    def __init__(self, name: str) -> None:
        if not name or _NAME_FORBIDDEN.intersection(name):
            raise SearchSpaceError(f"invalid parameter name: {name!r}")
        self.name = name

    @property
    @abstractmethod
    def cardinality(self) -> int:
        """Number of distinct values."""

    @abstractmethod
    def value_at(self, index: int) -> Any:
        """The value at ordinal ``index`` (0-based)."""

    @abstractmethod
    def index_of(self, value: Any) -> int:
        """Inverse of :meth:`value_at`; raises if ``value`` not in domain."""

    @abstractmethod
    def encode(self, value: Any) -> float:
        """Numeric feature representation of ``value`` for ML models."""

    def encode_digits(self, digits: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`encode` over an int array of ordinals.

        Must equal ``[encode(value_at(d)) for d in digits]`` exactly;
        the concrete parameter types override with closed-form
        arithmetic, this generic fallback guarantees the contract for
        custom subclasses.
        """
        return np.array(
            [self.encode(self.value_at(int(d))) for d in digits], dtype=float
        )

    def values(self) -> list:
        """All values in index order (domains here are small per axis)."""
        return [self.value_at(i) for i in range(self.cardinality)]

    def contains(self, value: Any) -> bool:
        try:
            self.index_of(value)
        except SearchSpaceError:
            return False
        return True

    def sample(self, rng: np.random.Generator) -> Any:
        """A uniformly random value."""
        return self.value_at(int(rng.integers(0, self.cardinality)))

    def mutate(self, value: Any, rng: np.random.Generator, scale: float = 1.0) -> Any:
        """A small random move away from ``value`` (never returns ``value``
        when the domain has more than one element).

        The default implementation takes a geometric-ish step in index
        space; subclasses may override.
        """
        n = self.cardinality
        if n <= 1:
            return value
        idx = self.index_of(value)
        step = max(1, int(round(abs(rng.normal(0.0, scale * max(1.0, n / 8.0))))))
        direction = 1 if rng.random() < 0.5 else -1
        new = idx + direction * step
        new = int(np.clip(new, 0, n - 1))
        if new == idx:
            new = idx + 1 if idx + 1 < n else idx - 1
        return self.value_at(new)

    def _check_index(self, index: int) -> int:
        index = int(index)
        if not 0 <= index < self.cardinality:
            raise SearchSpaceError(
                f"index {index} out of range for parameter {self.name!r} "
                f"(cardinality {self.cardinality})"
            )
        return index

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, |domain|={self.cardinality})"

    def __eq__(self, other: object) -> bool:
        return (
            type(self) is type(other)
            and self.name == other.name  # type: ignore[attr-defined]
            and self.values() == other.values()  # type: ignore[attr-defined]
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.name, tuple(map(str, self.values()))))


class IntegerParameter(Parameter):
    """Consecutive integers ``low .. high`` inclusive.

    Loop-unroll factors in Table I (1, ..., 32) use this type.
    """

    def __init__(self, name: str, low: int, high: int) -> None:
        super().__init__(name)
        if high < low:
            raise SearchSpaceError(f"{name}: empty range [{low}, {high}]")
        self.low = int(low)
        self.high = int(high)

    @property
    def cardinality(self) -> int:
        return self.high - self.low + 1

    def value_at(self, index: int) -> int:
        return self.low + self._check_index(index)

    def index_of(self, value: Any) -> int:
        v = int(value)
        if v != value or not self.low <= v <= self.high:
            raise SearchSpaceError(f"{self.name}: value {value!r} not in [{self.low}, {self.high}]")
        return v - self.low

    def encode(self, value: Any) -> float:
        return float(int(value))

    def encode_digits(self, digits):
        # encode(value_at(d)) == float(low + d): exact in float64 for
        # any domain this reproduction uses.
        return (digits + self.low).astype(float)


class PowerOfTwoParameter(Parameter):
    """Powers of two ``2**min_exp .. 2**max_exp``.

    Cache-tiling (2^0..2^11) and register-tiling (2^0..2^5) sizes in
    Table I use this type.  The ML encoding is the *exponent*, matching
    the log-scale sensitivity of the memory hierarchy.
    """

    def __init__(self, name: str, min_exp: int, max_exp: int) -> None:
        super().__init__(name)
        if max_exp < min_exp:
            raise SearchSpaceError(f"{name}: empty exponent range [{min_exp}, {max_exp}]")
        if min_exp < 0:
            raise SearchSpaceError(f"{name}: negative exponent {min_exp}")
        self.min_exp = int(min_exp)
        self.max_exp = int(max_exp)

    @property
    def cardinality(self) -> int:
        return self.max_exp - self.min_exp + 1

    def value_at(self, index: int) -> int:
        return 1 << (self.min_exp + self._check_index(index))

    def index_of(self, value: Any) -> int:
        v = int(value)
        if v != value or v <= 0 or v & (v - 1):
            raise SearchSpaceError(f"{self.name}: {value!r} is not a positive power of two")
        exp = v.bit_length() - 1
        if not self.min_exp <= exp <= self.max_exp:
            raise SearchSpaceError(
                f"{self.name}: 2^{exp} outside [2^{self.min_exp}, 2^{self.max_exp}]"
            )
        return exp - self.min_exp

    def encode(self, value: Any) -> float:
        return float(self.min_exp + self.index_of(value))

    def encode_digits(self, digits):
        return (digits + self.min_exp).astype(float)


class BooleanParameter(Parameter):
    """An on/off switch (compiler flags, pragma toggles)."""

    def __init__(self, name: str) -> None:
        super().__init__(name)

    @property
    def cardinality(self) -> int:
        return 2

    def value_at(self, index: int) -> bool:
        return bool(self._check_index(index))

    def index_of(self, value: Any) -> int:
        if not isinstance(value, (bool, np.bool_)):
            raise SearchSpaceError(f"{self.name}: expected a bool, got {value!r}")
        return int(bool(value))

    def encode(self, value: Any) -> float:
        return float(self.index_of(value))

    def encode_digits(self, digits):
        return digits.astype(float)

    def mutate(self, value: Any, rng: np.random.Generator, scale: float = 1.0) -> bool:
        return not bool(value)


class EnumParameter(Parameter):
    """An unordered categorical choice (e.g. HPL broadcast algorithm).

    The ML encoding is the ordinal index; the recursive-partitioning
    models this library ships can express arbitrary subsets of a small
    categorical axis through repeated splits, so an ordinal code
    suffices.
    """

    def __init__(self, name: str, choices: Sequence[Any]) -> None:
        super().__init__(name)
        choices = list(choices)
        if not choices:
            raise SearchSpaceError(f"{name}: empty choice list")
        if len(set(map(repr, choices))) != len(choices):
            raise SearchSpaceError(f"{name}: duplicate choices")
        self.choices = choices
        self._index = {repr(c): i for i, c in enumerate(choices)}

    @property
    def cardinality(self) -> int:
        return len(self.choices)

    def value_at(self, index: int) -> Any:
        return self.choices[self._check_index(index)]

    def index_of(self, value: Any) -> int:
        key = repr(value)
        if key not in self._index:
            raise SearchSpaceError(f"{self.name}: {value!r} not among {self.choices!r}")
        return self._index[key]

    def encode(self, value: Any) -> float:
        return float(self.index_of(value))

    def encode_digits(self, digits):
        return digits.astype(float)

    def mutate(self, value: Any, rng: np.random.Generator, scale: float = 1.0) -> Any:
        # Categorical: jump to any other choice uniformly.
        n = self.cardinality
        if n <= 1:
            return value
        idx = self.index_of(value)
        new = int(rng.integers(0, n - 1))
        if new >= idx:
            new += 1
        return self.value_at(new)
