"""Cached configuration encoding.

``SearchSpace.encode_many`` rebuilds every feature row in Python on
each call.  The searches re-encode the same configurations constantly:
RSb/RSp score one shared 10k pool, SMBO and the online variant re-encode
an ever-growing training set plus overlapping candidate pools on every
refit.  :class:`EncodingCache` memoizes rows by ``Configuration.index``
(the space's stable linearization) and whole pools by their index
tuple, so repeated encodings are array lookups instead of Python loops.

Returned matrices are marked read-only: they are shared between
callers, and an accidental in-place edit would silently corrupt every
later user of the cache.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Sequence
from weakref import WeakKeyDictionary

import numpy as np

from repro.searchspace.space import Configuration, SearchSpace

__all__ = ["EncodingCache", "encoding_cache", "encode_cached"]

#: Default row-memo bound — far above any pool this reproduction uses,
#: but a hard cap so week-long guarded runs cannot grow memory forever.
_MAX_ROWS = 200_000


class EncodingCache:
    """Per-space memo of encoded rows and recently encoded pools.

    Both memos are bounded: pools by a small true-LRU (``max_pools``),
    rows by ``max_rows`` with oldest-inserted eviction — reads are on
    the searches' hot path, so row hits deliberately skip the
    recency bookkeeping a strict LRU would charge per lookup.
    """

    def __init__(
        self, space: SearchSpace, max_pools: int = 8, max_rows: int = _MAX_ROWS
    ) -> None:
        self.space = space
        self.max_pools = max_pools
        self.max_rows = max_rows
        self._rows: OrderedDict[int, np.ndarray] = OrderedDict()
        self._pools: OrderedDict[tuple[int, ...], np.ndarray] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.row_evictions = 0
        self.pool_evictions = 0

    def encode_many(self, configs: Sequence[Configuration]) -> np.ndarray:
        """Encoded ``(n, dim)`` matrix; read-only and safe to share."""
        if not configs:
            return self.space.encode_many(configs)
        key = tuple(c.index for c in configs)
        pool = self._pools.get(key)
        if pool is not None:
            self._pools.move_to_end(key)
            self.hits += 1
            return pool
        self.misses += 1
        rows = self._rows
        missing = [c for c in configs if c.index not in rows]
        if missing:
            encoded = self.space.encode_many(missing)
            for c, row in zip(missing, encoded):
                row = row.copy()
                row.flags.writeable = False
                rows[c.index] = row
        if len(missing) == len(configs):
            mat = encoded
        else:
            mat = np.array([rows[i] for i in key])
        mat.flags.writeable = False
        # Evict only after ``mat`` is assembled: a pool larger than the
        # row bound must still encode correctly, it just isn't memoized.
        while len(rows) > self.max_rows:
            rows.popitem(last=False)
            self.row_evictions += 1
        self._pools[key] = mat
        while len(self._pools) > self.max_pools:
            self._pools.popitem(last=False)
            self.pool_evictions += 1
        return mat

    def encode_indices(self, indices: Sequence[int]) -> np.ndarray:
        """Encoded matrix for linear indices (read-only, pool-memo only).

        Shares the pool memo with :meth:`encode_many` — the key is the
        index tuple in both — so a pool first encoded by index is a hit
        when later re-encoded from its Configuration objects and vice
        versa.  Individual rows are *not* memoized: the bulk path is a
        single vectorized pass, so per-row inserts would cost more than
        they save.
        """
        key = tuple(int(i) for i in indices)
        if not key:
            return self.space.encode_indices(key)
        pool = self._pools.get(key)
        if pool is not None:
            self._pools.move_to_end(key)
            self.hits += 1
            return pool
        self.misses += 1
        mat = self.space.encode_indices(key)
        mat.flags.writeable = False
        self._pools[key] = mat
        while len(self._pools) > self.max_pools:
            self._pools.popitem(last=False)
            self.pool_evictions += 1
        return mat

    def stats(self) -> dict[str, int]:
        """Current sizes and lifetime counters, for diagnostics."""
        return {
            "rows": len(self._rows),
            "max_rows": self.max_rows,
            "pools": len(self._pools),
            "max_pools": self.max_pools,
            "hits": self.hits,
            "misses": self.misses,
            "row_evictions": self.row_evictions,
            "pool_evictions": self.pool_evictions,
        }


_caches: "WeakKeyDictionary[SearchSpace, EncodingCache]" = WeakKeyDictionary()


def encoding_cache(space: SearchSpace) -> EncodingCache:
    """The shared per-space cache (created on first use).

    Keyed weakly, so a cache lives exactly as long as its space.  Spaces
    that cannot be weak-referenced get a fresh, unshared cache.
    """
    try:
        cache = _caches.get(space)
        if cache is None:
            cache = EncodingCache(space)
            _caches[space] = cache
        return cache
    except TypeError:  # pragma: no cover - space without weakref support
        return EncodingCache(space)


def encode_cached(space: SearchSpace, configs: Sequence[Configuration]) -> np.ndarray:
    """Encode through the space's shared cache (read-only result)."""
    return encoding_cache(space).encode_many(configs)
