"""The :class:`SearchSpace` — the feasible domain ``D`` of Section II.

The spaces in the paper are far too large to enumerate (up to 2.57e12
configurations, Table III), so the space works with an integer
*linearization*: every configuration corresponds to exactly one mixed-
radix integer in ``[0, |D|)``.  Uniform sampling without replacement is
done by drawing integers and rejecting duplicates, which is exact and
cheap while the number of draws is tiny relative to ``|D|`` (the paper
samples at most ``N = 10,000``).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.errors import ConfigurationError, SearchSpaceError
from repro.searchspace.parameters import Parameter

__all__ = ["Configuration", "SearchSpace"]


class Configuration(Mapping[str, Any]):
    """An immutable assignment of a value to every parameter of a space.

    Behaves as a read-only mapping ``name -> value``.  Hashable, so
    configurations can be used in sets (random search *without
    replacement* needs exactly that).
    """

    __slots__ = ("_space", "_values", "_index")

    def __init__(self, space: "SearchSpace", values: Mapping[str, Any]) -> None:
        missing = [p.name for p in space.parameters if p.name not in values]
        if missing:
            raise ConfigurationError(f"missing values for parameters: {missing}")
        extra = [k for k in values if k not in space.names]
        if extra:
            raise ConfigurationError(f"unknown parameters: {extra}")
        canon = {}
        for p in space.parameters:
            # Round-trip through the parameter to validate and canonicalize.
            canon[p.name] = p.value_at(p.index_of(values[p.name]))
        object.__setattr__(self, "_space", space)
        object.__setattr__(self, "_values", canon)
        object.__setattr__(self, "_index", space._linearize(canon))

    @classmethod
    def _trusted(
        cls, space: "SearchSpace", canon: dict[str, Any], index: int
    ) -> "Configuration":
        """Internal fast path: values already canonical, index known.

        Used by :meth:`SearchSpace.config_at`, which constructs values
        directly from parameter domains — re-validating them would
        double the cost of every pool sample.
        """
        self = object.__new__(cls)
        object.__setattr__(self, "_space", space)
        object.__setattr__(self, "_values", canon)
        object.__setattr__(self, "_index", index)
        return self

    def __setattr__(self, name: str, value: Any) -> None:  # pragma: no cover
        raise AttributeError("Configuration is immutable")

    @property
    def space(self) -> "SearchSpace":
        return self._space

    @property
    def index(self) -> int:
        """The configuration's position in the space's linearization."""
        return self._index

    def __getitem__(self, name: str) -> Any:
        return self._values[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __hash__(self) -> int:
        return hash((id(self._space), self._index))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Configuration)
            and self._space is other._space
            and self._index == other._index
        )

    def replace(self, **changes: Any) -> "Configuration":
        """A copy with some parameter values replaced."""
        vals = dict(self._values)
        vals.update(changes)
        return Configuration(self._space, vals)

    def encode(self) -> np.ndarray:
        """Numeric feature vector for surrogate models."""
        return np.array(
            [p.encode(self._values[p.name]) for p in self._space.parameters], dtype=float
        )

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v!r}" for k, v in self._values.items())
        return f"Configuration({body})"


class SearchSpace:
    """An ordered product of finite parameters.

    Parameters
    ----------
    parameters:
        The axes of the space, in a fixed order that defines both the
        feature layout seen by surrogate models and the mixed-radix
        linearization.
    name:
        Optional label used in reports.
    """

    def __init__(self, parameters: Sequence[Parameter], name: str = "space") -> None:
        params = list(parameters)
        if not params:
            raise SearchSpaceError("a search space needs at least one parameter")
        names = [p.name for p in params]
        if len(set(names)) != len(names):
            raise SearchSpaceError(f"duplicate parameter names in {names}")
        self.name = name
        self.parameters: tuple[Parameter, ...] = tuple(params)
        self.names: tuple[str, ...] = tuple(names)
        self._by_name = {p.name: p for p in params}
        # Mixed-radix place values: last parameter varies fastest.
        radices = [p.cardinality for p in params]
        place = 1
        places = []
        for r in reversed(radices):
            places.append(place)
            place *= r
        self._places = list(reversed(places))
        self._cardinality = place

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def cardinality(self) -> int:
        """``|D|`` — the number of allowable configurations."""
        return self._cardinality

    @property
    def dimension(self) -> int:
        """Number of tunable parameters (``ni`` in Table III)."""
        return len(self.parameters)

    def parameter(self, name: str) -> Parameter:
        try:
            return self._by_name[name]
        except KeyError:
            raise SearchSpaceError(f"no parameter named {name!r} in space {self.name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __repr__(self) -> str:
        return f"SearchSpace({self.name!r}, dim={self.dimension}, |D|={self.cardinality:.3g})"

    # ------------------------------------------------------------------
    # Configuration <-> index bijection
    # ------------------------------------------------------------------
    def _linearize(self, values: Mapping[str, Any]) -> int:
        index = 0
        for p, place in zip(self.parameters, self._places):
            index += p.index_of(values[p.name]) * place
        return index

    def configuration(self, values: Mapping[str, Any]) -> Configuration:
        """Build (and validate) a configuration from a value mapping."""
        return Configuration(self, values)

    def config_at(self, index: int) -> Configuration:
        """The configuration with the given linear index."""
        index = int(index)
        if not 0 <= index < self._cardinality:
            raise SearchSpaceError(
                f"index {index} out of range for space of size {self._cardinality}"
            )
        original = index
        values = {}
        for p, place in zip(self.parameters, self._places):
            digit, index = divmod(index, place)
            values[p.name] = p.value_at(digit)
        return Configuration._trusted(self, values, original)

    def default(self) -> Configuration:
        """The 'no transformation' configuration: index 0 of every axis.

        For the SPAPT kernels this is unroll factor 1 and tile size 1 on
        every loop — i.e. the untransformed source, the paper's
        default/initial configuration.
        """
        return self.config_at(0)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample_indices(
        self,
        rng: np.random.Generator,
        n: int,
        exclude: Iterable[int] = (),
    ) -> list[int]:
        """``n`` distinct uniform indices, avoiding those in ``exclude``.

        Exact rejection sampling; falls back to a full permutation when
        the request is a large fraction of the space (only feasible, and
        only needed, for small spaces).
        """
        if n < 0:
            raise SearchSpaceError(f"cannot sample a negative count: {n}")
        excluded = set(int(i) for i in exclude)
        available = self._cardinality - len(excluded)
        if n > available:
            raise SearchSpaceError(
                f"requested {n} distinct configurations but only {available} remain"
            )
        if self._cardinality <= 4 * (n + len(excluded)) and self._cardinality <= 10_000_000:
            pool = [i for i in range(self._cardinality) if i not in excluded]
            perm = rng.permutation(len(pool))[:n]
            return [pool[i] for i in perm]
        chosen: list[int] = []
        seen = set(excluded)
        # Draw in batches; duplicates are vanishingly rare for |D| >> n.
        # Spaces larger than int64 (e.g. the 247-dimensional gcc-flag
        # space) draw one digit per axis — the product of independent
        # uniform digits is exactly a uniform mixed-radix index.
        huge = self._cardinality > (1 << 62)
        while len(chosen) < n:
            count = max(16, 2 * (n - len(chosen)))
            if huge:
                for i in self._random_indices_bigint(rng, count):
                    if i not in seen:
                        seen.add(i)
                        chosen.append(i)
                        if len(chosen) == n:
                            break
                continue
            batch = rng.integers(0, self._cardinality, size=count)
            # Vectorized replay of the scalar scan: within the batch the
            # first occurrence of each new value wins, in draw order,
            # and values already seen are skipped entirely.
            _, first = np.unique(batch, return_index=True)
            keep = np.zeros(count, dtype=bool)
            keep[first] = True
            if seen:
                keep[keep] = ~np.isin(
                    batch[keep],
                    np.fromiter(seen, dtype=np.int64, count=len(seen)),
                )
            picks = [int(v) for v in batch[keep][: n - len(chosen)]]
            chosen.extend(picks)
            seen.update(picks)
        return chosen

    def _random_indices_bigint(self, rng: np.random.Generator, count: int) -> list[int]:
        """Uniform indices for spaces beyond the int64 range.

        Draws one digit column per axis (vectorized) and combines the
        mixed-radix rows with Python big-int arithmetic.
        """
        columns = [
            rng.integers(0, p.cardinality, size=count) for p in self.parameters
        ]
        out = []
        for row in range(count):
            index = 0
            for col, place in zip(columns, self._places):
                index += int(col[row]) * place
            out.append(index)
        return out

    def sample(
        self,
        rng: np.random.Generator,
        n: int,
        exclude: Iterable[Configuration] = (),
    ) -> list[Configuration]:
        """``n`` distinct uniform configurations (without replacement)."""
        indices = self.sample_indices(rng, n, (c.index for c in exclude))
        return [self.config_at(i) for i in indices]

    def sample_one(
        self,
        rng: np.random.Generator,
        exclude: Iterable[Configuration] = (),
    ) -> Configuration:
        """One uniform configuration not in ``exclude``."""
        return self.sample(rng, 1, exclude)[0]

    # ------------------------------------------------------------------
    # ML encoding
    # ------------------------------------------------------------------
    def encode_many(self, configs: Sequence[Configuration]) -> np.ndarray:
        """Stack configuration encodings into an ``(n, dim)`` matrix."""
        if not configs:
            return np.empty((0, self.dimension), dtype=float)
        return np.vstack([c.encode() for c in configs])

    def encode_indices(self, indices: Sequence[int]) -> np.ndarray:
        """Encoded ``(n, dim)`` matrix straight from linear indices.

        Exactly ``encode_many([config_at(i) for i in indices])`` without
        materializing a Configuration per row: each feature column comes
        from the vectorized mixed-radix digit ``(index // place) % card``
        fed through the parameter's :meth:`~Parameter.encode_digits`.
        Spaces beyond the int64 range keep the per-row big-int path.
        """
        n = len(indices)
        if n == 0:
            return np.empty((0, self.dimension), dtype=float)
        if self._cardinality > (1 << 62):
            return np.vstack([self.config_at(i).encode() for i in indices])
        idx = np.asarray(indices, dtype=np.int64)
        if idx.min() < 0 or idx.max() >= self._cardinality:
            raise SearchSpaceError(
                f"index out of range for space of size {self._cardinality}"
            )
        out = np.empty((n, self.dimension), dtype=float)
        for j, (p, place) in enumerate(zip(self.parameters, self._places)):
            out[:, j] = p.encode_digits((idx // place) % p.cardinality)
        return out

    def feature_names(self) -> list[str]:
        """Feature-column names matching :meth:`encode_many`'s layout."""
        return list(self.names)
