"""repro — reproduction of *Exploiting Performance Portability in Search
Algorithms for Autotuning* (Roy, Balaprakash, Hovland, Wild; 2016).

The package builds the paper's full stack in pure Python/NumPy:

* :mod:`repro.searchspace` — tunable-parameter spaces (Table I/III);
* :mod:`repro.ml` — from-scratch CART/random-forest surrogates (§III-A);
* :mod:`repro.machines` — parametric models of the five machines (Table II);
* :mod:`repro.orio` — a mini-Orio: annotated-C parsing, loop transforms,
  code generation, static analysis (§IV-A);
* :mod:`repro.kernels` — the SPAPT kernels MM, ATAX, COR, LU (§IV-C);
* :mod:`repro.perf` — roofline cost model + simulated clock;
* :mod:`repro.search` — RS and the model-based/model-free variants
  (Algorithms 1 & 2, §IV-D);
* :mod:`repro.transfer` — the cross-machine transfer workflow and the
  speedup metrics (§IV-D);
* :mod:`repro.tuner` — an OpenTuner-style framework (§IV-A) for the
  HPL and raytracer mini-applications (:mod:`repro.miniapps`);
* :mod:`repro.experiments` — one module per paper table/figure.

Quick start::

    from repro import TransferSession, get_machine
    from repro.kernels import get_kernel

    session = TransferSession(kernel=get_kernel("LU"),
                              source=get_machine("westmere"),
                              target=get_machine("sandybridge"))
    outcome = session.run()          # RS vs RSp/RSb/RSpf/RSbf on target
    print(outcome.summary_table())
"""

from repro._version import __version__
from repro.errors import ReproError

__all__ = ["__version__", "ReproError"]


def __getattr__(name):
    # Lazy top-level re-exports keep `import repro` cheap while still
    # offering the convenient flat API documented above.
    if name in ("TransferSession", "TransferOutcome", "speedups"):
        import repro.transfer as _transfer

        return getattr(_transfer, name)
    if name in ("get_machine", "MACHINES", "MachineSpec"):
        import repro.machines as _machines

        return getattr(_machines, name)
    if name in ("get_kernel", "KERNELS"):
        import repro.kernels as _kernels

        return getattr(_kernels, name)
    if name in ("RandomForestRegressor", "DecisionTreeRegressor"):
        import repro.ml as _ml

        return getattr(_ml, name)
    if name == "SearchSpace":
        from repro.searchspace import SearchSpace

        return SearchSpace
    if name in ("TunerSpec", "ForestSpec", "GateSpec", "PoolSpec",
                "SMBOSpec", "EngineSpec", "DEFAULT_SPEC"):
        import repro.spec as _spec

        return getattr(_spec, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
