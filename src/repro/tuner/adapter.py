"""Manipulator-technique adapter: techniques as an engine Proposer.

Bridges the OpenTuner-style stack (a bound
:class:`~repro.tuner.technique.SearchTechnique` proposing into a shared
:class:`~repro.tuner.database.ResultsDatabase`) to the
:class:`~repro.search.engine.SearchEngine` loop.  The adapter owns
everything technique-specific — the results cache (re-proposals of
measured configurations cost nothing, as in OpenTuner), the stall guard
that ends a run when a technique converges onto already-measured
configurations, failure-penalty feedback, database bookkeeping for
checkpoints, and the optional surrogate warm-start seed phase — while
the engine owns clocks, budgets, and trace recording.

This module lives in ``tuner/`` rather than next to the other proposers
because the dependency points one way: the tuner layer imports the
search layer (``runner`` → ``engine``), never the reverse.
"""

from __future__ import annotations

import numpy as np

from repro.search.protocols import EngineContext, Proposal, SurrogateModel
from repro.search.proposers import BaseProposer
from repro.searchspace.space import SearchSpace
from repro.tuner.database import Result, ResultsDatabase
from repro.tuner.technique import SearchTechnique
from repro.utils.rng import spawn_rng

__all__ = ["TechniqueProposer"]


class TechniqueProposer(BaseProposer):
    """Drive a bound search technique as the engine's candidate source.

    ``iteration_mode`` selects how the database's ``iteration`` field is
    stamped — ``"count"`` counts every ``technique.propose()`` call
    including cache hits (:class:`~repro.tuner.runner.TuningRun`'s
    historical convention), ``"trace"`` stamps the trace's evaluation
    count (``warm_started_search``'s convention).

    With ``failure_feedback_factor`` set, failed evaluations feed the
    technique a finite penalty (the censored bound when available,
    otherwise ``factor ×`` the worst value measured so far) so it steers
    away from the failing region; without it, the raw runtime is fed
    back unchanged.

    ``seed_evaluations > 0`` prepends a surrogate warm-start phase: the
    model's best ``seed_evaluations`` pool picks are proposed first
    (fit and pool-scoring time charged in setup), each result fed to
    the technique before it takes over.
    """

    def __init__(
        self,
        technique: SearchTechnique,
        database: ResultsDatabase,
        space: SearchSpace,
        *,
        result_label: str,
        failure_feedback_factor: float | None = None,
        iteration_mode: str = "count",
        surrogate: SurrogateModel | None = None,
        pool_size: int = 10_000,
        seed_evaluations: int = 0,
        rng_label: str = "warm-start-pool",
    ) -> None:
        self.technique = technique
        self.database = database
        self.space = space
        self.result_label = result_label
        self.failure_feedback_factor = failure_feedback_factor
        self.iteration_mode = iteration_mode
        self.surrogate = surrogate
        self.pool_size = pool_size
        self.seed_evaluations = seed_evaluations
        self.rng_label = rng_label
        self._iteration = 0
        self._stall = 0
        self._seeds: list = []
        self._last_from_seed = False

    def restore(self, position: int, ctx: EngineContext) -> None:
        self._iteration = 0
        self._stall = 0
        # Replay the checkpointed database as feedback so the technique
        # regains its knowledge; the cache makes re-proposals free.  A
        # stateful technique's internal RNG is *not* restored — the
        # continuation explores from rebuilt knowledge rather than
        # replaying the interrupted run bit-for-bit.
        for row in ctx.extra.get("database", []):
            config = self.space.config_at(int(row["config"]))
            result = Result(
                config=config,
                value=float(row["value"]),
                technique=row["technique"],
                elapsed=float(row["elapsed"]),
                iteration=int(row["iteration"]),
            )
            self.database.add(result)
            self.technique.feedback(config, result.value)

    def setup(self, ctx: EngineContext) -> None:
        if self.seed_evaluations <= 0:
            return
        clock = ctx.clock
        clock.advance(self.surrogate.fit_seconds)
        rng = spawn_rng(self.rng_label, self.space.name, ctx.name)
        pool = self.space.sample(rng, min(self.pool_size, self.space.cardinality))
        predictions = self.surrogate.predict(pool)
        clock.advance(self.surrogate.predict_seconds(len(pool)))
        order = np.argsort(predictions, kind="stable")
        self._seeds = [
            pool[int(i)] for i in order[: min(self.seed_evaluations, ctx.nmax)]
        ]

    def propose(self, ctx: EngineContext) -> Proposal | None:
        while self._seeds:
            config = self._seeds.pop(0)
            cached = self.database.lookup(config)
            if cached is not None:
                # A duplicate pool pick: feed the remembered value back
                # and consume the seed without re-measuring.
                self.technique.feedback(config, cached.value)
                continue
            self._last_from_seed = True
            return Proposal(config)
        self._last_from_seed = False
        while True:
            config = self.technique.propose()
            self._iteration += 1
            cached = self.database.lookup(config)
            if cached is not None:
                # Feed the remembered value back; costs no search time.
                self.technique.feedback(config, cached.value)
                self._stall += 1
                if self._stall > 50 * ctx.nmax:
                    return None  # technique converged onto measured configs
                continue
            self._stall = 0
            return Proposal(config)

    def observe(self, ctx: EngineContext, proposal: Proposal, runtime: float,
                failed: bool, censored: bool) -> None:
        if failed and self.failure_feedback_factor is not None:
            # A censored runtime (timeout cap) is already a usable lower
            # bound; an unbounded failure is penalized relative to the
            # worst measurement seen so far.
            if censored:
                feedback = runtime
            else:
                worst = max(
                    (r.value for r in self.database.results()), default=1.0
                )
                feedback = self.failure_feedback_factor * worst
        else:
            feedback = runtime
        iteration = (
            self._iteration if self.iteration_mode == "count"
            else ctx.trace.n_evaluations
        )
        self.database.add(
            Result(
                config=proposal.config,
                value=feedback,
                technique=self.result_label,
                elapsed=ctx.clock.now,
                iteration=iteration,
            )
        )
        self.technique.feedback(proposal.config, feedback)

    def state(self) -> dict:
        return {
            "database": [
                {
                    "config": r.config.index,
                    "value": r.value,
                    "technique": r.technique,
                    "elapsed": r.elapsed,
                    "iteration": r.iteration,
                }
                for r in self.database.results()
            ]
        }

    def budget_break_skips_sync(self) -> bool:
        # Legacy quirk: a budget wall while consuming warm-start seeds
        # ends the search without syncing total_elapsed to the clock.
        return self._last_from_seed
