"""The search-technique interface.

A technique proposes configurations one at a time and receives feedback
(the measured objective) for each.  Techniques never measure anything
themselves — the :class:`~repro.tuner.runner.TuningRun` owns the
evaluator and the clock, exactly like OpenTuner's driver.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.searchspace.space import Configuration
from repro.tuner.database import ResultsDatabase
from repro.tuner.manipulator import ConfigurationManipulator
from repro.utils.rng import spawn_rng

__all__ = ["SearchTechnique"]


class SearchTechnique(ABC):
    """Base class: propose/feedback protocol plus shared plumbing."""

    name: str = "technique"

    def __init__(self, seed: object = 0) -> None:
        self._seed = seed
        self.manipulator: ConfigurationManipulator | None = None
        self.database: ResultsDatabase | None = None
        self.rng: np.random.Generator | None = None
        self.n_proposals = 0

    def bind(
        self, manipulator: ConfigurationManipulator, database: ResultsDatabase
    ) -> "SearchTechnique":
        """Attach the technique to a tuning run's shared state."""
        self.manipulator = manipulator
        self.database = database
        self.rng = spawn_rng("technique", self.name, str(self._seed))
        return self

    def _require_bound(self) -> None:
        if self.manipulator is None or self.rng is None:
            raise RuntimeError(f"technique {self.name!r} used before bind()")

    @abstractmethod
    def propose(self) -> Configuration:
        """The next configuration this technique wants measured."""

    def feedback(self, config: Configuration, value: float) -> None:
        """Measured objective for a previously proposed configuration.

        Default: no internal state to update (random search).
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
