"""Simulated annealing with a geometric cooling schedule."""

from __future__ import annotations

import math

from repro.errors import SearchError
from repro.searchspace.space import Configuration
from repro.tuner.technique import SearchTechnique

__all__ = ["SimulatedAnnealing"]


class SimulatedAnnealing(SearchTechnique):
    """Single-chain annealing over manipulator neighbours.

    The acceptance temperature is expressed *relatively* (fractional
    objective change), so no problem-specific scale is needed.
    """

    name = "anneal"

    def __init__(
        self,
        initial_temperature: float = 0.3,
        cooling: float = 0.97,
        min_temperature: float = 1e-3,
        seed: object = 0,
    ) -> None:
        super().__init__(seed=seed)
        if not 0.0 < cooling < 1.0:
            raise SearchError(f"cooling must be in (0, 1), got {cooling}")
        if initial_temperature <= 0:
            raise SearchError("initial_temperature must be positive")
        self.temperature = initial_temperature
        self.cooling = cooling
        self.min_temperature = min_temperature
        self._current: tuple[Configuration, float] | None = None
        self._pending: Configuration | None = None

    def propose(self) -> Configuration:
        self._require_bound()
        assert self.manipulator is not None and self.rng is not None
        self.n_proposals += 1
        if self._current is None:
            self._pending = self.manipulator.random(self.rng)
        else:
            self._pending = self.manipulator.neighbor(self._current[0], self.rng)
        return self._pending

    def feedback(self, config: Configuration, value: float) -> None:
        assert self.rng is not None
        if self._current is None:
            self._current = (config, value)
            return
        cur_value = self._current[1]
        if value <= cur_value:
            accept = True
        else:
            rel = (value - cur_value) / max(cur_value, 1e-12)
            accept = self.rng.random() < math.exp(-rel / max(self.temperature, 1e-12))
        if accept:
            self._current = (config, value)
        self.temperature = max(self.min_temperature, self.temperature * self.cooling)

    @property
    def current(self) -> tuple[Configuration, float] | None:
        return self._current
