"""Nelder-Mead simplex search over the index-space embedding.

One of the search families Section II lists as deployed for autotuning.
The simplex lives in the continuous box of per-parameter indices;
proposals round to the nearest valid configuration.  When the simplex
collapses below one index step, it restarts from a random point.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SearchError
from repro.searchspace.space import Configuration
from repro.tuner.technique import SearchTechnique

__all__ = ["NelderMead"]


class NelderMead(SearchTechnique):
    name = "nelder-mead"

    def __init__(
        self,
        alpha: float = 1.0,  # reflection
        gamma: float = 2.0,  # expansion
        rho: float = 0.5,  # contraction
        sigma: float = 0.5,  # shrink
        seed: object = 0,
    ) -> None:
        super().__init__(seed=seed)
        if alpha <= 0 or gamma <= 1 or not 0 < rho < 1 or not 0 < sigma < 1:
            raise SearchError("invalid Nelder-Mead coefficients")
        self.alpha = alpha
        self.gamma = gamma
        self.rho = rho
        self.sigma = sigma
        self._vertices: list[np.ndarray] = []  # simplex points (index coords)
        self._values: list[float] = []
        self._phase = "init"  # init | reflect | expand | contract | shrink
        self._pending_point: np.ndarray | None = None
        self._reflect_value: float | None = None
        self._shrink_queue: list[int] = []

    # -- embedding ------------------------------------------------------
    def _bounds(self) -> np.ndarray:
        assert self.manipulator is not None
        return np.array(
            [p.cardinality - 1 for p in self.manipulator.space.parameters], dtype=float
        )

    def _decode(self, point: np.ndarray) -> Configuration:
        assert self.manipulator is not None
        space = self.manipulator.space
        values = {}
        for p, coord in zip(space.parameters, point):
            idx = int(np.clip(round(float(coord)), 0, p.cardinality - 1))
            values[p.name] = p.value_at(idx)
        return space.configuration(values)

    def _random_point(self) -> np.ndarray:
        assert self.rng is not None
        return self.rng.uniform(0, 1, size=len(self._bounds())) * self._bounds()

    # -- simplex operations ----------------------------------------------
    def _order(self) -> None:
        order = np.argsort(self._values)
        self._vertices = [self._vertices[i] for i in order]
        self._values = [self._values[i] for i in order]

    def _centroid(self) -> np.ndarray:
        return np.mean(self._vertices[:-1], axis=0)

    def _clip(self, point: np.ndarray) -> np.ndarray:
        return np.clip(point, 0.0, self._bounds())

    def _diameter(self) -> float:
        best = self._vertices[0]
        return max(float(np.max(np.abs(v - best))) for v in self._vertices[1:])

    def _restart(self) -> None:
        self._vertices = []
        self._values = []
        self._phase = "init"
        self._shrink_queue = []

    # -- propose/feedback --------------------------------------------------
    def propose(self) -> Configuration:
        self._require_bound()
        assert self.rng is not None
        self.n_proposals += 1
        dim = len(self._bounds())
        if self._phase == "init" or len(self._vertices) < dim + 1:
            self._phase = "init"
            self._pending_point = self._random_point()
            return self._decode(self._pending_point)
        self._order()
        if self._diameter() < 0.5:  # collapsed below one index step
            self._restart()
            self._pending_point = self._random_point()
            return self._decode(self._pending_point)
        centroid = self._centroid()
        worst = self._vertices[-1]
        if self._phase == "reflect":
            self._pending_point = self._clip(centroid + self.alpha * (centroid - worst))
        elif self._phase == "expand":
            reflected = centroid + self.alpha * (centroid - worst)
            self._pending_point = self._clip(centroid + self.gamma * (reflected - centroid))
        elif self._phase == "contract":
            self._pending_point = self._clip(centroid + self.rho * (worst - centroid))
        elif self._phase == "shrink":
            i = self._shrink_queue[0]
            best = self._vertices[0]
            self._pending_point = self._clip(best + self.sigma * (self._vertices[i] - best))
        else:  # pragma: no cover - defensive
            self._phase = "reflect"
            return self.propose()
        return self._decode(self._pending_point)

    def feedback(self, config: Configuration, value: float) -> None:
        point = self._pending_point
        if point is None:
            return  # external feedback (warm start): ignored by the simplex
        dim = len(self._bounds())
        if self._phase == "init":
            self._vertices.append(point)
            self._values.append(value)
            if len(self._vertices) == dim + 1:
                self._phase = "reflect"
            self._pending_point = None
            return
        self._order()
        if self._phase == "reflect":
            if value < self._values[0]:
                self._reflect_value = value
                self._reflect_point = point
                self._phase = "expand"
            elif value < self._values[-2]:
                self._vertices[-1] = point
                self._values[-1] = value
                self._phase = "reflect"
            else:
                self._phase = "contract"
        elif self._phase == "expand":
            assert self._reflect_value is not None
            if value < self._reflect_value:
                self._vertices[-1] = point
                self._values[-1] = value
            else:
                self._vertices[-1] = self._reflect_point
                self._values[-1] = self._reflect_value
            self._reflect_value = None
            self._phase = "reflect"
        elif self._phase == "contract":
            if value < self._values[-1]:
                self._vertices[-1] = point
                self._values[-1] = value
                self._phase = "reflect"
            else:
                self._phase = "shrink"
                self._shrink_queue = list(range(1, len(self._vertices)))
        elif self._phase == "shrink":
            i = self._shrink_queue.pop(0)
            self._vertices[i] = point
            self._values[i] = value
            if not self._shrink_queue:
                self._phase = "reflect"
        self._pending_point = None

    @property
    def simplex_size(self) -> int:
        return len(self._vertices)
