"""Particle swarm optimization over the index-space embedding.

Particles live in the continuous box ``[0, cardinality_i - 1]^d`` of
per-parameter indices; proposals round to the nearest valid index.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SearchError
from repro.searchspace.space import Configuration
from repro.tuner.technique import SearchTechnique

__all__ = ["ParticleSwarm"]


class ParticleSwarm(SearchTechnique):
    name = "pso"

    def __init__(
        self,
        n_particles: int = 12,
        inertia: float = 0.7,
        cognitive: float = 1.4,
        social: float = 1.4,
        seed: object = 0,
    ) -> None:
        super().__init__(seed=seed)
        if n_particles < 2:
            raise SearchError(f"n_particles must be >= 2, got {n_particles}")
        self.n_particles = n_particles
        self.inertia = inertia
        self.cognitive = cognitive
        self.social = social
        self._pos: np.ndarray | None = None  # (n, d) continuous index coords
        self._vel: np.ndarray | None = None
        self._pbest: np.ndarray | None = None
        self._pbest_val: np.ndarray | None = None
        self._gbest: np.ndarray | None = None
        self._gbest_val = float("inf")
        self._next = 0  # particle whose position is proposed next

    def _bounds(self) -> np.ndarray:
        assert self.manipulator is not None
        return np.array(
            [p.cardinality - 1 for p in self.manipulator.space.parameters], dtype=float
        )

    def _init_swarm(self) -> None:
        assert self.rng is not None
        hi = self._bounds()
        d = len(hi)
        self._pos = self.rng.uniform(0, 1, size=(self.n_particles, d)) * hi
        self._vel = self.rng.uniform(-0.25, 0.25, size=(self.n_particles, d)) * np.maximum(hi, 1.0)
        self._pbest = self._pos.copy()
        self._pbest_val = np.full(self.n_particles, np.inf)

    def _decode(self, coords: np.ndarray) -> Configuration:
        assert self.manipulator is not None
        space = self.manipulator.space
        values = {}
        for p, c in zip(space.parameters, coords):
            idx = int(np.clip(round(float(c)), 0, p.cardinality - 1))
            values[p.name] = p.value_at(idx)
        return space.configuration(values)

    def propose(self) -> Configuration:
        self._require_bound()
        assert self.rng is not None
        self.n_proposals += 1
        if self._pos is None:
            self._init_swarm()
        assert self._pos is not None and self._vel is not None
        i = self._next
        if self._gbest is not None:
            hi = self._bounds()
            r1 = self.rng.uniform(size=self._pos.shape[1])
            r2 = self.rng.uniform(size=self._pos.shape[1])
            self._vel[i] = (
                self.inertia * self._vel[i]
                + self.cognitive * r1 * (self._pbest[i] - self._pos[i])
                + self.social * r2 * (self._gbest - self._pos[i])
            )
            np.clip(self._vel[i], -hi, hi, out=self._vel[i])
            self._pos[i] = np.clip(self._pos[i] + self._vel[i], 0, hi)
        return self._decode(self._pos[i])

    def feedback(self, config: Configuration, value: float) -> None:
        if self._pos is None:
            return  # external feedback before the swarm exists (warm start)
        i = self._next
        if value < self._pbest_val[i]:
            self._pbest_val[i] = value
            self._pbest[i] = self._pos[i].copy()
        if value < self._gbest_val:
            self._gbest_val = value
            self._gbest = self._pos[i].copy()
        self._next = (self._next + 1) % self.n_particles

    @property
    def global_best_value(self) -> float:
        return self._gbest_val
