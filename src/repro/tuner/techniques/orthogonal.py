"""Orthogonal search (cyclic coordinate descent).

Another family from Section II's list: optimize one parameter axis at a
time, evaluating every value along the current axis (or an evenly
spaced subset for wide axes) while holding the others fixed; move to
the best and advance to the next axis.  Classic in early autotuners
(e.g. ATLAS's parameter sweeps).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SearchError
from repro.searchspace.space import Configuration
from repro.tuner.technique import SearchTechnique

__all__ = ["OrthogonalSearch"]


class OrthogonalSearch(SearchTechnique):
    name = "orthogonal"

    def __init__(self, max_values_per_axis: int = 8, seed: object = 0) -> None:
        super().__init__(seed=seed)
        if max_values_per_axis < 2:
            raise SearchError(
                f"max_values_per_axis must be >= 2, got {max_values_per_axis}"
            )
        self.max_values_per_axis = max_values_per_axis
        self._center: tuple[Configuration, float] | None = None
        self._axis = 0
        self._sweep: list[Configuration] = []
        self._sweep_results: list[tuple[Configuration, float]] = []
        self._pending: Configuration | None = None
        self._improved_this_cycle = False

    def _axis_candidates(self) -> list[Configuration]:
        assert self.manipulator is not None and self._center is not None
        space = self.manipulator.space
        param = space.parameters[self._axis]
        base = self._center[0]
        n = param.cardinality
        if n <= self.max_values_per_axis:
            indices = range(n)
        else:
            indices = sorted(
                {int(round(i)) for i in np.linspace(0, n - 1, self.max_values_per_axis)}
            )
        current = param.index_of(base[param.name])
        return [
            base.replace(**{param.name: param.value_at(i)})
            for i in indices
            if i != current
        ]

    def _advance_axis(self) -> None:
        assert self.manipulator is not None
        self._axis += 1
        if self._axis >= self.manipulator.space.dimension:
            self._axis = 0
            if not self._improved_this_cycle:
                # Converged: restart the sweep from a fresh random point.
                self._center = None
            self._improved_this_cycle = False

    def propose(self) -> Configuration:
        self._require_bound()
        assert self.manipulator is not None and self.rng is not None
        self.n_proposals += 1
        if self._center is None:
            self._pending = self.manipulator.random(self.rng)
            self._sweep = []
            self._sweep_results = []
            return self._pending
        while not self._sweep:
            self._sweep = self._axis_candidates()
            self._sweep_results = []
            if not self._sweep:
                self._advance_axis()
                if self._center is None:
                    self._pending = self.manipulator.random(self.rng)
                    return self._pending
        self._pending = self._sweep.pop(0)
        return self._pending

    def feedback(self, config: Configuration, value: float) -> None:
        if self._pending is None or config != self._pending:
            # External feedback: adopt anything better as the center.
            if self._center is None or value < self._center[1]:
                self._center = (config, value)
            return
        self._pending = None
        if self._center is None:
            self._center = (config, value)
            return
        self._sweep_results.append((config, value))
        if value < self._center[1]:
            self._center = (config, value)
            self._improved_this_cycle = True
        if not self._sweep:  # axis sweep complete
            self._advance_axis()

    @property
    def center(self) -> tuple[Configuration, float] | None:
        return self._center
