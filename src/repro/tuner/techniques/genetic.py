"""Steady-state genetic algorithm."""

from __future__ import annotations

from repro.errors import SearchError
from repro.searchspace.space import Configuration
from repro.tuner.technique import SearchTechnique

__all__ = ["GeneticAlgorithm"]


class GeneticAlgorithm(SearchTechnique):
    """Tournament-selected, uniform-crossover, mutating GA.

    Maintains a fixed-size population of the best distinct results;
    bootstraps with random proposals until the population fills.
    """

    name = "ga"

    def __init__(
        self,
        population_size: int = 16,
        mutation_rate: float = 0.15,
        crossover_rate: float = 0.8,
        tournament: int = 3,
        seed: object = 0,
    ) -> None:
        super().__init__(seed=seed)
        if population_size < 2:
            raise SearchError(f"population_size must be >= 2, got {population_size}")
        if tournament < 1:
            raise SearchError(f"tournament must be >= 1, got {tournament}")
        self.population_size = population_size
        self.mutation_rate = mutation_rate
        self.crossover_rate = crossover_rate
        self.tournament = tournament
        self._population: list[tuple[Configuration, float]] = []

    def _select(self) -> Configuration:
        assert self.rng is not None
        contenders = [
            self._population[int(self.rng.integers(0, len(self._population)))]
            for _ in range(min(self.tournament, len(self._population)))
        ]
        return min(contenders, key=lambda cv: cv[1])[0]

    def propose(self) -> Configuration:
        self._require_bound()
        assert self.manipulator is not None and self.rng is not None
        self.n_proposals += 1
        if len(self._population) < self.population_size:
            return self.manipulator.random(self.rng)
        if self.rng.random() < self.crossover_rate:
            child = self.manipulator.crossover(self._select(), self._select(), self.rng)
        else:
            child = self._select()
        return self.manipulator.mutate(child, self.rng, rate=self.mutation_rate)

    def feedback(self, config: Configuration, value: float) -> None:
        self._population.append((config, value))
        if len(self._population) > self.population_size:
            self._population.sort(key=lambda cv: cv[1])
            del self._population[self.population_size :]

    @property
    def population(self) -> list[tuple[Configuration, float]]:
        return list(self._population)
