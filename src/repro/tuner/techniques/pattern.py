"""Coordinate pattern search (Hooke-Jeeves flavoured).

Walks parameter axes in index space with a shrinking step, polling
``+step`` and ``-step`` around the incumbent; restarts from a random
point when the step bottoms out.
"""

from __future__ import annotations

from repro.searchspace.space import Configuration
from repro.tuner.technique import SearchTechnique

__all__ = ["PatternSearch"]


class PatternSearch(SearchTechnique):
    name = "pattern"

    def __init__(self, initial_step: int = 4, seed: object = 0) -> None:
        super().__init__(seed=seed)
        if initial_step < 1:
            raise ValueError(f"initial_step must be >= 1, got {initial_step}")
        self.initial_step = initial_step
        self._incumbent: tuple[Configuration, float] | None = None
        self._step = initial_step
        self._axis = 0
        self._direction = +1
        self._pending: Configuration | None = None

    def _poll_point(self) -> Configuration | None:
        """The next poll move, or None if it falls outside the domain."""
        assert self.manipulator is not None and self._incumbent is not None
        space = self.manipulator.space
        base = self._incumbent[0]
        param = space.parameters[self._axis]
        idx = param.index_of(base[param.name]) + self._direction * self._step
        if not 0 <= idx < param.cardinality:
            return None
        return base.replace(**{param.name: param.value_at(idx)})

    def _advance_pattern(self) -> None:
        """Move to the next (axis, direction); shrink when a sweep ends."""
        assert self.manipulator is not None
        if self._direction == +1:
            self._direction = -1
            return
        self._direction = +1
        self._axis += 1
        if self._axis >= self.manipulator.space.dimension:
            self._axis = 0
            self._step = max(1, self._step // 2) if self._step > 1 else 0

    def propose(self) -> Configuration:
        self._require_bound()
        assert self.manipulator is not None and self.rng is not None
        self.n_proposals += 1
        if self._incumbent is None or self._step == 0:
            # (Re)start: random point, full step.
            self._step = self.initial_step
            self._axis = 0
            self._direction = +1
            self._incumbent = None
            self._pending = self.manipulator.random(self.rng)
            return self._pending
        for _ in range(2 * self.manipulator.space.dimension):
            candidate = self._poll_point()
            self._advance_pattern()
            if candidate is not None and candidate != self._incumbent[0]:
                self._pending = candidate
                return candidate
            if self._step == 0:
                break
        # Pattern exhausted without a valid poll: restart.
        self._step = self.initial_step
        self._pending = self.manipulator.random(self.rng)
        return self._pending

    def feedback(self, config: Configuration, value: float) -> None:
        if self._incumbent is None or value < self._incumbent[1]:
            self._incumbent = (config, value)

    @property
    def incumbent(self) -> tuple[Configuration, float] | None:
        return self._incumbent
