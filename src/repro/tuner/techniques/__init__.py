"""Concrete search techniques (the families Section II lists)."""

from repro.tuner.techniques.random import RandomTechnique
from repro.tuner.techniques.genetic import GeneticAlgorithm
from repro.tuner.techniques.anneal import SimulatedAnnealing
from repro.tuner.techniques.pattern import PatternSearch
from repro.tuner.techniques.pso import ParticleSwarm
from repro.tuner.techniques.neldermead import NelderMead
from repro.tuner.techniques.orthogonal import OrthogonalSearch

__all__ = [
    "RandomTechnique",
    "GeneticAlgorithm",
    "SimulatedAnnealing",
    "PatternSearch",
    "ParticleSwarm",
    "NelderMead",
    "OrthogonalSearch",
]
