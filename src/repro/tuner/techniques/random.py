"""Uniform random proposals (duplicate-avoiding)."""

from __future__ import annotations

from repro.searchspace.space import Configuration
from repro.tuner.technique import SearchTechnique

__all__ = ["RandomTechnique"]


class RandomTechnique(SearchTechnique):
    """Uniform random search; skips already-measured configurations
    when the space still has unmeasured ones (RS without replacement)."""

    name = "random"

    def propose(self) -> Configuration:
        self._require_bound()
        assert self.manipulator is not None and self.database is not None
        space = self.manipulator.space
        for _ in range(64):
            candidate = self.manipulator.random(self.rng)
            if not self.database.has(candidate) or self.database.n_distinct >= space.cardinality:
                break
        self.n_proposals += 1
        return candidate
