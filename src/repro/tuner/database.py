"""Shared results store for tuning runs."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SearchError
from repro.searchspace.space import Configuration

__all__ = ["Result", "ResultsDatabase"]


@dataclass(frozen=True)
class Result:
    """One measured configuration."""

    config: Configuration
    value: float  # objective (runtime seconds; lower is better)
    technique: str
    elapsed: float  # tuning time when measured
    iteration: int


class ResultsDatabase:
    """Deduplicating store of all results in one tuning run.

    Techniques query it for the best configurations; the runner uses it
    to avoid re-measuring configurations (OpenTuner equally caches by
    configuration hash).
    """

    def __init__(self) -> None:
        self._results: list[Result] = []
        self._by_config: dict[int, Result] = {}

    def add(self, result: Result) -> None:
        self._results.append(result)
        self._by_config.setdefault(result.config.index, result)

    def lookup(self, config: Configuration) -> Result | None:
        """The first recorded result of this configuration, if any."""
        return self._by_config.get(config.index)

    @property
    def n_results(self) -> int:
        return len(self._results)

    @property
    def n_distinct(self) -> int:
        return len(self._by_config)

    def results(self) -> list[Result]:
        return list(self._results)

    def best(self) -> Result:
        if not self._results:
            raise SearchError("no results recorded")
        return min(self._results, key=lambda r: r.value)

    def best_k(self, k: int) -> list[Result]:
        """The ``k`` best *distinct* configurations."""
        distinct = sorted(self._by_config.values(), key=lambda r: r.value)
        return distinct[:k]

    def has(self, config: Configuration) -> bool:
        return config.index in self._by_config
