"""An OpenTuner-style autotuning framework (Section IV-A).

OpenTuner's architecture: a *configuration manipulator* describing the
tunable parameters, a set of *search techniques* proposing
configurations, a *meta-technique* (multi-armed bandit over sliding-
window area-under-curve credit) that allocates the evaluation budget to
whichever techniques are currently performing, and a results database
shared by all techniques.  The paper drives its HPL and raytracer
mini-application experiments through this stack.
"""

from repro.tuner.manipulator import ConfigurationManipulator
from repro.tuner.database import Result, ResultsDatabase
from repro.tuner.technique import SearchTechnique
from repro.tuner.techniques.random import RandomTechnique
from repro.tuner.techniques.genetic import GeneticAlgorithm
from repro.tuner.techniques.anneal import SimulatedAnnealing
from repro.tuner.techniques.pattern import PatternSearch
from repro.tuner.techniques.pso import ParticleSwarm
from repro.tuner.techniques.neldermead import NelderMead
from repro.tuner.techniques.orthogonal import OrthogonalSearch
from repro.tuner.bandit import AUCBanditMetaTechnique
from repro.tuner.runner import TuningRun

__all__ = [
    "ConfigurationManipulator",
    "Result",
    "ResultsDatabase",
    "SearchTechnique",
    "RandomTechnique",
    "GeneticAlgorithm",
    "SimulatedAnnealing",
    "PatternSearch",
    "ParticleSwarm",
    "NelderMead",
    "OrthogonalSearch",
    "AUCBanditMetaTechnique",
    "TuningRun",
]
