"""AUC-bandit meta-technique (OpenTuner's budget allocator).

OpenTuner "runs a number of search techniques at the same time; those
that perform well are allocated larger budgets" (Section IV-A).  The
allocator is an upper-confidence bandit whose per-technique reward is
the *area under the curve* of new-global-best events inside a sliding
window: a technique that recently produced improvements — especially
recent ones within the window — earns more of the proposal budget.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Sequence

from repro.errors import SearchError
from repro.searchspace.space import Configuration
from repro.tuner.database import ResultsDatabase
from repro.tuner.manipulator import ConfigurationManipulator
from repro.tuner.technique import SearchTechnique

__all__ = ["AUCBanditMetaTechnique"]


class _History:
    """Sliding window of (was-new-best) flags for one technique."""

    def __init__(self, window: int) -> None:
        self.events: deque[bool] = deque(maxlen=window)
        self.uses = 0

    def auc(self) -> float:
        """Area under the new-best curve, weighted toward recency."""
        if not self.events:
            return 0.0
        num = 0.0
        den = 0.0
        for i, hit in enumerate(self.events, start=1):
            num += i if hit else 0.0
            den += i
        return num / den


class AUCBanditMetaTechnique(SearchTechnique):
    """UCB over sub-techniques' sliding-window AUC scores."""

    name = "auc-bandit"

    def __init__(
        self,
        techniques: Sequence[SearchTechnique],
        window: int = 50,
        exploration: float = 0.3,
        seed: object = 0,
    ) -> None:
        super().__init__(seed=seed)
        if not techniques:
            raise SearchError("bandit needs at least one sub-technique")
        names = [t.name for t in techniques]
        if len(set(names)) != len(names):
            raise SearchError(f"duplicate technique names: {names}")
        self.techniques = list(techniques)
        self.window = window
        self.exploration = exploration
        self._history = {t.name: _History(window) for t in techniques}
        self._last: SearchTechnique | None = None
        self._best = float("inf")

    def bind(
        self, manipulator: ConfigurationManipulator, database: ResultsDatabase
    ) -> "AUCBanditMetaTechnique":
        super().bind(manipulator, database)
        for t in self.techniques:
            t.bind(manipulator, database)
        return self

    def _score(self, technique: SearchTechnique, total_uses: int) -> float:
        h = self._history[technique.name]
        if h.uses == 0:
            return float("inf")  # try everything once
        bonus = self.exploration * math.sqrt(
            2.0 * math.log(max(2, total_uses)) / h.uses
        )
        return h.auc() + bonus

    def propose(self) -> Configuration:
        self._require_bound()
        self.n_proposals += 1
        total = sum(h.uses for h in self._history.values())
        chosen = max(self.techniques, key=lambda t: self._score(t, total))
        self._last = chosen
        self._history[chosen.name].uses += 1
        return chosen.propose()

    def feedback(self, config: Configuration, value: float) -> None:
        improved = value < self._best
        if improved:
            self._best = value
        if self._last is None:
            # External feedback (e.g. warm-start seed evaluations):
            # no technique proposed it, so no one earns bandit credit,
            # but every sub-technique may learn from the observation.
            for technique in self.techniques:
                technique.feedback(config, value)
            return
        self._history[self._last.name].events.append(improved)
        self._last.feedback(config, value)

    def allocation(self) -> dict[str, int]:
        """Proposals each sub-technique has received so far."""
        return {name: h.uses for name, h in self._history.items()}
