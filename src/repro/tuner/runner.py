"""The tuning driver: technique(s) vs. an evaluator, on a clock."""

from __future__ import annotations

from repro.errors import SearchError
from repro.search.engine import SearchEngine
from repro.search.result import SearchTrace
from repro.spec import TunerSpec, resolve_spec
from repro.tuner.adapter import TechniqueProposer
from repro.tuner.database import ResultsDatabase
from repro.tuner.manipulator import ConfigurationManipulator
from repro.tuner.technique import SearchTechnique

__all__ = ["TuningRun"]


class TuningRun:
    """Drive one technique (or meta-technique) against an evaluator.

    ``evaluator`` follows the :class:`~repro.orio.evaluator
    .OrioEvaluator` protocol: ``evaluate(config)`` returns a measurement
    with ``runtime_seconds``/``evaluation_cost`` and charges ``clock``.
    Results are cached by configuration — re-proposals of measured
    configurations cost nothing, as in OpenTuner.

    Failed evaluations (recoverable
    :class:`~repro.errors.EvaluationFailure`, or degraded measurements
    from a :class:`~repro.reliability.resilient.ResilientEvaluator`)
    are recorded as failed trace entries; the technique receives the
    penalty/censored value as feedback so it steers away from the
    failing region, and the result is cached so the configuration is
    never re-measured.
    """

    # Objective value fed back to techniques for failures without a
    # censored bound: techniques need a finite number to rank against.
    FAILURE_FEEDBACK_FACTOR = 10.0

    def __init__(
        self,
        evaluator,
        technique: SearchTechnique,
        nmax: int = 100,
        name: str | None = None,
        spec: TunerSpec | None = None,
    ) -> None:
        if nmax < 1:
            raise SearchError(f"nmax must be >= 1, got {nmax}")
        self.evaluator = evaluator
        self.technique = technique
        self.spec = resolve_spec(spec)
        self.nmax = nmax
        self.name = name or technique.name
        self.database = ResultsDatabase()
        space = evaluator.kernel.space if hasattr(evaluator, "kernel") else evaluator.space
        self.manipulator = ConfigurationManipulator(space)
        self.space = space
        technique.bind(self.manipulator, self.database)

    def run(self, checkpoint=None) -> SearchTrace:
        """Run until ``nmax`` measurements (cache hits don't count).

        ``checkpoint`` is an optional
        :class:`~repro.reliability.checkpoint.CheckpointManager`.  On
        resume the measured-results database and the trace are restored,
        and every past result is replayed as feedback so the technique
        regains its knowledge; no configuration is re-measured (the
        cache makes re-proposals free).  Unlike the stream-driven
        searches, a stateful technique's internal RNG is *not* restored,
        so the continuation explores from rebuilt knowledge rather than
        replaying the interrupted run bit-for-bit.
        """
        engine = SearchEngine(
            self.evaluator,
            TechniqueProposer(
                self.technique,
                self.database,
                self.space,
                result_label=self.technique.name,
                failure_feedback_factor=self.FAILURE_FEEDBACK_FACTOR,
                iteration_mode="count",
            ),
            nmax=self.nmax,
            name=self.name,
            space=self.space,
            # A budget wall mid-evaluation charges the remaining budget:
            # the partial work until the wall was real.
            charge_remainder_on_exhaust=True,
            checkpoint=checkpoint,
            # Techniques propose one candidate at a time (no block
            # protocol), so the engine stays serial regardless of the
            # spec's batch size — traces are identical either way.
            batch_size=self.spec.engine.batch_size,
        )
        return engine.run()
