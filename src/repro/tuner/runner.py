"""The tuning driver: technique(s) vs. an evaluator, on a clock."""

from __future__ import annotations

from repro.errors import BudgetExhaustedError, SearchError
from repro.search.result import EvaluationRecord, SearchTrace
from repro.tuner.database import Result, ResultsDatabase
from repro.tuner.manipulator import ConfigurationManipulator
from repro.tuner.technique import SearchTechnique

__all__ = ["TuningRun"]


class TuningRun:
    """Drive one technique (or meta-technique) against an evaluator.

    ``evaluator`` follows the :class:`~repro.orio.evaluator
    .OrioEvaluator` protocol: ``evaluate(config)`` returns a measurement
    with ``runtime_seconds``/``evaluation_cost`` and charges ``clock``.
    Results are cached by configuration — re-proposals of measured
    configurations cost nothing, as in OpenTuner.
    """

    def __init__(
        self,
        evaluator,
        technique: SearchTechnique,
        nmax: int = 100,
        name: str | None = None,
    ) -> None:
        if nmax < 1:
            raise SearchError(f"nmax must be >= 1, got {nmax}")
        self.evaluator = evaluator
        self.technique = technique
        self.nmax = nmax
        self.name = name or technique.name
        self.database = ResultsDatabase()
        space = evaluator.kernel.space if hasattr(evaluator, "kernel") else evaluator.space
        self.manipulator = ConfigurationManipulator(space)
        technique.bind(self.manipulator, self.database)

    def run(self) -> SearchTrace:
        """Run until ``nmax`` measurements (cache hits don't count)."""
        trace = SearchTrace(algorithm=self.name)
        iteration = 0
        stall_guard = 0
        while trace.n_evaluations < self.nmax:
            config = self.technique.propose()
            iteration += 1
            cached = self.database.lookup(config)
            if cached is not None:
                # Feed the remembered value back; costs no search time.
                self.technique.feedback(config, cached.value)
                stall_guard += 1
                if stall_guard > 50 * self.nmax:
                    break  # technique converged onto measured configs
                continue
            stall_guard = 0
            try:
                measurement = self.evaluator.evaluate(config)
            except BudgetExhaustedError:
                trace.exhausted_budget = True
                break
            value = measurement.runtime_seconds
            self.database.add(
                Result(
                    config=config,
                    value=value,
                    technique=self.technique.name,
                    elapsed=self.evaluator.clock.now,
                    iteration=iteration,
                )
            )
            self.technique.feedback(config, value)
            trace.add(
                EvaluationRecord(
                    config=config, runtime=value, elapsed=self.evaluator.clock.now
                )
            )
        return trace
