"""The tuning driver: technique(s) vs. an evaluator, on a clock."""

from __future__ import annotations

from repro.errors import BudgetExhaustedError, EvaluationFailure, SearchError
from repro.search.result import EvaluationRecord, SearchTrace
from repro.tuner.database import Result, ResultsDatabase
from repro.tuner.manipulator import ConfigurationManipulator
from repro.tuner.technique import SearchTechnique

__all__ = ["TuningRun"]


class TuningRun:
    """Drive one technique (or meta-technique) against an evaluator.

    ``evaluator`` follows the :class:`~repro.orio.evaluator
    .OrioEvaluator` protocol: ``evaluate(config)`` returns a measurement
    with ``runtime_seconds``/``evaluation_cost`` and charges ``clock``.
    Results are cached by configuration — re-proposals of measured
    configurations cost nothing, as in OpenTuner.

    Failed evaluations (recoverable
    :class:`~repro.errors.EvaluationFailure`, or degraded measurements
    from a :class:`~repro.reliability.resilient.ResilientEvaluator`)
    are recorded as failed trace entries; the technique receives the
    penalty/censored value as feedback so it steers away from the
    failing region, and the result is cached so the configuration is
    never re-measured.
    """

    # Objective value fed back to techniques for failures without a
    # censored bound: techniques need a finite number to rank against.
    FAILURE_FEEDBACK_FACTOR = 10.0

    def __init__(
        self,
        evaluator,
        technique: SearchTechnique,
        nmax: int = 100,
        name: str | None = None,
    ) -> None:
        if nmax < 1:
            raise SearchError(f"nmax must be >= 1, got {nmax}")
        self.evaluator = evaluator
        self.technique = technique
        self.nmax = nmax
        self.name = name or technique.name
        self.database = ResultsDatabase()
        space = evaluator.kernel.space if hasattr(evaluator, "kernel") else evaluator.space
        self.manipulator = ConfigurationManipulator(space)
        self.space = space
        technique.bind(self.manipulator, self.database)

    # ------------------------------------------------------------------
    def _feedback_value(self, runtime: float, censored: bool) -> float:
        """A finite objective value for a failed evaluation.

        A censored runtime (timeout cap) is already a usable lower
        bound; an unbounded failure is penalized relative to the worst
        measurement seen so far.
        """
        if censored:
            return runtime
        worst = max((r.value for r in self.database.results()), default=1.0)
        return self.FAILURE_FEEDBACK_FACTOR * worst

    def run(self, checkpoint=None) -> SearchTrace:
        """Run until ``nmax`` measurements (cache hits don't count).

        ``checkpoint`` is an optional
        :class:`~repro.reliability.checkpoint.CheckpointManager`.  On
        resume the measured-results database and the trace are restored,
        and every past result is replayed as feedback so the technique
        regains its knowledge; no configuration is re-measured (the
        cache makes re-proposals free).  Unlike the stream-driven
        searches, a stateful technique's internal RNG is *not* restored,
        so the continuation explores from rebuilt knowledge rather than
        replaying the interrupted run bit-for-bit.
        """
        trace = SearchTrace(algorithm=self.name)
        if checkpoint is not None:
            _, extra = checkpoint.restore(trace, self.space, evaluator=self.evaluator)
            for row in extra.get("database", []):
                config = self.space.config_at(int(row["config"]))
                result = Result(
                    config=config,
                    value=float(row["value"]),
                    technique=row["technique"],
                    elapsed=float(row["elapsed"]),
                    iteration=int(row["iteration"]),
                )
                self.database.add(result)
                self.technique.feedback(config, result.value)
        iteration = 0
        stall_guard = 0
        while trace.n_evaluations < self.nmax:
            config = self.technique.propose()
            iteration += 1
            cached = self.database.lookup(config)
            if cached is not None:
                # Feed the remembered value back; costs no search time.
                self.technique.feedback(config, cached.value)
                stall_guard += 1
                if stall_guard > 50 * self.nmax:
                    break  # technique converged onto measured configs
                continue
            stall_guard = 0
            failed = censored = False
            try:
                measurement = self.evaluator.evaluate(config)
            except BudgetExhaustedError:
                # The budget died mid-evaluation: the partial work until
                # the budget wall was real, so charge the remainder and
                # keep the final elapsed time on the trace instead of
                # silently dropping it.
                clock = self.evaluator.clock
                if clock.remaining > 0:
                    clock.advance(clock.remaining)
                trace.exhausted_budget = True
                break
            except EvaluationFailure as exc:
                failed = True
                censored_at = getattr(exc, "censored_at", None)
                censored = censored_at is not None
                value = float("inf") if censored_at is None else float(censored_at)
            else:
                failed = bool(getattr(measurement, "failed", False))
                censored = bool(getattr(measurement, "censored", False))
                value = measurement.runtime_seconds
            feedback = self._feedback_value(value, censored) if failed else value
            self.database.add(
                Result(
                    config=config,
                    value=feedback,
                    technique=self.technique.name,
                    elapsed=self.evaluator.clock.now,
                    iteration=iteration,
                )
            )
            self.technique.feedback(config, feedback)
            trace.add(
                EvaluationRecord(
                    config=config,
                    runtime=value,
                    elapsed=self.evaluator.clock.now,
                    failed=failed,
                    censored=censored,
                )
            )
            if checkpoint is not None:
                checkpoint.maybe_save(
                    trace,
                    position=trace.n_evaluations,
                    evaluator=self.evaluator,
                    extra=self._database_state(),
                )
        trace.total_elapsed = max(trace.total_elapsed, self.evaluator.clock.now)
        if checkpoint is not None:
            checkpoint.save(
                trace,
                position=trace.n_evaluations,
                evaluator=self.evaluator,
                extra=self._database_state(),
            )
        return trace

    def _database_state(self) -> dict:
        return {
            "database": [
                {
                    "config": r.config.index,
                    "value": r.value,
                    "technique": r.technique,
                    "elapsed": r.elapsed,
                    "iteration": r.iteration,
                }
                for r in self.database.results()
            ]
        }
