"""Configuration manipulator: structured moves over a search space.

OpenTuner's ``ConfigurationManipulator`` knows how to generate random
configurations and how to perturb/recombine existing ones; techniques
are written against this interface rather than the raw space.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SearchSpaceError
from repro.searchspace.space import Configuration, SearchSpace

__all__ = ["ConfigurationManipulator"]


class ConfigurationManipulator:
    """Random generation, mutation and crossover over a search space."""

    def __init__(self, space: SearchSpace) -> None:
        self.space = space

    def random(self, rng: np.random.Generator) -> Configuration:
        """A uniformly random configuration."""
        return self.space.config_at(int(rng.integers(0, self.space.cardinality)))

    def mutate(
        self,
        config: Configuration,
        rng: np.random.Generator,
        rate: float = 0.25,
        scale: float = 1.0,
    ) -> Configuration:
        """Perturb each parameter with probability ``rate`` (at least one)."""
        if not 0.0 < rate <= 1.0:
            raise SearchSpaceError(f"mutation rate must be in (0, 1], got {rate}")
        values = dict(config)
        mutated = False
        for p in self.space.parameters:
            if rng.random() < rate:
                values[p.name] = p.mutate(values[p.name], rng, scale=scale)
                mutated = True
        if not mutated:
            p = self.space.parameters[int(rng.integers(0, self.space.dimension))]
            values[p.name] = p.mutate(values[p.name], rng, scale=scale)
        return self.space.configuration(values)

    def crossover(
        self,
        a: Configuration,
        b: Configuration,
        rng: np.random.Generator,
    ) -> Configuration:
        """Uniform crossover: each parameter from one parent at random."""
        if a.space is not self.space or b.space is not self.space:
            raise SearchSpaceError("crossover parents must come from this space")
        values = {
            p.name: (a[p.name] if rng.random() < 0.5 else b[p.name])
            for p in self.space.parameters
        }
        return self.space.configuration(values)

    def neighbor(
        self, config: Configuration, rng: np.random.Generator
    ) -> Configuration:
        """A single-parameter, small-step neighbour (for annealing)."""
        p = self.space.parameters[int(rng.integers(0, self.space.dimension))]
        return config.replace(**{p.name: p.mutate(config[p.name], rng, scale=0.3)})
