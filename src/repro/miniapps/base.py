"""Mini-application base model and evaluator.

A :class:`MiniappModel` plays the role a :class:`~repro.kernels.base
.SpaptKernel` plays for Orio: it owns a search space and prices a
configuration on a machine.  Effects decompose per parameter value
into a *shared* (machine-portable) part and a *machine-specific* part
whose scale is the machine's quirk sigma — the knob controlling how
much of the tuning landscape transfers between machines.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.errors import EvaluationError
from repro.machines.spec import MachineSpec
from repro.orio.evaluator import Measurement
from repro.perf.noise import measurement_noise
from repro.perf.simclock import SimClock
from repro.searchspace.space import Configuration, SearchSpace
from repro.utils.rng import hash_normal, hash_uniform

__all__ = ["MiniappModel", "MiniappEvaluator", "shared_effect", "machine_effect", "relevance"]


def relevance(tag: str, param: str, density: float = 1.0) -> float:
    """Deterministic per-parameter relevance weight in [0, 1].

    With ``density < 1`` only roughly that fraction of parameters get a
    non-zero weight — the sparse reality of compiler-flag tuning, where
    most flags do nothing for a given program.
    """
    if not 0.0 < density <= 1.0:
        raise EvaluationError(f"density must be in (0, 1], got {density}")
    u = hash_uniform("miniapp-relevance", tag, param)
    if u > density:
        return 0.0
    return 0.3 + 0.7 * hash_uniform("miniapp-weight", tag, param)


def shared_effect(tag: str, param: str, value: object) -> float:
    """Machine-portable log-runtime contribution of one setting."""
    return hash_normal("miniapp-shared", tag, param, repr(value))


def machine_effect(machine: MachineSpec, tag: str, param: str, value: object) -> float:
    """Machine-specific log-runtime contribution of one setting."""
    return hash_normal("miniapp-machine", machine.name, tag, param, repr(value))


@dataclass(frozen=True)
class MiniappCost:
    runtime_seconds: float
    compile_seconds: float


class MiniappModel(ABC):
    """A tunable application with a machine-dependent cost model."""

    name: str
    tag: str
    space: SearchSpace

    @abstractmethod
    def runtime_seconds(self, config: Configuration, machine: MachineSpec, rep: int = 0) -> float:
        """Simulated runtime of one timing run."""

    @abstractmethod
    def compile_seconds(self, config: Configuration, machine: MachineSpec) -> float:
        """Simulated build time of this configuration."""

    def _apply_noise(self, seconds: float, machine: MachineSpec, config: Configuration, rep: int) -> float:
        return seconds * measurement_noise(
            machine.response.noise_sigma, machine.name, (self.tag, config.index), rep
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, dim={self.space.dimension})"


class MiniappEvaluator:
    """Clock-charging evaluator over a :class:`MiniappModel`.

    Interface-compatible with :class:`~repro.orio.evaluator
    .OrioEvaluator` so the search algorithms and
    :class:`~repro.transfer.session.TransferSession` drive both.
    """

    def __init__(
        self,
        model: MiniappModel,
        machine: MachineSpec,
        repetitions: int = 1,
        clock: SimClock | None = None,
    ) -> None:
        if repetitions < 1:
            raise EvaluationError(f"repetitions must be >= 1, got {repetitions}")
        self.kernel = model  # searches address their problem as .kernel
        self.model = model
        self.machine = machine
        self.repetitions = repetitions
        self.clock = clock if clock is not None else SimClock()
        self.n_evaluations = 0

    @property
    def space(self) -> SearchSpace:
        return self.model.space

    def measure(self, config: Configuration) -> Measurement:
        if config.space is not self.model.space:
            raise EvaluationError(
                f"configuration is not from {self.model.name!r}'s search space"
            )
        runs = [
            self.model.runtime_seconds(config, self.machine, rep=r)
            for r in range(self.repetitions)
        ]
        return Measurement(
            config=config,
            runtime_seconds=sum(runs) / len(runs),
            compile_seconds=self.model.compile_seconds(config, self.machine),
            repetitions=self.repetitions,
        )

    def evaluate(self, config: Configuration) -> Measurement:
        m = self.measure(config)
        self.clock.advance(m.evaluation_cost)
        self.n_evaluations += 1
        return m

    def __call__(self, config: Configuration) -> float:
        return self.evaluate(config).runtime_seconds
