"""Mini-applications tuned through the OpenTuner-style stack (§IV-C).

* :mod:`repro.miniapps.hpl` — High-Performance LINPACK with its 15
  classic tuning parameters;
* :mod:`repro.miniapps.raytracer` — a C++ raytracer tuned through g++
  flags (143 on/off flags + 104 value parameters, as in the paper);
* :mod:`repro.miniapps.gccflags` — the flag catalog and its sparse
  effect model.

Both models share the structure real flag/parameter tuning exhibits: a
*flat* landscape (total tuning swing of tens of percent, not multiples
— the paper's HPL/RT performance speedups are all 1.00) where part of
each parameter's effect is machine-portable and part machine-specific;
the machine-specific share grows with the machine's quirk scale, which
is what makes the HPL correlation panel visibly weaker than the kernel
panels (Figure 3) and X-Gene transfers unrewarding.
"""

from repro.miniapps.base import MiniappEvaluator, MiniappModel
from repro.miniapps.hpl import HplModel, make_hpl
from repro.miniapps.raytracer import RaytracerModel, make_raytracer
from repro.miniapps.gccflags import GCC_FLAGS, GCC_PARAMS

__all__ = [
    "MiniappEvaluator",
    "MiniappModel",
    "HplModel",
    "make_hpl",
    "RaytracerModel",
    "make_raytracer",
    "GCC_FLAGS",
    "GCC_PARAMS",
]
