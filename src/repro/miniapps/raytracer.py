"""Raytracer (RT) compiler-flag tuning — §IV-C.

A C++ raytracer rendering 3D scenes, tuned entirely through g++: the
143 common on/off flags and 104 ``--param`` values of
:mod:`repro.miniapps.gccflags` (the paper's exact counts).

Effect model — the well-documented shape of compiler-flag landscapes:

* most flags are irrelevant for a given program (sparse relevance);
* a relevant flag's effect splits into a machine-portable part and a
  machine-specific part (scheduling and cost-model interactions);
* a handful of flag *pairs* interact;
* ``--param`` values act quadratically around a preferred level;
* total swing is tens of percent — Table IV's RT performance speedups
  are 1.00 nearly everywhere.

Compile time matters here: every configuration is a full rebuild, and
on X-Gene (immature toolchain) rebuilds are an order of magnitude
slower — part of why the paper's RT transfers to X-Gene earn little.
"""

from __future__ import annotations

import math

from repro.machines.spec import MachineSpec
from repro.miniapps.base import MiniappModel, machine_effect, relevance, shared_effect
from repro.miniapps.gccflags import GCC_FLAGS, GCC_PARAMS, PARAM_LEVELS
from repro.searchspace import BooleanParameter, IntegerParameter, SearchSpace
from repro.searchspace.space import Configuration
from repro.utils.rng import hash_uniform

__all__ = ["RaytracerModel", "make_raytracer"]

_FLAG_DENSITY = 0.12  # fraction of flags that matter for the raytracer
_PARAM_DENSITY = 0.10
_FLAG_SHARED = 0.020
_FLAG_MACHINE = 0.25  # x quirk sigma
_PARAM_SCALE = 0.012
_N_INTERACTIONS = 24
_BASE_RENDER_GFLOP = 120.0  # work to render the benchmark scene


def _rt_space() -> SearchSpace:
    params: list = [BooleanParameter(f) for f in GCC_FLAGS]
    params += [IntegerParameter(p, 0, PARAM_LEVELS - 1) for p in GCC_PARAMS]
    return SearchSpace(params, name="RT")


class RaytracerModel(MiniappModel):
    """The 247-dimensional g++ flag-tuning problem."""

    def __init__(self) -> None:
        self.name = "RT"
        self.tag = "rt"
        self.space = _rt_space()
        # Interacting flag pairs, chosen deterministically.
        n = len(GCC_FLAGS)
        self._interactions: list[tuple[str, str, float]] = []
        for k in range(_N_INTERACTIONS):
            i = int(hash_uniform("rt-pair-a", k) * n)
            j = int(hash_uniform("rt-pair-b", k) * n)
            if i == j:
                j = (j + 1) % n
            strength = 0.02 * (2.0 * hash_uniform("rt-pair-s", k) - 1.0)
            self._interactions.append((GCC_FLAGS[i], GCC_FLAGS[j], strength))

    # ------------------------------------------------------------------
    def runtime_seconds(self, config: Configuration, machine: MachineSpec, rep: int = 0) -> float:
        # Base render time at -O3 on this machine (scalar-ish C++ code).
        base = _BASE_RENDER_GFLOP * 1e9 / (
            machine.peak_gflops_core * 1e9 * 0.35 / machine.vector_doubles
        )
        # Capped quirk: flag effects stay in the tens-of-percent band
        # even on the eccentric ARM part.
        quirk = min(machine.response.quirk_sigma, 0.25)
        log_factor = 0.0
        for flag in GCC_FLAGS:
            weight = relevance(self.tag, flag, density=_FLAG_DENSITY)
            if weight == 0.0 or not config[flag]:
                continue
            log_factor += weight * _FLAG_SHARED * shared_effect(self.tag, flag, True)
            log_factor += weight * _FLAG_MACHINE * quirk * machine_effect(
                machine, self.tag, flag, True
            )
        for param in GCC_PARAMS:
            weight = relevance(self.tag, param, density=_PARAM_DENSITY)
            if weight == 0.0:
                continue
            level = float(config[param])
            best = hash_uniform("rt-param-pref", param) * (PARAM_LEVELS - 1)
            machine_shift = quirk * 8.0 * (
                hash_uniform("rt-param-mach", machine.name, param) - 0.5
            )  # quirk already capped above
            best = min(max(best + machine_shift, 0.0), PARAM_LEVELS - 1.0)
            log_factor += weight * _PARAM_SCALE * ((level - best) / (PARAM_LEVELS - 1)) ** 2 * 8.0
        for flag_a, flag_b, strength in self._interactions:
            if config[flag_a] and config[flag_b]:
                log_factor += strength
        seconds = base * math.exp(log_factor)
        return self._apply_noise(seconds, machine, config, rep)

    def compile_seconds(self, config: Configuration, machine: MachineSpec) -> float:
        # A full C++ rebuild; expensive flags (inlining, IPA) slow it.
        enabled = sum(1 for f in GCC_FLAGS if config[f])
        base_statements = 3.5e6 * (1.0 + 0.6 * enabled / len(GCC_FLAGS))
        # Hand-written C++ compiles at a sane rate everywhere; the very
        # low X-Gene statement rate models that toolchain's pathological
        # behaviour on huge machine-generated loop bodies (the Orio
        # variants), not on ordinary sources.
        rate = max(machine.compile_statements_per_sec, 20_000.0)
        return machine.compile_overhead_s + base_statements / rate


def make_raytracer() -> RaytracerModel:
    """Build the raytracer flag-tuning problem."""
    return RaytracerModel()
