"""g++ flag/parameter catalog for the raytracer experiment.

The paper extracted "all the supported g++ flags and parameters for
each machine and then found the common set" — 143 on/off flags and 104
value parameters.  The names below follow gcc's real ``-f...`` flag and
``--param`` namespaces (a representative catalog of the gcc 4.x
optimization surface; the counts match the paper exactly and are
asserted by the test suite).
"""

from __future__ import annotations

__all__ = ["GCC_FLAGS", "GCC_PARAMS", "PARAM_LEVELS"]

# 143 on/off -f flags.
_FLAG_STEMS = [
    "aggressive-loop-optimizations", "align-functions", "align-jumps",
    "align-labels", "align-loops", "asynchronous-unwind-tables",
    "auto-inc-dec", "branch-count-reg", "branch-probabilities",
    "branch-target-load-optimize", "branch-target-load-optimize2",
    "btr-bb-exclusive", "caller-saves", "combine-stack-adjustments",
    "common", "compare-elim", "conserve-stack", "cprop-registers",
    "crossjumping", "cse-follow-jumps", "cse-skip-blocks",
    "cx-fortran-rules", "cx-limited-range", "data-sections", "dce",
    "defer-pop", "delayed-branch", "delete-null-pointer-checks",
    "devirtualize", "dse", "early-inlining", "expensive-optimizations",
    "float-store", "forward-propagate", "function-sections", "gcse",
    "gcse-after-reload", "gcse-las", "gcse-lm", "gcse-sm",
    "graphite-identity", "guess-branch-probability", "hoist-adjacent-loads",
    "if-conversion", "if-conversion2", "indirect-inlining", "inline",
    "inline-atomics", "inline-functions", "inline-functions-called-once",
    "inline-small-functions", "ipa-cp", "ipa-cp-clone", "ipa-matrix-reorg",
    "ipa-profile", "ipa-pta", "ipa-pure-const", "ipa-reference",
    "ipa-sra", "ira-hoist-pressure", "ira-loop-pressure",
    "ira-share-save-slots", "ira-share-spill-slots", "ivopts",
    "jump-tables", "keep-inline-functions", "loop-block",
    "loop-interchange", "loop-nest-optimize", "loop-parallelize-all",
    "loop-strip-mine", "math-errno", "merge-all-constants",
    "merge-constants", "modulo-sched", "modulo-sched-allow-regmoves",
    "move-loop-invariants", "omit-frame-pointer", "optimize-sibling-calls",
    "optimize-strlen", "pack-struct", "peel-loops", "peephole",
    "peephole2", "plt", "predictive-commoning", "prefetch-loop-arrays",
    "printf-return-value", "reciprocal-math", "record-gcc-switches",
    "ree", "regmove", "rename-registers", "reorder-blocks",
    "reorder-blocks-and-partition", "reorder-functions",
    "rerun-cse-after-loop", "reschedule-modulo-scheduled-loops",
    "rounding-math", "rtti", "sched-critical-path-heuristic",
    "sched-dep-count-heuristic", "sched-group-heuristic",
    "sched-interblock", "sched-last-insn-heuristic", "sched-pressure",
    "sched-rank-heuristic", "sched-spec", "sched-spec-insn-heuristic",
    "sched-spec-load", "sched-spec-load-dangerous",
    "sched-stalled-insns", "sched-stalled-insns-dep", "sched2-use-superblocks",
    "schedule-insns", "schedule-insns2", "section-anchors",
    "sel-sched-pipelining", "sel-sched-pipelining-outer-loops",
    "sel-sched-reschedule-pipelined", "selective-scheduling",
    "selective-scheduling2", "short-enums", "short-wchar",
    "signaling-nans", "signed-zeros", "single-precision-constant",
    "split-ivs-in-unroller", "split-wide-types", "stack-protector",
    "strict-aliasing", "strict-enums", "thread-jumps",
    "tracer", "tree-bit-ccp", "tree-builtin-call-dce", "tree-ccp",
    "tree-ch", "tree-coalesce-vars", "tree-copy-prop",
    "tree-dce", "tree-dominator-opts",
    "tree-dse", 
]
GCC_FLAGS = tuple(f"f{stem}" for stem in _FLAG_STEMS)

# 104 --param value parameters.
_PARAM_STEMS = [
    "align-loop-iterations", "align-threshold", "asan-globs",
    "builtin-expect-probability", "case-values-threshold",
    "comdat-sharing-probability", "cse-store-cost", "cxx-max-namespaces",
    "early-inlining-insns", "gcse-after-reload-critical-fraction",
    "gcse-after-reload-partial-fraction", "gcse-cost-distance-ratio",
    "gcse-unrestricted-cost", "ggc-min-expand", "ggc-min-heapsize",
    "graphite-max-bbs-per-function", "graphite-max-nb-scop-params",
    "hot-bb-count-ws-permille", "hot-bb-frequency-fraction",
    "inline-min-speedup", "inline-unit-growth", "integer-share-limit",
    "ip-profile-estimate", "ipa-cp-array-index-hint-bonus",
    "ipa-cp-eval-threshold", "ipa-cp-loop-hint-bonus", "ipa-cp-value-list-size",
    "ipa-max-agg-items", "ipa-sra-ptr-growth-factor", "ira-loop-reserved-regs",
    "ira-max-conflict-table-size", "ira-max-loops-num",
    "iv-always-prune-cand-set-bound", "iv-consider-all-candidates-bound",
    "iv-max-considered-uses", "l1-cache-line-size", "l1-cache-size",
    "l2-cache-size", "large-function-growth", "large-function-insns",
    "large-stack-frame", "large-stack-frame-growth", "large-unit-insns",
    "lim-expensive", "loop-block-tile-size", "loop-invariant-max-bbs-in-loop",
    "loop-max-datarefs-for-datadeps", "lra-max-considered-reload-pseudos",
    "max-average-unrolled-insns", "max-completely-peel-loop-nest-depth",
    "max-completely-peel-times", "max-completely-peeled-insns",
    "max-crossjump-edges", "max-cse-insns", "max-cse-path-length",
    "max-cselib-memory-locations", "max-delay-slot-insn-search",
    "max-delay-slot-live-search", "max-dse-active-local-stores",
    "max-early-inliner-iterations", "max-fields-for-field-sensitive",
    "max-gcse-insertion-ratio", "max-gcse-memory", "max-goto-duplication-insns",
    "max-grow-copy-bb-insns", "max-hoist-depth", "max-inline-insns-auto",
    "max-inline-insns-recursive", "max-inline-insns-recursive-auto",
    "max-inline-insns-single", "max-inline-recursive-depth",
    "max-inline-recursive-depth-auto", "max-iterations-computation-cost",
    "max-iterations-to-track", "max-jump-thread-duplication-stmts",
    "max-last-value-rtl", "max-modulo-backtrack-attempts",
    "max-partial-antic-length", "max-peel-branches", "max-peel-times",
    "max-peeled-insns", "max-pending-list-length", "max-pipeline-region-blocks",
    "max-pipeline-region-insns", "max-predicted-iterations",
    "max-reload-search-insns", "max-sched-extend-regions-iters",
    "max-sched-insn-conflict-delay", "max-sched-ready-insns",
    "max-sched-region-blocks", "max-sched-region-insns",
    "max-slsr-cand-scan", "max-stores-to-sink", "max-tail-merge-comparisons",
    "max-tail-merge-iterations", "max-tracked-strlens",
    "max-unroll-times", "max-unrolled-insns", "max-unswitch-insns",
    "max-unswitch-level", "max-variable-expansions-in-unroller",
    "max-vartrack-expr-depth", "max-vartrack-size", "min-crossjump-insns",
]
GCC_PARAMS = tuple(f"param-{stem}" for stem in _PARAM_STEMS)

# Each --param is tuned over 8 discrete levels (0 = gcc default, 1-7 =
# scaled alternatives), the bucketing OpenTuner's gcc examples use.
PARAM_LEVELS = 8
