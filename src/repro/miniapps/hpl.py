"""High-Performance LINPACK (HPL) — §IV-C.

HPL "solves randomly generated dense linear systems using distributed
memory architectures" and "comprises 15 tunable parameters".  We model
the classic HPL.dat knobs:

====================  ==========================================
NB                    panel/block size
GRID                  process-grid aspect (P x Q shape)
PMAP                  row-/column-major process mapping
PFACT / RFACT         panel / recursive factorization variant
NBMIN, NDIV           recursion stopping / dividing
BCAST                 panel broadcast algorithm (6 HPL variants)
DEPTH                 look-ahead depth
SWAP, SWAP_THRESHOLD  row-swapping algorithm + threshold
L1_TRANSPOSED,
U_TRANSPOSED          panel storage layouts
EQUILIBRATION         scaling on/off
ALIGNMENT             memory alignment (doubles)
====================  ==========================================

Cost model: the O(2/3 N^3) factorization at a machine-dependent base
efficiency, with (a) a U-shaped analytic penalty around the machine's
preferred block size, (b) a grid-aspect/broadcast communication term,
and (c) per-setting shared + machine-specific effects (see
:mod:`repro.miniapps.base`).  The swing is deliberately small — tens of
percent — reproducing the paper's flat HPL landscape (all HPL
performance speedups in Table IV are 1.00 or below) and its visibly
weaker source/target correlation panel.
"""

from __future__ import annotations

import math

from repro.machines.spec import MachineSpec
from repro.miniapps.base import MiniappModel, machine_effect, relevance, shared_effect
from repro.searchspace import (
    BooleanParameter,
    EnumParameter,
    SearchSpace,
)
from repro.searchspace.space import Configuration
from repro.utils.rng import hash_uniform

__all__ = ["HplModel", "make_hpl"]

_SHARED_SCALE = 0.008  # portable effect per relevant setting (log space)
_MACHINE_SCALE = 0.22  # multiplied by the machine's quirk sigma
_GRID_CHOICES = ("1xP", "2xP/2", "square", "P/2x2", "Px1")
_BCASTS = ("1ring", "1ringM", "2ring", "2ringM", "long", "longM")


def _hpl_space() -> SearchSpace:
    return SearchSpace(
        [
            EnumParameter("NB", [32, 48, 64, 96, 128, 160, 192, 224, 256]),
            EnumParameter("GRID", list(_GRID_CHOICES)),
            BooleanParameter("PMAP_COLUMN"),
            EnumParameter("PFACT", ["left", "crout", "right"]),
            EnumParameter("RFACT", ["left", "crout", "right"]),
            EnumParameter("NBMIN", [1, 2, 4, 8]),
            EnumParameter("NDIV", [2, 3, 4]),
            EnumParameter("BCAST", list(_BCASTS)),
            EnumParameter("DEPTH", [0, 1]),
            EnumParameter("SWAP", ["bin-exch", "long", "mix"]),
            EnumParameter("SWAP_THRESHOLD", [16, 32, 64, 96]),
            BooleanParameter("L1_TRANSPOSED"),
            BooleanParameter("U_TRANSPOSED"),
            BooleanParameter("EQUILIBRATION"),
            EnumParameter("ALIGNMENT", [4, 8, 16]),
        ],
        name="HPL",
    )


class HplModel(MiniappModel):
    """The 15-parameter HPL tuning problem."""

    def __init__(self, memory_fraction: float = 0.2) -> None:
        if not 0.0 < memory_fraction <= 0.8:
            raise ValueError(f"memory_fraction must be in (0, 0.8], got {memory_fraction}")
        self.name = "HPL"
        self.tag = "hpl"
        self.space = _hpl_space()
        self.memory_fraction = memory_fraction

    # ------------------------------------------------------------------
    def problem_size(self, machine: MachineSpec) -> int:
        """N filling ``memory_fraction`` of the machine's memory."""
        doubles = machine.memory_gb * 1e9 * self.memory_fraction / 8.0
        return int(math.sqrt(doubles))

    def _preferred_nb(self, machine: MachineSpec) -> float:
        """Machine-preferred block size (deterministic, machine-keyed)."""
        u = hash_uniform("hpl-nb-pref", machine.name)
        return 64.0 * 2.0 ** (2.0 * u)  # in [64, 256)

    def _grid_penalty(self, machine: MachineSpec, grid: str, bcast: str) -> float:
        """Communication inefficiency of the grid aspect + broadcast."""
        # Squarer grids communicate less; ring broadcasts prefer flat
        # grids — the classic HPL folklore, with a machine tilt.
        flatness = {"1xP": 1.0, "2xP/2": 0.5, "square": 0.0, "P/2x2": 0.5, "Px1": 1.0}[grid]
        base = 0.04 * flatness
        ring = bcast.startswith(("1ring", "2ring"))
        if ring:
            base -= 0.015 * flatness  # rings tolerate flat grids better
        tilt = 0.02 * machine_effect(machine, self.tag, "grid-tilt", (grid, bcast))
        return base + tilt * min(machine.response.quirk_sigma, 0.25) / 0.06

    def runtime_seconds(self, config: Configuration, machine: MachineSpec, rep: int = 0) -> float:
        n = self.problem_size(machine)
        flops = (2.0 / 3.0) * float(n) ** 3 + 2.0 * float(n) ** 2
        base_eff = 0.55  # fraction of peak a tuned HPL typically reaches
        base = flops / (machine.peak_gflops * 1e9 * base_eff)

        log_factor = 0.0
        # Structured NB physics: U-shaped around the machine preference.
        nb = float(config["NB"])
        nb_pref = self._preferred_nb(machine)
        log_factor += 0.05 * (math.log2(nb / nb_pref)) ** 2
        # Grid/broadcast communication.
        log_factor += self._grid_penalty(machine, config["GRID"], config["BCAST"])
        # Per-setting shared + machine-specific effects.  The quirk
        # scale is capped: HPL's algorithmic parameters do not swing
        # run time wildly even on an eccentric machine.
        quirk = min(machine.response.quirk_sigma, 0.25)
        for p in self.space.parameters:
            weight = relevance(self.tag, p.name)
            if weight == 0.0:
                continue
            value = config[p.name]
            log_factor += weight * _SHARED_SCALE * shared_effect(self.tag, p.name, value)
            log_factor += weight * _MACHINE_SCALE * quirk * machine_effect(
                machine, self.tag, p.name, value
            )
        seconds = base * math.exp(log_factor)
        return self._apply_noise(seconds, machine, config, rep)

    def compile_seconds(self, config: Configuration, machine: MachineSpec) -> float:
        # HPL is configured via HPL.dat — no rebuild per configuration,
        # just a small setup/launch overhead.
        return 2.0 + machine.compile_overhead_s


def make_hpl(memory_fraction: float = 0.2) -> HplModel:
    """Build the HPL tuning problem."""
    return HplModel(memory_fraction=memory_fraction)
