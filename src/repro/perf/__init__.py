"""Performance simulation: cost model, noise, and the simulated clock.

This package converts the machine-independent :class:`~repro.orio
.analysis.VariantMetrics` of a code variant into a runtime on a
:class:`~repro.machines.MachineSpec`, and accounts the simulated
wall-clock time an autotuning search spends compiling and running
variants (the quantity behind the paper's search-time speedups).
"""

from repro.perf.simclock import SimClock
from repro.perf.noise import measurement_noise, machine_quirk
from repro.perf.roofline import arithmetic_intensity, roofline_time
from repro.perf.costmodel import CostModel, CostBreakdown
from repro.perf.cachesim import CacheStats, LruCache, simulate_nest

__all__ = [
    "CacheStats",
    "LruCache",
    "simulate_nest",
    "SimClock",
    "measurement_noise",
    "machine_quirk",
    "arithmetic_intensity",
    "roofline_time",
    "CostModel",
    "CostBreakdown",
]
