"""Roofline-model helpers (Williams, Waterman, Patterson 2009).

The paper characterizes its kernels through the roofline lens: MM is
compute bound, ATAX/COR/LU are memory-bandwidth bound (Section IV-C).
These helpers express that relationship; the full cost model layers
cache effects, overheads and machine responses on top.
"""

from __future__ import annotations

__all__ = ["arithmetic_intensity", "roofline_time", "attainable_gflops"]


def arithmetic_intensity(flops: float, dram_bytes: float) -> float:
    """Flops per byte of DRAM traffic."""
    if flops < 0 or dram_bytes < 0:
        raise ValueError("flops and bytes must be non-negative")
    if dram_bytes == 0:
        return float("inf")
    return flops / dram_bytes


def attainable_gflops(
    intensity: float, peak_gflops: float, bandwidth_gbs: float
) -> float:
    """The roofline: min(peak, intensity * bandwidth)."""
    if peak_gflops <= 0 or bandwidth_gbs <= 0:
        raise ValueError("peak and bandwidth must be positive")
    if intensity < 0:
        raise ValueError("intensity must be non-negative")
    return min(peak_gflops, intensity * bandwidth_gbs)


def roofline_time(
    flops: float, dram_bytes: float, peak_flops_per_s: float, bandwidth_bytes_per_s: float
) -> float:
    """Execution time lower bound: max(compute time, memory time)."""
    if peak_flops_per_s <= 0 or bandwidth_bytes_per_s <= 0:
        raise ValueError("peak and bandwidth must be positive")
    if flops < 0 or dram_bytes < 0:
        raise ValueError("flops and bytes must be non-negative")
    return max(flops / peak_flops_per_s, dram_bytes / bandwidth_bytes_per_s)
