"""Simulated wall-clock accounting for autotuning searches.

The paper's search-time speedup compares the *elapsed tuning time* of
two searches — dominated by compiling and running candidate variants.
A :class:`SimClock` accumulates those simulated costs and can enforce a
budget, modelling the paper's X-Gene situation where compile/run times
were too high to finish data collection.
"""

from __future__ import annotations

from repro.errors import BudgetExhaustedError

__all__ = ["SimClock"]


class SimClock:
    """An advancing simulated clock with an optional hard budget."""

    def __init__(self, budget_seconds: float | None = None) -> None:
        if budget_seconds is not None and budget_seconds <= 0:
            raise ValueError(f"budget must be positive, got {budget_seconds}")
        self._now = 0.0
        self.budget_seconds = budget_seconds

    @property
    def now(self) -> float:
        """Elapsed simulated seconds."""
        return self._now

    @property
    def remaining(self) -> float:
        """Seconds left in the budget (``inf`` when unbudgeted)."""
        if self.budget_seconds is None:
            return float("inf")
        return max(0.0, self.budget_seconds - self._now)

    def advance(self, seconds: float) -> float:
        """Advance the clock; raises :class:`BudgetExhaustedError` when
        the advance would cross the budget."""
        if seconds < 0:
            raise ValueError(f"cannot advance the clock by {seconds} s")
        if self.budget_seconds is not None and self._now + seconds > self.budget_seconds:
            raise BudgetExhaustedError(
                f"advancing {seconds:.3g}s would exceed the {self.budget_seconds:.3g}s "
                f"budget (elapsed {self._now:.3g}s)"
            )
        self._now += seconds
        return self._now

    def can_afford(self, seconds: float) -> bool:
        """Whether an advance of ``seconds`` fits the remaining budget."""
        return seconds <= self.remaining

    def reset(self) -> None:
        self._now = 0.0

    # ------------------------------------------------------------------
    # Checkpoint support (repro.reliability.checkpoint)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-serializable snapshot of the clock."""
        return {"now": self._now, "budget_seconds": self.budget_seconds}

    def load_state(self, state: dict) -> None:
        """Restore a snapshot taken with :meth:`state_dict`."""
        self._now = float(state["now"])
        self.budget_seconds = state["budget_seconds"]

    @classmethod
    def from_state(cls, state: dict) -> "SimClock":
        clock = cls(state["budget_seconds"])
        clock._now = float(state["now"])
        return clock

    def __repr__(self) -> str:
        budget = "unbounded" if self.budget_seconds is None else f"{self.budget_seconds:g}s"
        return f"SimClock(now={self._now:g}s, budget={budget})"
