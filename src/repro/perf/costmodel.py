"""The analytic cost model: variant metrics × machine → runtime.

Structure (all times in core cycles, converted to seconds at the end):

* **Compute time** — flops at an effective rate combining the scalar
  pipeline, SIMD speedup (compiler vector quality × stride-1 fraction ×
  alignment), and instruction-level parallelism exposed by the unrolled
  body versus the machine's out-of-order capability.
* **L1 port time** — every load/store occupies the L1 port; scalar
  replacement removes the per-iteration store of reduction targets.
* **Bandwidth time** — per cache level, traffic from the classical
  working-set model (:meth:`VariantMetrics.traffic_bytes`) divided by
  that level's bandwidth; DRAM traffic at chip bandwidth.
* **Latency time** — DRAM misses exposed according to prefetcher
  quality, access regularity, and out-of-order memory-level
  parallelism.
* **Overhead time** — loop-header executions (branch + induction).
* **Multiplicative penalties** — register spill (demand over the
  architectural file), instruction-cache overflow of the unrolled body,
  TLB pressure for large-stride footprints.

Machine *response vectors* scale each penalty; the shared physical core
of the model is what makes configuration rankings correlate across
machines, and the response distance is what breaks the correlation on
dissimilar architectures (X-Gene).  Finally a systematic per-(machine,
configuration) quirk and per-repetition measurement noise are applied
(:mod:`repro.perf.noise`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import EvaluationError
from repro.machines.compiler import CompilerModel
from repro.machines.spec import MachineSpec
from repro.orio.analysis import ELEM_BYTES, VariantMetrics
from repro.perf.noise import machine_quirk, measurement_noise

__all__ = ["CostBreakdown", "CostModel"]

_FP_CHAIN_LATENCY = 4.0  # cycles of a dependent FMA/add chain
_HEADER_CYCLES = 2.0  # compare + increment + branch per loop header
_ICACHE_STATEMENTS = 1500.0  # unrolled statements that fit the I-cache comfortably
_CACHE_UTILIZATION = 0.75  # usable fraction of capacity (conflict misses)
_SERIAL_BW_FRACTION = 0.55  # single core cannot saturate chip DRAM bandwidth
_PAGE_BYTES = 4096.0


@dataclass(frozen=True)
class CostBreakdown:
    """Per-component cycles for one variant on one machine (pre-noise)."""

    compute_cycles: float
    l1_cycles: float
    bandwidth_cycles: float
    latency_cycles: float
    overhead_cycles: float
    spill_factor: float
    icache_factor: float
    tlb_factor: float
    vector_speedup: float
    ilp_efficiency: float
    total_cycles: float
    dram_bytes: float

    @property
    def bound(self) -> str:
        """Which component dominates: 'compute', 'memory' or 'overhead'."""
        core = self.compute_cycles + self.l1_cycles
        mem = self.bandwidth_cycles + self.latency_cycles
        if self.overhead_cycles > max(core, mem):
            return "overhead"
        return "compute" if core >= mem else "memory"


class CostModel:
    """Prices code variants on a machine with a given compiler.

    Parameters
    ----------
    machine, compiler:
        The target platform (γ and the compiler part of β, Section II).
    threads:
        OpenMP threads used when a variant enables OpenMP (the paper
        uses 8 on Westmere/Sandybridge and 60 on the Xeon Phi for
        Figure 5); 1 disables parallel execution.
    """

    def __init__(
        self,
        machine: MachineSpec,
        compiler: CompilerModel,
        threads: int = 1,
    ) -> None:
        compiler.check_supports(machine)
        if threads < 1:
            raise EvaluationError(f"threads must be >= 1, got {threads}")
        self.machine = machine
        self.compiler = compiler
        self.threads = min(threads, machine.cores * machine.smt_threads)

    # ------------------------------------------------------------------
    def _vector_speedup(self, metrics: VariantMetrics, vectorize: bool) -> tuple[float, float]:
        """(vector speedup, alignment factor) for the innermost body."""
        mach = self.machine
        vl = mach.vector_doubles
        if vl <= 1:
            return 1.0, 1.0
        quality = self.compiler.vector_quality if vectorize else 0.25 * self.compiler.vector_quality
        usable = metrics.stride1_fraction
        # Alignment: register blocks that are not a multiple of the
        # vector length waste lanes; in-order wide-vector machines
        # (Xeon Phi) punish this hard.
        innermost = metrics.levels[-1]
        block = innermost.unroll if innermost.unroll > 1 else 1
        if block % vl == 0 or block >= 4 * vl:
            align = 1.0
        else:
            waste = 1.0 - (block % vl) / vl if block > vl else 1.0 - block / vl
            align = 1.0 / (1.0 + 0.4 * waste * mach.response.vector_alignment_sensitivity)
        speedup = 1.0 + (vl - 1.0) * quality * usable * align
        return speedup, align

    def _ilp_efficiency(self, metrics: VariantMetrics) -> float:
        """Fraction of issue slots filled given the dependence structure.

        Reduction-style bodies need ``_FP_CHAIN_LATENCY`` independent
        operations in flight; out-of-order hardware finds them across
        iterations, in-order hardware only sees what unrolling exposes.
        """
        mach = self.machine
        ooo_parallelism = mach.out_of_order_window / 24.0  # ops the core finds itself
        exposed = ooo_parallelism + metrics.replication
        needed = _FP_CHAIN_LATENCY
        eff = min(1.0, (0.35 + exposed / needed) / (1.0 + 0.35))
        return max(0.1, eff)

    def _spill_factor(self, metrics: VariantMetrics) -> float:
        """Spill penalty, log-compressed: spilled values live in L1, so
        even grossly over-subscribed register blocks slow down by a
        bounded factor, not proportionally."""
        mach = self.machine
        demand = metrics.register_demand
        regs = float(mach.fp_registers)
        if demand <= regs:
            return 1.0
        over = math.log2(demand / regs)
        return 1.0 + 0.35 * mach.response.spill_sensitivity * over

    def _icache_factor(self, metrics: VariantMetrics) -> float:
        """Front-end penalty once the unrolled body outgrows the
        instruction cache.  The sensitivity both shrinks the machine's
        comfortable-code-size threshold and steepens the slope, so a
        small-I-cache core (X-Gene) turns hostile to unrolling at
        factors a big Xeon digests easily."""
        mach = self.machine
        sens = mach.response.icache_sensitivity
        threshold = _ICACHE_STATEMENTS / (sens * sens)
        stmts = float(metrics.statements_generated)
        if stmts <= threshold:
            return 1.0
        over = math.log2(stmts / threshold)
        return 1.0 + 0.10 * sens * over

    def _tlb_factor(self, metrics: VariantMetrics) -> float:
        """Penalty for working sets spanning many pages with poor
        spatial order (large tiles of large-stride data)."""
        mach = self.machine
        ws = metrics.working_set_bytes(0)
        pages = ws / _PAGE_BYTES
        if pages <= 512.0:  # covered by a typical L2 TLB
            return 1.0
        over = math.log2(pages / 512.0)
        sparse = 1.0 - 0.5 * metrics.stride1_fraction
        return 1.0 + 0.04 * mach.response.tlb_sensitivity * sparse * over

    # ------------------------------------------------------------------
    def breakdown(
        self,
        metrics: VariantMetrics,
        vectorize: bool = True,
        scalar_replacement: bool = True,
        parallel: bool = False,
        config_key: object = None,
    ) -> CostBreakdown:
        """Deterministic (pre-noise) cost components for a variant."""
        mach = self.machine
        comp = self.compiler
        threads = self.threads if parallel else 1
        cores_active = min(threads, mach.cores)

        work_share = 1.0 / threads if parallel else 1.0
        parallel_eff = 1.0 if threads == 1 else 0.92  # fork/join + imbalance

        # --- compute -----------------------------------------------------
        vec_speedup, _align = self._vector_speedup(metrics, vectorize)
        ilp = self._ilp_efficiency(metrics)
        scalar_rate = (mach.flops_per_cycle / mach.vector_doubles) * comp.scalar_quality
        rate = scalar_rate * vec_speedup * ilp  # flops per cycle per core
        compute_cycles = metrics.flops * work_share / rate

        # --- L1 port pressure ---------------------------------------------
        mem_refs = metrics.loads + metrics.stores
        if scalar_replacement:
            # Reduction targets stay in registers; remove their
            # per-iteration store+reload.
            inner_trip = metrics.levels[-1].trip
            saved = metrics.invariant_fraction * mem_refs * (1.0 - 1.0 / max(1.0, inner_trip))
            mem_refs -= saved
        l1 = mach.caches[0]
        l1_cycles = mem_refs * ELEM_BYTES * work_share / l1.bandwidth_bytes_per_cycle
        if vec_speedup > 1.0:
            l1_cycles /= min(vec_speedup, mach.vector_doubles * 0.75)

        # --- cache/DRAM bandwidth ------------------------------------------
        bandwidth_cycles = 0.0
        dram_bytes = 0.0
        for i, level in enumerate(mach.caches):
            if i == 0:
                continue  # L1 handled as port pressure above
            capacity = level.effective_size_bytes(cores_active) * _CACHE_UTILIZATION
            upper = mach.caches[i - 1]
            traffic = metrics.traffic_bytes(
                upper.effective_size_bytes(cores_active) * _CACHE_UTILIZATION,
                mach.line_bytes,
            )
            bandwidth_cycles += traffic * work_share / level.bandwidth_bytes_per_cycle
            del capacity
        last = mach.caches[-1]
        dram_bytes = metrics.traffic_bytes(
            last.effective_size_bytes(cores_active) * _CACHE_UTILIZATION, mach.line_bytes
        )
        chip_bw = mach.dram_bytes_per_cycle
        if threads == 1:
            chip_bw *= _SERIAL_BW_FRACTION
        else:
            chip_bw /= mach.response.bandwidth_contention
        dram_cycles = dram_bytes / chip_bw  # chip-level: no work_share
        bandwidth_cycles += dram_cycles

        # --- exposed latency ------------------------------------------------
        dram_lines = dram_bytes / mach.line_bytes
        latency_cycles_per_miss = mach.dram_latency_ns * mach.clock_ghz
        prefetch_cover = min(
            0.95, 0.75 * mach.response.prefetch_quality * (0.4 + 0.6 * metrics.stride1_fraction)
        )
        mlp = 1.0 + mach.out_of_order_window / 24.0
        latency_cycles = (
            dram_lines
            * work_share
            * latency_cycles_per_miss
            * (1.0 - prefetch_cover)
            * mach.response.latency_sensitivity
            / mlp
        )

        # --- loop overhead ---------------------------------------------------
        overhead_cycles = (
            metrics.header_executions
            * work_share
            * _HEADER_CYCLES
            * mach.response.loop_overhead_sensitivity
            / max(1.0, mach.issue_width / 2.0)
        )

        # --- multiplicative penalties -----------------------------------------
        spill = self._spill_factor(metrics)
        icache = self._icache_factor(metrics)
        tlb = self._tlb_factor(metrics)

        core_cycles = (compute_cycles * spill + l1_cycles + overhead_cycles) * icache
        mem_cycles = (bandwidth_cycles + latency_cycles) * tlb
        total = max(core_cycles, mem_cycles) + 0.15 * min(core_cycles, mem_cycles)
        total /= parallel_eff

        return CostBreakdown(
            compute_cycles=compute_cycles,
            l1_cycles=l1_cycles,
            bandwidth_cycles=bandwidth_cycles,
            latency_cycles=latency_cycles,
            overhead_cycles=overhead_cycles,
            spill_factor=spill,
            icache_factor=icache,
            tlb_factor=tlb,
            vector_speedup=vec_speedup,
            ilp_efficiency=ilp,
            total_cycles=total,
            dram_bytes=dram_bytes,
        )

    # ------------------------------------------------------------------
    def runtime_seconds(
        self,
        metrics: VariantMetrics,
        config_key: object,
        kernel_tag: str = "",
        vectorize: bool = True,
        scalar_replacement: bool = True,
        parallel: bool = False,
        is_default: bool = False,
        rep: int = 0,
        quirk_sigma: float | None = None,
        ref_metrics: VariantMetrics | None = None,
    ) -> float:
        """Simulated runtime of one timing run of a variant.

        ``config_key`` identifies the configuration (for the systematic
        machine quirk); ``rep`` distinguishes repeated runs.  When the
        compiler recognizes the kernel idiom (icc on plain MM), the
        default variant takes the idiom fast path and transformed
        variants pay the interference penalty, per Section V.
        """
        bd = self.breakdown(
            metrics,
            vectorize=vectorize,
            scalar_replacement=scalar_replacement,
            parallel=parallel,
            config_key=config_key,
        )
        seconds = bd.total_cycles / self.machine.clock_hz

        gamma = self.machine.response.systematic_compression
        if gamma != 1.0:
            # Compress systematic variant-to-variant differences around
            # the machine's roofline reference time (see ResponseVector.
            # systematic_compression).
            ref = self._reference_seconds(metrics, parallel)
            seconds = ref * (seconds / ref) ** gamma

        if self.compiler.recognizes_idiom(kernel_tag):
            threads = self.threads if parallel else 1
            idiom_gflops = (
                self.machine.peak_gflops_core
                * min(threads, self.machine.cores)
                * self.compiler.idiom_quality
            )
            idiom_seconds = metrics.flops / (idiom_gflops * 1e9)
            if is_default:
                seconds = min(seconds, idiom_seconds)
            else:
                # The compiler re-canonicalizes the recognized idiom, so
                # manual source-level transforms mostly wash out: the
                # variant lands near the idiom time, pays the pattern-
                # interference penalty, and keeps only a small residual
                # of its structural differences.
                residual = max(seconds / idiom_seconds, 1.0) ** self.compiler.idiom_flatten
                seconds = idiom_seconds * (1.0 + self.compiler.interference_penalty) * residual

        if quirk_sigma is None:
            quirk_sigma = self.machine.response.quirk_sigma
        seconds *= machine_quirk(quirk_sigma, self.machine.name, (kernel_tag, config_key))
        seconds *= measurement_noise(
            self.machine.response.noise_sigma, self.machine.name, (kernel_tag, config_key), rep
        )
        return seconds

    def _reference_seconds(self, metrics: VariantMetrics, parallel: bool) -> float:
        """Roofline reference point: ideal compute vs. compulsory-traffic
        time — configuration-independent for a fixed kernel."""
        mach = self.machine
        threads = self.threads if parallel else 1
        compute = metrics.flops / (0.5 * mach.peak_gflops_core * 1e9 * threads)
        bw = mach.dram_bandwidth_gbs * 1e9
        if threads == 1:
            bw *= _SERIAL_BW_FRACTION
        memory = metrics.working_set_bytes(0) / bw
        return max(compute, memory)

    def compile_seconds(self, metrics: VariantMetrics) -> float:
        """Simulated compile time of the variant on this machine."""
        return self.compiler.compile_time(self.machine, metrics.statements_generated)
