"""Deterministic noise models for simulated measurements.

Two distinct effects, both reproducible (hash-keyed, no RNG state):

* :func:`measurement_noise` — run-to-run timing jitter on one machine
  (OS scheduling, DVFS, cache state).  Keyed by the repetition index,
  so repeated measurements of the same variant differ, as on hardware.

* :func:`machine_quirk` — a *systematic* per-(machine, configuration)
  effect: alignment accidents, TLB/page-coloring interactions, branch-
  predictor details that the analytic model does not capture.  Fixed
  across repetitions, but independent between machines — this is the
  model-irreducible part of cross-machine dissimilarity.
"""

from __future__ import annotations

import math

from repro.utils.rng import hash_normal

__all__ = ["measurement_noise", "machine_quirk"]


def measurement_noise(sigma: float, machine: str, key: object, rep: int = 0) -> float:
    """Multiplicative lognormal jitter for one timing run."""
    if sigma < 0:
        raise ValueError(f"sigma must be >= 0, got {sigma}")
    if sigma == 0.0:
        return 1.0
    z = hash_normal("measurement", machine, str(key), rep)
    return math.exp(sigma * z)


def machine_quirk(sigma: float, machine: str, key: object) -> float:
    """Systematic per-(machine, configuration) multiplicative factor."""
    if sigma < 0:
        raise ValueError(f"sigma must be >= 0, got {sigma}")
    if sigma == 0.0:
        return 1.0
    z = hash_normal("quirk", machine, str(key))
    return math.exp(sigma * z)
