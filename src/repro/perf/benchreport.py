"""Machine-readable performance reports for the ML hot paths.

The bench suite times each hot path twice — the legacy engine (the
original per-node implementation, kept as the reference) and the
optimized engine — and writes a ``BENCH_ml.json`` report.  The
committed report doubles as a regression baseline: a later run on the
same machine fails the bench suite when a tracked entry slows down by
more than :data:`REGRESSION_THRESHOLD` against it.

Entries are plain dicts so the JSON stays greppable::

    {"name": "pool_predict_std", "seconds": ..., "baseline_seconds": ...,
     "speedup": ..., "meta": {"n_rows": 10000, ...}}
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Callable, Sequence

import numpy as np

__all__ = [
    "REGRESSION_THRESHOLD",
    "time_callable",
    "make_entry",
    "write_report",
    "load_report",
    "find_regressions",
]

#: Relative slowdown vs the committed baseline that fails `make bench`.
REGRESSION_THRESHOLD = 0.25

#: Set to "1" to report regressions without failing (e.g. when
#: regenerating the baseline on different hardware).
ALLOW_REGRESSION_ENV = "REPRO_BENCH_ALLOW_REGRESSION"


def time_callable(
    func: Callable[[], object], repeats: int = 7, warmup: int = 1
) -> float:
    """Median wall time of ``func()`` over ``repeats`` runs."""
    for _ in range(warmup):
        func()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        samples.append(time.perf_counter() - start)
    return float(np.median(samples))


def make_entry(
    name: str,
    seconds: float,
    baseline_seconds: float | None = None,
    **meta: object,
) -> dict:
    """One benchmark record; ``baseline_seconds`` is the legacy path."""
    entry: dict = {"name": name, "seconds": seconds}
    if baseline_seconds is not None:
        entry["baseline_seconds"] = baseline_seconds
        entry["speedup"] = baseline_seconds / seconds if seconds > 0 else float("inf")
    if meta:
        entry["meta"] = meta
    return entry


def write_report(path: str, entries: Sequence[dict],
                 suite: str = "BENCH_ml", **context: object) -> dict:
    """Write entries plus environment context; returns the report."""
    from repro.ml import _native

    report = {
        "suite": suite,
        "context": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
            "native_kernel": _native.available(),
            **context,
        },
        "entries": list(entries),
    }
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return report


def load_report(path: str) -> dict | None:
    """The committed report, or ``None`` when absent/unreadable."""
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None


def find_regressions(
    current: Sequence[dict],
    baseline: dict | None,
    tracked: Sequence[str],
    threshold: float = REGRESSION_THRESHOLD,
) -> list[str]:
    """Human-readable regression messages for the tracked entries.

    An entry regresses when its current ``seconds`` exceeds the
    committed report's by more than ``threshold`` (relative).  Entries
    missing from either side are skipped — a fresh baseline is not a
    regression.
    """
    if baseline is None:
        return []
    old = {e["name"]: e for e in baseline.get("entries", [])}
    cur = {e["name"]: e for e in current}
    messages = []
    for name in tracked:
        if name not in old or name not in cur:
            continue
        before = float(old[name]["seconds"])
        after = float(cur[name]["seconds"])
        if before > 0 and after > before * (1.0 + threshold):
            messages.append(
                f"{name}: {after * 1e3:.1f} ms vs committed "
                f"{before * 1e3:.1f} ms (+{(after / before - 1.0) * 100:.0f}%, "
                f"threshold +{threshold * 100:.0f}%)"
            )
    return messages
