"""Trace-driven set-associative LRU cache simulator.

The analytic traffic model (:meth:`VariantMetrics.traffic_bytes`) is an
approximation; this simulator is the ground truth it is validated
against.  It consumes the element-access stream emitted by the
reference interpreter (``run_nest(on_access=...)``) and simulates a
set-associative LRU cache with write-allocate/write-back semantics,
reporting miss counts and DRAM traffic.

It is used for *validation at small problem sizes* (the interpreter is
a tree-walker; full 2000^3 runs are out of reach) — the tests check
that the analytic model tracks the simulated traffic within a modest
factor across tiled and untiled variants, and ranks variants the same
way.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.errors import EvaluationError
from repro.orio.ast import Stmt
from repro.orio.interp import run_nest

__all__ = ["CacheStats", "LruCache", "simulate_nest"]

ELEM_BYTES = 8


@dataclass
class CacheStats:
    """Counters from one simulation."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    writebacks: int = 0
    line_bytes: int = 64

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def fetch_bytes(self) -> int:
        """Bytes fetched from the next level (miss fills)."""
        return self.misses * self.line_bytes

    @property
    def writeback_bytes(self) -> int:
        return self.writebacks * self.line_bytes

    @property
    def traffic_bytes(self) -> int:
        """Total next-level traffic: fills + write-backs."""
        return self.fetch_bytes + self.writeback_bytes


class LruCache:
    """Set-associative LRU cache with write-allocate / write-back."""

    def __init__(
        self,
        capacity_bytes: int,
        line_bytes: int = 64,
        associativity: int = 8,
    ) -> None:
        if line_bytes <= 0 or capacity_bytes < line_bytes:
            raise EvaluationError("capacity must hold at least one line")
        if associativity < 1:
            raise EvaluationError(f"associativity must be >= 1, got {associativity}")
        n_lines = capacity_bytes // line_bytes
        self.n_sets = max(1, n_lines // associativity)
        self.associativity = associativity
        self.line_bytes = line_bytes
        # Per set: OrderedDict tag -> dirty flag (LRU order = insertion).
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(self.n_sets)
        ]
        self.stats = CacheStats(line_bytes=line_bytes)

    def access(self, byte_address: int, is_write: bool) -> bool:
        """Touch an address; returns True on hit."""
        line = byte_address // self.line_bytes
        set_idx = line % self.n_sets
        tag = line // self.n_sets
        ways = self._sets[set_idx]
        self.stats.accesses += 1
        if tag in ways:
            self.stats.hits += 1
            dirty = ways.pop(tag)
            ways[tag] = dirty or is_write
            return True
        self.stats.misses += 1
        if len(ways) >= self.associativity:
            _victim, victim_dirty = ways.popitem(last=False)
            if victim_dirty:
                self.stats.writebacks += 1
        ways[tag] = is_write
        return False

    def flush(self) -> None:
        """Write back all dirty lines (end-of-run accounting)."""
        for ways in self._sets:
            for dirty in ways.values():
                if dirty:
                    self.stats.writebacks += 1
            ways.clear()


@dataclass
class _Layout:
    """Assigns each array a disjoint base address."""

    bases: dict = field(default_factory=dict)
    next_base: int = 0

    def address(self, array: str, size_bytes: int, flat_index: int) -> int:
        if array not in self.bases:
            # Page-align each array's base (4 KB), as mallocs tend to.
            self.bases[array] = self.next_base
            self.next_base += ((size_bytes + 4095) // 4096 + 1) * 4096
        return self.bases[array] + flat_index * ELEM_BYTES


def simulate_nest(
    nest: Stmt | list[Stmt],
    arrays: Mapping[str, np.ndarray],
    capacity_bytes: int,
    line_bytes: int = 64,
    associativity: int = 8,
) -> CacheStats:
    """Execute a nest and simulate every element access through a cache.

    The ``arrays`` are mutated (the program really runs).  Returns the
    cache statistics, with dirty lines flushed at the end so write-back
    traffic is complete.
    """
    cache = LruCache(capacity_bytes, line_bytes=line_bytes, associativity=associativity)
    layout = _Layout()

    def on_access(name: str, flat: int, is_write: bool) -> None:
        arr = arrays[name]
        cache.access(layout.address(name, arr.nbytes, flat), is_write)

    run_nest(nest, arrays, on_access=on_access)
    cache.flush()
    return cache.stats
