"""The unified tuner-hyperparameter layer: :class:`TunerSpec`.

Willemsen et al. ("Tuning the Tuner", PAPERS.md) show the tuner's own
hyperparameters dominate autotuning outcomes, yet until this module
ours were hard-coded and scattered: the δ=20% pruning quantile in
:mod:`repro.search.gates`, the forest size duplicated across
:mod:`repro.transfer.surrogate` and the SMBO proposer, the 10k pool,
the SMBO EI settings, and the whole guard knob set.  ``TunerSpec``
gathers every one of them into a single frozen, range-validated,
JSON-round-trippable value that every entry point accepts as
``spec=`` — and that :mod:`repro.meta` can treat as a search space of
its own (the tuner tuning itself).

Design rules:

* **The default spec is the status quo.**  ``TunerSpec()`` reproduces
  the hard-coded values bit-for-bit; the golden-trace suite pins this.
* **Frozen and validated.**  Sub-specs are frozen dataclasses whose
  ``__post_init__`` rejects out-of-range knobs with :class:`SpecError`
  (a ``ValueError``), so an invalid spec cannot be constructed, only
  reported.
* **Versioned wire format.**  :meth:`TunerSpec.to_dict` emits a
  ``{"version": 1, ...}`` payload; :meth:`TunerSpec.from_dict` rejects
  unknown fields and version mismatches instead of guessing — service
  job payloads and journaled meta-grid cells both ride on it.

This module sits below every consumer (search, transfer, tuner,
service), so at import time it depends only on :mod:`repro.errors`;
the :class:`~repro.transfer.guard.GuardPolicy` sub-spec is resolved
lazily to keep the import graph acyclic.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, replace
from typing import Any, Mapping

from repro.errors import SpecError

# "GuardPolicy" annotations below are plain strings on purpose: the
# guard lives in repro.transfer, which imports the search layer, which
# imports this module — a module-level (or TYPE_CHECKING) import here
# would close that loop, and the lint sweep rejects both.  The class is
# imported lazily where actually needed.

__all__ = [
    "SPEC_VERSION",
    "UNSET",
    "ForestSpec",
    "GateSpec",
    "PoolSpec",
    "SMBOSpec",
    "EngineSpec",
    "TunerSpec",
    "DEFAULT_SPEC",
    "resolve_spec",
]

#: wire-format version written by :meth:`TunerSpec.to_dict` and the
#: only version :meth:`TunerSpec.from_dict` accepts.
SPEC_VERSION = 1

#: acquisition functions :class:`repro.search.proposers.SMBOProposer`
#: implements.
ACQUISITIONS = ("ei", "lcb", "mean")


class _Unset:
    """Sentinel distinguishing "argument not passed" from explicit
    ``None`` (``guard=None`` and ``batch_size=None`` are meaningful
    values, so ``None`` cannot mean "take it from the spec")."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "UNSET"


UNSET = _Unset()


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SpecError(message)


@dataclass(frozen=True)
class ForestSpec:
    """Random-forest hyperparameters (one source of truth).

    The default reproduces the surrogate forest the transfer layer has
    always built; the SMBO proposer's smaller refit forest is the same
    spec with ``n_estimators=48, seed=7`` (see :class:`SMBOSpec`).
    Execution details (``n_jobs``, the fit engine) are deliberately
    *not* here — they change wall-clock, never results, so they are not
    tuner hyperparameters.
    """

    n_estimators: int = 64
    min_samples_leaf: int = 2
    min_samples_split: int = 5
    max_features: int | float | str | None = "third"
    max_depth: int | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        _require(self.n_estimators >= 1,
                 f"forest.n_estimators must be >= 1, got {self.n_estimators}")
        _require(self.min_samples_leaf >= 1,
                 f"forest.min_samples_leaf must be >= 1, got {self.min_samples_leaf}")
        _require(self.min_samples_split >= 2,
                 f"forest.min_samples_split must be >= 2, got {self.min_samples_split}")
        _require(self.max_depth is None or self.max_depth >= 1,
                 f"forest.max_depth must be None or >= 1, got {self.max_depth}")
        if isinstance(self.max_features, str):
            _require(self.max_features in ("third", "sqrt", "log2", "all"),
                     f"forest.max_features string must be one of "
                     f"third/sqrt/log2/all, got {self.max_features!r}")
        elif self.max_features is not None:
            _require(self.max_features > 0,
                     f"forest.max_features must be positive, got {self.max_features}")


@dataclass(frozen=True)
class GateSpec:
    """Pruning-gate hyperparameters: the paper's δ quantile."""

    delta_percent: float = 20.0

    def __post_init__(self) -> None:
        _require(0.0 < self.delta_percent < 100.0,
                 f"gate.delta_percent must be in (0, 100), got {self.delta_percent}")


@dataclass(frozen=True)
class PoolSpec:
    """Candidate-pool sizing: the paper's N=10k sample and the stream
    proposer's prefetch block."""

    size: int = 10_000
    prefetch: int = 256

    def __post_init__(self) -> None:
        _require(self.size >= 10, f"pool.size must be >= 10, got {self.size}")
        _require(self.prefetch >= 1,
                 f"pool.prefetch must be >= 1, got {self.prefetch}")


@dataclass(frozen=True)
class SMBOSpec:
    """Sequential model-based optimization knobs (EI loop)."""

    n_initial: int = 10
    pool_size: int = 2_000
    acquisition: str = "ei"
    kappa: float = 1.5
    refit_every: int = 1
    forest: ForestSpec = field(
        default_factory=lambda: ForestSpec(n_estimators=48, seed=7)
    )

    def __post_init__(self) -> None:
        _require(self.n_initial >= 1,
                 f"smbo.n_initial must be >= 1, got {self.n_initial}")
        _require(self.pool_size >= 10,
                 f"smbo.pool_size must be >= 10, got {self.pool_size}")
        _require(self.acquisition in ACQUISITIONS,
                 f"smbo.acquisition must be one of {ACQUISITIONS}, "
                 f"got {self.acquisition!r}")
        _require(self.kappa >= 0.0, f"smbo.kappa must be >= 0, got {self.kappa}")
        _require(self.refit_every >= 1,
                 f"smbo.refit_every must be >= 1, got {self.refit_every}")


@dataclass(frozen=True)
class EngineSpec:
    """Engine execution shape: the batched loop's block size.

    ``batch_size=None`` forces the serial loop; any value >= 1 runs the
    batched loop (traces are byte-identical either way — this knob
    trades throughput, not results).
    """

    batch_size: int | None = 64

    def __post_init__(self) -> None:
        _require(self.batch_size is None or self.batch_size >= 1,
                 f"engine.batch_size must be None or >= 1, got {self.batch_size}")


_SUB_SPECS: dict[str, type] = {}  # populated after TunerSpec is defined


def _guard_to_dict(guard: "GuardPolicy") -> dict:
    return {f.name: getattr(guard, f.name) for f in fields(guard)}


def _guard_from_dict(data: Any) -> "GuardPolicy":
    from repro.transfer.guard import GuardPolicy

    _require(isinstance(data, Mapping),
             f"spec field 'guard' must be a mapping or null, got {type(data).__name__}")
    known = {f.name for f in fields(GuardPolicy)}
    unknown = sorted(set(data) - known)
    _require(not unknown, f"unknown guard field(s): {unknown}")
    return GuardPolicy(**dict(data))


def _sub_to_dict(spec: Any) -> dict:
    out = {}
    for f in fields(spec):
        value = getattr(spec, f.name)
        out[f.name] = _sub_to_dict(value) if isinstance(value, ForestSpec) else value
    return out


def _sub_from_dict(cls: type, data: Any, where: str) -> Any:
    _require(isinstance(data, Mapping),
             f"spec field {where!r} must be a mapping, got {type(data).__name__}")
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - known)
    _require(not unknown, f"unknown field(s) in {where!r}: {unknown}")
    kwargs = dict(data)
    if "forest" in kwargs and cls is SMBOSpec:
        kwargs["forest"] = _sub_from_dict(
            ForestSpec, kwargs["forest"], f"{where}.forest"
        )
    return cls(**kwargs)


@dataclass(frozen=True)
class TunerSpec:
    """Every tuner hyperparameter, in one frozen, serializable value.

    ``TunerSpec()`` is the status quo (golden-trace proven); pass a
    modified spec to any search factory, :class:`TransferSession`,
    :class:`TuningRun`, or a service job payload to change the tuner's
    behavior from one typed source of truth.  Per-knob keyword
    arguments still win over the spec where both are given — the spec
    supplies defaults, it does not override explicit calls.
    """

    forest: ForestSpec = field(default_factory=ForestSpec)
    gate: GateSpec = field(default_factory=GateSpec)
    pool: PoolSpec = field(default_factory=PoolSpec)
    smbo: SMBOSpec = field(default_factory=SMBOSpec)
    engine: EngineSpec = field(default_factory=EngineSpec)
    guard: "GuardPolicy | None" = None

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Versioned, JSON-safe payload; inverse of :meth:`from_dict`."""
        return {
            "version": SPEC_VERSION,
            "forest": _sub_to_dict(self.forest),
            "gate": _sub_to_dict(self.gate),
            "pool": _sub_to_dict(self.pool),
            "smbo": _sub_to_dict(self.smbo),
            "engine": _sub_to_dict(self.engine),
            "guard": None if self.guard is None else _guard_to_dict(self.guard),
        }

    @classmethod
    def from_dict(cls, data: Any) -> "TunerSpec":
        """Decode a wire payload, rejecting unknown fields and foreign
        versions (fail loudly rather than silently drop a knob a newer
        writer meant to change)."""
        _require(isinstance(data, Mapping),
                 f"a spec payload must be a mapping, got {type(data).__name__}")
        payload = dict(data)
        _require("version" in payload, "spec payload has no 'version' field")
        version = payload.pop("version")
        _require(version == SPEC_VERSION,
                 f"unsupported spec version {version!r} "
                 f"(this build reads version {SPEC_VERSION})")
        unknown = sorted(set(payload) - set(_SUB_SPECS) - {"guard"})
        _require(not unknown, f"unknown spec field(s): {unknown}")
        kwargs: dict[str, Any] = {}
        for name, sub_cls in _SUB_SPECS.items():
            if name in payload:
                kwargs[name] = _sub_from_dict(sub_cls, payload[name], name)
        guard = payload.get("guard")
        if guard is not None:
            kwargs["guard"] = _guard_from_dict(guard)
        return cls(**kwargs)

    def to_json(self) -> str:
        """Canonical (sorted-key) JSON encoding."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "TunerSpec":
        try:
            data = json.loads(text)
        except (TypeError, json.JSONDecodeError) as exc:
            raise SpecError(f"spec payload is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    def fingerprint(self) -> str:
        """Short stable digest of the canonical encoding — names
        journaled meta-grid cells and service results."""
        return hashlib.sha256(self.to_json().encode()).hexdigest()[:12]

    # ------------------------------------------------------------------
    # Functional updates
    # ------------------------------------------------------------------
    def with_value(self, path: str, value: Any) -> "TunerSpec":
        """A copy with one dotted-path knob replaced (re-validated).

        ``spec.with_value("gate.delta_percent", 5.0)`` or
        ``spec.with_value("smbo.forest.seed", 3)``.  This is how
        :mod:`repro.meta` maps a meta-space configuration onto a
        candidate spec.
        """
        parts = path.split(".")
        _require(len(parts) >= 2, f"spec path needs a sub-spec prefix: {path!r}")
        head, rest = parts[0], parts[1:]
        if head == "guard":
            _require(self.guard is not None,
                     f"cannot set {path!r}: spec has no guard policy")
            _require(len(rest) == 1, f"no such guard knob path: {path!r}")
            _require(rest[0] in {f.name for f in fields(self.guard)},
                     f"unknown guard field {rest[0]!r}")
            return replace(self, guard=replace(self.guard, **{rest[0]: value}))
        _require(head in _SUB_SPECS, f"unknown sub-spec {head!r} in path {path!r}")
        sub = getattr(self, head)
        if len(rest) == 2 and head == "smbo" and rest[0] == "forest":
            _require(rest[1] in {f.name for f in fields(ForestSpec)},
                     f"unknown forest field {rest[1]!r}")
            sub = replace(sub, forest=replace(sub.forest, **{rest[1]: value}))
        else:
            _require(len(rest) == 1, f"no such spec knob path: {path!r}")
            _require(rest[0] in {f.name for f in fields(sub)},
                     f"unknown field {rest[0]!r} in sub-spec {head!r}")
            sub = replace(sub, **{rest[0]: value})
        return replace(self, **{head: sub})


_SUB_SPECS.update(
    forest=ForestSpec, gate=GateSpec, pool=PoolSpec,
    smbo=SMBOSpec, engine=EngineSpec,
)

#: the status-quo spec every entry point falls back to.
DEFAULT_SPEC = TunerSpec()


def resolve_spec(spec: "TunerSpec | None") -> TunerSpec:
    """``spec`` itself, or :data:`DEFAULT_SPEC` when ``None``."""
    if spec is None:
        return DEFAULT_SPEC
    if not isinstance(spec, TunerSpec):
        raise SpecError(
            f"spec must be a TunerSpec or None, got {type(spec).__name__}"
        )
    return spec
