"""Seed-derived, bit-replayable chaos schedules across every layer.

A :class:`ChaosPlan` is the orchestration unit: one frozen dataclass
holding the fault intensities of all five layers —

* **evaluator faults** (:mod:`repro.reliability.faults`): transient
  glitches, compile crashes, timeouts, outages inside the simulated
  measurement pipeline;
* **worker chaos** (:class:`repro.exec.ChaosConfig`): kill and hang
  injection in the supervised executor's worker fleet;
* **filesystem faults** (:mod:`repro.chaos.faultfs`): budgeted
  ENOSPC/EACCES/partial-write/fsync/rename failures against the journal
  paths;
* **clock/deadline pressure**: a tightened per-task wall-clock budget
  plus kill/restart cadence for checkpointed searches and service
  sessions;
* **silent corruption** (:data:`repro.chaos.faultfs.CORRUPT_MODES`):
  budgeted bit-flip/mid-file-truncate damage against the grid
  registry, the session store, and search checkpoints — including
  flip-during-compaction — exercised against the CRC32
  framing + scrub-and-salvage machinery of :mod:`repro.exec.scrub`.

Every knob is drawn from one seed via stateless
:func:`~repro.utils.rng.hash_uniform` draws (PR 1's fault-injection
idiom), so ``ChaosPlan.derive(seed)`` is a pure function: the same seed
always produces the same schedule, a campaign journal entry identifies
its plan completely, and any run replays bit-identically.
"""

from __future__ import annotations

import dataclasses
import errno
from dataclasses import dataclass

from repro.chaos.faultfs import CORRUPT_MODES, FAULTFS_MODES
from repro.exec.executor import ChaosConfig
from repro.reliability.faults import FaultSpec
from repro.utils.rng import hash_uniform

__all__ = ["ChaosPlan"]

#: Errno values a filesystem fault may carry (disk full / permission
#: lost — the two failure classes the journal layer distinguishes).
_FS_ERRNOS: tuple[int, ...] = (errno.ENOSPC, errno.EACCES)


def _draw(seed, knob: str, lo: float, hi: float) -> float:
    """One stateless uniform draw in [lo, hi) for a plan knob."""
    return lo + (hi - lo) * hash_uniform("chaos-plan", seed, knob)


def _choice(seed, knob: str, options: tuple) -> object:
    return options[int(_draw(seed, knob, 0.0, len(options)) ) % len(options)]


@dataclass(frozen=True)
class ChaosPlan:
    """One complete cross-layer fault schedule, derived from one seed."""

    seed: str
    # -- evaluator-fault layer -----------------------------------------
    fault_rate: float
    # -- worker layer ---------------------------------------------------
    kill_rate: float
    hang_rate: float
    hang_seconds: float
    # -- filesystem layer -----------------------------------------------
    fs_mode: str
    fs_errno: int
    fs_budget: int
    # -- clock/deadline pressure ---------------------------------------
    task_timeout: float
    kill_every_saves: int
    restarts: int
    # -- silent-corruption layer (bit rot) ------------------------------
    corrupt_mode: str  # grid registry damage shape
    store_corrupt_mode: str  # session-store damage shape
    ckpt_corrupt_mode: str  # checkpoint damage shape
    corrupt_budget: int  # damaged records allowed per target
    corrupt_compaction: bool  # also rot the freshly compacted registry

    def __post_init__(self) -> None:
        if self.fs_mode not in FAULTFS_MODES:
            raise ValueError(
                f"unknown fs_mode {self.fs_mode!r}; known: {FAULTFS_MODES}"
            )
        for knob in ("corrupt_mode", "store_corrupt_mode",
                     "ckpt_corrupt_mode"):
            value = getattr(self, knob)
            if value not in CORRUPT_MODES:
                raise ValueError(
                    f"unknown {knob} {value!r}; known: {CORRUPT_MODES}"
                )

    # ------------------------------------------------------------------
    @classmethod
    def derive(cls, seed, intensity: float = 1.0) -> "ChaosPlan":
        """The plan for one seed — pure, stateless, replayable.

        ``intensity`` scales the probabilistic layers (fault, kill, and
        hang rates) without touching the structural ones, so a campaign
        can sweep gentle-to-vicious mixes over the same seeds.
        """
        if intensity < 0.0:
            raise ValueError(f"intensity must be >= 0, got {intensity}")
        seed = str(seed)
        return cls(
            seed=seed,
            fault_rate=min(0.9, intensity * _draw(seed, "fault-rate", 0.05, 0.30)),
            kill_rate=min(0.9, intensity * _draw(seed, "kill-rate", 0.10, 0.35)),
            hang_rate=min(0.9, intensity * _draw(seed, "hang-rate", 0.05, 0.25)),
            hang_seconds=_draw(seed, "hang-seconds", 0.02, 0.10),
            fs_mode=str(_choice(seed, "fs-mode", FAULTFS_MODES)),
            fs_errno=int(_choice(seed, "fs-errno", _FS_ERRNOS)),
            fs_budget=1 + int(_draw(seed, "fs-budget", 0.0, 3.0)),
            task_timeout=_draw(seed, "task-timeout", 4.0, 8.0),
            kill_every_saves=1 + int(_draw(seed, "kill-every-saves", 0.0, 3.0)),
            restarts=1 + int(_draw(seed, "restarts", 0.0, 2.0)),
            # New knobs draw from their own hash streams, so adding the
            # corruption layer left every pre-existing draw unchanged.
            corrupt_mode=str(_choice(seed, "corrupt-mode", CORRUPT_MODES)),
            store_corrupt_mode=str(
                _choice(seed, "store-corrupt-mode", CORRUPT_MODES)
            ),
            ckpt_corrupt_mode=str(
                _choice(seed, "ckpt-corrupt-mode", CORRUPT_MODES)
            ),
            corrupt_budget=1 + int(_draw(seed, "corrupt-budget", 0.0, 2.0)),
            corrupt_compaction=_draw(seed, "corrupt-compaction", 0.0, 1.0) < 0.5,
        )

    # ------------------------------------------------------------------
    # Per-layer views
    # ------------------------------------------------------------------
    def fault_spec(self, horizon_seconds: float = 50.0) -> FaultSpec:
        """The evaluator-fault schedule.

        This layer is *simulation input*, not operational chaos: the
        fault-free reference run shares the same spec, so evaluator
        faults perturb what the search measures identically in both
        runs and only kills/restarts/filesystem pressure differ.
        """
        return FaultSpec.uniform(
            self.fault_rate,
            seed=("chaos", self.seed),
            outage_horizon_seconds=horizon_seconds,
        )

    def chaos_config(self) -> ChaosConfig | None:
        """The worker kill/hang schedule (None when both rates are 0)."""
        if self.kill_rate <= 0.0 and self.hang_rate <= 0.0:
            return None
        return ChaosConfig(
            kill_rate=self.kill_rate,
            hang_rate=self.hang_rate,
            hang_seconds=self.hang_seconds,
            seed=("chaos", self.seed),
        )

    def fs_rule_kwargs(self) -> dict:
        """Keyword arguments for :meth:`repro.chaos.faultfs.FaultFS.add_rule`."""
        return {
            "mode": self.fs_mode,
            "err": self.fs_errno,
            "budget": self.fs_budget,
        }

    def corrupt_rule_kwargs(self, target: str,
                            on_replace: bool = False) -> dict:
        """Corruption-rule kwargs for one target (``registry``/``store``).

        Each target salts the damage-site draws with its own seed so
        the registry and the store do not rot in lock-step; the
        flip-during-compaction rule (``on_replace=True``) always
        bit-flips — a truncate of a freshly compacted snapshot would
        mostly reproduce the plain truncate case.  The store rules
        protect the journal's first line: after compaction that line is
        the folded snapshot of *every* session and job, so rotting it
        is whole-journal loss rather than the per-record damage the
        oracle's bounded-loss invariant accounts for.
        """
        mode = {
            "registry": self.corrupt_mode,
            "store": self.store_corrupt_mode,
        }[target]
        return {
            "mode": "bitflip" if on_replace else mode,
            "budget": 1 if on_replace else self.corrupt_budget,
            "seed": f"{self.seed}-{target}",
            "on_replace": on_replace,
            "protect_first_line": target == "store",
        }

    # ------------------------------------------------------------------
    # Wire format (campaign journaling)
    # ------------------------------------------------------------------
    def to_wire(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_wire(cls, data: dict) -> "ChaosPlan":
        return cls(**{f.name: data[f.name] for f in dataclasses.fields(cls)})
