"""First-class filesystem fault injection for the journal layer.

Promoted from the original ``tests/faultfs.py`` shim into a library
component: the chaos orchestrator composes filesystem pressure with
evaluator faults, worker kills, and deadline pressure, so the failing
filesystem has to be schedulable (per-path rules, fault budgets,
arm/disarm windows) rather than a pytest-only monkeypatch.

:class:`FaultFS` shadows ``open`` and ``os`` inside
:mod:`repro.exec.journal` (a module-level name wins the lookup over the
builtin/import), so OSErrors are injected for exactly the ruled paths
while every other file — test fixtures, checkpoints, a registry under a
different path — keeps working.  Four failure modes per rule:

``refuse``
    The write-mode ``open`` itself raises (disk full before a byte
    lands) — the journal is untouched.
``partial``
    The open succeeds but the first ``write`` persists only half the
    bytes, fsyncs them, and then raises — a genuine torn tail, exactly
    what a crashing disk leaves behind.
``fsync``
    The bytes land but ``os.fsync`` raises — the write is *complete on
    disk yet unacknowledged*, the nastiest shape: a crash-safe caller
    must treat the record as lost (and may legitimately write it again,
    which is why journal replay is last-record-wins).
``rename``
    ``os.replace`` onto the ruled path raises — a compaction/rewrite
    that staged its snapshot but could not swap it in.  The stale
    temporary must be discarded, never read.

Every rule carries an optional **budget**: the number of faults it may
inject before auto-disarming, which is how a chaos plan expresses
"the disk is full for the next three appends, then space returns".

Reads and tail-repair opens (``rb``/``rb+``) are never failed: that is
how a full disk actually behaves, and it keeps recovery paths
exercisable while writes are down.
"""

from __future__ import annotations

import builtins
import errno
import os
from dataclasses import dataclass

__all__ = ["FAULTFS_MODES", "FaultRule", "FaultFS"]

#: Failure shapes a rule may inject.
FAULTFS_MODES: tuple[str, ...] = ("refuse", "partial", "fsync", "rename")


@dataclass
class FaultRule:
    """One path's injection schedule (mutable: budgets count down)."""

    path: str
    mode: str = "refuse"
    err: int = errno.ENOSPC
    budget: int | None = None  # faults left to inject; None = unlimited
    armed: bool = True
    failures: int = 0

    def __post_init__(self) -> None:
        self.path = os.fspath(self.path)
        if self.mode not in FAULTFS_MODES:
            raise ValueError(
                f"unknown faultfs mode {self.mode!r}; known: {FAULTFS_MODES}"
            )

    @property
    def active(self) -> bool:
        return self.armed and (self.budget is None or self.budget > 0)

    def consume(self) -> None:
        """Record one injected fault and burn budget (auto-disarm at 0)."""
        self.failures += 1
        if self.budget is not None:
            self.budget -= 1
            if self.budget <= 0:
                self.armed = False


class _PartialWriteFile:
    """File wrapper whose first write persists half the bytes, then fails."""

    def __init__(self, fh, err: int) -> None:
        self._fh = fh
        self._err = err

    def write(self, data):
        kept = data[: max(1, len(data) // 2)]
        self._fh.write(kept)
        self._fh.flush()
        os.fsync(self._fh.fileno())
        raise OSError(self._err, os.strerror(self._err))

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self._fh.close()
        return False

    def __getattr__(self, name):
        return getattr(self._fh, name)


class _FsyncDoomedFile:
    """File wrapper that registers its fd for an injected fsync failure."""

    def __init__(self, fh, fs: "FaultFS", rule: FaultRule) -> None:
        self._fh = fh
        self._fs = fs
        self._rule = rule
        fs._doomed_fds[fh.fileno()] = rule

    def close(self):
        self._fs._doomed_fds.pop(self._fh.fileno(), None)
        return self._fh.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def __getattr__(self, name):
        return getattr(self._fh, name)


class _OsProxy:
    """Delegates everything to :mod:`os`, intercepting fsync/replace."""

    def __init__(self, fs: "FaultFS") -> None:
        self._fs = fs

    def fsync(self, fd):
        rule = self._fs._doomed_fds.get(fd)
        if rule is not None and rule.active:
            rule.consume()
            raise OSError(rule.err, os.strerror(rule.err))
        return os.fsync(fd)

    def replace(self, src, dst):
        rule = self._fs._rule_for(dst, mode="rename")
        if rule is not None:
            rule.consume()
            raise OSError(rule.err, os.strerror(rule.err), os.fspath(src),
                          None, os.fspath(dst))
        return os.replace(src, dst)

    def __getattr__(self, name):
        return getattr(os, name)


class FaultFS:
    """Injects filesystem faults into the journal layer, per path.

    Usage::

        fs = FaultFS()
        fs.add_rule(store_path, mode="refuse", budget=3)
        fs.add_rule(registry_path, mode="fsync", budget=1)
        with fs:                      # shadows open/os in repro.exec.journal
            ...                       # appends against ruled paths fail
        # uninstalled; counters survive for assertions

    Rules match the exact path being opened/renamed-onto, so the
    campaign journal and the workload journal can live on the same
    (real) filesystem with only the latter failing.  Installation is
    idempotent and always uninstalls cleanly, including on error.
    """

    def __init__(self) -> None:
        self.rules: list[FaultRule] = []
        self._installed = False
        self._saved: dict = {}
        self._doomed_fds: dict[int, FaultRule] = {}

    # ------------------------------------------------------------------
    # Rule management
    # ------------------------------------------------------------------
    def add_rule(
        self,
        path,
        mode: str = "refuse",
        err: int = errno.ENOSPC,
        budget: int | None = None,
        armed: bool = True,
    ) -> FaultRule:
        rule = FaultRule(path=os.fspath(path), mode=mode, err=err,
                         budget=budget, armed=armed)
        self.rules.append(rule)
        return rule

    def arm(self, path=None) -> None:
        """(Re-)arm every rule, or just the rules for one path."""
        for rule in self._select(path):
            rule.armed = True

    def disarm(self, path=None) -> None:
        for rule in self._select(path):
            rule.armed = False

    def _select(self, path):
        if path is None:
            return self.rules
        path = os.fspath(path)
        return [r for r in self.rules if r.path == path]

    def _rule_for(self, path, mode: str | None = None,
                  modes: tuple[str, ...] | None = None) -> FaultRule | None:
        """The first active rule for ``path`` (optionally mode-filtered)."""
        path = os.fspath(path)
        for rule in self.rules:
            if rule.path != path or not rule.active:
                continue
            if mode is not None and rule.mode != mode:
                continue
            if modes is not None and rule.mode not in modes:
                continue
            return rule
        return None

    @property
    def failures(self) -> int:
        """Total faults injected across all rules."""
        return sum(rule.failures for rule in self.rules)

    def counts(self) -> dict[str, int]:
        """Faults injected per mode (the campaign's observability hook)."""
        out = {mode: 0 for mode in FAULTFS_MODES}
        for rule in self.rules:
            out[rule.mode] += rule.failures
        return out

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    def install(self) -> "FaultFS":
        """Shadow ``open``/``os`` inside :mod:`repro.exec.journal`."""
        if self._installed:
            return self
        import repro.exec.journal as journal_mod

        self._saved = {
            "module": journal_mod,
            "open": getattr(journal_mod, "open", None),
            "os": journal_mod.os,
        }
        journal_mod.open = self._open  # type: ignore[attr-defined]
        journal_mod.os = _OsProxy(self)  # type: ignore[assignment]
        self._installed = True
        return self

    def uninstall(self) -> None:
        if not self._installed:
            return
        journal_mod = self._saved["module"]
        if self._saved["open"] is None:
            try:
                del journal_mod.open
            except AttributeError:
                pass
        else:
            journal_mod.open = self._saved["open"]
        journal_mod.os = self._saved["os"]
        self._saved = {}
        self._doomed_fds.clear()
        self._installed = False

    def __enter__(self) -> "FaultFS":
        return self.install()

    def __exit__(self, *exc) -> bool:
        self.uninstall()
        return False

    # ------------------------------------------------------------------
    # The shadowed open
    # ------------------------------------------------------------------
    def _open(self, file, mode="r", *args, **kwargs):
        # Inject only on append/truncate opens; "rb+" (tail repair) and
        # plain reads stay functional, as they do on a full disk.
        is_write = "w" in mode or "a" in mode
        if is_write:
            rule = self._rule_for(file, modes=("refuse", "partial", "fsync"))
            if rule is not None:
                if rule.mode == "refuse":
                    rule.consume()
                    raise OSError(rule.err, os.strerror(rule.err), file)
                if rule.mode == "partial":
                    rule.consume()
                    fh = builtins.open(file, mode, *args, **kwargs)
                    return _PartialWriteFile(fh, rule.err)
                # fsync: bytes land, the durability barrier fails.
                fh = builtins.open(file, mode, *args, **kwargs)
                return _FsyncDoomedFile(fh, self, rule)
        return builtins.open(file, mode, *args, **kwargs)
