"""First-class filesystem fault injection for the journal layer.

Promoted from the original ``tests/faultfs.py`` shim into a library
component: the chaos orchestrator composes filesystem pressure with
evaluator faults, worker kills, and deadline pressure, so the failing
filesystem has to be schedulable (per-path rules, fault budgets,
arm/disarm windows) rather than a pytest-only monkeypatch.

:class:`FaultFS` shadows ``open`` and ``os`` inside
:mod:`repro.exec.journal` (a module-level name wins the lookup over the
builtin/import), so OSErrors are injected for exactly the ruled paths
while every other file — test fixtures, checkpoints, a registry under a
different path — keeps working.  Four failure modes per rule:

``refuse``
    The write-mode ``open`` itself raises (disk full before a byte
    lands) — the journal is untouched.
``partial``
    The open succeeds but the first ``write`` persists only half the
    bytes, fsyncs them, and then raises — a genuine torn tail, exactly
    what a crashing disk leaves behind.
``fsync``
    The bytes land but ``os.fsync`` raises — the write is *complete on
    disk yet unacknowledged*, the nastiest shape: a crash-safe caller
    must treat the record as lost (and may legitimately write it again,
    which is why journal replay is last-record-wins).
``rename``
    ``os.replace`` onto the ruled path raises — a compaction/rewrite
    that staged its snapshot but could not swap it in.  The stale
    temporary must be discarded, never read.

Beyond *failures* (the write is refused and the caller knows), rules
can inject *silent corruption* — the bit-rot layer the scrub/salvage
machinery (:mod:`repro.exec.scrub`) exists to survive:

``bitflip``
    One byte of one already-acknowledged record is XOR-flipped in
    place — the disk lied, nothing raised.  A CRC32-framed record
    fails verification on the next load; an unframed one may even
    still parse.
``truncate``
    The file is cut mid-record somewhere in the middle — everything
    after the cut is gone, and the cut line itself is torn.

Corruption rules fire on write-mode opens of the ruled path (latent
rot surfaces while the file is in active use) or — with
``on_replace=True`` — right after a successful ``os.replace`` onto the
path, which models a compaction whose freshly swapped-in snapshot rots
(flip-during-compaction).  ``FaultRule.damage`` counts the record
lines actually damaged, which is what bounds acceptable data loss in
the chaos oracle.

Every rule carries an optional **budget**: the number of faults it may
inject before auto-disarming, which is how a chaos plan expresses
"the disk is full for the next three appends, then space returns".

Reads and tail-repair opens (``rb``/``rb+``) are never failed: that is
how a full disk actually behaves, and it keeps recovery paths
exercisable while writes are down.
"""

from __future__ import annotations

import builtins
import errno
import os
from dataclasses import dataclass

from repro.utils.rng import stable_hash

__all__ = [
    "FAULTFS_MODES",
    "CORRUPT_MODES",
    "FaultRule",
    "FaultFS",
    "FailingFS",
    "corrupt_file",
]

#: Failure shapes a rule may inject.  (Kept separate from
#: :data:`CORRUPT_MODES`: :meth:`ChaosPlan.derive` draws ``fs_mode``
#: from this tuple, so extending it would silently change every
#: seed-derived plan.)
FAULTFS_MODES: tuple[str, ...] = ("refuse", "partial", "fsync", "rename")

#: Silent-corruption shapes a rule may inject (the bit-rot layer).
CORRUPT_MODES: tuple[str, ...] = ("bitflip", "truncate")


@dataclass
class FaultRule:
    """One path's injection schedule (mutable: budgets count down)."""

    path: str
    mode: str = "refuse"
    err: int = errno.ENOSPC
    budget: int | None = None  # faults left to inject; None = unlimited
    armed: bool = True
    failures: int = 0
    seed: str = ""  # corruption modes: deterministic damage-site draws
    on_replace: bool = False  # corruption fires after os.replace (compaction)
    protect_first_line: bool = False  # spare a leading compaction snapshot
    damage: int = 0  # record lines actually damaged (corruption modes)

    def __post_init__(self) -> None:
        self.path = os.fspath(self.path)
        if self.mode not in FAULTFS_MODES + CORRUPT_MODES:
            raise ValueError(
                f"unknown faultfs mode {self.mode!r}; known: "
                f"{FAULTFS_MODES + CORRUPT_MODES}"
            )
        if self.on_replace and self.mode not in CORRUPT_MODES:
            raise ValueError(
                f"on_replace applies to corruption modes {CORRUPT_MODES}, "
                f"not {self.mode!r}"
            )

    @property
    def active(self) -> bool:
        return self.armed and (self.budget is None or self.budget > 0)

    def consume(self) -> None:
        """Record one injected fault and burn budget (auto-disarm at 0)."""
        self.failures += 1
        if self.budget is not None:
            self.budget -= 1
            if self.budget <= 0:
                self.armed = False


# ----------------------------------------------------------------------
# Silent corruption (the bit-rot layer)
# ----------------------------------------------------------------------
def _line_spans(blob: bytes) -> list[tuple[int, int]]:
    """``(start, end)`` byte spans of every non-empty line in ``blob``."""
    spans: list[tuple[int, int]] = []
    start = 0
    for segment in blob.split(b"\n"):
        if segment:
            spans.append((start, start + len(segment)))
        start += len(segment) + 1
    return spans


def _flip_byte(blob: bytes, span: tuple[int, int], seed, index: int) -> bytes:
    """Return ``blob`` with one byte of the span deterministically flipped."""
    start, end = span
    pos = start + stable_hash("faultfs-flip-pos", seed, index) % (end - start)
    old = blob[pos]
    new = old ^ 0x01
    if new == 0x0A:  # never manufacture a newline: that would split the line
        new = old ^ 0x02
    return blob[:pos] + bytes([new]) + blob[pos + 1:]


def corrupt_file(path, mode: str, seed="", index: int = 0,
                 protect_final_line: bool = True,
                 protect_first_line: bool = False,
                 torn: bool = True) -> int:
    """Deterministically damage one file in place; returns records damaged.

    ``bitflip`` XOR-flips one byte inside one line; ``truncate`` cuts
    the file at the chosen line and drops everything after — mid-line
    when ``torn`` (a genuinely torn record), at the line's start
    otherwise.  The aligned cut exists for corruption injected on an
    *append* open: a torn cut there would glue the caller's in-flight
    record onto the damage and lose one more record than was counted,
    and ``damage`` is exactly what bounds acceptable loss in the chaos
    oracle.  With ``protect_final_line`` (the journal setting) the
    final line is never the flip target and never the first casualty of
    a truncate, so the damage is guaranteed to be *mid-file* — the
    shape torn-tail repair cannot explain away — while single-document
    files (checkpoints) pass ``False``.  ``protect_first_line`` exists
    for journals whose first line is a compaction *snapshot* holding
    the entire folded state: rotting it is whole-journal loss (a
    restore-from-backup failure class), not the per-record bit rot the
    scrub/salvage bound reasons about, so the session-store rules keep
    it out of reach.  Returns 0 without touching the file when it is
    too small to damage under those constraints; the damage site is a
    pure function of ``(seed, index, content)``.
    """
    if mode not in CORRUPT_MODES:
        raise ValueError(
            f"unknown corruption mode {mode!r}; known: {CORRUPT_MODES}"
        )
    try:
        with builtins.open(path, "rb") as fh:
            blob = fh.read()
    except OSError:
        return 0
    spans = _line_spans(blob)
    lo = 1 if protect_first_line else 0
    hi = len(spans) - 1 if protect_final_line else len(spans)
    eligible = spans[lo:hi] if hi > lo else []
    if not eligible:
        return 0
    choice = eligible[stable_hash("faultfs-corrupt", seed, index) % len(eligible)]
    if mode == "bitflip":
        damaged_blob = _flip_byte(blob, choice, seed, index)
        damage = 1
    else:
        start, end = choice
        cut = start + max(1, (end - start) // 2) if torn else start
        damaged_blob = blob[:cut]
        # Every line at or after the chosen one is lost (when torn, the
        # chosen line survives only as an undecodable fragment).
        damage = sum(1 for s, _e in spans if s >= start)
    with builtins.open(path, "wb") as fh:
        fh.write(damaged_blob)
        fh.flush()
        os.fsync(fh.fileno())
    return damage


class _PartialWriteFile:
    """File wrapper whose first write persists half the bytes, then fails."""

    def __init__(self, fh, err: int) -> None:
        self._fh = fh
        self._err = err

    def write(self, data):
        kept = data[: max(1, len(data) // 2)]
        self._fh.write(kept)
        self._fh.flush()
        os.fsync(self._fh.fileno())
        raise OSError(self._err, os.strerror(self._err))

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self._fh.close()
        return False

    def __getattr__(self, name):
        return getattr(self._fh, name)


class _FsyncDoomedFile:
    """File wrapper that registers its fd for an injected fsync failure."""

    def __init__(self, fh, fs: "FaultFS", rule: FaultRule) -> None:
        self._fh = fh
        self._fs = fs
        self._rule = rule
        fs._doomed_fds[fh.fileno()] = rule

    def close(self):
        self._fs._doomed_fds.pop(self._fh.fileno(), None)
        return self._fh.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def __getattr__(self, name):
        return getattr(self._fh, name)


class _OsProxy:
    """Delegates everything to :mod:`os`, intercepting fsync/replace."""

    def __init__(self, fs: "FaultFS") -> None:
        self._fs = fs

    def fsync(self, fd):
        rule = self._fs._doomed_fds.get(fd)
        if rule is not None and rule.active:
            rule.consume()
            raise OSError(rule.err, os.strerror(rule.err))
        return os.fsync(fd)

    def replace(self, src, dst):
        rule = self._fs._rule_for(dst, mode="rename")
        if rule is not None:
            rule.consume()
            raise OSError(rule.err, os.strerror(rule.err), os.fspath(src),
                          None, os.fspath(dst))
        result = os.replace(src, dst)
        # Flip-during-compaction: the freshly swapped-in snapshot rots.
        self._fs._corrupt(dst, on_replace=True)
        return result

    def __getattr__(self, name):
        return getattr(os, name)


class FaultFS:
    """Injects filesystem faults into the journal layer, per path.

    Usage::

        fs = FaultFS()
        fs.add_rule(store_path, mode="refuse", budget=3)
        fs.add_rule(registry_path, mode="fsync", budget=1)
        with fs:                      # shadows open/os in repro.exec.journal
            ...                       # appends against ruled paths fail
        # uninstalled; counters survive for assertions

    Rules match the exact path being opened/renamed-onto, so the
    campaign journal and the workload journal can live on the same
    (real) filesystem with only the latter failing.  Installation is
    idempotent and always uninstalls cleanly, including on error.
    """

    def __init__(self) -> None:
        self.rules: list[FaultRule] = []
        self._installed = False
        self._saved: dict = {}
        self._doomed_fds: dict[int, FaultRule] = {}

    # ------------------------------------------------------------------
    # Rule management
    # ------------------------------------------------------------------
    def add_rule(
        self,
        path,
        mode: str = "refuse",
        err: int = errno.ENOSPC,
        budget: int | None = None,
        armed: bool = True,
        seed="",
        on_replace: bool = False,
        protect_first_line: bool = False,
    ) -> FaultRule:
        rule = FaultRule(path=os.fspath(path), mode=mode, err=err,
                         budget=budget, armed=armed, seed=str(seed),
                         on_replace=on_replace,
                         protect_first_line=protect_first_line)
        self.rules.append(rule)
        return rule

    def arm(self, path=None) -> None:
        """(Re-)arm every rule, or just the rules for one path."""
        for rule in self._select(path):
            rule.armed = True

    def disarm(self, path=None) -> None:
        for rule in self._select(path):
            rule.armed = False

    def _select(self, path):
        if path is None:
            return self.rules
        path = os.fspath(path)
        return [r for r in self.rules if r.path == path]

    def _rule_for(self, path, mode: str | None = None,
                  modes: tuple[str, ...] | None = None,
                  on_replace: bool | None = None) -> FaultRule | None:
        """The first active rule for ``path`` (optionally mode-filtered)."""
        path = os.fspath(path)
        for rule in self.rules:
            if rule.path != path or not rule.active:
                continue
            if mode is not None and rule.mode != mode:
                continue
            if modes is not None and rule.mode not in modes:
                continue
            if on_replace is not None and rule.on_replace != on_replace:
                continue
            return rule
        return None

    def _corrupt(self, path, on_replace: bool) -> None:
        """Apply the path's active corruption rule (if any) to the file.

        A rule only consumes budget when it actually damaged a record —
        a file too small to corrupt is skipped, so "corrupt one record"
        means one record, not one attempt.
        """
        rule = self._rule_for(path, modes=CORRUPT_MODES,
                              on_replace=on_replace)
        if rule is None:
            return
        damage = corrupt_file(
            path, rule.mode, seed=rule.seed or rule.path,
            index=rule.failures,
            protect_first_line=rule.protect_first_line,
            # An append open follows immediately: keep the cut aligned
            # so the in-flight record is not an uncounted casualty.
            torn=on_replace,
        )
        if damage:
            rule.damage += damage
            rule.consume()

    @property
    def failures(self) -> int:
        """Total faults injected across all rules."""
        return sum(rule.failures for rule in self.rules)

    @property
    def damage_records(self) -> int:
        """Record lines damaged by corruption rules across all paths."""
        return sum(rule.damage for rule in self.rules)

    def counts(self) -> dict[str, int]:
        """Faults injected per mode (the campaign's observability hook)."""
        out = {mode: 0 for mode in FAULTFS_MODES + CORRUPT_MODES}
        for rule in self.rules:
            out[rule.mode] += rule.failures
        return out

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    def install(self) -> "FaultFS":
        """Shadow ``open``/``os`` inside :mod:`repro.exec.journal`."""
        if self._installed:
            return self
        import repro.exec.journal as journal_mod

        self._saved = {
            "module": journal_mod,
            "open": getattr(journal_mod, "open", None),
            "os": journal_mod.os,
        }
        journal_mod.open = self._open  # type: ignore[attr-defined]
        journal_mod.os = _OsProxy(self)  # type: ignore[assignment]
        self._installed = True
        return self

    def uninstall(self) -> None:
        if not self._installed:
            return
        journal_mod = self._saved["module"]
        if self._saved["open"] is None:
            try:
                del journal_mod.open
            except AttributeError:
                pass
        else:
            journal_mod.open = self._saved["open"]
        journal_mod.os = self._saved["os"]
        self._saved = {}
        self._doomed_fds.clear()
        self._installed = False

    def __enter__(self) -> "FaultFS":
        return self.install()

    def __exit__(self, *exc) -> bool:
        self.uninstall()
        return False

    # ------------------------------------------------------------------
    # The shadowed open
    # ------------------------------------------------------------------
    def _open(self, file, mode="r", *args, **kwargs):
        # Inject only on append/truncate opens; "rb+" (tail repair) and
        # plain reads stay functional, as they do on a full disk.
        is_write = "w" in mode or "a" in mode
        if is_write:
            # Latent bit rot surfaces while the file is in active use:
            # damage the existing content before the new open proceeds.
            self._corrupt(file, on_replace=False)
            rule = self._rule_for(file, modes=("refuse", "partial", "fsync"))
            if rule is not None:
                if rule.mode == "refuse":
                    rule.consume()
                    raise OSError(rule.err, os.strerror(rule.err), file)
                if rule.mode == "partial":
                    rule.consume()
                    fh = builtins.open(file, mode, *args, **kwargs)
                    return _PartialWriteFile(fh, rule.err)
                # fsync: bytes land, the durability barrier fails.
                fh = builtins.open(file, mode, *args, **kwargs)
                return _FsyncDoomedFile(fh, self, rule)
        return builtins.open(file, mode, *args, **kwargs)


class FailingFS:
    """One-path, one-rule convenience wrapper over :class:`FaultFS`.

    The original pytest shim surface (``tests/faultfs.py`` re-exports
    it): inject OSError into write-mode opens of a single journal path,
    toggled with :meth:`arm`/:meth:`disarm`.  ``patcher`` is pytest's
    ``monkeypatch`` (anything with a compatible ``setattr``): patching
    instead of :meth:`FaultFS.install` lets the fixture auto-restore
    the journal module even when a test errors out mid-body.
    """

    def __init__(self, patcher, path, err: int = errno.ENOSPC,
                 partial: bool = False) -> None:
        import repro.exec.journal as journal_mod

        self._fs = FaultFS()
        self._rule = self._fs.add_rule(
            path, mode="partial" if partial else "refuse", err=err,
            armed=False,
        )
        patcher.setattr(journal_mod, "open", self._fs._open, raising=False)

    @property
    def path(self) -> str:
        return self._rule.path

    @property
    def err(self) -> int:
        return self._rule.err

    @property
    def partial(self) -> bool:
        return self._rule.mode == "partial"

    @property
    def armed(self) -> bool:
        return self._rule.armed

    @property
    def failures(self) -> int:
        return self._rule.failures

    def arm(self) -> None:
        self._rule.armed = True

    def disarm(self) -> None:
        self._rule.armed = False
