"""The canonical cross-layer workload the chaos oracle judges.

One :func:`run_workload` call drives all three durable subsystems
through one :class:`~repro.chaos.plan.ChaosPlan`:

* **search phase** — a faulted, resilient, checkpointed random search
  (evaluator-fault layer), killed after every ``kill_every_saves``
  checkpoint saves and resumed, like the golden kill-mid-save suites;
* **grid phase** — a :func:`~repro.exec.run_grid` over pure cells on a
  chaos-configured :class:`~repro.exec.SupervisedExecutor` (worker
  kill/hang layer + deadline pressure), with budgeted filesystem faults
  against the registry journal and a crash/re-invoke loop on journal
  write failures;
* **service phase** — a :class:`~repro.service.TuningService` with two
  tenants whose jobs run under worker chaos, store-journal faults
  (degraded mode), and abandon-and-reopen crash cycles (journal-first
  recovery).

The silent-corruption layer rides on top of all three: search
checkpoints are bit-rotted between kill/resume cycles (the ``.bak``
fallback resumes from the last good snapshot), the grid registry and
the session store rot under budgeted
:data:`~repro.chaos.faultfs.CORRUPT_MODES` rules while the journals
are in active use (including flip-during-compaction), and a post-chaos
salvage/recovery pass re-executes exactly the lost cells.  Damage is
counted per record line, which is what the oracle's bounded-loss
invariant checks against.

The function returns a JSON-safe outcome dict.  Run once with
``chaos=False`` it produces the fault-free reference (which shares the
*evaluator*-fault schedule — that layer is simulation input, so the
reference measures the same faulted objective and only operational
chaos differs); run with ``chaos=True`` it produces the outcome the
:mod:`~repro.chaos.oracle` compares against the reference.

``break_invariant`` deliberately sabotages recovery so the negative
tests can prove the oracle actually discriminates:

* ``"skip-replay"`` — the final service state is read without replaying
  the journal (the store looks empty);
* ``"no-resume"`` — the grid's final verification pass runs with
  ``resume=False`` (every cell re-executes);
* ``"skip-salvage-recovery"`` — the grid registry is deliberately
  bit-flipped after the chaos window and the salvage/recovery pass is
  skipped, so the final verification pass is the first reader to
  discover the damage and must re-execute a cell.
"""

from __future__ import annotations

import hashlib
import multiprocessing as mp
import os
import time

from repro.chaos.faultfs import FaultFS, corrupt_file
from repro.chaos.plan import ChaosPlan
from repro.errors import JournalWriteError
from repro.exec.executor import SupervisedExecutor, run_grid
from repro.exec.registry import RunRegistry
from repro.reliability import (
    CheckpointManager,
    FaultyEvaluator,
    ResilientEvaluator,
    RetryPolicy,
)
from repro.service.errors import ServiceOverloadedError
from repro.service.model import JOB_QUEUED, JOB_RUNNING, TenantQuota
from repro.service.service import TuningService
from repro.service.store import SessionStore
from repro.utils.rng import stable_hash

__all__ = ["run_workload", "BREAK_INVARIANT_MODES"]

#: Recognized sabotage modes for the oracle's negative tests.
BREAK_INVARIANT_MODES: tuple[str, ...] = (
    "skip-replay", "no-resume", "skip-salvage-recovery",
)

_SEARCH_NMAX = 14
_CHECKPOINT_EVERY = 3
_GRID_CELLS = 8
_TENANTS = ("acme", "beta")
_JOBS_PER_TENANT = 3
_SERVICE_DEADLINE = 60.0  # wall-clock bound on the service phase


class _ChaosKill(RuntimeError):
    """The simulated crash a killing checkpoint manager raises."""


class _KillingManager(CheckpointManager):
    """A manager that dies right after every Nth successful save.

    The save *completes* before the kill — exactly a SIGKILL landing
    between the checkpoint fsync and the next instruction — so a resume
    must pick up from the snapshot that was just written.
    """

    def __init__(self, path, every: int, kill_every_saves: int,
                 max_kills: int) -> None:
        super().__init__(path, every=every)
        self.kill_every_saves = kill_every_saves
        self.kills_left = max_kills
        self._saves_since_kill = 0

    def save(self, trace, position, evaluator=None, extra=None) -> None:
        super().save(trace, position, evaluator=evaluator, extra=extra)
        self._saves_since_kill += 1
        if self.kills_left > 0 and self._saves_since_kill >= self.kill_every_saves:
            self.kills_left -= 1
            self._saves_since_kill = 0
            raise _ChaosKill(f"chaos kill after save at position {position}")


def _file_sha256(path: str) -> str:
    with open(path, "rb") as fh:
        return hashlib.sha256(fh.read()).hexdigest()


# ----------------------------------------------------------------------
# Phase A: checkpointed search under kill/resume chaos
# ----------------------------------------------------------------------
def _build_search(plan: ChaosPlan):
    """Fresh evaluator + stream for one (re)start — pure in the plan."""
    from repro.kernels import get_kernel
    from repro.machines import SANDYBRIDGE
    from repro.orio.evaluator import OrioEvaluator
    from repro.perf.simclock import SimClock
    from repro.search.stream import SharedStream

    kernel = get_kernel("lu", n=64)
    faulty = FaultyEvaluator(
        OrioEvaluator(kernel, SANDYBRIDGE, clock=SimClock()),
        plan.fault_spec(),
    )
    evaluator = ResilientEvaluator(faulty, retry=RetryPolicy(max_retries=1))
    stream = SharedStream(kernel.space, seed=("chaos-search", plan.seed))
    return evaluator, faulty, stream


def _run_search_phase(plan: ChaosPlan, root: str, chaos: bool) -> dict:
    from repro.search.random_search import random_search

    ckpt_path = os.path.join(root, "search.ckpt.json")
    resumes = 0
    ckpt_corruptions = 0
    if chaos:
        manager: CheckpointManager = _KillingManager(
            ckpt_path,
            every=_CHECKPOINT_EVERY,
            kill_every_saves=plan.kill_every_saves,
            max_kills=plan.restarts + 1,
        )
    else:
        manager = CheckpointManager(ckpt_path, every=_CHECKPOINT_EVERY)
    while True:
        evaluator, faulty, stream = _build_search(plan)
        try:
            trace = random_search(
                evaluator, stream, nmax=_SEARCH_NMAX,
                name="RS(chaos)", checkpoint=manager,
            )
            break
        except _ChaosKill:
            resumes += 1
            # Bit-rot the live checkpoint while the process is "down" —
            # only once the ``.bak`` of an older save exists, so the
            # resume exercises the fallback instead of a cold restart.
            # Every save point is a complete snapshot, so resuming from
            # the backup replays deterministically and still converges.
            if (ckpt_corruptions < plan.corrupt_budget
                    and os.path.exists(f"{ckpt_path}.bak")):
                damaged = corrupt_file(
                    ckpt_path, plan.ckpt_corrupt_mode,
                    seed=f"{plan.seed}-ckpt", index=ckpt_corruptions,
                    protect_final_line=False,
                )
                if damaged:
                    ckpt_corruptions += 1
    return {
        "trace_digest": trace.state_digest(),
        "n_records": trace.n_evaluations,
        "checkpoint_sha": _file_sha256(ckpt_path),
        "resumes": resumes,
        "ckpt_corruptions": ckpt_corruptions,
        "evaluator_faults": dict(faulty.injector.counts),
    }


# ----------------------------------------------------------------------
# Phase B: journaled grid under worker + filesystem chaos
# ----------------------------------------------------------------------
def _grid_cell(spec: dict) -> dict:
    """A pure, picklable cell: deterministic hash mixing."""
    acc = 0
    for i in range(int(spec["work"])):
        acc = stable_hash("chaos-grid-cell", spec["seed"], acc, i) % (1 << 53)
    return {"seed": spec["seed"], "value": acc}


def _grid_specs(plan: ChaosPlan) -> list[dict]:
    return [
        {"seed": f"{plan.seed}-cell{i}", "work": 32 + 8 * i}
        for i in range(_GRID_CELLS)
    ]


def _run_grid_phase(plan: ChaosPlan, root: str, chaos: bool,
                    break_invariant: str | None) -> dict:
    registry_path = os.path.join(root, "grid.jsonl")
    specs = _grid_specs(plan)
    restarts = 0
    fs_faults = 0
    damage_records = 0
    salvage_executed = 0
    salvaged = 0
    if chaos:
        executor = SupervisedExecutor(
            n_workers=2,
            task_timeout=plan.task_timeout,
            heartbeat_interval=0.05,
            max_task_retries=12,
            retry_backoff_seconds=0.01,
            poll_interval=0.02,
            chaos=plan.chaos_config(),
        )
        fs = FaultFS()
        fs.add_rule(registry_path, **plan.fs_rule_kwargs())
        # Silent corruption: latent rot surfaces on write-mode opens of
        # the journal; optionally the freshly compacted snapshot rots
        # too (flip-during-compaction).
        fs.add_rule(registry_path, **plan.corrupt_rule_kwargs("registry"))
        if plan.corrupt_compaction:
            fs.add_rule(
                registry_path,
                **plan.corrupt_rule_kwargs("registry", on_replace=True),
            )
        with fs:
            # Crash/re-invoke loop: a journal write failure aborts the
            # grid exactly like a crash would; the re-invocation resumes
            # from the journal.  The fault budget guarantees progress.
            for _ in range(plan.fs_budget + 4):
                try:
                    run_grid(
                        "chaos-grid", _grid_cell, specs,
                        registry=registry_path, executor=executor,
                    )
                    break
                except JournalWriteError:
                    restarts += 1
            else:
                raise RuntimeError(
                    "grid phase did not complete within the fault budget"
                )
            # The rename mode only fires on compaction — exercise it
            # (and the stale-tmp discard) explicitly.
            registry = RunRegistry(registry_path)
            for _ in range(plan.fs_budget + 1):
                try:
                    registry.compact()
                    break
                except JournalWriteError:
                    restarts += 1
        fs_faults = fs.failures
        damage_records = fs.damage_records
        chaos_kills = executor.stats().chaos_kills
        if break_invariant == "skip-salvage-recovery":
            # Sabotage: rot the registry *after* the chaos window and
            # skip the recovery pass, so the verification pass below is
            # the first reader to hit the damage and must re-execute —
            # which the zero-reexecuted-cells invariant flags.
            damage_records += corrupt_file(
                registry_path, "bitflip", seed=f"{plan.seed}-sabotage"
            )
        else:
            # Salvage/recovery pass: quarantine whatever rot the chaos
            # window left behind and re-execute exactly the lost cells,
            # so the verification pass observes a healed journal.
            recovery = run_grid(
                "chaos-grid", _grid_cell, specs, registry=registry_path,
                n_workers=1,
            )
            salvage_executed = recovery.executed
            salvaged = recovery.salvaged
    else:
        run_grid("chaos-grid", _grid_cell, specs, registry=registry_path,
                 n_workers=1)
        RunRegistry(registry_path).compact()
        chaos_kills = 0

    # Final verification pass: with an intact journal this executes
    # nothing and merges everything from cache.
    verify = run_grid(
        "chaos-grid", _grid_cell, specs, registry=registry_path,
        n_workers=1,
        resume=False if break_invariant == "no-resume" else None,
    )
    state = RunRegistry(registry_path).load()
    results = {
        fp: state.record_for(fp).result() for fp in verify.fingerprints
    }
    return {
        "results": results,
        "final_cached": verify.cached,
        "final_executed": verify.executed,
        "n_cells": len(specs),
        "restarts": restarts,
        "fs_faults": fs_faults,
        "damage_records": damage_records,
        "salvage_executed": salvage_executed,
        "salvaged": salvaged,
        "chaos_kills": chaos_kills,
    }


# ----------------------------------------------------------------------
# Phase C: multi-tenant service under crash/restart + journal chaos
# ----------------------------------------------------------------------
def _make_service(root: str, plan: ChaosPlan, chaos: bool) -> TuningService:
    executor = SupervisedExecutor(
        n_workers=2 if chaos else 1,
        task_timeout=plan.task_timeout if chaos else None,
        heartbeat_interval=0.05,
        max_task_retries=12,
        retry_backoff_seconds=0.01,
        poll_interval=0.02,
        chaos=plan.chaos_config() if chaos else None,
    )
    return TuningService(
        root,
        quotas={t: TenantQuota(max_live_sessions=2, max_queued_jobs=16)
                for t in _TENANTS},
        batch_size=2,
        executor=executor,
        task_timeout=None,
        store_max_bytes=1500,
        degraded_cooldown=0.05,
    )


def _seed_service_jobs(svc: TuningService, plan: ChaosPlan) -> list[str]:
    """Create every session and job *before* chaos starts.

    Session/job ids derive from the store's sequence counter, so all
    id-allocating transitions must happen while the journal is healthy —
    otherwise chaos-induced extra events would shift ids between the
    chaos run and the reference and the comparison would be vacuous.
    """
    job_ids = []
    for tenant in _TENANTS:
        session = svc.create_session(tenant)
        for i in range(_JOBS_PER_TENANT):
            job = svc.submit(
                session.session_id,
                {"kind": "probe", "seed": f"{plan.seed}-{tenant}-{i}",
                 "work": 48},
            )
            job_ids.append(job.job_id)
    return job_ids


def _reopen_service(service_root: str, plan: ChaosPlan, chaos: bool,
                    deadline: float) -> TuningService:
    """Recover into a fresh instance, retrying while the disk misbehaves.

    :meth:`TuningService.open` journals requeue transitions during
    reconciliation, so recovery itself can hit an armed filesystem
    fault — the service-won't-start-on-a-full-disk case.  Every failed
    attempt burns fault budget, so retrying converges.
    """
    while True:
        svc = _make_service(service_root, plan, chaos)
        try:
            return svc.open()
        except ServiceOverloadedError:
            svc.stop()
            if time.monotonic() > deadline:
                raise
            time.sleep(0.02)


def _drain_service(svc: TuningService, deadline: float) -> None:
    """Pump until no job is queued/running (sleeping out degraded windows)."""
    while time.monotonic() < deadline:
        pending = any(
            j.state in (JOB_QUEUED, JOB_RUNNING)
            for j in svc.store.jobs.values()
        )
        if not pending:
            return
        if svc.pump() == 0:
            time.sleep(0.02)
    raise TimeoutError("service phase did not drain before its deadline")


def _service_state_digest(store: SessionStore) -> dict:
    """Timestamp-free normalization of the durable session/job state."""
    return {
        "sessions": sorted(
            (s.session_id, s.tenant, s.state)
            for s in store.sessions.values()
        ),
        "jobs": sorted(
            (j.job_id, j.session_id, j.tenant, j.state, j.cost, j.priority,
             tuple(sorted((j.result or {}).items())))
            for j in store.jobs.values()
        ),
    }


def _run_service_phase(plan: ChaosPlan, root: str, chaos: bool,
                       break_invariant: str | None) -> dict:
    service_root = os.path.join(root, "service")
    deadline = time.monotonic() + _SERVICE_DEADLINE
    svc = _make_service(service_root, plan, chaos).open()
    job_ids = _seed_service_jobs(svc, plan)

    chaos_kills = 0
    journal_failures = 0
    store_damage = 0
    store_salvaged = 0
    if chaos:
        fs = FaultFS()
        fs.add_rule(svc.store.path, **plan.fs_rule_kwargs())
        fs.add_rule(svc.store.path, **plan.corrupt_rule_kwargs("store"))
        with fs:
            # Crash cycles: pump a little, then abandon the instance
            # without any shutdown courtesy (journal-first means disk is
            # the only truth) and recover into a fresh one.  Each
            # recovery scrubs the journal: rotted records are
            # quarantined and the reopened instance re-runs whatever
            # transitions that loss reverted.
            for _ in range(plan.restarts):
                svc.pump(max_batches=1)
                svc.stop()
                chaos_kills += svc.executor.stats().chaos_kills
                journal_failures += svc.stats()["chaos"]["journal_write_failures"]
                svc = _reopen_service(service_root, plan, chaos, deadline)
                store_salvaged += svc.store.salvaged_records
            _drain_service(svc, deadline)
        fs_faults = fs.failures
        store_damage = fs.damage_records
    else:
        fs_faults = 0
        _drain_service(svc, deadline)
    chaos_kills += svc.executor.stats().chaos_kills
    journal_failures += svc.stats()["chaos"]["journal_write_failures"]
    recovered_jobs = svc.stats()["recovered_jobs"]
    svc.store.compact()
    svc.stop()

    # Durable truth: reopen the journal from disk in a fresh store —
    # unless the sabotage mode says to trust an unreplayed one.
    verify_store = SessionStore(svc.store.path)
    if break_invariant != "skip-replay":
        verify_store.open()
        store_salvaged += verify_store.salvaged_records
    final = _make_service(service_root, plan, chaos=False)
    evals_spent = {
        tenant: final.admission.evals_spent(verify_store, tenant)
        for tenant in _TENANTS
    }
    final.stop()
    return {
        "state": _service_state_digest(verify_store),
        "evals_spent": evals_spent,
        "n_jobs": len(job_ids),
        "chaos_kills": chaos_kills,
        "journal_failures": journal_failures,
        "fs_faults": fs_faults,
        "store_damage": store_damage,
        "store_salvaged": store_salvaged,
        "recovered_jobs": recovered_jobs,
    }


# ----------------------------------------------------------------------
# Orphan sweep
# ----------------------------------------------------------------------
def _scan_orphans(root: str) -> list[str]:
    """Leftover temporaries under ``root`` (``.bak`` backups are policy)."""
    orphans = []
    for dirpath, _dirnames, filenames in os.walk(root):
        for name in filenames:
            if name.endswith((".tmp", ".rewrite.tmp")):
                orphans.append(os.path.relpath(os.path.join(dirpath, name), root))
    return sorted(orphans)


# ----------------------------------------------------------------------
def run_workload(
    plan: ChaosPlan,
    root,
    chaos: bool = True,
    break_invariant: str | None = None,
) -> dict:
    """Run the three-phase workload under ``plan``; returns the outcome.

    ``chaos=False`` produces the fault-free reference run (same
    evaluator-fault schedule, no operational chaos).  The outcome dict
    is JSON-safe and feeds :func:`repro.chaos.oracle.verify_outcomes`.
    """
    if break_invariant is not None and break_invariant not in BREAK_INVARIANT_MODES:
        raise ValueError(
            f"unknown break_invariant {break_invariant!r}; "
            f"known: {BREAK_INVARIANT_MODES}"
        )
    root = os.fspath(root)
    os.makedirs(root, exist_ok=True)
    search = _run_search_phase(plan, root, chaos)
    grid = _run_grid_phase(plan, root, chaos, break_invariant)
    service = _run_service_phase(plan, root, chaos, break_invariant)
    return {
        "plan": plan.to_wire(),
        "chaos": chaos,
        "search": search,
        "grid": grid,
        "service": service,
        "orphans": _scan_orphans(root),
        "live_children": len(mp.active_children()),
    }
