"""Chaos campaigns: N seeded plans, journaled, resumable, reported.

:func:`run_chaos_campaign` fans a set of seeds (× intensity mix) into
:func:`~repro.chaos.oracle.run_oracle` cells through
:func:`~repro.experiments.harness.grid_map` — the same journaled grid
machinery every figure/table driver uses — so an interrupted campaign
resumes from its registry instead of restarting, and each cell's
oracle report is durably journaled the moment it finishes.

``python -m repro.chaos.campaign --seeds 25`` runs one from the command
line (``make chaos`` wires this in); the benchmark suite journals a
bigger one under ``benchmarks/results/``.
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile

from repro.chaos.oracle import run_oracle
from repro.chaos.plan import ChaosPlan

__all__ = ["run_chaos_campaign", "render_campaign_report", "main"]

#: Default intensity mix: a gentle and a full-strength schedule per seed.
DEFAULT_INTENSITIES: tuple[float, ...] = (0.5, 1.0)


def _campaign_cell(spec: dict) -> dict:
    """One campaign cell: reference + chaos + oracle for one plan.

    Module-level and pure in its spec (plans are seed-derived, cells
    compare a run against its own reference), so cells are picklable
    and journal-cacheable like any other grid cell.
    """
    plan = ChaosPlan.derive(spec["seed"], intensity=float(spec["intensity"]))
    root = tempfile.mkdtemp(prefix="repro-chaos-cell-")
    try:
        report, chaotic = run_oracle(plan, root=root)
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return {
        "seed": plan.seed,
        "intensity": float(spec["intensity"]),
        "plan": plan.to_wire(),
        "passed": report.passed,
        "report": report.to_wire(),
        "counters": {
            "evaluator_faults": sum(
                chaotic["search"]["evaluator_faults"].values()
            ),
            "fs_faults": chaotic["grid"]["fs_faults"]
            + chaotic["service"]["fs_faults"],
            "chaos_kills": chaotic["grid"]["chaos_kills"]
            + chaotic["service"]["chaos_kills"],
            "search_resumes": chaotic["search"]["resumes"],
            "grid_restarts": chaotic["grid"]["restarts"],
            "journal_failures": chaotic["service"]["journal_failures"],
            # Bit-rot layer: records damaged (registry + store + rotted
            # checkpoints), records quarantined by scrub-and-salvage,
            # and cells the grid re-executed to cover the loss.
            "corrupt_records": chaotic["grid"]["damage_records"]
            + chaotic["service"]["store_damage"]
            + chaotic["search"]["ckpt_corruptions"],
            "salvaged_records": chaotic["grid"]["salvaged"]
            + chaotic["service"]["store_salvaged"],
            "salvage_reexecutions": chaotic["grid"]["salvage_executed"],
        },
    }


def run_chaos_campaign(
    seeds,
    intensities=DEFAULT_INTENSITIES,
    registry_path=None,
    n_workers: int | None = 1,
) -> dict:
    """Run one oracle cell per (seed, intensity); returns the summary.

    With ``registry_path`` the campaign journals through the run
    registry: a killed campaign re-invocation skips every completed
    cell (the chaos machinery is itself chaos-tolerant).  Cells default
    to serial execution because each one already owns a worker fleet.
    """
    from repro.experiments.harness import grid_map

    specs = [
        {"seed": str(seed), "intensity": float(intensity)}
        for seed in seeds
        for intensity in intensities
    ]
    results = grid_map(
        "chaos-campaign",
        _campaign_cell,
        specs,
        registry_path=registry_path,
        n_workers=n_workers,
    )
    failures = [r for r in results if not r["passed"]]
    totals: dict[str, int] = {}
    for result in results:
        for key, value in result["counters"].items():
            totals[key] = totals.get(key, 0) + int(value)
    return {
        "n_plans": len(results),
        "n_passed": len(results) - len(failures),
        "n_failed": len(failures),
        "passed": not failures,
        "counters": totals,
        "results": results,
    }


def render_campaign_report(summary: dict) -> str:
    """Human-readable campaign table (the ``make chaos`` artifact)."""
    lines = [
        "chaos campaign: "
        f"{summary['n_passed']}/{summary['n_plans']} plans passed "
        f"({'PASS' if summary['passed'] else 'FAIL'})",
        "faults injected: "
        + ", ".join(f"{k}={v}" for k, v in sorted(summary["counters"].items())),
        "",
        f"{'seed':<14}{'intensity':>10}  {'verdict':<8}"
        f"{'kills':>6}{'fs':>5}{'resumes':>9}{'restarts':>10}"
        f"{'rot':>5}{'salvaged':>10}",
    ]
    for result in summary["results"]:
        counters = result["counters"]
        lines.append(
            f"{result['seed']:<14}{result['intensity']:>10.2f}  "
            f"{'pass' if result['passed'] else 'FAIL':<8}"
            f"{counters['chaos_kills']:>6}{counters['fs_faults']:>5}"
            f"{counters['search_resumes']:>9}{counters['grid_restarts']:>10}"
            f"{counters.get('corrupt_records', 0):>5}"
            f"{counters.get('salvaged_records', 0):>10}"
        )
        if not result["passed"]:
            for name, check in result["report"]["checks"].items():
                if not check["passed"]:
                    lines.append(f"    {name}: {check['detail']}")
    return "\n".join(lines) + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Run a seeded cross-layer chaos campaign."
    )
    parser.add_argument("--seeds", type=int, default=5,
                        help="number of distinct plan seeds")
    parser.add_argument("--prefix", default="campaign",
                        help="seed prefix (seeds are '<prefix>-<i>')")
    parser.add_argument("--intensity", type=float, action="append",
                        default=None, help="intensity level (repeatable)")
    parser.add_argument("--registry", default=None,
                        help="journal path for resumable campaigns")
    args = parser.parse_args(argv)
    summary = run_chaos_campaign(
        [f"{args.prefix}-{i}" for i in range(args.seeds)],
        intensities=tuple(args.intensity) if args.intensity else DEFAULT_INTENSITIES,
        registry_path=args.registry,
    )
    sys.stdout.write(render_campaign_report(summary))
    return 0 if summary["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
