"""The crash-consistency oracle: chaos run vs fault-free reference.

The oracle's contract is the system property the five robustness layers
were built to provide: *a faulted, killed, disk-starved, bit-rotted run
provably converges to the same answer as a clean one.*  Concretely, for any
:class:`~repro.chaos.plan.ChaosPlan`, the outcome of
:func:`~repro.chaos.workload.run_workload` under chaos must match the
fault-free reference on every invariant below — where the reference
shares the plan's *evaluator*-fault schedule (simulation input) and
differs only in operational chaos (kills, hangs, filesystem faults,
deadline pressure, crash/restart cycles).

Invariants
----------
``trace-identical``
    The search phase's final trace digest (configs, runtimes, elapsed
    times, failure flags) is identical across any number of
    kill-mid-save/resume cycles.
``checkpoint-bytes``
    The final checkpoint file is byte-identical — resume state, clock,
    and reliability history all converged, not just the headline trace.
``zero-reexecuted-cells``
    After chaos, a verification ``run_grid`` pass executes **zero**
    cells: everything acknowledged into the registry journal survived
    every crash, and nothing acknowledged is ever recomputed.
``registry-state``
    Every cell's journaled result equals the reference's, fingerprint
    by fingerprint — crashes changed *where* cells ran, never *what*
    they computed.
``service-state``
    The session store, reopened from disk after compaction, holds the
    same sessions and jobs (states, costs, results — timestamps
    excluded) as the reference store.  When the bit-rot layer damaged
    store records (``store_damage > 0``) the requirement relaxes to a
    *bounded subset*: every surviving session/job is bit-identical to
    its reference twin and nothing exists that the reference lacks —
    corruption may lose records, never invent or alter state.
``quota-conservation``
    Per-tenant ``evals_spent`` matches the reference: no chaos
    interleaving leaked budget or double-charged/double-refunded a job.
    Jobs lost to quarantined store records are excluded from the
    expected spend (their audit row is gone with them) — at zero store
    damage this degenerates to exact equality.
``corruption-bounded-loss``
    Bit rot costs only what it damaged: the grid's salvage/recovery
    pass re-executed no more cells than the number of damaged registry
    records (zero at zero damage — undamaged cells are never
    recomputed), and the store lost no more sessions+jobs than it had
    damaged or quarantined records.
``no-orphans``
    No worker processes outlive the workload and no stray temporary
    files (``*.tmp`` / ``*.rewrite.tmp``) remain under the root.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass

from repro.chaos.plan import ChaosPlan
from repro.chaos.workload import run_workload
from repro.service.model import JOB_CANCELLED, JOB_EXPIRED, JOB_SHED

__all__ = ["InvariantCheck", "OracleReport", "verify_outcomes", "run_oracle"]

#: Job states whose cost the admission layer refunds — a job lost to a
#: quarantined store record only shifts expected spend when its
#: reference twin actually spent budget.
_REFUNDED_STATES = frozenset({JOB_CANCELLED, JOB_EXPIRED, JOB_SHED})


@dataclass(frozen=True)
class InvariantCheck:
    """One invariant's verdict (``detail`` explains a failure)."""

    name: str
    passed: bool
    detail: str = ""

    def __str__(self) -> str:
        mark = "ok" if self.passed else "FAIL"
        suffix = f" ({self.detail})" if self.detail and not self.passed else ""
        return f"{self.name}: {mark}{suffix}"


@dataclass(frozen=True)
class OracleReport:
    """Every invariant's verdict for one plan."""

    plan_seed: str
    checks: tuple[InvariantCheck, ...]

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    @property
    def failures(self) -> tuple[InvariantCheck, ...]:
        return tuple(c for c in self.checks if not c.passed)

    def to_wire(self) -> dict:
        return {
            "plan_seed": self.plan_seed,
            "passed": self.passed,
            "checks": {
                c.name: {"passed": c.passed, "detail": c.detail}
                for c in self.checks
            },
        }

    def summary(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        lines = [f"oracle[{self.plan_seed}]: {verdict}"]
        lines.extend(f"  {check}" for check in self.checks)
        return "\n".join(lines)


def _check(name: str, passed: bool, detail: str = "") -> InvariantCheck:
    return InvariantCheck(name=name, passed=bool(passed),
                          detail="" if passed else detail)


def _freeze(value):
    """Lists → tuples, recursively, so digests compare across JSON trips."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


def _indexed(state: dict, kind: str) -> dict:
    """One state digest section as ``{id: normalized_row}``."""
    return {row[0]: row for row in (_freeze(r) for r in state.get(kind, ()))}


def _service_loss(ref_state: dict, cha_state: dict) -> tuple[int, list, str]:
    """Bounded-subset comparison of the chaos store against the reference.

    Returns ``(n_missing, missing_jobs, violation)``: how many
    reference sessions+jobs the chaos state lacks, the reference rows
    of the missing jobs (for spend accounting), and a non-empty
    ``violation`` when the chaos state is not a clean subset — i.e. it
    *invented* entries the reference lacks or *altered* a surviving
    entry, which no amount of record loss can explain.
    """
    problems = []
    n_missing = 0
    missing_jobs: list = []
    for kind in ("sessions", "jobs"):
        ref = _indexed(ref_state, kind)
        cha = _indexed(cha_state, kind)
        invented = sorted(set(cha) - set(ref))
        if invented:
            problems.append(f"{kind} absent from the reference: {invented}")
        altered = sorted(k for k in set(cha) & set(ref) if cha[k] != ref[k])
        if altered:
            problems.append(f"{kind} differing from the reference: {altered}")
        missing = sorted(set(ref) - set(cha))
        n_missing += len(missing)
        if kind == "jobs":
            missing_jobs = [ref[k] for k in missing]
    return n_missing, missing_jobs, "; ".join(problems)


def verify_outcomes(reference: dict, chaotic: dict) -> OracleReport:
    """Compare a chaos outcome against its fault-free reference."""
    ref_search, cha_search = reference["search"], chaotic["search"]
    ref_grid, cha_grid = reference["grid"], chaotic["grid"]
    ref_svc, cha_svc = reference["service"], chaotic["service"]

    # Bit-rot accounting: how much silent damage the chaos run absorbed
    # (all zero on pre-corruption outcome dicts, hence the .get()s).
    store_damage = int(cha_svc.get("store_damage", 0))
    store_salvaged = int(cha_svc.get("store_salvaged", 0))
    grid_damage = int(cha_grid.get("damage_records", 0))
    salvage_executed = int(cha_grid.get("salvage_executed", 0))
    n_missing, missing_jobs, subset_violation = _service_loss(
        ref_svc["state"], cha_svc["state"]
    )

    # Jobs whose store records were quarantined took their audit rows
    # with them: the expected per-tenant spend drops by their cost
    # (refunded states never counted).  The allowance exists only when
    # corruption actually damaged records — at zero store damage the
    # expected spend is exactly the reference's.
    lost_spend: dict[str, float] = {}
    if store_damage:
        for job in missing_jobs:
            _job_id, _session_id, tenant, state, cost = job[:5]
            if state not in _REFUNDED_STATES:
                lost_spend[tenant] = lost_spend.get(tenant, 0) + cost
    expected_spent = {
        tenant: spent - lost_spend.get(tenant, 0)
        for tenant, spent in ref_svc["evals_spent"].items()
    }

    checks = [
        _check(
            "trace-identical",
            cha_search["trace_digest"] == ref_search["trace_digest"],
            f"chaos {cha_search['trace_digest'][:12]} != "
            f"reference {ref_search['trace_digest'][:12]} "
            f"({cha_search['n_records']} vs {ref_search['n_records']} records)",
        ),
        _check(
            "checkpoint-bytes",
            cha_search["checkpoint_sha"] == ref_search["checkpoint_sha"],
            "final checkpoint bytes diverged across kill/resume cycles",
        ),
        _check(
            "zero-reexecuted-cells",
            cha_grid["final_executed"] == 0
            and cha_grid["final_cached"] == cha_grid["n_cells"],
            f"verification pass executed {cha_grid['final_executed']} and "
            f"cached {cha_grid['final_cached']} of {cha_grid['n_cells']} cells",
        ),
        _check(
            "registry-state",
            cha_grid["results"] == ref_grid["results"],
            "journaled cell results differ from the reference registry",
        ),
        _check(
            "service-state",
            not subset_violation and (store_damage > 0 or n_missing == 0),
            subset_violation
            or f"{n_missing} session/job entries missing from the chaos "
            "store with zero damaged records",
        ),
        _check(
            "quota-conservation",
            cha_svc["evals_spent"] == expected_spent,
            f"per-tenant spend {cha_svc['evals_spent']} != "
            f"expected {expected_spent} (reference "
            f"{ref_svc['evals_spent']} minus lost jobs {lost_spend})",
        ),
        _check(
            "corruption-bounded-loss",
            salvage_executed <= grid_damage
            and (store_damage == 0 or n_missing <= store_damage + store_salvaged),
            f"salvage re-executed {salvage_executed} cells for "
            f"{grid_damage} damaged registry records; store lost "
            f"{n_missing} entries for {store_damage} damaged + "
            f"{store_salvaged} quarantined records",
        ),
        _check(
            "no-orphans",
            not chaotic["orphans"] and chaotic["live_children"] == 0,
            f"orphans={chaotic['orphans']}, "
            f"live_children={chaotic['live_children']}",
        ),
    ]
    return OracleReport(
        plan_seed=str(chaotic["plan"]["seed"]), checks=tuple(checks)
    )


def run_oracle(
    plan: ChaosPlan,
    root=None,
    break_invariant: str | None = None,
) -> tuple[OracleReport, dict]:
    """Reference run + chaos run + verification for one plan.

    Returns ``(report, chaos_outcome)``.  ``root`` defaults to a fresh
    temporary directory (removed only by the OS; campaign cells pass an
    explicit one and clean it themselves).  ``break_invariant`` is
    threaded into the chaos run for the oracle's negative tests.
    """
    if root is None:
        root = tempfile.mkdtemp(prefix="repro-chaos-")
    root = os.fspath(root)
    reference = run_workload(plan, os.path.join(root, "reference"), chaos=False)
    chaotic = run_workload(
        plan, os.path.join(root, "chaos"), chaos=True,
        break_invariant=break_invariant,
    )
    return verify_outcomes(reference, chaotic), chaotic
