"""The crash-consistency oracle: chaos run vs fault-free reference.

The oracle's contract is the system property the four robustness layers
were built to provide: *a faulted, killed, disk-starved run provably
converges to the same answer as a clean one.*  Concretely, for any
:class:`~repro.chaos.plan.ChaosPlan`, the outcome of
:func:`~repro.chaos.workload.run_workload` under chaos must match the
fault-free reference on every invariant below — where the reference
shares the plan's *evaluator*-fault schedule (simulation input) and
differs only in operational chaos (kills, hangs, filesystem faults,
deadline pressure, crash/restart cycles).

Invariants
----------
``trace-identical``
    The search phase's final trace digest (configs, runtimes, elapsed
    times, failure flags) is identical across any number of
    kill-mid-save/resume cycles.
``checkpoint-bytes``
    The final checkpoint file is byte-identical — resume state, clock,
    and reliability history all converged, not just the headline trace.
``zero-reexecuted-cells``
    After chaos, a verification ``run_grid`` pass executes **zero**
    cells: everything acknowledged into the registry journal survived
    every crash, and nothing acknowledged is ever recomputed.
``registry-state``
    Every cell's journaled result equals the reference's, fingerprint
    by fingerprint — crashes changed *where* cells ran, never *what*
    they computed.
``service-state``
    The session store, reopened from disk after compaction, holds the
    same sessions and jobs (states, costs, results — timestamps
    excluded) as the reference store.
``quota-conservation``
    Per-tenant ``evals_spent`` matches the reference: no chaos
    interleaving leaked budget or double-charged/double-refunded a job.
``no-orphans``
    No worker processes outlive the workload and no stray temporary
    files (``*.tmp`` / ``*.rewrite.tmp``) remain under the root.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass

from repro.chaos.plan import ChaosPlan
from repro.chaos.workload import run_workload

__all__ = ["InvariantCheck", "OracleReport", "verify_outcomes", "run_oracle"]


@dataclass(frozen=True)
class InvariantCheck:
    """One invariant's verdict (``detail`` explains a failure)."""

    name: str
    passed: bool
    detail: str = ""

    def __str__(self) -> str:
        mark = "ok" if self.passed else "FAIL"
        suffix = f" ({self.detail})" if self.detail and not self.passed else ""
        return f"{self.name}: {mark}{suffix}"


@dataclass(frozen=True)
class OracleReport:
    """Every invariant's verdict for one plan."""

    plan_seed: str
    checks: tuple[InvariantCheck, ...]

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    @property
    def failures(self) -> tuple[InvariantCheck, ...]:
        return tuple(c for c in self.checks if not c.passed)

    def to_wire(self) -> dict:
        return {
            "plan_seed": self.plan_seed,
            "passed": self.passed,
            "checks": {
                c.name: {"passed": c.passed, "detail": c.detail}
                for c in self.checks
            },
        }

    def summary(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        lines = [f"oracle[{self.plan_seed}]: {verdict}"]
        lines.extend(f"  {check}" for check in self.checks)
        return "\n".join(lines)


def _check(name: str, passed: bool, detail: str = "") -> InvariantCheck:
    return InvariantCheck(name=name, passed=bool(passed),
                          detail="" if passed else detail)


def verify_outcomes(reference: dict, chaotic: dict) -> OracleReport:
    """Compare a chaos outcome against its fault-free reference."""
    ref_search, cha_search = reference["search"], chaotic["search"]
    ref_grid, cha_grid = reference["grid"], chaotic["grid"]
    ref_svc, cha_svc = reference["service"], chaotic["service"]
    checks = [
        _check(
            "trace-identical",
            cha_search["trace_digest"] == ref_search["trace_digest"],
            f"chaos {cha_search['trace_digest'][:12]} != "
            f"reference {ref_search['trace_digest'][:12]} "
            f"({cha_search['n_records']} vs {ref_search['n_records']} records)",
        ),
        _check(
            "checkpoint-bytes",
            cha_search["checkpoint_sha"] == ref_search["checkpoint_sha"],
            "final checkpoint bytes diverged across kill/resume cycles",
        ),
        _check(
            "zero-reexecuted-cells",
            cha_grid["final_executed"] == 0
            and cha_grid["final_cached"] == cha_grid["n_cells"],
            f"verification pass executed {cha_grid['final_executed']} and "
            f"cached {cha_grid['final_cached']} of {cha_grid['n_cells']} cells",
        ),
        _check(
            "registry-state",
            cha_grid["results"] == ref_grid["results"],
            "journaled cell results differ from the reference registry",
        ),
        _check(
            "service-state",
            cha_svc["state"] == ref_svc["state"],
            "session store state (sessions/jobs/results) differs from the "
            "reference after compaction and replay",
        ),
        _check(
            "quota-conservation",
            cha_svc["evals_spent"] == ref_svc["evals_spent"],
            f"per-tenant spend {cha_svc['evals_spent']} != "
            f"reference {ref_svc['evals_spent']}",
        ),
        _check(
            "no-orphans",
            not chaotic["orphans"] and chaotic["live_children"] == 0,
            f"orphans={chaotic['orphans']}, "
            f"live_children={chaotic['live_children']}",
        ),
    ]
    return OracleReport(
        plan_seed=str(chaotic["plan"]["seed"]), checks=tuple(checks)
    )


def run_oracle(
    plan: ChaosPlan,
    root=None,
    break_invariant: str | None = None,
) -> tuple[OracleReport, dict]:
    """Reference run + chaos run + verification for one plan.

    Returns ``(report, chaos_outcome)``.  ``root`` defaults to a fresh
    temporary directory (removed only by the OS; campaign cells pass an
    explicit one and clean it themselves).  ``break_invariant`` is
    threaded into the chaos run for the oracle's negative tests.
    """
    if root is None:
        root = tempfile.mkdtemp(prefix="repro-chaos-")
    root = os.fspath(root)
    reference = run_workload(plan, os.path.join(root, "reference"), chaos=False)
    chaotic = run_workload(
        plan, os.path.join(root, "chaos"), chaos=True,
        break_invariant=break_invariant,
    )
    return verify_outcomes(reference, chaotic), chaotic
