"""System-wide chaos orchestration with a crash-consistency oracle.

Five layers already inject faults in isolation — evaluator faults
(:mod:`repro.reliability.faults`), worker kills
(:class:`repro.exec.ChaosConfig`), journal write failures
(:class:`~repro.chaos.faultfs.FaultFS`), checkpoint kill/resume, and
silent bit rot (:func:`~repro.chaos.faultfs.corrupt_file` under
:data:`~repro.chaos.faultfs.CORRUPT_MODES`).  This package composes
them: a seed-derived :class:`~repro.chaos.plan.ChaosPlan` schedules
all five at once, a canonical
:func:`~repro.chaos.workload.run_workload` drives search, grid, and
service through the schedule, and the :mod:`~repro.chaos.oracle`
proves the chaos run converged to the fault-free reference —
byte-identical traces and checkpoints, zero re-executed cells,
equivalent store state, conserved budgets, loss bounded by the damaged
record count, no orphans.
:func:`~repro.chaos.campaign.run_chaos_campaign` sweeps N seeded plans
through the journaled grid machinery (``make chaos``).
"""

from repro.chaos.campaign import render_campaign_report, run_chaos_campaign
from repro.chaos.faultfs import (
    CORRUPT_MODES,
    FAULTFS_MODES,
    FailingFS,
    FaultFS,
    FaultRule,
    corrupt_file,
)
from repro.chaos.oracle import (
    InvariantCheck,
    OracleReport,
    run_oracle,
    verify_outcomes,
)
from repro.chaos.plan import ChaosPlan
from repro.chaos.workload import BREAK_INVARIANT_MODES, run_workload

__all__ = [
    "CORRUPT_MODES",
    "FAULTFS_MODES",
    "FailingFS",
    "FaultFS",
    "FaultRule",
    "corrupt_file",
    "ChaosPlan",
    "BREAK_INVARIANT_MODES",
    "run_workload",
    "InvariantCheck",
    "OracleReport",
    "verify_outcomes",
    "run_oracle",
    "run_chaos_campaign",
    "render_campaign_report",
]
