"""System-wide chaos orchestration with a crash-consistency oracle.

Four layers already inject faults in isolation — evaluator faults
(:mod:`repro.reliability.faults`), worker kills
(:class:`repro.exec.ChaosConfig`), journal write failures
(:class:`~repro.chaos.faultfs.FaultFS`), and checkpoint kill/resume.
This package composes them: a seed-derived
:class:`~repro.chaos.plan.ChaosPlan` schedules all four at once, a
canonical :func:`~repro.chaos.workload.run_workload` drives search,
grid, and service through the schedule, and the
:mod:`~repro.chaos.oracle` proves the chaos run converged to the
fault-free reference — byte-identical traces and checkpoints, zero
re-executed cells, equivalent store state, conserved budgets, no
orphans.  :func:`~repro.chaos.campaign.run_chaos_campaign` sweeps N
seeded plans through the journaled grid machinery (``make chaos``).
"""

from repro.chaos.campaign import render_campaign_report, run_chaos_campaign
from repro.chaos.faultfs import FAULTFS_MODES, FaultFS, FaultRule
from repro.chaos.oracle import (
    InvariantCheck,
    OracleReport,
    run_oracle,
    verify_outcomes,
)
from repro.chaos.plan import ChaosPlan
from repro.chaos.workload import BREAK_INVARIANT_MODES, run_workload

__all__ = [
    "FAULTFS_MODES",
    "FaultFS",
    "FaultRule",
    "ChaosPlan",
    "BREAK_INVARIANT_MODES",
    "run_workload",
    "InvariantCheck",
    "OracleReport",
    "verify_outcomes",
    "run_oracle",
    "run_chaos_campaign",
    "render_campaign_report",
]
