"""Figure 5 — Intel Sandybridge used to speed the search on Xeon Phi.

The Phi experiments switch to the Intel compiler (icc 15.0.1 -O3), add
OpenMP, and use 8 threads on Westmere/Sandybridge and 60 on the Phi
(Section V).  Expected shape:

* **MM** — no clear trend: icc recognizes the plain matrix-multiply
  idiom, so the untransformed default is best and manual transforms
  only hurt;
* **LU** — RSb dominates with very large search-time speedups;
* **COR** — RSb identifies promising configurations quickly but can
  fail to beat RS's final best.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.figure3 import FigurePanels, run_panels
from repro.experiments.harness import XEON_PHI_THREADS

__all__ = ["run_figure5"]


def run_figure5(
    problems: Sequence[str] = ("MM", "LU", "COR"),
    source: str = "sandybridge",
    seed: object = 0,
    nmax: int = 100,
    n_workers: int = 1,
    registry_path=None,
) -> FigurePanels:
    """Figure 5: Sandybridge -> Xeon Phi with icc + OpenMP."""
    return run_panels(
        "Figure 5",
        problems,
        source=source,
        target="xeonphi",
        compiler="icc",
        openmp=True,
        threads=dict(XEON_PHI_THREADS),
        seed=seed,
        nmax=nmax,
        n_workers=n_workers,
        registry_path=registry_path,
    )
