"""Extension experiments beyond the paper's figures and tables.

* :func:`run_delta_sweep` — the paper attributes RSp's weakness to the
  conservative cutoff δ = 20%; sweep δ and measure the speedups.
* :func:`run_surrogate_ablation` — "the choice of the supervised-
  learning algorithm ... is crucial" (§III-A): swap the random forest
  for ridge / kNN / boosted trees and compare RSb.
* :func:`run_pool_sweep` — sensitivity of RSb to the pool size N.
* :func:`run_dissimilarity` — §VII future work: quantify machine
  dissimilarity.  Correlates the response-vector distance of every
  machine pair with the empirically measured rank correlation of
  configuration runtimes.
* :func:`run_multisource` — pool training data from several source
  machines before fitting the surrogate.
* :func:`run_warm_start` — §VII: "test the proposed approach with other
  sophisticated search algorithms": warm-start GA/annealing/bandit from
  the surrogate and compare against their cold runs and RSb.
* :func:`run_online` — refit the surrogate with target observations
  during the search (the ytopt/GPTune-style extension).
* :func:`run_fault_ablation` — robustness: inject evaluation faults at
  increasing rates and measure how RSb's speedups degrade with and
  without retry/backoff recovery (the paper's X-Gene failure, §V,
  generalized into an operational-hazard model).
* :func:`run_hybrid` — the prune-then-bias hybrid RSpb (the biased
  pool ranking gated by the pruning cutoff ∆, built via the engine's
  :func:`~repro.search.engine.compose`) against its parents RSp and
  RSb across ∆ values, journaled through the supervised grid.
* :func:`run_negative_transfer` — robustness: feed RSp/RSb adversarial
  source data (runtime-inverted, label-shuffled, wrong-machine,
  stale-partial) with and without the
  :class:`~repro.transfer.guard.GuardPolicy` guardrails, and measure
  how much of plain RS's quality the guard's fallback preserves.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Callable, Sequence

import numpy as np

from repro.experiments.harness import build_session, grid_map
from repro.kernels import get_kernel
from repro.machines import MACHINES, get_machine, response_distance
from repro.ml import (
    GradientBoostingRegressor,
    KNeighborsRegressor,
    RandomForestRegressor,
    RidgeRegressor,
)
from repro.orio.evaluator import OrioEvaluator
from repro.perf.simclock import SimClock
from repro.search.biasing import biased_search
from repro.search.pruning import pruned_search
from repro.search.random_search import random_search
from repro.search.stream import SharedStream
from repro.transfer.guard import GuardPolicy
from repro.transfer.metrics import speedups
from repro.transfer.surrogate import Surrogate
from repro.utils.rng import spawn_rng
from repro.utils.stats import pearson, spearman
from repro.utils.tables import format_table

__all__ = [
    "AblationRow",
    "AblationResult",
    "run_delta_sweep",
    "run_surrogate_ablation",
    "run_pool_sweep",
    "run_dissimilarity",
    "run_multisource",
    "run_warm_start",
    "run_online",
    "run_search_comparison",
    "run_fault_ablation",
    "run_hybrid",
    "run_negative_transfer",
]


@dataclass(frozen=True)
class AblationRow:
    label: str
    performance: float
    search_time: float


@dataclass(frozen=True)
class AblationResult:
    name: str
    rows: tuple[AblationRow, ...]
    note: str = ""

    def best_row(self) -> AblationRow:
        return max(self.rows, key=lambda r: (r.performance, r.search_time))

    def render(self) -> str:
        table = format_table(
            ["setting", "Prf.Imp", "Srh.Imp"],
            [[r.label, r.performance, r.search_time] for r in self.rows],
            title=self.name,
        )
        return table + ("\n" + self.note if self.note else "")


def run_delta_sweep(
    deltas: Sequence[float] = (5.0, 10.0, 20.0, 40.0, 60.0),
    problem: str = "LU",
    source: str = "westmere",
    target: str = "sandybridge",
    seed: object = 0,
    nmax: int = 100,
) -> AblationResult:
    """RSp speedups as a function of the pruning cutoff δ."""
    rows = []
    for delta in deltas:
        session = build_session(
            problem, source, target, seed=seed, nmax=nmax,
            variants=("RSp",),
        )
        session.delta_percent = delta
        outcome = session.run()
        rep = outcome.report("RSp")
        rows.append(AblationRow(f"delta={delta:g}%", rep.performance, rep.search_time))
    return AblationResult(
        name=f"RSp delta sweep ({problem}, {source} -> {target})",
        rows=tuple(rows),
        note="paper's setting is delta=20%; smaller cutoffs prune harder",
    )


def run_surrogate_ablation(
    problem: str = "LU",
    source: str = "westmere",
    target: str = "sandybridge",
    seed: object = 0,
    nmax: int = 100,
) -> AblationResult:
    """RSb speedups under different surrogate learners."""
    learners: dict[str, Callable] = {
        "random-forest": lambda: RandomForestRegressor(n_estimators=64, seed=0),
        "boosted-trees": lambda: GradientBoostingRegressor(n_estimators=150, seed=0),
        "knn": lambda: KNeighborsRegressor(n_neighbors=5, weights="distance"),
        "ridge": lambda: RidgeRegressor(alpha=1.0),
    }
    rows = []
    for label, factory in learners.items():
        session = build_session(
            problem, source, target, seed=seed, nmax=nmax,
            variants=("RSb",), learner_factory=factory,
        )
        outcome = session.run()
        rep = outcome.report("RSb")
        rows.append(AblationRow(label, rep.performance, rep.search_time))
    return AblationResult(
        name=f"surrogate-learner ablation ({problem}, {source} -> {target})",
        rows=tuple(rows),
        note="recursive partitioning (forest/boosting) should beat linear (ridge)",
    )


def run_pool_sweep(
    pool_sizes: Sequence[int] = (100, 1_000, 10_000, 50_000),
    problem: str = "LU",
    source: str = "westmere",
    target: str = "sandybridge",
    seed: object = 0,
    nmax: int = 100,
) -> AblationResult:
    """RSb speedups as a function of the prediction pool size N."""
    rows = []
    for pool in pool_sizes:
        session = build_session(
            problem, source, target, seed=seed, nmax=nmax,
            pool_size=pool, variants=("RSb",),
        )
        outcome = session.run()
        rep = outcome.report("RSb")
        rows.append(AblationRow(f"N={pool}", rep.performance, rep.search_time))
    return AblationResult(
        name=f"RSb pool-size sweep ({problem}, {source} -> {target})",
        rows=tuple(rows),
        note="larger pools let the model exploit more of D (paper uses N=10000)",
    )


@dataclass(frozen=True)
class DissimilarityResult:
    pairs: tuple  # (machine_a, machine_b, response_distance, rho_s)
    correlation: float  # Pearson correlation of distance vs rho_s

    def render(self) -> str:
        table = format_table(
            ["machine a", "machine b", "response distance", "rho_s (LU)"],
            [[a, b, d, r] for a, b, d, r in self.pairs],
            title="machine dissimilarity vs. empirical rank correlation",
        )
        return table + (
            f"\ncorr(distance, rho_s) = {self.correlation:.2f} "
            "(expect strongly negative: dissimilar machines decorrelate)"
        )


def run_dissimilarity(
    n_configs: int = 120,
    kernel_name: str = "lu",
    seed: object = 0,
) -> DissimilarityResult:
    """Response-vector distance vs. measured cross-machine rank
    correlation — the quantification §VII calls for."""
    kernel = get_kernel(kernel_name)
    rng = spawn_rng("dissimilarity", str(seed))
    configs = kernel.space.sample(rng, n_configs)
    gcc_machines = [m for m in MACHINES.values()]
    runtimes = {}
    for machine in gcc_machines:
        evaluator = OrioEvaluator(kernel, machine)
        runtimes[machine.name] = np.array(
            [evaluator.measure(c).runtime_seconds for c in configs]
        )
    pairs = []
    for a, b in combinations(gcc_machines, 2):
        dist = response_distance(a.response, b.response)
        rho = spearman(runtimes[a.name], runtimes[b.name])
        pairs.append((a.name, b.name, dist, rho))
    dists = [p[2] for p in pairs]
    rhos = [p[3] for p in pairs]
    return DissimilarityResult(
        pairs=tuple(pairs), correlation=pearson(dists, rhos)
    )


def run_multisource(
    problem: str = "LU",
    sources: Sequence[str] = ("westmere", "power7"),
    target: str = "sandybridge",
    seed: object = 0,
    nmax: int = 100,
    pool_size: int = 10_000,
) -> AblationResult:
    """Fit the surrogate on pooled data from several source machines.

    Runtimes are normalized per source (divided by the source median)
    before pooling, so machines of different absolute speeds mix.
    """
    kernel = get_kernel(problem.lower())
    rows = []

    def rsb_with_training(training, label: str) -> None:
        surrogate = Surrogate(kernel.space).fit(training)
        target_eval = OrioEvaluator(kernel, get_machine(target), clock=SimClock())
        rs_eval = OrioEvaluator(kernel, get_machine(target), clock=SimClock())
        stream = SharedStream(kernel.space, seed=(problem, str(seed)))
        rs = random_search(rs_eval, stream, nmax=nmax)
        rsb = biased_search(target_eval, kernel.space, surrogate, nmax=nmax,
                            pool_size=pool_size)
        rep = speedups(rs, rsb)
        rows.append(AblationRow(label, rep.performance, rep.search_time))

    pooled = []
    for source in sources:
        session = build_session(problem, source, target, seed=seed, nmax=nmax)
        trace = session.collect_source_data()
        data = trace.training_data()
        median = float(np.median([y for _, y in data]))
        normalized = [(c, y / median) for c, y in data]
        rsb_with_training(data, f"single source: {source}")
        pooled.extend(normalized)
    rsb_with_training(pooled, f"pooled sources: {'+'.join(sources)}")
    return AblationResult(
        name=f"multi-source transfer ({problem} -> {target})",
        rows=tuple(rows),
        note="pooled, median-normalized training data from several machines",
    )


def _source_surrogate_and_rs(problem: str, source: str, target: str,
                             seed: object, nmax: int):
    """Shared setup: Ta, fitted surrogate, and the target RS baseline."""
    kernel = get_kernel(problem.lower())
    src_eval = OrioEvaluator(kernel, get_machine(source), clock=SimClock())
    src_trace = random_search(
        src_eval, SharedStream(kernel.space, seed=(problem, str(seed))), nmax=nmax
    )
    training = src_trace.training_data()
    surrogate = Surrogate(kernel.space).fit(training)
    rs_eval = OrioEvaluator(kernel, get_machine(target), clock=SimClock())
    rs = random_search(
        rs_eval, SharedStream(kernel.space, seed=(problem, str(seed))), nmax=nmax
    )
    return kernel, training, surrogate, rs


def run_warm_start(
    problem: str = "LU",
    source: str = "westmere",
    target: str = "sandybridge",
    seed: object = 0,
    nmax: int = 100,
    pool_size: int = 10_000,
) -> AblationResult:
    """Warm-started GA / annealing / bandit vs. their cold runs and RSb."""
    from repro.search.warm_start import warm_started_search
    from repro.tuner import (
        AUCBanditMetaTechnique,
        GeneticAlgorithm,
        RandomTechnique,
        SimulatedAnnealing,
    )

    kernel, _training, surrogate, rs = _source_surrogate_and_rs(
        problem, source, target, seed, nmax
    )

    def technique_set():
        return {
            "ga": lambda: GeneticAlgorithm(population_size=12, seed=1),
            "anneal": lambda: SimulatedAnnealing(seed=1),
            "bandit": lambda: AUCBanditMetaTechnique(
                [RandomTechnique(seed=1), GeneticAlgorithm(population_size=10, seed=2),
                 SimulatedAnnealing(seed=3)]
            ),
        }

    rows = []
    for label, factory in technique_set().items():
        for warm in (False, True):
            trace = warm_started_search(
                OrioEvaluator(kernel, get_machine(target), clock=SimClock()),
                kernel.space,
                factory(),
                surrogate=surrogate if warm else None,
                nmax=nmax,
                pool_size=pool_size,
                seed_evaluations=max(5, nmax // 10) if warm else 0,
            )
            rep = speedups(rs, trace)
            rows.append(
                AblationRow(
                    f"{label} ({'warm' if warm else 'cold'})",
                    rep.performance,
                    rep.search_time,
                )
            )
    return AblationResult(
        name=f"warm-started techniques ({problem}, {source} -> {target})",
        rows=tuple(rows),
        note="warm = surrogate-seeded initial evaluations; speedups vs the RS baseline",
    )


def run_online(
    problem: str = "LU",
    source: str = "westmere",
    target: str = "sandybridge",
    seed: object = 0,
    nmax: int = 100,
    pool_size: int = 10_000,
    refit_every: int = 20,
) -> AblationResult:
    """Frozen RSb vs. online (target-refitted) RSb."""
    from repro.transfer.online import online_biased_search

    kernel, training, surrogate, rs = _source_surrogate_and_rs(
        problem, source, target, seed, nmax
    )
    rows = []
    frozen = biased_search(
        OrioEvaluator(kernel, get_machine(target), clock=SimClock()),
        kernel.space, surrogate, nmax=nmax, pool_size=pool_size,
    )
    rep = speedups(rs, frozen)
    rows.append(AblationRow("RSb (frozen model)", rep.performance, rep.search_time))
    online = online_biased_search(
        OrioEvaluator(kernel, get_machine(target), clock=SimClock()),
        kernel.space, training, nmax=nmax, pool_size=pool_size,
        refit_every=refit_every,
    )
    rep = speedups(rs, online)
    rows.append(
        AblationRow(f"RSb+online (refit every {refit_every})",
                    rep.performance, rep.search_time)
    )
    return AblationResult(
        name=f"online surrogate refinement ({problem}, {source} -> {target})",
        rows=tuple(rows),
        note="online refits blend rescaled source data with target observations",
    )


def run_fault_ablation(
    rates: Sequence[float] = (0.0, 0.05, 0.10, 0.20),
    problem: str = "LU",
    source: str = "westmere",
    target: str = "sandybridge",
    seed: object = 0,
    nmax: int = 100,
    pool_size: int = 10_000,
) -> AblationResult:
    """RSb speedups under injected faults, with and without retries.

    The target evaluator is wrapped in a
    :class:`~repro.reliability.faults.FaultyEvaluator` (transient
    glitches, compile crashes, timeouts, outages in the
    :meth:`~repro.reliability.faults.FaultSpec.uniform` mixture) and a
    :class:`~repro.reliability.resilient.ResilientEvaluator` that either
    retries with exponential backoff or fails fast.  Speedups are
    measured against the *fault-free* RS baseline under common random
    numbers, so the table shows exactly how much performance and
    search-time advantage unreliability erodes — and how much of it the
    retry policy buys back.
    """
    from repro.reliability import (
        FaultSpec,
        FaultyEvaluator,
        ResilientEvaluator,
        RetryPolicy,
    )

    kernel, _training, surrogate, rs = _source_surrogate_and_rs(
        problem, source, target, seed, nmax
    )
    rows = []
    failure_lines = []
    for rate in rates:
        for retries in (False, True):
            evaluator = ResilientEvaluator(
                FaultyEvaluator(
                    OrioEvaluator(kernel, get_machine(target), clock=SimClock()),
                    FaultSpec.uniform(rate, seed=("faults", str(seed))),
                ),
                retry=RetryPolicy() if retries else RetryPolicy.none(),
            )
            trace = biased_search(
                evaluator, kernel.space, surrogate, nmax=nmax, pool_size=pool_size
            )
            rep = speedups(rs, trace)
            label = f"rate={rate:.0%} ({'retries' if retries else 'fail-fast'})"
            rows.append(AblationRow(label, rep.performance, rep.search_time))
            stats = evaluator.stats
            failure_lines.append(
                f"  {label}: {trace.n_failures}/{trace.n_evaluations} failed, "
                f"{stats.retries} retries, {stats.censored} censored"
            )
    note = (
        "speedups vs the fault-free RS baseline (CRN); retries recover\n"
        "transient glitches at a backoff cost charged to the clock\n"
        + "\n".join(failure_lines)
    )
    return AblationResult(
        name=f"fault-rate ablation ({problem}, {source} -> {target}, RSb)",
        rows=tuple(rows),
        note=note,
    )


def _hybrid_cell(spec: tuple) -> tuple:
    """One hybrid-ablation cell — module level so it can run in a worker."""
    problem, source, target, seed, nmax, delta = spec
    session = build_session(
        problem, source, target, seed=seed, nmax=nmax,
        variants=("RSp", "RSb", "RSpb"),
    )
    session.delta_percent = delta
    outcome = session.run()
    rows = []
    for variant in ("RSp", "RSb", "RSpb"):
        rep = outcome.report(variant)
        rows.append(
            AblationRow(f"{variant} (delta={delta:g}%)",
                        rep.performance, rep.search_time)
        )
    return tuple(rows)


def run_hybrid(
    deltas: Sequence[float] = (10.0, 20.0, 40.0),
    problem: str = "LU",
    source: str = "westmere",
    target: str = "sandybridge",
    seed: object = 0,
    nmax: int = 100,
    n_workers: int = 1,
    registry_path=None,
) -> AblationResult:
    """The prune-then-bias hybrid RSpb against its parents RSp and RSb.

    RSpb evaluates the surrogate's pool ranking best-first (biasing)
    but skips any candidate predicted slower than the ∆-quantile
    cutoff (pruning) — a new Proposer x Gate composition the shared
    engine makes a three-line factory.  Each ∆ cell runs all three
    variants under common random numbers; with ``registry_path`` every
    cell is journaled by the supervised grid and a re-invocation
    resumes instead of re-running.
    """
    specs = [(problem, source, target, seed, nmax, float(d)) for d in deltas]
    keys = [(p, s, t, str(sd), nm, d) for p, s, t, sd, nm, d in specs]
    cells = grid_map(
        "hybrid", _hybrid_cell, specs,
        keys=keys, n_workers=n_workers, registry_path=registry_path,
    )
    rows = tuple(row for cell in cells for row in cell)
    return AblationResult(
        name=f"prune-then-bias hybrid ({problem}, {source} -> {target})",
        rows=rows,
        note="RSpb = biased pool order gated by the pruning cutoff delta (CRN)",
    )


def _corrupt_training(mode: str, training: list, seed: object) -> list:
    """Apply one adversarial corruption to the source data ``Ta``."""
    if mode in ("faithful", "wrong-machine"):
        # wrong-machine corrupts by *collection* (dissimilar source),
        # not by mangling the rows.
        return training
    if mode == "inverted":
        runtimes = [y for _, y in training]
        lo, hi = min(runtimes), max(runtimes)
        return [(c, lo + hi - y) for c, y in training]
    if mode == "shuffled":
        rng = spawn_rng("negative-transfer", str(seed))
        order = rng.permutation(len(training))
        return [(c, training[int(j)][1]) for (c, _), j in zip(training, order)]
    if mode == "stale-partial":
        return training[: max(8, len(training) // 5)]
    raise ValueError(f"unknown corruption mode {mode!r}")


def _negative_transfer_cell(spec: tuple) -> tuple:
    """One guard-ablation cell — module level so it can run in a worker.

    Runs RS (the CRN baseline) plus RSp and RSb on the target, fitting
    the surrogate on one corrupted source dataset, with or without the
    guardrails.  Returns per-variant ``(variant, performance,
    search_time, guard_state, interventions)`` tuples.
    """
    (problem, source, wrong_source, target, seed,
     nmax, pool_size, mode, guarded) = spec
    kernel = get_kernel(problem.lower())
    stream_seed = (problem, str(seed))

    def stream() -> SharedStream:
        return SharedStream(kernel.space, seed=stream_seed)

    def evaluator(machine: str) -> OrioEvaluator:
        return OrioEvaluator(kernel, get_machine(machine), clock=SimClock())

    src_machine = wrong_source if mode == "wrong-machine" else source
    src_trace = random_search(
        evaluator(src_machine), stream(), nmax=nmax, name="RS(source)"
    )
    training = _corrupt_training(mode, src_trace.training_data(), seed)
    surrogate = Surrogate(kernel.space).fit(training)
    rs = random_search(evaluator(target), stream(), nmax=nmax)

    out = []
    for variant in ("RSp", "RSb"):
        guard = GuardPolicy() if guarded else None
        if variant == "RSp":
            trace = pruned_search(
                evaluator(target), stream(), surrogate,
                nmax=nmax, pool_size=pool_size, guard=guard,
            )
        else:
            trace = biased_search(
                evaluator(target), kernel.space, surrogate,
                nmax=nmax, pool_size=pool_size, guard=guard,
                stream=stream() if guarded else None,
            )
        rep = speedups(rs, trace)
        meta = trace.metadata.get("guard")
        state = meta["state"] if meta else "trusted"
        interventions = (
            meta["audits"] + meta["widened_admits"] + meta["fallback_proposals"]
            if meta else 0
        )
        out.append((variant, rep.performance, rep.search_time, state, interventions))
    return tuple(out)


def run_negative_transfer(
    modes: Sequence[str] = (
        "faithful", "inverted", "shuffled", "wrong-machine", "stale-partial",
    ),
    problem: str = "LU",
    source: str = "westmere",
    target: str = "sandybridge",
    wrong_source: str = "xgene",
    seed: object = 0,
    nmax: int = 100,
    pool_size: int = 10_000,
    n_workers: int = 1,
    registry_path=None,
) -> AblationResult:
    """Adversarial sources × guard on/off — the negative-transfer study.

    The paper shows transfer *failing* (Prf < 1.0 cells, the X-Gene
    rows); this ablation manufactures such failures on purpose —
    runtime-inverted labels, label shuffling, a maximally dissimilar
    source machine, a stale truncated ``Ta`` — and measures what the
    :class:`~repro.transfer.guard.GuardPolicy` guardrails salvage.  A
    healthy guard leaves the faithful rows untouched (it stays TRUSTED;
    the guarded trace is identical to the unguarded one) while on a
    hostile source it revokes the model and recovers plain RS's quality
    on the shared stream.  With ``registry_path`` every cell is
    journaled by the supervised grid (``REPRO_RESUME`` applies).
    """
    specs = [
        (problem, source, wrong_source, target, seed,
         nmax, pool_size, mode, guarded)
        for mode in modes
        for guarded in (False, True)
    ]
    keys = [
        (problem, source, wrong_source, target, str(seed),
         nmax, pool_size, mode, guarded)
        for (_p, _s, _w, _t, _sd, nmax, pool_size, mode, guarded) in specs
    ]
    cells = grid_map(
        "negative-transfer", _negative_transfer_cell, specs,
        keys=keys, n_workers=n_workers, registry_path=registry_path,
    )
    rows = []
    guard_lines = []
    for spec, cell in zip(specs, cells):
        mode, guarded = spec[-2], spec[-1]
        for variant, performance, search_time, state, interventions in cell:
            label = f"{mode}/{variant} ({'guard' if guarded else 'bare'})"
            rows.append(AblationRow(label, performance, search_time))
            if guarded:
                guard_lines.append(
                    f"  {label}: state={state}, interventions={interventions}"
                )
    note = (
        "Prf.Imp vs plain RS under CRN (>= 1.0: transfer helps; the guard\n"
        "must keep hostile-source rows near 1.0 and leave faithful rows\n"
        "untouched)\n" + "\n".join(guard_lines)
    )
    return AblationResult(
        name=f"negative-transfer guardrails ({problem}, {source} -> {target})",
        rows=tuple(rows),
        note=note,
    )


def run_search_comparison(
    problem: str = "LU",
    source: str = "westmere",
    target: str = "sandybridge",
    seed: object = 0,
    nmax: int = 100,
    pool_size: int = 10_000,
) -> AblationResult:
    """Every search family of Section II on one problem, cold vs transfer.

    Random search, Nelder-Mead, orthogonal search, pattern search, PSO,
    GA, annealing, the AUC bandit, RSb, and model-based search (SMBO) —
    plus the transfer-assisted versions where applicable.  Speedups are
    against the RS baseline under common random numbers.
    """
    from repro.search.warm_start import warm_started_search
    from repro.transfer.smbo import smbo_search
    from repro.tuner import (
        GeneticAlgorithm,
        NelderMead,
        OrthogonalSearch,
        ParticleSwarm,
        PatternSearch,
        SimulatedAnnealing,
    )

    kernel, training, surrogate, rs = _source_surrogate_and_rs(
        problem, source, target, seed, nmax
    )

    def fresh_eval():
        return OrioEvaluator(kernel, get_machine(target), clock=SimClock())

    rows = []

    def add(trace, label):
        rep = speedups(rs, trace)
        rows.append(AblationRow(label, rep.performance, rep.search_time))

    techniques = {
        "nelder-mead": lambda: NelderMead(seed=1),
        "orthogonal": lambda: OrthogonalSearch(seed=1),
        "pattern": lambda: PatternSearch(seed=1),
        "pso": lambda: ParticleSwarm(seed=1),
        "ga": lambda: GeneticAlgorithm(population_size=12, seed=1),
        "anneal": lambda: SimulatedAnnealing(seed=1),
    }
    for label, factory in techniques.items():
        add(
            warm_started_search(fresh_eval(), kernel.space, factory(),
                                surrogate=None, nmax=nmax, seed_evaluations=0),
            f"{label} (cold)",
        )
        add(
            warm_started_search(fresh_eval(), kernel.space, factory(),
                                surrogate=surrogate, nmax=nmax,
                                pool_size=pool_size,
                                seed_evaluations=max(5, nmax // 10)),
            f"{label} (transfer)",
        )
    add(
        biased_search(fresh_eval(), kernel.space, surrogate, nmax=nmax,
                      pool_size=pool_size),
        "RSb (transfer)",
    )
    add(
        smbo_search(fresh_eval(), kernel.space, nmax=nmax,
                    n_initial=max(5, nmax // 10), pool_size=min(pool_size, 2000),
                    seed=seed),
        "smbo (cold)",
    )
    add(
        smbo_search(fresh_eval(), kernel.space, nmax=nmax,
                    n_initial=max(5, nmax // 10), pool_size=min(pool_size, 2000),
                    source_surrogate=surrogate, source_data=training, seed=seed),
        "smbo (transfer)",
    )
    return AblationResult(
        name=f"search-family comparison ({problem}, {source} -> {target})",
        rows=tuple(rows),
        note="every Section-II search family, cold vs transfer-assisted",
    )
