"""Table III — the SPAPT search problems.

Renders each kernel's (parameter count, search-space size, input size)
row and compares the cardinalities with the published values; the
construction targets agreement within 0.25% (see each kernel module's
docstring for the per-parameter ranges).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernels import get_kernel, kernel_names
from repro.utils.tables import format_table

__all__ = ["Table3Result", "run_table3"]

PAPER_TABLE3 = {
    "MM": (12, 8.58e10, "2000x2000"),
    "ATAX": (13, 2.57e12, "10000"),
    "COR": (12, 8.57e10, "2000x2000"),
    "LU": (9, 5.83e8, "2000x2000"),
}

_TOLERANCE = 0.0025  # relative |D| error accepted as a reproduction


@dataclass(frozen=True)
class Table3Result:
    rows: tuple  # (kernel, ni, |D|, input, paper |D|, rel. error)

    def reproduced(self) -> bool:
        return all(abs(err) <= _TOLERANCE for *_, err in self.rows) and all(
            ni == PAPER_TABLE3[name][0] for name, ni, *_ in self.rows
        )

    def render(self) -> str:
        table = format_table(
            ["Kernel", "ni", "Search Space Size", "Input Size", "Paper |D|", "rel.err"],
            [
                [name, ni, f"{size:.3e}", inp, f"{paper:.3e}", f"{err * 100:+.2f}%"]
                for name, ni, size, inp, paper, err in self.rows
            ],
            title="Table III: collection of test kernels considered",
        )
        return table + f"\ncardinalities within {_TOLERANCE:.2%}: {self.reproduced()}"


def run_table3() -> Table3Result:
    """Build every kernel and compare its space with Table III."""
    rows = []
    for name in kernel_names():
        kernel = get_kernel(name)
        info = kernel.info()
        paper_ni, paper_size, paper_input = PAPER_TABLE3[info.name]
        err = info.search_space_size / paper_size - 1.0
        rows.append(
            (info.name, info.n_parameters, info.search_space_size, info.input_size,
             paper_size, err)
        )
    return Table3Result(rows=tuple(rows))
