"""Experiment harness: one module per paper table and figure.

Every experiment is a pure function of its seed and returns a typed
result object with a ``render()`` method that prints the same rows or
series the paper reports.  ``benchmarks/`` regenerates each of them.

=================  ==================================================
module             paper artefact
=================  ==================================================
figure1            Fig. 1 — LU variants on Westmere vs. Sandybridge
figure2            Fig. 2 — decision tree from MM data on Sandybridge
figure3            Fig. 3 — Westmere -> Sandybridge search panels
figure4            Fig. 4 — Sandybridge -> Power 7 search panels
figure5            Fig. 5 — Sandybridge -> Xeon Phi (icc + OpenMP)
table1             Table I — Orio transformations and ranges
table2             Table II — machine specifications
table3             Table III — kernel search problems
table4             Table IV — biased-variant speedups, all pairs (gcc)
table5             Table V — Xeon Phi experiments (icc)
ablations          extensions: delta sweep, surrogate choice,
                   pool-size sweep, machine-dissimilarity analysis
=================  ==================================================
"""

from repro.experiments.harness import PROBLEMS, build_problem, build_session
from repro.experiments.figure1 import Figure1Result, run_figure1
from repro.experiments.figure2 import Figure2Result, run_figure2
from repro.experiments.figure3 import PanelResult, run_figure3
from repro.experiments.figure4 import run_figure4
from repro.experiments.figure5 import run_figure5
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import Table4Result, run_table4
from repro.experiments.table5 import run_table5

__all__ = [
    "PROBLEMS",
    "build_problem",
    "build_session",
    "Figure1Result",
    "run_figure1",
    "Figure2Result",
    "run_figure2",
    "PanelResult",
    "run_figure3",
    "run_figure4",
    "run_figure5",
    "run_table1",
    "run_table2",
    "run_table3",
    "Table4Result",
    "run_table4",
    "run_table5",
]
