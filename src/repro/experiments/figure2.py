"""Figure 2 — decision tree from matrix-multiplication data on
Sandybridge.

The paper displays a regression tree whose splits involve the unroll
parameters (U_I, U_J, U_K) and register-tiling parameters (RT_I, RT_J,
RT_K) of the MM kernel, illustrating the recursive-partitioning
surrogate of Section III-A.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kernels import get_kernel
from repro.machines import get_machine
from repro.ml.export import export_text
from repro.ml.tree import DecisionTreeRegressor
from repro.orio.evaluator import OrioEvaluator
from repro.utils.rng import spawn_rng

__all__ = ["Figure2Result", "run_figure2"]


@dataclass(frozen=True)
class Figure2Result:
    machine: str
    kernel: str
    tree_text: str
    split_features: tuple[str, ...]
    depth: int
    n_leaves: int

    def paper_expectation(self) -> str:
        return (
            "splits over the unroll (U_*) and register-tiling (RT_*) "
            "parameters, leaves predicting mean run times"
        )

    def reproduced(self) -> bool:
        interesting = {"U_I", "U_J", "U_K", "RT_I", "RT_J", "RT_K"}
        return bool(interesting & set(self.split_features))

    def render(self) -> str:
        header = (
            f"Figure 2: decision tree from {self.kernel} data on {self.machine} "
            f"(depth {self.depth}, {self.n_leaves} leaves)\n"
            f"splits on: {', '.join(self.split_features)}\n"
        )
        return header + self.tree_text


def run_figure2(
    n_train: int = 200,
    machine: str = "sandybridge",
    max_depth: int = 3,
    seed: object = 0,
) -> Figure2Result:
    """Fit and render the Figure-2 style tree."""
    kernel = get_kernel("mm")
    rng = spawn_rng("figure2", str(seed))
    configs = kernel.space.sample(rng, n_train)
    evaluator = OrioEvaluator(kernel, get_machine(machine))
    y = np.array([evaluator.measure(c).runtime_seconds for c in configs])
    X = kernel.space.encode_many(configs)
    tree = DecisionTreeRegressor(max_depth=max_depth, min_samples_leaf=5)
    tree.fit(X, np.log(y))
    names = kernel.space.feature_names()
    assert tree.nodes is not None
    used = sorted(
        {names[f] for f in tree.nodes.feature if f >= 0},
        key=names.index,
    )
    return Figure2Result(
        machine=machine,
        kernel=kernel.name,
        tree_text=export_text(tree, feature_names=names),
        split_features=tuple(used),
        depth=tree.depth,
        n_leaves=tree.n_leaves,
    )
