"""Table IV — search-time and performance speedups of RSb (gcc -O3).

For every problem (MM, ATAX, LU, COR, HPL, RT), sources {Westmere,
Sandybridge, Power 7} and targets {Westmere, Sandybridge, Power 7,
X-Gene}, the Prf.Imp / Srh.Imp of the biased model-based variant over
RS.  Cells the paper leaves as "-" (diagonal; X-Gene MM and COR, where
run/compile times made data collection impossible) are reproduced via
the simulated time budget: searches that exhaust the budget before
completing report no data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.experiments.harness import PROBLEMS, build_session, grid_map
from repro.utils.tables import format_table

__all__ = ["Table4Cell", "Table4Result", "run_table4", "PAPER_TABLE4"]

SOURCES = ("westmere", "sandybridge", "power7")
TARGETS = ("westmere", "sandybridge", "power7", "xgene")

# Simulated collection budget per search (1.5 days of tuning time) —
# generous for every problem except MM and COR on the X-Gene, whose
# hugely unrolled generated variants hit the immature toolchain's
# compile throughput and whose run times are the longest of the suite
# (the paper: "run times or compilation times were too high").
DEFAULT_BUDGET_SECONDS = 1.5 * 86400.0

# The published Table IV (Prf.Imp, Srh.Imp) for the biased model-based
# variant; None = no data ("-").  Indexed [problem][target][source].
PAPER_TABLE4: Mapping[str, Mapping[str, Mapping[str, tuple | None]]] = {
    "MM": {
        "westmere": {"sandybridge": (1.05, 5.33), "power7": (1.09, 9.60)},
        "sandybridge": {"westmere": (1.04, 28.92), "power7": (1.19, 7.95)},
        "power7": {"westmere": (1.00, 1.66), "sandybridge": (1.00, 16.18)},
        "xgene": {"westmere": None, "sandybridge": None, "power7": None},
    },
    "ATAX": {
        "westmere": {"sandybridge": (1.00, 1.85), "power7": (1.01, 14.25)},
        "sandybridge": {"westmere": (1.02, 29.91), "power7": (1.03, 17.84)},
        "power7": {"westmere": (0.96, 0.00), "sandybridge": (0.98, 0.00)},
        "xgene": {"westmere": (0.88, 0.00), "sandybridge": (0.79, 0.00), "power7": (1.11, 4.52)},
    },
    "LU": {
        "westmere": {"sandybridge": (1.03, 129.31), "power7": (1.03, 129.31)},
        "sandybridge": {"westmere": (1.04, 52.56), "power7": (1.04, 99.90)},
        "power7": {"westmere": (1.32, 20.67), "sandybridge": (1.32, 109.82)},
        "xgene": {"westmere": (1.00, 1.00), "sandybridge": (1.00, 1.00), "power7": (1.00, 1.00)},
    },
    "COR": {
        "westmere": {"sandybridge": (1.00, 4.94), "power7": (0.97, 0.00)},
        "sandybridge": {"westmere": (1.00, 1.76), "power7": (0.90, 0.00)},
        "power7": {"westmere": (0.84, 0.00), "sandybridge": (1.00, 25.75)},
        "xgene": {"westmere": None, "sandybridge": None, "power7": None},
    },
    "HPL": {
        "westmere": {"sandybridge": (1.00, 4.78), "power7": (1.00, 1.79)},
        "sandybridge": {"westmere": (1.00, 1.00), "power7": (1.00, 1.00)},
        "power7": {"westmere": (1.00, 0.45), "sandybridge": (1.00, 2.90)},
        "xgene": {"westmere": (0.88, 0.00), "sandybridge": (0.88, 0.00), "power7": (1.00, 2.42)},
    },
    "RT": {
        "westmere": {"sandybridge": (1.00, 4.60), "power7": (0.77, 0.00)},
        "sandybridge": {"westmere": (1.00, 29.96), "power7": (1.00, 0.00)},
        "power7": {"westmere": (1.00, 30.04), "sandybridge": (1.00, 3.68)},
        "xgene": {"westmere": (1.00, 0.00), "sandybridge": (1.00, 0.19), "power7": (1.12, 10.71)},
    },
}


@dataclass(frozen=True)
class Table4Cell:
    problem: str
    source: str
    target: str
    performance: float | None  # None = no data (budget exhausted)
    search_time: float | None
    successful: bool
    paper: tuple | None

    @property
    def has_data(self) -> bool:
        return self.performance is not None


@dataclass(frozen=True)
class Table4Result:
    cells: tuple[Table4Cell, ...]

    def cell(self, problem: str, source: str, target: str) -> Table4Cell:
        for c in self.cells:
            if (c.problem, c.source, c.target) == (problem, source, target):
                return c
        raise KeyError((problem, source, target))

    # ------------------------------------------------------------------
    def success_agreement(self) -> float:
        """Fraction of cells whose success/failure/no-data state agrees
        with the paper (the reproduction's headline figure)."""
        agree = 0
        total = 0
        for c in self.cells:
            total += 1
            if c.paper is None:
                agree += not c.has_data
                continue
            if not c.has_data:
                continue
            paper_success = c.paper[0] >= 1.0 and c.paper[1] > 1.0
            agree += paper_success == c.successful
        return agree / max(1, total)

    def render(self) -> str:
        blocks = []
        problems = sorted({c.problem for c in self.cells}, key=list(PROBLEMS).index)
        for problem in problems:
            rows = []
            for target in TARGETS:
                row: list = [target]
                for source in SOURCES:
                    if source == target:
                        row.append("-")
                        continue
                    try:
                        c = self.cell(problem, source, target)
                    except KeyError:
                        row.append("-")
                        continue
                    if not c.has_data:
                        row.append("-")
                    else:
                        mark = "*" if c.successful else " "
                        row.append(f"{c.performance:.2f}/{c.search_time:.2f}{mark}")
                rows.append(row)
            blocks.append(
                format_table(
                    ["Target \\ Source"] + [s for s in SOURCES],
                    rows,
                    title=f"Table IV [{problem}] — Prf.Imp/Srh.Imp of RSb (* = success)",
                )
            )
        footer = f"success/failure agreement with paper: {self.success_agreement():.0%}"
        return "\n\n".join(blocks) + "\n" + footer


def _run_cell(spec: tuple) -> Table4Cell:
    """One Table IV cell — module level so it can run in a worker."""
    problem, source, target, seed, nmax, budget_seconds = spec
    session = build_session(
        problem, source, target,
        seed=seed, nmax=nmax, variants=("RSb",),
        budget_seconds=budget_seconds,
    )
    outcome = session.run()
    paper = PAPER_TABLE4.get(problem, {}).get(target, {}).get(source)
    incomplete = (
        outcome.source_trace.exhausted_budget
        or outcome.rs.exhausted_budget
        or not outcome.rs.records
        or outcome.traces["RSb"].exhausted_budget
    )
    if incomplete:
        return Table4Cell(problem, source, target, None, None, False, paper)
    report = outcome.report("RSb")
    return Table4Cell(
        problem, source, target,
        report.performance, report.search_time, report.successful, paper,
    )


def run_table4(
    problems: Sequence[str] = PROBLEMS,
    seed: object = 0,
    nmax: int = 100,
    budget_seconds: float | None = DEFAULT_BUDGET_SECONDS,
    n_workers: int = 1,
    registry_path=None,
) -> Table4Result:
    """Run the full Table IV grid (all problems, all machine pairs).

    The 54 cells are independent; ``n_workers > 1`` fans them out over
    supervised workers with bit-identical results (everything is
    seeded).  With ``registry_path`` every completed cell is journaled
    and a re-invocation resumes: cells already in the journal are
    merged back instead of re-run (``REPRO_RESUME=0`` re-runs all).
    """
    specs = [
        (problem, source, target, seed, nmax, budget_seconds)
        for problem in problems
        for target in TARGETS
        for source in SOURCES
        if source != target
    ]
    keys = [(p, s, t, str(sd), nm, bu) for p, s, t, sd, nm, bu in specs]
    cells = grid_map(
        "table4", _run_cell, specs,
        keys=keys, n_workers=n_workers, registry_path=registry_path,
    )
    return Table4Result(cells=tuple(cells))
