"""Figure 3 — using Intel Westmere to speed the search on Sandybridge.

One row per problem (ATAX, LU, HPL, RT), three panels per row:

* model-based variants — best-found run time vs. elapsed search time
  for RS, RSp, RSb;
* model-free variants — RS, RSpf, RSbf;
* correlation — source vs. target run times of the commonly evaluated
  configurations, with ρp and ρs.

The same machinery renders Figures 4 and 5 with different machine
pairs/compilers (see :mod:`repro.experiments.figure4` / ``figure5``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.experiments.harness import build_session, grid_map
from repro.search.result import SearchTrace
from repro.transfer.metrics import SpeedupReport
from repro.transfer.session import TransferOutcome
from repro.utils.asciiplot import Series, scatter_plot, step_plot

__all__ = ["PanelResult", "FigurePanels", "run_figure3", "run_panels"]

_MARKERS = {"RS": ".", "RSp": "p", "RSb": "b", "RSpf": "f", "RSbf": "m"}


@dataclass(frozen=True)
class PanelResult:
    """One problem row of a Figure 3/4/5 style plot."""

    problem: str
    source: str
    target: str
    outcome: TransferOutcome
    pearson: float
    spearman: float

    def reports(self) -> Mapping[str, SpeedupReport]:
        return self.outcome.reports

    def _panel(self, names: Sequence[str], title: str) -> str:
        series = []
        for name in names:
            trace = self.outcome.traces.get(name)
            if trace is None or not trace.records:
                continue
            xs, ys = trace.best_so_far()
            series.append(Series(name, xs, ys, marker=_MARKERS.get(name, "*")))
        if not series:
            return f"{title}: (no data)"
        return step_plot(series, title=title, width=56, height=14)

    def render(self) -> str:
        row = [
            self._panel(("RS", "RSp", "RSb"), f"{self.problem}: model-based variants"),
            self._panel(("RS", "RSpf", "RSbf"), f"{self.problem}: model-free variants"),
        ]
        source_trace = self.outcome.source_trace
        rs = self.outcome.rs
        src_by_cfg = {r.config.index: r.runtime for r in source_trace.records}
        xs = [src_by_cfg[r.config.index] for r in rs.records if r.config.index in src_by_cfg]
        ys = [r.runtime for r in rs.records if r.config.index in src_by_cfg]
        if len(xs) >= 2:
            row.append(
                scatter_plot(
                    np.asarray(xs),
                    np.asarray(ys),
                    title=(
                        f"{self.problem}: correlation "
                        f"(rho_p={self.pearson:.2f}, rho_s={self.spearman:.2f})"
                    ),
                    xlabel=f"{self.source} (s)",
                    ylabel=f"{self.target} (s)",
                    width=56,
                    height=14,
                    logx=True,
                    logy=True,
                )
            )
        stats = "   ".join(
            f"{name}: Prf {rep.performance:.2f}X Srh {rep.search_time:.2f}X"
            for name, rep in self.outcome.reports.items()
        )
        return "\n\n".join(row) + "\n" + stats


@dataclass(frozen=True)
class FigurePanels:
    """A complete figure: one PanelResult per problem."""

    name: str
    source: str
    target: str
    panels: tuple[PanelResult, ...]

    def panel(self, problem: str) -> PanelResult:
        for p in self.panels:
            if p.problem == problem:
                return p
        raise KeyError(problem)

    def export_csv(self, directory) -> list:
        """Write each panel's search traces as long-format CSV files
        (for external plotting); returns the written paths."""
        from pathlib import Path

        from repro.utils.csvio import write_traces_csv

        directory = Path(directory)
        paths = []
        for panel in self.panels:
            path = directory / (
                f"{self.name.lower().replace(' ', '')}_{panel.problem.lower()}.csv"
            )
            paths.append(
                write_traces_csv(path, panel.outcome.traces.values())
            )
        return paths

    def render(self) -> str:
        head = f"=== {self.name}: {self.source} -> {self.target} ===\n"
        return head + "\n\n".join(p.render() for p in self.panels)


def _run_panel(spec: tuple) -> PanelResult:
    """One problem row — module level so it can run in a worker."""
    problem, source, target, compiler, seed, nmax, openmp, threads = spec
    session = build_session(
        problem,
        source,
        target,
        compiler=compiler,
        seed=seed,
        nmax=nmax,
        openmp=openmp,
        threads=threads,
    )
    outcome = session.run()
    rho_p, rho_s = outcome.correlation()
    return PanelResult(
        problem=problem,
        source=source,
        target=target,
        outcome=outcome,
        pearson=rho_p,
        spearman=rho_s,
    )


def run_panels(
    name: str,
    problems: Sequence[str],
    source: str,
    target: str,
    compiler: str = "gcc",
    seed: object = 0,
    nmax: int = 100,
    openmp: bool = False,
    threads: int | dict = 1,
    n_workers: int = 1,
    registry_path=None,
) -> FigurePanels:
    """Run the full panel experiment for one machine pair.

    The per-problem rows are independent cells routed through
    :func:`~repro.experiments.harness.grid_map`: supervised when fanned
    out, journaled/resumable when ``registry_path`` is given.
    """
    experiment = name.lower().replace(" ", "")
    specs = [
        (problem, source, target, compiler, seed, nmax, openmp, threads)
        for problem in problems
    ]
    keys = [
        (problem, source, target, compiler, str(seed), nmax, openmp,
         sorted(threads.items()) if isinstance(threads, dict) else threads)
        for problem in problems
    ]
    panels = grid_map(
        experiment, _run_panel, specs,
        keys=keys, n_workers=n_workers, registry_path=registry_path,
    )
    return FigurePanels(name=name, source=source, target=target, panels=tuple(panels))


def run_figure3(
    problems: Sequence[str] = ("ATAX", "LU", "HPL", "RT"),
    seed: object = 0,
    nmax: int = 100,
    n_workers: int = 1,
    registry_path=None,
) -> FigurePanels:
    """Figure 3: Westmere as source, Sandybridge as target (gcc -O3)."""
    return run_panels(
        "Figure 3", problems, source="westmere", target="sandybridge",
        seed=seed, nmax=nmax, n_workers=n_workers, registry_path=registry_path,
    )
