"""Run-to-run variance of the transfer experiments.

Both the paper's tables and our reproductions of them are *single
runs* of randomized searches.  This experiment quantifies what that
means: it replicates one transfer cell across independent seeds and
reports the spread of the performance and search-time speedups, with
bootstrap confidence intervals.  The qualitative claims (success,
speedup regime) should be stable across seeds even where individual
cells wobble — exactly the behaviour visible in the paper's scattered
0.00 entries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.harness import build_session
from repro.utils.stats import bootstrap_ci, summary
from repro.utils.tables import format_table

__all__ = ["VarianceResult", "run_variance_study"]


@dataclass(frozen=True)
class VarianceResult:
    problem: str
    source: str
    target: str
    variant: str
    performances: tuple[float, ...]
    search_times: tuple[float, ...]

    @property
    def n_seeds(self) -> int:
        return len(self.performances)

    def success_rate(self) -> float:
        """Fraction of seeds satisfying the paper's success criterion."""
        wins = sum(
            1
            for p, s in zip(self.performances, self.search_times)
            if p >= 1.0 and s > 1.0
        )
        return wins / max(1, self.n_seeds)

    def performance_ci(self, confidence: float = 0.9) -> tuple[float, float]:
        return bootstrap_ci(self.performances, np.median, confidence=confidence)

    def search_time_ci(self, confidence: float = 0.9) -> tuple[float, float]:
        return bootstrap_ci(self.search_times, np.median, confidence=confidence)

    def render(self) -> str:
        prf = summary(self.performances)
        srh = summary(self.search_times)
        plo, phi = self.performance_ci()
        slo, shi = self.search_time_ci()
        rows = [
            ["Prf.Imp", prf.minimum, prf.median, prf.maximum, f"[{plo:.2f}, {phi:.2f}]"],
            ["Srh.Imp", srh.minimum, srh.median, srh.maximum, f"[{slo:.2f}, {shi:.2f}]"],
        ]
        table = format_table(
            ["metric", "min", "median", "max", "90% CI (median)"],
            rows,
            title=(
                f"variance over {self.n_seeds} seeds: {self.variant}, "
                f"{self.problem} {self.source} -> {self.target}"
            ),
        )
        return table + f"\nsuccess rate: {self.success_rate():.0%}"


def run_variance_study(
    problem: str = "LU",
    source: str = "westmere",
    target: str = "sandybridge",
    variant: str = "RSb",
    n_seeds: int = 5,
    nmax: int = 100,
    pool_size: int = 10_000,
) -> VarianceResult:
    """Replicate one transfer cell across independent seeds."""
    performances = []
    search_times = []
    for k in range(n_seeds):
        session = build_session(
            problem, source, target,
            seed=("variance", k), nmax=nmax, pool_size=pool_size,
            variants=(variant,),
        )
        report = session.run().report(variant)
        performances.append(report.performance)
        search_times.append(report.search_time)
    return VarianceResult(
        problem=problem,
        source=source,
        target=target,
        variant=variant,
        performances=tuple(performances),
        search_times=tuple(search_times),
    )
