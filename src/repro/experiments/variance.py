"""Run-to-run variance of the transfer experiments.

Both the paper's tables and our reproductions of them are *single
runs* of randomized searches.  This experiment quantifies what that
means: it replicates one transfer cell across independent seeds and
reports the spread of the performance and search-time speedups, with
bootstrap confidence intervals.  The qualitative claims (success,
speedup regime) should be stable across seeds even where individual
cells wobble — exactly the behaviour visible in the paper's scattered
0.00 entries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.harness import build_session, grid_map
from repro.utils.stats import bootstrap_ci, summary
from repro.utils.tables import format_table

__all__ = ["VarianceResult", "run_variance_study"]


@dataclass(frozen=True)
class VarianceResult:
    problem: str
    source: str
    target: str
    variant: str
    performances: tuple[float, ...]
    search_times: tuple[float, ...]

    @property
    def n_seeds(self) -> int:
        return len(self.performances)

    def success_rate(self) -> float:
        """Fraction of seeds satisfying the paper's success criterion."""
        wins = sum(
            1
            for p, s in zip(self.performances, self.search_times)
            if p >= 1.0 and s > 1.0
        )
        return wins / max(1, self.n_seeds)

    def performance_ci(self, confidence: float = 0.9) -> tuple[float, float]:
        return bootstrap_ci(self.performances, np.median, confidence=confidence)

    def search_time_ci(self, confidence: float = 0.9) -> tuple[float, float]:
        return bootstrap_ci(self.search_times, np.median, confidence=confidence)

    def render(self) -> str:
        prf = summary(self.performances)
        srh = summary(self.search_times)
        plo, phi = self.performance_ci()
        slo, shi = self.search_time_ci()
        rows = [
            ["Prf.Imp", prf.minimum, prf.median, prf.maximum, f"[{plo:.2f}, {phi:.2f}]"],
            ["Srh.Imp", srh.minimum, srh.median, srh.maximum, f"[{slo:.2f}, {shi:.2f}]"],
        ]
        table = format_table(
            ["metric", "min", "median", "max", "90% CI (median)"],
            rows,
            title=(
                f"variance over {self.n_seeds} seeds: {self.variant}, "
                f"{self.problem} {self.source} -> {self.target}"
            ),
        )
        return table + f"\nsuccess rate: {self.success_rate():.0%}"


def _run_replicate(spec: tuple) -> tuple[float, float]:
    """One seed replicate — module level so it can run in a worker."""
    problem, source, target, variant, k, nmax, pool_size = spec
    session = build_session(
        problem, source, target,
        seed=("variance", k), nmax=nmax, pool_size=pool_size,
        variants=(variant,),
    )
    report = session.run().report(variant)
    return report.performance, report.search_time


def run_variance_study(
    problem: str = "LU",
    source: str = "westmere",
    target: str = "sandybridge",
    variant: str = "RSb",
    n_seeds: int = 5,
    nmax: int = 100,
    pool_size: int = 10_000,
    n_workers: int = 1,
    registry_path=None,
) -> VarianceResult:
    """Replicate one transfer cell across independent seeds.

    Replicates are independent cells run through
    :func:`~repro.experiments.harness.grid_map` — fan them out with
    ``n_workers`` or journal them with ``registry_path`` at will.
    """
    specs = [
        (problem, source, target, variant, k, nmax, pool_size)
        for k in range(n_seeds)
    ]
    reports = grid_map(
        "variance", _run_replicate, specs,
        n_workers=n_workers, registry_path=registry_path,
    )
    performances = [p for p, _ in reports]
    search_times = [s for _, s in reports]
    return VarianceResult(
        problem=problem,
        source=source,
        target=target,
        variant=variant,
        performances=tuple(performances),
        search_times=tuple(search_times),
    )
