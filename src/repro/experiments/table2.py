"""Table II — description of the architecture set considered.

Renders the machine registry as the paper's specification table and
validates every cell against the published values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machines import MACHINES
from repro.utils.tables import format_table

__all__ = ["Table2Result", "run_table2"]

# The published Table II: (processor, cores, GHz, L1 KB, L2 KB, L3 MB, mem GB).
PAPER_TABLE2 = {
    "sandybridge": ("Intel E5-2687W", 8, 3.4, 32, 256, 20.0, 64),
    "westmere": ("Intel E5645", 6, 2.4, 32, 256, 12.0, 48),
    "xeonphi": ("Intel Xeon Phi 7120a", 61, 1.24, 32, 512, None, 16),
    "power7": ("IBM Power7+", 6, 4.2, 32, 256, 10.0, 128),
    "xgene": ("APM883208-X1", 8, 2.4, 32, 256, 8.0, 16),
}


@dataclass(frozen=True)
class Table2Result:
    rows: tuple
    mismatches: tuple

    def reproduced(self) -> bool:
        return not self.mismatches

    def render(self) -> str:
        table = format_table(
            ["Name", "Cores", "Clock (GHz)", "L1 (KB)", "L2 (KB)", "L3 (MB)", "Memory (GB)"],
            [list(r) for r in self.rows],
            title="Table II: architecture set considered",
        )
        status = (
            "all cells match the paper"
            if not self.mismatches
            else f"MISMATCHES: {self.mismatches}"
        )
        return table + "\n" + status


def run_table2() -> Table2Result:
    """Extract the registry's Table II view and diff it with the paper."""
    rows = []
    mismatches = []
    for name, spec in MACHINES.items():
        _, _, cores, clock, l1, l2, l3, mem = spec.summary_row()
        rows.append((name, cores, clock, l1, l2, l3, mem))
        expected = PAPER_TABLE2[name]
        got = (cores, clock, l1, l2, l3, mem)
        want = expected[1:]
        if got != want:
            mismatches.append((name, got, want))
    return Table2Result(rows=tuple(rows), mismatches=tuple(mismatches))
