"""Figure 4 — Intel Sandybridge used to speed the search on IBM Power 7.

Same panel layout as Figure 3.  The paper's observation: despite the
architectural (and vendor) difference, RSb and RSbf still dominate —
the high-performing configurations correlate even where the global
ρp/ρs are visibly lower than in the Westmere/Sandybridge pair.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.figure3 import FigurePanels, run_panels

__all__ = ["run_figure4"]


def run_figure4(
    problems: Sequence[str] = ("ATAX", "LU", "HPL", "RT"),
    seed: object = 0,
    nmax: int = 100,
    n_workers: int = 1,
    registry_path=None,
) -> FigurePanels:
    """Figure 4: Sandybridge as source, Power 7 as target (gcc -O3)."""
    return run_panels(
        "Figure 4", problems, source="sandybridge", target="power7",
        seed=seed, nmax=nmax, n_workers=n_workers, registry_path=registry_path,
    )
