"""Table I — Orio transformations considered.

A validation artefact: renders the transformation catalog and checks
that the library's parameter types expose exactly the paper's ranges
(unroll 1..32, cache tiling 2^0..2^11, register tiling 2^0..2^5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.searchspace import IntegerParameter, PowerOfTwoParameter
from repro.utils.tables import format_table

__all__ = ["Table1Result", "run_table1"]

_ROWS = (
    ("Loop unrolling", "data reuse", "1, ..., 31, 32"),
    ("Cache tiling", "cache hits", "2^0, ..., 2^10, 2^11"),
    ("Register tiling", "cache to register loads", "2^0, ..., 2^4, 2^5"),
)


@dataclass(frozen=True)
class Table1Result:
    unroll_values: tuple
    cache_tile_values: tuple
    register_tile_values: tuple

    def reproduced(self) -> bool:
        return (
            self.unroll_values == tuple(range(1, 33))
            and self.cache_tile_values == tuple(2**e for e in range(12))
            and self.register_tile_values == tuple(2**e for e in range(6))
        )

    def render(self) -> str:
        table = format_table(
            ["Transformation", "Description", "Range"],
            list(_ROWS),
            title="Table I: Orio transformations considered",
        )
        return table + f"\nranges match paper: {self.reproduced()}"


def run_table1() -> Table1Result:
    """Instantiate the Table I parameter types and read their domains."""
    unroll = IntegerParameter("U", 1, 32)
    cache = PowerOfTwoParameter("T", 0, 11)
    register = PowerOfTwoParameter("RT", 0, 5)
    return Table1Result(
        unroll_values=tuple(unroll.values()),
        cache_tile_values=tuple(cache.values()),
        register_tile_values=tuple(register.values()),
    )
