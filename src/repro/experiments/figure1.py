"""Figure 1 — run times of LU variants on Westmere and Sandybridge.

The paper plots 200 LU configurations (each a loop-unroll / cache-tile
/ register-tile choice) on both machines and observes Pearson and
Spearman correlations above 0.8: the motivating evidence that good and
bad configurations transfer between the two generations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kernels import get_kernel
from repro.machines import get_machine
from repro.orio.evaluator import OrioEvaluator
from repro.utils.asciiplot import scatter_plot
from repro.utils.rng import spawn_rng
from repro.utils.stats import pearson, spearman

__all__ = ["Figure1Result", "run_figure1"]


@dataclass(frozen=True)
class Figure1Result:
    machine_a: str
    machine_b: str
    runtimes_a: np.ndarray
    runtimes_b: np.ndarray
    pearson: float
    spearman: float

    def paper_expectation(self) -> str:
        return "rho_p > 0.8 and rho_s > 0.8 between Westmere and Sandybridge"

    def reproduced(self) -> bool:
        return self.pearson > 0.8 and self.spearman > 0.8

    def render(self) -> str:
        plot = scatter_plot(
            self.runtimes_a,
            self.runtimes_b,
            xlabel=f"{self.machine_a} run time (s)",
            ylabel=f"{self.machine_b} run time (s)",
            title="Figure 1: LU code variants across machines",
            logx=True,
            logy=True,
        )
        stats = (
            f"rho_p = {self.pearson:.3f}   rho_s = {self.spearman:.3f}   "
            f"(paper: both > 0.8)   reproduced: {self.reproduced()}"
        )
        return plot + "\n" + stats


def run_figure1(
    n_configs: int = 200,
    machine_a: str = "westmere",
    machine_b: str = "sandybridge",
    kernel_name: str = "lu",
    seed: object = 0,
) -> Figure1Result:
    """Measure ``n_configs`` random variants on both machines."""
    kernel = get_kernel(kernel_name)
    rng = spawn_rng("figure1", str(seed))
    configs = kernel.space.sample(rng, n_configs)
    ev_a = OrioEvaluator(kernel, get_machine(machine_a))
    ev_b = OrioEvaluator(kernel, get_machine(machine_b))
    times_a = np.array([ev_a.measure(c).runtime_seconds for c in configs])
    times_b = np.array([ev_b.measure(c).runtime_seconds for c in configs])
    return Figure1Result(
        machine_a=machine_a,
        machine_b=machine_b,
        runtimes_a=times_a,
        runtimes_b=times_b,
        pearson=pearson(times_a, times_b),
        spearman=spearman(times_a, times_b),
    )
