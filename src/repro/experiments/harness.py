"""Shared experiment plumbing: problems, session builders, grid runner.

Besides the six problems of the evaluation, this module hosts
:func:`grid_map` — the one entry point every figure/table/ablation
driver uses to run its independent cells.  All grids therefore share
the same execution layer: the supervised executor (worker supervision,
retry, quarantine) and, when a journal path is given, crash-safe
journaling with skip-and-resume (see :mod:`repro.exec`).
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.errors import ExperimentError
from repro.kernels import get_kernel
from repro.machines import get_compiler, get_machine
from repro.miniapps import MiniappEvaluator, make_hpl, make_raytracer
from repro.transfer.session import TransferSession

__all__ = [
    "PROBLEMS",
    "build_problem",
    "build_session",
    "grid_map",
    "XEON_PHI_THREADS",
]

# The six problems of the evaluation: four SPAPT kernels driven through
# the mini-Orio, two mini-applications driven through the OpenTuner-
# style evaluator (Section IV-C).
PROBLEMS: tuple[str, ...] = ("MM", "ATAX", "LU", "COR", "HPL", "RT")

# Thread counts of the Xeon Phi experiments (Section V): "We set 8
# threads for Sandybridge and Westmere ... and 60 threads for the Phi."
XEON_PHI_THREADS = {"westmere": 8, "sandybridge": 8, "xeonphi": 60}


def grid_map(
    experiment: str,
    func: Callable,
    specs: Sequence,
    *,
    keys: Sequence | None = None,
    n_workers: int | None = 1,
    registry_path=None,
    resume: bool | None = None,
    task_timeout: float | str | None = "env",
    max_task_retries: int = 2,
    chaos=None,
    strict: bool = True,
) -> list:
    """Run one experiment's independent cells through the supervised
    executor, journaled and resumable when ``registry_path`` is given.

    Cells quarantined after exhausting their retries surface as an
    :class:`~repro.errors.ExperimentError` when ``strict`` (the
    default) — but only *after* every completed sibling has been
    durably journaled, so the failed invocation loses nothing and a
    re-invocation retries just the failures.  ``strict=False`` returns
    :class:`~repro.exec.CellFailure` entries in place of the missing
    results for drivers that can render holes.
    """
    from repro.exec import run_grid

    outcome = run_grid(
        experiment,
        func,
        specs,
        keys=keys,
        registry=registry_path,
        resume=resume,
        n_workers=n_workers,
        task_timeout=task_timeout,
        max_task_retries=max_task_retries,
        chaos=chaos,
    )
    if strict:
        outcome.raise_on_failure()
    return list(outcome.results)


def build_problem(name: str):
    """(problem, evaluator_factory-or-None) for a problem name."""
    key = name.strip().upper()
    if key in ("MM", "ATAX", "LU", "COR"):
        return get_kernel(key.lower()), None
    if key == "HPL":
        model = make_hpl()
    elif key == "RT":
        model = make_raytracer()
    else:
        raise ExperimentError(f"unknown problem {name!r}; known: {PROBLEMS}")

    def factory(machine, clock, _model=model):
        return MiniappEvaluator(_model, machine, clock=clock)

    return model, factory


def build_session(
    problem: str,
    source: str,
    target: str,
    compiler: str = "gcc",
    seed: object = 0,
    nmax: int = 100,
    pool_size: int | None = None,
    openmp: bool = False,
    threads: int | dict = 1,
    budget_seconds: float | None = None,
    variants: tuple[str, ...] = ("RSp", "RSb", "RSpf", "RSbf"),
    learner_factory: Callable | None = None,
    spec=None,
) -> TransferSession:
    """A fully configured transfer session for one experiment cell.

    ``spec`` (a :class:`repro.spec.TunerSpec`) threads tuner
    hyperparameters through to every search the session runs;
    ``pool_size=None`` (default) defers to it.
    """
    kernel, factory = build_problem(problem)
    return TransferSession(
        kernel=kernel,
        source=get_machine(source),
        target=get_machine(target),
        compiler=get_compiler(compiler),
        nmax=nmax,
        pool_size=pool_size,
        openmp=openmp,
        threads=threads,
        seed=(problem, str(seed)),
        budget_seconds=budget_seconds,
        variants=variants,
        evaluator_factory=factory,
        learner_factory=learner_factory,
        spec=spec,
    )
