"""Shared experiment plumbing: the six problems and session builders."""

from __future__ import annotations

from typing import Callable

from repro.errors import ExperimentError
from repro.kernels import get_kernel
from repro.machines import get_compiler, get_machine
from repro.miniapps import MiniappEvaluator, make_hpl, make_raytracer
from repro.transfer.session import TransferSession

__all__ = ["PROBLEMS", "build_problem", "build_session", "XEON_PHI_THREADS"]

# The six problems of the evaluation: four SPAPT kernels driven through
# the mini-Orio, two mini-applications driven through the OpenTuner-
# style evaluator (Section IV-C).
PROBLEMS: tuple[str, ...] = ("MM", "ATAX", "LU", "COR", "HPL", "RT")

# Thread counts of the Xeon Phi experiments (Section V): "We set 8
# threads for Sandybridge and Westmere ... and 60 threads for the Phi."
XEON_PHI_THREADS = {"westmere": 8, "sandybridge": 8, "xeonphi": 60}


def build_problem(name: str):
    """(problem, evaluator_factory-or-None) for a problem name."""
    key = name.strip().upper()
    if key in ("MM", "ATAX", "LU", "COR"):
        return get_kernel(key.lower()), None
    if key == "HPL":
        model = make_hpl()
    elif key == "RT":
        model = make_raytracer()
    else:
        raise ExperimentError(f"unknown problem {name!r}; known: {PROBLEMS}")

    def factory(machine, clock, _model=model):
        return MiniappEvaluator(_model, machine, clock=clock)

    return model, factory


def build_session(
    problem: str,
    source: str,
    target: str,
    compiler: str = "gcc",
    seed: object = 0,
    nmax: int = 100,
    pool_size: int = 10_000,
    openmp: bool = False,
    threads: int | dict = 1,
    budget_seconds: float | None = None,
    variants: tuple[str, ...] = ("RSp", "RSb", "RSpf", "RSbf"),
    learner_factory: Callable | None = None,
) -> TransferSession:
    """A fully configured transfer session for one experiment cell."""
    kernel, factory = build_problem(problem)
    return TransferSession(
        kernel=kernel,
        source=get_machine(source),
        target=get_machine(target),
        compiler=get_compiler(compiler),
        nmax=nmax,
        pool_size=pool_size,
        openmp=openmp,
        threads=threads,
        seed=(problem, str(seed)),
        budget_seconds=budget_seconds,
        variants=variants,
        evaluator_factory=factory,
        learner_factory=learner_factory,
    )
