"""Table V — Xeon Phi experiments (icc 15.0.1 -O3, OpenMP).

Sources/targets {Westmere, Sandybridge, Xeon Phi}, kernels {MM, LU,
COR}, 8/8/60 threads.  Expected shape: MM flat (icc's idiom handling
makes the default variant best), LU enormous search-time speedups,
COR mixed (fast early progress, final best can lose to RS).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.experiments.harness import XEON_PHI_THREADS, build_session, grid_map
from repro.experiments.table4 import Table4Cell
from repro.utils.tables import format_table

__all__ = ["Table5Result", "run_table5", "PAPER_TABLE5"]

MACHINES5 = ("westmere", "sandybridge", "xeonphi")
KERNELS5 = ("MM", "LU", "COR")

# Published Table V (Prf.Imp, Srh.Imp), indexed [kernel][target][source].
PAPER_TABLE5: Mapping[str, Mapping[str, Mapping[str, tuple]]] = {
    "MM": {
        "westmere": {"sandybridge": (1.00, 165.49), "xeonphi": (0.92, 0.00)},
        "sandybridge": {"westmere": (1.00, 1.00), "xeonphi": (1.00, 1.00)},
        "xeonphi": {"westmere": (1.00, 1.00), "sandybridge": (1.00, 1.00)},
    },
    "LU": {
        "westmere": {"sandybridge": (1.09, 41.45), "xeonphi": (1.10, 168.89)},
        "sandybridge": {"westmere": (1.34, 514.49), "xeonphi": (1.17, 120.67)},
        "xeonphi": {"westmere": (1.63, 850.53), "sandybridge": (1.61, 850.53)},
    },
    "COR": {
        "westmere": {"sandybridge": (1.29, 24.95), "xeonphi": (1.06, 4.12)},
        "sandybridge": {"westmere": (1.17, 248.02), "xeonphi": (1.20, 5.90)},
        "xeonphi": {"westmere": (1.44, 0.52), "sandybridge": (0.49, 0.00)},
    },
}


@dataclass(frozen=True)
class Table5Result:
    cells: tuple[Table4Cell, ...]

    def cell(self, kernel: str, source: str, target: str) -> Table4Cell:
        for c in self.cells:
            if (c.problem, c.source, c.target) == (kernel, source, target):
                return c
        raise KeyError((kernel, source, target))

    def phi_lu_dominates(self) -> bool:
        """The headline Table V claim: LU transfers onto the Phi earn
        very large search-time speedups (order 10^2-10^3 in the paper)."""
        lu = [c for c in self.cells if c.problem == "LU" and c.target == "xeonphi"]
        if not lu:
            return False
        return max(c.search_time or 0.0 for c in lu) >= 100.0

    def mm_is_flat(self) -> bool:
        """The MM anomaly: icc's idiom handling flattens the landscape,
        so transfer earns no real performance speedups (paper: 0.92-1.00;
        residual quirks put single runs within ~20% of 1.0)."""
        mm = [c for c in self.cells if c.problem == "MM" and c.has_data]
        return bool(mm) and all((c.performance or 0.0) <= 1.2 for c in mm)

    def render(self) -> str:
        blocks = []
        present = [k for k in KERNELS5 if any(c.problem == k for c in self.cells)]
        for kernel in present:
            rows = []
            for target in MACHINES5:
                row: list = [target]
                for source in MACHINES5:
                    if source == target:
                        row.append("-")
                        continue
                    c = self.cell(kernel, source, target)
                    if not c.has_data:
                        row.append("-")
                    else:
                        mark = "*" if c.successful else " "
                        row.append(f"{c.performance:.2f}/{c.search_time:.2f}{mark}")
                rows.append(row)
            blocks.append(
                format_table(
                    ["Target \\ Source"] + list(MACHINES5),
                    rows,
                    title=f"Table V [{kernel}] — icc + OpenMP, Prf.Imp/Srh.Imp of RSb",
                )
            )
        footer = (
            f"MM flat (icc idiom): {self.mm_is_flat()}   "
            f"LU->Phi dominates: {self.phi_lu_dominates()}"
        )
        return "\n\n".join(blocks) + "\n" + footer


def _run_cell5(spec: tuple) -> Table4Cell:
    """One Table V cell — module level so it can run in a worker."""
    kernel, source, target, seed, nmax = spec
    session = build_session(
        kernel, source, target,
        compiler="icc",
        openmp=True,
        threads=dict(XEON_PHI_THREADS),
        seed=seed,
        nmax=nmax,
        variants=("RSb",),
    )
    outcome = session.run()
    report = outcome.report("RSb")
    paper = PAPER_TABLE5.get(kernel, {}).get(target, {}).get(source)
    return Table4Cell(
        kernel, source, target,
        report.performance, report.search_time,
        report.successful, paper,
    )


def run_table5(
    kernels: Sequence[str] = KERNELS5,
    seed: object = 0,
    nmax: int = 100,
    n_workers: int = 1,
    registry_path=None,
) -> Table5Result:
    """Run the full Table V grid through the supervised executor.

    The cells are independent and seeded, so ``n_workers > 1`` and
    journal-based resume (``registry_path``) are bit-identical to the
    serial uninterrupted run.
    """
    specs = [
        (kernel, source, target, seed, nmax)
        for kernel in kernels
        for target in MACHINES5
        for source in MACHINES5
        if source != target
    ]
    keys = [(k, s, t, str(sd), nm) for k, s, t, sd, nm in specs]
    cells = grid_map(
        "table5", _run_cell5, specs,
        keys=keys, n_workers=n_workers, registry_path=registry_path,
    )
    return Table5Result(cells=tuple(cells))
