"""Cross-machine transfer autotuning — the paper's contribution.

Workflow (Section III): collect ``Ta = {(x_i, y_i)}`` by running RS on
a source machine, fit a surrogate performance model (random forest by
default), then accelerate the search on a target machine with the
pruning (RSp) or biasing (RSb) strategy, comparing against plain RS and
the model-free controls (RSpf, RSbf) under common random numbers.
"""

from repro.transfer.surrogate import Surrogate
from repro.transfer.sanitize import SanitizationReport, sanitize_training
from repro.transfer.guard import GuardPolicy, ModelGuard, ModelHealthMonitor
from repro.transfer.metrics import SpeedupReport, speedups
from repro.transfer.session import TransferOutcome, TransferSession

__all__ = [
    "Surrogate",
    "SanitizationReport",
    "sanitize_training",
    "GuardPolicy",
    "ModelGuard",
    "ModelHealthMonitor",
    "SpeedupReport",
    "speedups",
    "TransferOutcome",
    "TransferSession",
]
