"""Sequential model-based optimization (SMBO) with optional transfer.

"Model-based search" is the last family in Section II's catalog of
deployed autotuning searches.  This implementation follows the classic
SMBO loop on the *target* machine:

1. evaluate an initial design (random, or — for transfer — the source
   surrogate's best pool picks);
2. fit a random forest on the target observations;
3. score a candidate pool with an acquisition function and evaluate the
   best candidate;
4. repeat from 2.

Acquisitions: ``"ei"`` (expected improvement under a Gaussian
approximation from the forest's ensemble spread), ``"lcb"`` (lower
confidence bound ``mu - kappa * sigma``), or ``"mean"`` (pure
exploitation).  Transfer seeding turns this into the natural marriage
of the paper's idea with model-based search: the source model buys a
good initial design, after which the target model takes over.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import BudgetExhaustedError, SearchError
from repro.ml.forest import RandomForestRegressor
from repro.search.result import EvaluationRecord, SearchTrace
from repro.searchspace.encoding import encode_cached
from repro.searchspace.space import Configuration, SearchSpace
from repro.transfer.surrogate import Surrogate
from repro.utils.rng import spawn_rng

__all__ = ["smbo_search"]

_SQRT2 = math.sqrt(2.0)


def _normal_cdf(z: np.ndarray) -> np.ndarray:
    return 0.5 * (1.0 + np.vectorize(math.erf)(z / _SQRT2))


def _normal_pdf(z: np.ndarray) -> np.ndarray:
    return np.exp(-0.5 * z * z) / math.sqrt(2.0 * math.pi)


def _expected_improvement(mu: np.ndarray, sigma: np.ndarray, best: float) -> np.ndarray:
    """EI for minimization in log space."""
    sigma = np.maximum(sigma, 1e-9)
    z = (best - mu) / sigma
    return (best - mu) * _normal_cdf(z) + sigma * _normal_pdf(z)


def smbo_search(
    evaluator,
    space: SearchSpace,
    nmax: int = 100,
    n_initial: int = 10,
    pool_size: int = 2_000,
    acquisition: str = "ei",
    kappa: float = 1.5,
    source_surrogate: Surrogate | None = None,
    source_data: Sequence[tuple[Configuration, float]] | None = None,
    refit_every: int = 1,
    seed: object = 0,
    name: str | None = None,
) -> SearchTrace:
    """Run SMBO on the target machine.

    With ``source_surrogate`` set, the initial design is the source
    model's best pool predictions (transfer-seeded SMBO); otherwise a
    random design.  ``source_data`` additionally blends rescaled source
    observations into every refit (full transfer).
    """
    if nmax < 1:
        raise SearchError(f"nmax must be >= 1, got {nmax}")
    if not 1 <= n_initial <= nmax:
        raise SearchError(f"n_initial must be in [1, nmax], got {n_initial}")
    if acquisition not in ("ei", "lcb", "mean"):
        raise SearchError(f"unknown acquisition {acquisition!r} (ei | lcb | mean)")
    if refit_every < 1:
        raise SearchError(f"refit_every must be >= 1, got {refit_every}")

    label = name or (
        f"SMBO-{acquisition}+transfer" if source_surrogate or source_data
        else f"SMBO-{acquisition}"
    )
    rng = spawn_rng("smbo", space.name, label, str(seed))
    clock = evaluator.clock
    trace = SearchTrace(algorithm=label)
    observations: list[tuple[Configuration, float]] = []
    evaluated: set[int] = set()

    def evaluate(config: Configuration) -> bool:
        try:
            measurement = evaluator.evaluate(config)
        except BudgetExhaustedError:
            trace.exhausted_budget = True
            return False
        evaluated.add(config.index)
        observations.append((config, measurement.runtime_seconds))
        trace.add(
            EvaluationRecord(
                config=config, runtime=measurement.runtime_seconds, elapsed=clock.now
            )
        )
        return True

    # ---- initial design ---------------------------------------------------
    if source_surrogate is not None:
        try:
            clock.advance(source_surrogate.fit_seconds)
            pool = space.sample(rng, min(pool_size, space.cardinality))
            preds = source_surrogate.predict(pool)
            clock.advance(source_surrogate.predict_seconds(len(pool)))
        except BudgetExhaustedError:
            trace.exhausted_budget = True
            return trace
        design = [pool[int(i)] for i in np.argsort(preds)[:n_initial]]
    else:
        design = space.sample(rng, min(n_initial, space.cardinality))
    for config in design:
        if trace.n_evaluations >= nmax or not evaluate(config):
            trace.total_elapsed = max(trace.total_elapsed, clock.now)
            return trace

    # ---- SMBO loop -----------------------------------------------------------
    model: RandomForestRegressor | None = None
    since_fit = refit_every  # force a first fit
    while trace.n_evaluations < nmax:
        if since_fit >= refit_every or model is None:
            since_fit = 0
            training = list(observations)
            if source_data:
                src_med = float(np.median([y for _, y in source_data]))
                tgt_med = float(np.median([y for _, y in observations]))
                scale = tgt_med / src_med if src_med > 0 else 1.0
                training += [(c, y * scale) for c, y in source_data]
            X = encode_cached(space, [c for c, _ in training])
            y = np.log([v for _, v in training])
            model = RandomForestRegressor(n_estimators=48, min_samples_leaf=2, seed=7)
            model.fit(X, y)
            clock.advance(0.5 + 2e-3 * len(training))  # simulated fit cost
        candidates = space.sample(rng, min(pool_size, space.cardinality))
        candidates = [c for c in candidates if c.index not in evaluated]
        if not candidates:
            break
        Xc = encode_cached(space, candidates)
        mu = model.predict(Xc)
        clock.advance(2e-4 * len(candidates))
        if acquisition == "mean":
            scores = -mu
        else:
            sigma = model.predict_std(Xc)
            if acquisition == "lcb":
                scores = -(mu - kappa * sigma)
            else:
                best = math.log(min(v for _, v in observations))
                scores = _expected_improvement(mu, sigma, best)
        chosen = candidates[int(np.argmax(scores))]
        if not evaluate(chosen):
            break
        since_fit += 1
    trace.total_elapsed = max(trace.total_elapsed, clock.now)
    return trace
