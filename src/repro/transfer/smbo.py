"""Sequential model-based optimization (SMBO) with optional transfer.

"Model-based search" is the last family in Section II's catalog of
deployed autotuning searches.  This implementation follows the classic
SMBO loop on the *target* machine:

1. evaluate an initial design (random, or — for transfer — the source
   surrogate's best pool picks);
2. fit a random forest on the target observations;
3. score a candidate pool with an acquisition function and evaluate the
   best candidate;
4. repeat from 2.

Acquisitions: ``"ei"`` (expected improvement under a Gaussian
approximation from the forest's ensemble spread), ``"lcb"`` (lower
confidence bound ``mu - kappa * sigma``), or ``"mean"`` (pure
exploitation).  Transfer seeding turns this into the natural marriage
of the paper's idea with model-based search: the source model buys a
good initial design, after which the target model takes over.

Composition: an :class:`~repro.search.proposers.SMBOProposer` (which
owns the design, the refits, and the acquisition scoring), ungated,
under the shared :class:`~repro.search.engine.SearchEngine` accounting.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import SearchError
from repro.search.engine import SearchEngine
from repro.search.proposers import SMBOProposer
from repro.search.protocols import SurrogateModel
from repro.search.result import SearchTrace
from repro.searchspace.space import Configuration, SearchSpace
from repro.spec import UNSET, TunerSpec, resolve_spec
from repro.utils.rng import spawn_rng

__all__ = ["smbo_search"]


def smbo_search(
    evaluator,
    space: SearchSpace,
    nmax: int = 100,
    n_initial: int | None = None,
    pool_size: int | None = None,
    acquisition: str | None = None,
    kappa: float | None = None,
    source_surrogate: SurrogateModel | None = None,
    source_data: Sequence[tuple[Configuration, float]] | None = None,
    refit_every: int | None = None,
    seed: object = 0,
    name: str | None = None,
    batch_size=UNSET,
    spec: TunerSpec | None = None,
) -> SearchTrace:
    """Run SMBO on the target machine.

    With ``source_surrogate`` set, the initial design is the source
    model's best pool predictions (transfer-seeded SMBO); otherwise a
    random design.  ``source_data`` additionally blends rescaled source
    observations into every refit (full transfer).

    ``spec`` (a :class:`repro.spec.TunerSpec`) supplies defaults for
    every SMBO knob not passed explicitly — ``n_initial``,
    ``pool_size``, ``acquisition``, ``kappa``, ``refit_every``, the
    refit forest, and the engine ``batch_size``.  The default spec
    reproduces historical behavior exactly (``n_initial=10``, a 2k
    pool, EI, a 48-tree refit forest).
    """
    spec = resolve_spec(spec)
    if n_initial is None:
        n_initial = spec.smbo.n_initial
    if pool_size is None:
        pool_size = spec.smbo.pool_size
    if acquisition is None:
        acquisition = spec.smbo.acquisition
    if kappa is None:
        kappa = spec.smbo.kappa
    if refit_every is None:
        refit_every = spec.smbo.refit_every
    if batch_size is UNSET:
        batch_size = spec.engine.batch_size
    if nmax < 1:
        raise SearchError(f"nmax must be >= 1, got {nmax}")
    if not 1 <= n_initial <= nmax:
        raise SearchError(f"n_initial must be in [1, nmax], got {n_initial}")
    if acquisition not in ("ei", "lcb", "mean"):
        raise SearchError(f"unknown acquisition {acquisition!r} (ei | lcb | mean)")
    if refit_every < 1:
        raise SearchError(f"refit_every must be >= 1, got {refit_every}")

    label = name or (
        f"SMBO-{acquisition}+transfer" if source_surrogate or source_data
        else f"SMBO-{acquisition}"
    )
    engine = SearchEngine(
        evaluator,
        SMBOProposer(
            space,
            spawn_rng("smbo", space.name, label, str(seed)),
            n_initial=n_initial,
            pool_size=pool_size,
            acquisition=acquisition,
            kappa=kappa,
            source_surrogate=source_surrogate,
            source_data=source_data,
            refit_every=refit_every,
            forest=spec.smbo.forest,
        ),
        nmax=nmax,
        name=label,
        space=space,
        failure_mode="raise",
        setup_abort_elapsed=False,
        batch_size=batch_size,
    )
    return engine.run()
