"""The end-to-end transfer experiment (Section IV-D run setup).

For a kernel α, a source machine γa and a target machine γb:

1. run RS on γa and collect ``Ta`` (nmax evaluations);
2. fit the surrogate ``Ma`` on ``Ta``;
3. on γb, run — under common random numbers — RS, RSp, RSb, and the
   model-free controls RSpf and RSbf, each on a fresh simulated clock;
4. report performance and search-time speedups of every variant
   against RS.

Hyperparameters β kept fixed across machines: input size, compiler
type and flags, thread count (Section III's partitioned-β setup).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.machines.compiler import CompilerModel, GCC
from repro.machines.spec import MachineSpec
from repro.ml.base import Regressor
from repro.orio.evaluator import OrioEvaluator
from repro.perf.simclock import SimClock
from repro.search.biasing import biased_search, hybrid_search
from repro.search.model_free import model_free_biased_search, model_free_pruned_search
from repro.search.pruning import pruned_search
from repro.search.random_search import random_search
from repro.search.result import SearchTrace
from repro.search.stream import SharedStream
from repro.spec import UNSET, TunerSpec, resolve_spec
from repro.transfer.metrics import SpeedupReport, speedups
from repro.transfer.surrogate import Surrogate
from repro.utils.stats import pearson, spearman
from repro.utils.tables import format_table

__all__ = ["TransferOutcome", "TransferSession"]


@dataclass
class TransferOutcome:
    """Everything a transfer experiment produced."""

    kernel: str
    source: str
    target: str
    source_trace: SearchTrace
    traces: dict[str, SearchTrace]  # target-machine traces by algorithm
    reports: dict[str, SpeedupReport] = field(default_factory=dict)

    @property
    def rs(self) -> SearchTrace:
        return self.traces["RS"]

    def report(self, variant: str) -> SpeedupReport:
        return self.reports[variant]

    def correlation(self) -> tuple[float, float]:
        """(Pearson, Spearman) between source and target runtimes of the
        commonly evaluated RS configurations — the paper's correlation
        panels.  Failed evaluations on either side are excluded (their
        penalty/censored runtimes are not measurements)."""
        source_by_cfg = {
            r.config.index: r.runtime for r in self.source_trace.successes()
        }
        xs, ys = [], []
        for r in self.rs.successes():
            if r.config.index in source_by_cfg:
                xs.append(source_by_cfg[r.config.index])
                ys.append(r.runtime)
        if len(xs) < 2:
            return float("nan"), float("nan")
        return pearson(xs, ys), spearman(xs, ys)

    def summary_table(self) -> str:
        """Human-readable speedup table (one Table IV block)."""
        rows = []
        for name, rep in self.reports.items():
            rows.append(
                [name, rep.performance, rep.search_time,
                 rep.best_variant_runtime, rep.successful]
            )
        return format_table(
            ["variant", "Prf.Imp", "Srh.Imp", "best (s)", "success"],
            rows,
            title=f"{self.kernel}: {self.source} -> {self.target}",
        )


class TransferSession:
    """Configure and run one transfer experiment.

    Parameters mirror Section IV-D: ``nmax=100`` evaluations,
    ``pool_size=10000``, ``delta_percent=20``.  ``seed`` controls the
    common-random-numbers stream; ``budget_seconds`` optionally bounds
    each search's simulated time (X-Gene style failures).

    Beyond the paper's four variants, ``variants`` also accepts
    ``"RSpb"`` — the prune-then-bias hybrid
    (:func:`~repro.search.biasing.hybrid_search`), which evaluates the
    biased pool ranking gated by the pruning cutoff ``∆``.

    ``guard`` (a :class:`repro.transfer.guard.GuardPolicy`) arms
    negative-transfer guardrails on the model-guided variants
    (RSp/RSb/RSpb): each run gets a fresh
    :class:`~repro.transfer.guard.ModelGuard` that scores the
    surrogate against target reality and degrades the search —
    ultimately to plain RS on the shared stream — when transfer turns
    out to hurt.  ``guard=None`` (default) runs every variant exactly
    as before.

    ``spec`` (a :class:`repro.spec.TunerSpec`) supplies defaults for
    ``pool_size``, ``delta_percent``, ``guard``, the surrogate forest,
    and the engine batch size; explicit keyword arguments beat it, and
    the default spec reproduces historical behavior byte-identically
    (golden-trace proven).
    """

    def __init__(
        self,
        kernel,
        source: MachineSpec,
        target: MachineSpec,
        compiler: CompilerModel = GCC,
        nmax: int = 100,
        pool_size: int | None = None,
        delta_percent: float | None = None,
        threads: int | dict[str, int] = 1,
        openmp: bool = False,
        seed: object = 0,
        budget_seconds: float | None = None,
        learner_factory: Callable[[], Regressor] | None = None,
        variants: tuple[str, ...] = ("RSp", "RSb", "RSpf", "RSbf"),
        evaluator_factory: Callable[[MachineSpec, SimClock], object] | None = None,
        evaluator_wrapper: Callable[[object], object] | None = None,
        guard=UNSET,
        spec: TunerSpec | None = None,
    ) -> None:
        # Spec-resolved knobs land as plain attributes (not lazy reads)
        # because callers — the ablation drivers — mutate them between
        # runs; explicit keyword arguments beat the spec.
        self.spec = resolve_spec(spec)
        self.kernel = kernel
        self.source = source
        self.target = target
        self.compiler = compiler
        self.nmax = nmax
        self.pool_size = pool_size if pool_size is not None else self.spec.pool.size
        self.delta_percent = (
            delta_percent if delta_percent is not None
            else self.spec.gate.delta_percent
        )
        self.threads = threads
        self.openmp = openmp
        self.seed = seed
        self.budget_seconds = budget_seconds
        self.learner_factory = learner_factory
        self.variants = variants
        self.evaluator_factory = evaluator_factory
        self.evaluator_wrapper = evaluator_wrapper
        self.guard = self.spec.guard if guard is UNSET else guard

    # ------------------------------------------------------------------
    def _threads_for(self, machine: MachineSpec) -> int:
        """Per-machine thread counts (the paper uses 8/8/60 in Fig. 5)."""
        if isinstance(self.threads, dict):
            return int(self.threads.get(machine.name, 1))
        return int(self.threads)

    def _evaluator(self, machine: MachineSpec):
        clock = SimClock(self.budget_seconds)
        if self.evaluator_factory is not None:
            evaluator = self.evaluator_factory(machine, clock)
        else:
            evaluator = OrioEvaluator(
                self.kernel,
                machine,
                compiler=self.compiler,
                threads=self._threads_for(machine),
                openmp=self.openmp,
                clock=clock,
            )
        if self.evaluator_wrapper is not None:
            # Reliability layers (fault injection, retry/backoff, circuit
            # breaking) wrap here so every search sees the same hazards.
            evaluator = self.evaluator_wrapper(evaluator)
        return evaluator

    def _stream(self) -> SharedStream:
        return SharedStream(self.kernel.space, seed=self.seed)

    def collect_source_data(self) -> SearchTrace:
        """Step 1: RS on the source machine, producing Ta."""
        return random_search(
            self._evaluator(self.source), self._stream(), nmax=self.nmax,
            name="RS(source)", spec=self.spec,
        )

    def fit_surrogate(self, source_trace: SearchTrace) -> Surrogate:
        """Step 2: fit Ma on Ta (forest shaped by the session spec
        unless an explicit ``learner_factory`` overrides it)."""
        if self.learner_factory is not None:
            surrogate = Surrogate(
                self.kernel.space, learner_factory=self.learner_factory
            )
        else:
            surrogate = Surrogate(self.kernel.space, spec=self.spec.forest)
        return surrogate.fit(source_trace.training_data())

    def run(self, checkpoint_path=None) -> TransferOutcome:
        """Steps 1-4; returns the complete outcome.

        ``checkpoint_path`` optionally persists every finished search
        trace (JSON, see :mod:`repro.reliability.checkpoint`): if the
        session is interrupted — the paper's X-Gene outage scenario —
        re-running with the same path skips every completed phase
        instead of re-evaluating it.  Each search runs on a fresh clock
        and a seed-replayed stream, so the resumed session's remaining
        phases are bit-identical to an uninterrupted run.
        """
        done: dict[str, SearchTrace] = {}
        if checkpoint_path is not None:
            from repro.reliability.checkpoint import load_traces

            done = load_traces(checkpoint_path, self.kernel.space)

        def _save(traces: dict[str, SearchTrace]) -> None:
            if checkpoint_path is not None:
                from repro.reliability.checkpoint import save_traces

                save_traces(checkpoint_path, traces)

        if "RS(source)" in done:
            source_trace = done["RS(source)"]
        else:
            source_trace = self.collect_source_data()
            done["RS(source)"] = source_trace
            _save(done)
        surrogate = self.fit_surrogate(source_trace)
        training = source_trace.training_data()

        traces: dict[str, SearchTrace] = {}
        # Common random numbers: every stream-driven search replays the
        # same sequence (fresh SharedStream instances share the seed).
        runners: dict[str, Callable[[], SearchTrace]] = {
            "RS": lambda: random_search(
                self._evaluator(self.target), self._stream(), nmax=self.nmax,
                spec=self.spec,
            ),
            "RSp": lambda: pruned_search(
                self._evaluator(self.target),
                self._stream(),
                surrogate,
                nmax=self.nmax,
                pool_size=self.pool_size,
                delta_percent=self.delta_percent,
                guard=self.guard,
                spec=self.spec,
            ),
            "RSb": lambda: biased_search(
                self._evaluator(self.target),
                self.kernel.space,
                surrogate,
                nmax=self.nmax,
                pool_size=self.pool_size,
                guard=self.guard,
                stream=self._stream() if self.guard is not None else None,
                spec=self.spec,
            ),
            "RSpb": lambda: hybrid_search(
                self._evaluator(self.target),
                self.kernel.space,
                surrogate,
                nmax=self.nmax,
                pool_size=self.pool_size,
                delta_percent=self.delta_percent,
                guard=self.guard,
                stream=self._stream() if self.guard is not None else None,
                spec=self.spec,
            ),
            "RSpf": lambda: model_free_pruned_search(
                self._evaluator(self.target), training, nmax=self.nmax,
                delta_percent=self.delta_percent, spec=self.spec,
            ),
            "RSbf": lambda: model_free_biased_search(
                self._evaluator(self.target), training, nmax=self.nmax,
                spec=self.spec,
            ),
        }
        for name in ("RS",) + tuple(v for v in self.variants if v in runners):
            if name in done:
                traces[name] = done[name]
                continue
            traces[name] = runners[name]()
            done[name] = traces[name]
            _save(done)

        outcome = TransferOutcome(
            kernel=self.kernel.name,
            source=self.source.name,
            target=self.target.name,
            source_trace=source_trace,
            traces=traces,
        )
        for name, trace in traces.items():
            if name != "RS":
                outcome.reports[name] = speedups(traces["RS"], trace)
        return outcome
