"""Surrogate performance models (Section III-A).

A :class:`Surrogate` pairs a regression learner with a search space's
numeric encoding and tracks the simulated time its fitting and
prediction cost — those seconds are charged to the search clock, so
model overhead is honestly reflected in search-time speedups (the
paper notes pool generation/prediction "should be within few seconds").
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.errors import ModelError, NotFittedError, SourceDataError
from repro.ml.base import Regressor
from repro.ml.forest import RandomForestRegressor
from repro.searchspace.encoding import encoding_cache
from repro.searchspace.space import Configuration, SearchSpace
from repro.spec import ForestSpec
from repro.transfer.sanitize import SanitizationReport, sanitize_training

__all__ = ["Surrogate"]

# Simulated overhead model: fitting scales with training rows, batch
# prediction with query rows.  Values are representative of an R/Python
# random-forest on a laptop of the paper's era.
_FIT_BASE_S = 0.5
_FIT_PER_ROW_S = 5e-3
_PREDICT_BASE_S = 0.05
_PREDICT_PER_ROW_S = 2e-4


class Surrogate:
    """An empirical performance model ``M`` over one search space.

    Parameters
    ----------
    space:
        The configuration space whose encoding defines the features.
    learner:
        Any :class:`repro.ml.base.Regressor`; defaults to the paper's
        random forest, built from ``spec``.
    spec:
        :class:`repro.spec.ForestSpec` hyperparameters for the default
        forest.  Mutually exclusive with ``learner``/``learner_factory``
        (those supply a learner outright; the spec only shapes the
        default one).
    log_target:
        Fit ``log(y)`` instead of ``y`` — runtimes are positive with
        multiplicative structure, so this is the better-behaved target
        (predictions are transformed back).
    """

    def __init__(
        self,
        space: SearchSpace,
        learner: Regressor | None = None,
        learner_factory: Callable[[], Regressor] | None = None,
        log_target: bool = True,
        spec: "ForestSpec | None" = None,
    ) -> None:
        if learner is not None and learner_factory is not None:
            raise ModelError("pass either learner or learner_factory, not both")
        if spec is not None and (learner is not None or learner_factory is not None):
            raise ModelError(
                "pass either spec or an explicit learner/learner_factory, "
                "not both"
            )
        if learner is None:
            learner = (
                learner_factory() if learner_factory
                else RandomForestRegressor.from_spec(spec)
            )
        self.space = space
        self.learner = learner
        self.log_target = log_target
        self.fit_seconds = 0.0  # simulated cost of the last fit
        self.n_censored = 0  # censored samples seen by the last fit
        self.sanitization: SanitizationReport | None = None  # last fit's screen
        self._fitted = False
        # Shared per-space encoding cache plus a last-pool prediction
        # memo (invalidated by fit) — repeated scoring of the same pool
        # between refits costs one lookup instead of a forest traversal.
        self._encoding = encoding_cache(space)
        self._predict_memo: tuple[tuple[int, ...], np.ndarray] | None = None

    # ------------------------------------------------------------------
    def fit(
        self,
        training: Sequence[tuple[Configuration, float]],
        censored: str = "drop",
        impute_factor: float = 2.0,
        sanitize: str = "raise",
    ) -> "Surrogate":
        """Fit from ``(configuration, runtime)`` pairs (the set Ta).

        Source rows are screened first by
        :func:`repro.transfer.sanitize.sanitize_training` — NaN/-inf
        runtimes, non-positive runtimes under a log target,
        configurations from a foreign space, and exact duplicate rows
        are structural defects, not measurements.  ``sanitize``
        selects the policy: ``"raise"`` (default) rejects the whole
        set with a :class:`~repro.errors.SourceDataError`, ``"drop"``
        removes the offending rows (the report lands on
        ``self.sanitization``), ``"off"`` skips the screen.

        Failed/censored samples — pairs whose runtime is ``+inf``,
        as produced by ``SearchTrace.training_data(include_failed=True)``
        on a fault-afflicted trace — are handled per ``censored``:

        * ``"drop"`` (default): excluded from the fit;
        * ``"impute"``: replaced by ``impute_factor`` times the largest
          finite runtime, a pessimistic stand-in that keeps the model
          steering away from the failing region.

        Finite censored bounds (timeout caps) are already usable
        pessimistic values and train as-is.  The simulated fit cost is
        charged for the rows actually fitted.
        """
        if censored not in ("drop", "impute"):
            raise ModelError(f"censored must be 'drop' or 'impute', got {censored!r}")
        if impute_factor < 1.0:
            raise ModelError(f"impute_factor must be >= 1, got {impute_factor}")
        if sanitize not in ("raise", "drop", "off"):
            raise ModelError(
                f"sanitize must be 'raise', 'drop', or 'off', got {sanitize!r}"
            )
        if not training:
            raise ModelError("cannot fit a surrogate on an empty training set")
        if sanitize == "off":
            self.sanitization = None
            training = list(training)
        else:
            training, self.sanitization = sanitize_training(
                self.space,
                training,
                require_positive=self.log_target,
                on_invalid=sanitize,
            )
            if not training:
                raise SourceDataError(
                    "no usable source rows: sanitization removed every "
                    f"training sample ({self.sanitization.summary()})",
                    report=self.sanitization,
                )
        y_all = np.array([t for _, t in training], dtype=float)
        finite = np.isfinite(y_all)
        self.n_censored = int(np.sum(~finite))
        if not np.any(finite):
            raise SourceDataError(
                "cannot fit a surrogate: every training sample is censored "
                f"(n={len(training)}, censored={censored!r} has nothing "
                "finite to drop or impute from)",
                report=self.sanitization,
            )
        if censored == "drop":
            configs = [c for (c, _), ok in zip(training, finite) if ok]
            y = y_all[finite]
        else:
            configs = [c for c, _ in training]
            y = np.where(finite, y_all, impute_factor * float(np.max(y_all[finite])))
        if np.any(y <= 0) and self.log_target:
            raise ModelError("log-target surrogate requires positive runtimes")
        X = self._encoding.encode_many(configs)
        self.learner.fit(X, np.log(y) if self.log_target else y)
        self.fit_seconds = _FIT_BASE_S + _FIT_PER_ROW_S * len(configs)
        self._fitted = True
        self._predict_memo = None
        return self

    def predict(self, configs: Sequence[Configuration]) -> np.ndarray:
        """Predicted runtimes for a batch of configurations.

        The result is read-only (it may be served from the memo shared
        with later calls); copy before mutating.
        """
        if not self._fitted:
            raise NotFittedError("surrogate has not been fitted")
        if len(configs) == 0:
            return np.empty(0)
        key = tuple(c.index for c in configs)
        memo = self._predict_memo
        if memo is not None and memo[0] == key:
            return memo[1]
        X = self._encoding.encode_many(list(configs))
        pred = self.learner.predict(X)
        out = np.exp(pred) if self.log_target else pred
        out.flags.writeable = False
        self._predict_memo = (key, out)
        return out

    def predict_indices(self, indices: Sequence[int]) -> np.ndarray:
        """Predicted runtimes for configurations given by linear index.

        Identical to ``predict([space.config_at(i) for i in indices])``
        — the memo key is the same index tuple, so the two entry points
        share hits — but the features come from the bulk
        ``encode_indices`` path with no Configuration objects built.
        """
        if not self._fitted:
            raise NotFittedError("surrogate has not been fitted")
        if len(indices) == 0:
            return np.empty(0)
        key = tuple(int(i) for i in indices)
        memo = self._predict_memo
        if memo is not None and memo[0] == key:
            return memo[1]
        X = self._encoding.encode_indices(key)
        pred = self.learner.predict(X)
        out = np.exp(pred) if self.log_target else pred
        out.flags.writeable = False
        self._predict_memo = (key, out)
        return out

    def predict_one(self, config: Configuration) -> float:
        return float(self.predict([config])[0])

    def predict_std(self, configs: Sequence[Configuration]) -> np.ndarray:
        """Ensemble spread of the learner's prediction, in model space.

        For the default random forest this is the per-tree standard
        deviation — in *log* space when ``log_target`` — which the
        guard layer uses to check whether prediction intervals actually
        cover observed runtimes.  Raises :class:`ModelError` when the
        learner exposes no ensemble spread (check :attr:`supports_std`).
        """
        if not self._fitted:
            raise NotFittedError("surrogate has not been fitted")
        fn = getattr(self.learner, "predict_std", None)
        if not callable(fn):
            raise ModelError(
                f"{type(self.learner).__name__} exposes no predict_std"
            )
        if len(configs) == 0:
            return np.empty(0)
        return fn(self._encoding.encode_many(list(configs)))

    @property
    def supports_std(self) -> bool:
        """Whether the learner can report an ensemble spread."""
        return callable(getattr(self.learner, "predict_std", None))

    def cache_stats(self) -> dict[str, int]:
        """Hit/size counters of the shared per-space encoding cache.

        Diagnostic only (process-local, shared across every surrogate
        on this space) — surfaced by the guard's audit log, never
        persisted in traces or checkpoints.
        """
        return self._encoding.stats()

    def predict_seconds(self, n: int) -> float:
        """Simulated wall time of predicting ``n`` configurations."""
        if n < 0:
            raise ModelError(f"cannot predict a negative count: {n}")
        return _PREDICT_BASE_S + _PREDICT_PER_ROW_S * n

    @property
    def is_fitted(self) -> bool:
        return self._fitted
