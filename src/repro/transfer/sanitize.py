"""Source-trace validation — the data-integrity front door of transfer.

A source trace is foreign data: it may come from another machine, an
older code version, or a partially corrupted results file.  Feeding a
structurally broken row into :meth:`repro.transfer.Surrogate.fit`
either crashes deep inside numpy (``log`` of a negative runtime) or —
worse — silently fits a misleading model, which is exactly the
negative-transfer failure mode the guard layer exists to contain.
:func:`sanitize_training` screens every ``(configuration, runtime)``
pair *before* the learner sees it and classifies each problem:

* **NaN or -inf runtimes** — never meaningful measurements;
* **non-positive runtimes** under a log target (``require_positive``)
  — ``log(y)`` is undefined for them;
* **out-of-space configurations** — rows encoded against a different
  :class:`~repro.searchspace.space.SearchSpace` would be scrambled by
  this space's encoding;
* **exact duplicate rows** — identical ``(config index, runtime)``
  pairs silently re-weight the learner.

``+inf`` runtimes pass through untouched: they are *censored*
measurements (timeouts, failures) with a documented policy of their
own in ``Surrogate.fit(censored=...)``.

The policy is explicit: ``on_invalid="raise"`` (the default in
``Surrogate.fit``) raises a structured
:class:`~repro.errors.SourceDataError` naming every category found,
while ``on_invalid="drop"`` removes the offending rows and records the
counts in the returned :class:`SanitizationReport`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import SearchSpaceError, SourceDataError
from repro.searchspace.space import Configuration, SearchSpace

__all__ = ["SanitizationReport", "sanitize_training"]

_POLICIES = ("raise", "drop")


def _belongs(space: SearchSpace, config: object) -> bool:
    """Whether ``config`` is valid in ``space``.

    Identity covers the common case; otherwise the row's values are
    re-linearized in ``space`` — pooled multi-machine training
    legitimately carries configurations from an *equal* space built by
    an independent ``get_kernel`` call, and those must not be rejected.
    """
    if not isinstance(config, Configuration):
        return False
    if config.space is space:
        return True
    try:
        return space.configuration(dict(config)).index == config.index
    except SearchSpaceError:
        return False


@dataclass
class SanitizationReport:
    """What :func:`sanitize_training` found in one training set."""

    n_input: int = 0
    n_kept: int = 0
    n_nan: int = 0
    n_nonpositive: int = 0
    n_out_of_space: int = 0
    n_duplicate: int = 0
    policy: str = "raise"
    #: one human-readable line per offending row, in input order
    findings: list[str] = field(default_factory=list)

    @property
    def n_invalid(self) -> int:
        return self.n_nan + self.n_nonpositive + self.n_out_of_space + self.n_duplicate

    @property
    def clean(self) -> bool:
        return self.n_invalid == 0

    def summary(self) -> str:
        parts = []
        if self.n_nan:
            parts.append(f"{self.n_nan} NaN/-inf runtime(s)")
        if self.n_nonpositive:
            parts.append(f"{self.n_nonpositive} non-positive runtime(s)")
        if self.n_out_of_space:
            parts.append(f"{self.n_out_of_space} out-of-space configuration(s)")
        if self.n_duplicate:
            parts.append(f"{self.n_duplicate} duplicate row(s)")
        if not parts:
            return f"{self.n_input} row(s), all valid"
        return f"{self.n_input} row(s): " + ", ".join(parts)


def sanitize_training(
    space: SearchSpace,
    training: Sequence[tuple[Configuration, float]],
    require_positive: bool = True,
    on_invalid: str = "raise",
) -> tuple[list[tuple[Configuration, float]], SanitizationReport]:
    """Validate ``(configuration, runtime)`` pairs against ``space``.

    Returns ``(kept_rows, report)``.  Under ``on_invalid="raise"`` any
    finding raises :class:`~repro.errors.SourceDataError` (with the
    report attached); under ``"drop"`` offending rows are removed —
    duplicates keep their first occurrence — and the counts land in
    the report.
    """
    if on_invalid not in _POLICIES:
        raise SourceDataError(
            f"on_invalid must be one of {_POLICIES}, got {on_invalid!r}"
        )
    report = SanitizationReport(n_input=len(training), policy=on_invalid)
    kept: list[tuple[Configuration, float]] = []
    seen: set[tuple[int, float]] = set()
    for row_no, (config, runtime) in enumerate(training):
        runtime = float(runtime)
        problem = None
        if not _belongs(space, config):
            problem = "out_of_space"
            report.n_out_of_space += 1
        elif math.isnan(runtime) or runtime == -math.inf:
            problem = "nan"
            report.n_nan += 1
        elif require_positive and runtime <= 0:
            problem = "nonpositive"
            report.n_nonpositive += 1
        elif (config.index, runtime) in seen:
            problem = "duplicate"
            report.n_duplicate += 1
        if problem is None:
            seen.add((config.index, runtime))
            kept.append((config, runtime))
        else:
            report.findings.append(
                f"row {row_no}: {problem} (runtime={runtime!r})"
            )
    report.n_kept = len(kept)
    if not report.clean and on_invalid == "raise":
        raise SourceDataError(
            f"source training data rejected — {report.summary()}", report=report
        )
    return kept, report
