"""Online transfer search: refine the surrogate with target data.

The paper's RSb fixes the surrogate once, from source data only.  Its
conclusion asks whether the approach generalizes further; the natural
next step (standard in later systems like ytopt/GPTune) is to *keep
learning on the target*: start from the source-trained model, and
periodically refit on the union of source data and the target
observations gathered so far, re-ranking the remaining pool.

``online_biased_search`` implements that loop.  With ``refit_every``
larger than ``nmax`` it degenerates to exactly RSb, which the tests
exploit.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import BudgetExhaustedError, SearchError
from repro.search.result import EvaluationRecord, SearchTrace
from repro.searchspace.space import Configuration, SearchSpace
from repro.transfer.surrogate import Surrogate
from repro.utils.rng import spawn_rng

__all__ = ["online_biased_search"]


def online_biased_search(
    evaluator,
    space: SearchSpace,
    source_data: Sequence[tuple[Configuration, float]],
    nmax: int = 100,
    pool_size: int = 10_000,
    refit_every: int = 20,
    source_weight: float = 0.5,
    surrogate_factory=None,
    name: str = "RSb+online",
) -> SearchTrace:
    """RSb with periodic surrogate refits on target observations.

    Parameters
    ----------
    source_data:
        The (configuration, runtime) pairs from the source machine, Ta.
    refit_every:
        Refit and re-rank after this many target evaluations.
    source_weight:
        Source runtimes are rescaled toward the target's scale before
        each refit (sources run at different absolute speeds); this
        weight further multiplies the source sample count by taking a
        subsample, so the target data gradually dominates.
    surrogate_factory:
        Callable returning a fresh :class:`Surrogate`; defaults to the
        random-forest surrogate.
    """
    if nmax < 1:
        raise SearchError(f"nmax must be >= 1, got {nmax}")
    if refit_every < 1:
        raise SearchError(f"refit_every must be >= 1, got {refit_every}")
    if not source_data:
        raise SearchError("online transfer needs source data")
    if not 0.0 <= source_weight <= 1.0:
        raise SearchError(f"source_weight must be in [0, 1], got {source_weight}")

    factory = surrogate_factory or (lambda: Surrogate(space))
    clock = evaluator.clock
    rng = spawn_rng("online-rsb", space.name, name)

    trace = SearchTrace(algorithm=name)
    target_obs: list[tuple[Configuration, float]] = []

    def fit_and_rank(pool: list[Configuration]) -> list[Configuration]:
        """Fit on blended data, return pool sorted by prediction."""
        training: list[tuple[Configuration, float]]
        if not target_obs:
            training = list(source_data)
        else:
            # Rescale the source runtimes onto the target scale using
            # the configurations observed on both (or medians).
            src_med = float(np.median([y for _, y in source_data]))
            tgt_med = float(np.median([y for _, y in target_obs]))
            scale = tgt_med / src_med if src_med > 0 else 1.0
            keep = max(1, int(round(source_weight * len(source_data))))
            idx = rng.choice(len(source_data), size=keep, replace=False)
            training = [
                (source_data[i][0], source_data[i][1] * scale) for i in idx
            ]
            training += target_obs
        surrogate = factory().fit(training)
        clock.advance(surrogate.fit_seconds)
        preds = surrogate.predict(pool)
        clock.advance(surrogate.predict_seconds(len(pool)))
        order = np.argsort(preds, kind="stable")
        return [pool[int(i)] for i in order]

    pool = space.sample(rng, min(pool_size, space.cardinality))
    try:
        ranked = fit_and_rank(pool)
    except BudgetExhaustedError:
        trace.exhausted_budget = True
        return trace

    evaluated: set[int] = set()
    since_refit = 0
    while trace.n_evaluations < nmax and ranked:
        config = ranked.pop(0)
        if config.index in evaluated:
            continue
        try:
            measurement = evaluator.evaluate(config)
        except BudgetExhaustedError:
            trace.exhausted_budget = True
            break
        evaluated.add(config.index)
        target_obs.append((config, measurement.runtime_seconds))
        trace.add(
            EvaluationRecord(
                config=config,
                runtime=measurement.runtime_seconds,
                elapsed=clock.now,
            )
        )
        since_refit += 1
        if since_refit >= refit_every and trace.n_evaluations < nmax:
            since_refit = 0
            remaining = [c for c in ranked if c.index not in evaluated]
            try:
                ranked = fit_and_rank(remaining)
            except BudgetExhaustedError:
                trace.exhausted_budget = True
                break
    trace.total_elapsed = max(trace.total_elapsed, clock.now)
    trace.metadata["refits"] = max(0, (trace.n_evaluations - 1) // refit_every)
    return trace
