"""Speedup metrics (Section IV-D).

The paper's defining example: RS takes 100 s of search time to find its
best configuration (run time 5 s); RSb finds a 3 s configuration in
80 s total, but already reached a <=5 s configuration after 50 s.  Then
the *performance speedup* of RSb is 5/3 ≈ 1.6X and the *search-time
speedup* is 100/50 = 2X.  A variant that never matches RS's best
quality gets a search-time speedup of 0 (the 0.00 entries of Tables IV
and V), and a variant is *successful* when Prf >= 1.0 and Srh > 1.0.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SearchError
from repro.search.result import SearchTrace

__all__ = ["SpeedupReport", "speedups"]


@dataclass(frozen=True)
class SpeedupReport:
    """Performance and search-time speedup of a variant over RS."""

    variant: str
    performance: float  # Prf.Imp: best_RS / best_variant
    search_time: float  # Srh.Imp: t_RS(best_RS) / t_variant(reach best_RS); 0 if never
    best_rs_runtime: float
    best_variant_runtime: float
    rs_time_of_best: float
    variant_time_to_match: float | None

    @property
    def successful(self) -> bool:
        """The paper's success criterion: Prf >= 1.0 and Srh > 1.0."""
        return self.performance >= 1.0 and self.search_time > 1.0

    def row(self) -> list:
        """(variant, Prf.Imp, Srh.Imp, success) — a Table IV cell."""
        return [self.variant, self.performance, self.search_time, self.successful]


def speedups(rs: SearchTrace, variant: SearchTrace) -> SpeedupReport:
    """Compute the paper's two speedups of ``variant`` over ``rs``.

    Both traces must come from searches on the *same* target machine
    (comparing runtimes across machines is meaningless).
    """
    if not rs.successes():
        raise SearchError("RS trace has no successful evaluations")
    if not variant.successes():
        # Complete failure (e.g. budget exhausted before any evaluation,
        # or every evaluation failed): no performance, no search speedup.
        return SpeedupReport(
            variant=variant.algorithm,
            performance=0.0,
            search_time=0.0,
            best_rs_runtime=rs.best_runtime,
            best_variant_runtime=float("inf"),
            rs_time_of_best=rs.time_of_best(),
            variant_time_to_match=None,
        )
    best_rs = rs.best_runtime
    best_variant = variant.best_runtime
    performance = best_rs / best_variant
    rs_time = rs.time_of_best()
    match_time = variant.time_to_reach(best_rs)
    if match_time is None:
        search_time = 0.0
    elif match_time <= 0.0:
        search_time = float("inf")  # matched at zero elapsed cost (degenerate)
    else:
        search_time = rs_time / match_time
    return SpeedupReport(
        variant=variant.algorithm,
        performance=performance,
        search_time=search_time,
        best_rs_runtime=best_rs,
        best_variant_runtime=best_variant,
        rs_time_of_best=rs_time,
        variant_time_to_match=match_time,
    )
