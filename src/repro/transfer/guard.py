"""Online model-health monitoring — negative-transfer guardrails.

The paper's transfer variants (RSp/RSb/RSpb) follow a source-machine
surrogate unconditionally, and its own results show that is not always
safe: when source and target differ enough, the model prunes the good
region or biases toward the bad one and the variant *loses* to plain
random search (Prf < 1.0).  This module scores the surrogate against
reality while a guarded search runs, and demotes it the moment the
evidence says it is misleading:

* :class:`ModelHealthMonitor` accumulates ``(predicted, observed)``
  pairs from the target machine and reports a streaming Spearman rank
  correlation, the empirical coverage of ``predict_std`` prediction
  intervals, and the best runtime seen — the regret baseline for
  pruning audits.
* :class:`GuardPolicy` is the immutable configuration of a three-state
  machine — ``TRUSTED → SUSPECT → REVOKED`` with hysteresis (entry /
  revoke / recovery patience counters) and a minimum-evidence floor so
  a few noisy early measurements cannot flip it.
* :class:`ModelGuard` is the per-run instance: it owns the monitor,
  the state, the audit bookkeeping, and a JSON-exact
  ``state_dict``/``load_state`` pair so guard decisions survive
  checkpoint/resume bit-identically.

Everything here is pure bookkeeping over measurements the search
already paid for — the guard charges nothing to the simulated clock,
draws nothing from the shared stream, and is therefore deterministic
under common random numbers.  The search-side wrappers that act on the
guard's verdict live in :mod:`repro.search.guarded`; they duck-type
the guard, so this module stays import-free of the search layer's
internals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ModelError, PolicyError

__all__ = [
    "TRUSTED",
    "SUSPECT",
    "REVOKED",
    "GUARD_STATES",
    "spearman_rho",
    "ModelHealthMonitor",
    "GuardPolicy",
    "ModelGuard",
]

#: the model's predictions are healthy; the search runs unmodified.
TRUSTED = "trusted"
#: evidence against the model — hedge: widen pruning, flatten biasing.
SUSPECT = "suspect"
#: the model is harmful; fall back to plain RS on the shared stream.
REVOKED = "revoked"

GUARD_STATES = (TRUSTED, SUSPECT, REVOKED)


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def _average_ranks(values: Sequence[float]) -> list[float]:
    """1-based ranks with ties sharing their average rank."""
    n = len(values)
    order = sorted(range(n), key=values.__getitem__)
    ranks = [0.0] * n
    i = 0
    while i < n:
        j = i
        while j + 1 < n and values[order[j + 1]] == values[order[i]]:
            j += 1
        avg = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = avg
        i = j + 1
    return ranks


def spearman_rho(a: Sequence[float], b: Sequence[float]) -> float | None:
    """Spearman rank correlation; ``None`` when undefined (constant side)."""
    if len(a) != len(b):
        raise ModelError("spearman_rho: length mismatch")
    if len(a) < 2:
        return None
    ra = np.asarray(_average_ranks(a))
    rb = np.asarray(_average_ranks(b))
    sa = ra - ra.mean()
    sb = rb - rb.mean()
    denom = math.sqrt(float(sa @ sa) * float(sb @ sb))
    if denom == 0.0:
        return None
    return float(sa @ sb) / denom


class ModelHealthMonitor:
    """Streaming statistics of surrogate predictions vs. target reality.

    Fed one observation at a time by :class:`ModelGuard`; every
    statistic is recomputed from the stored pairs, so a monitor
    restored from :meth:`state_dict` reports bit-identical values.
    """

    def __init__(self) -> None:
        self.predicted: list[float] = []
        self.observed: list[float] = []
        self.residuals: list[float] = []  # model-space observed - predicted
        self.sigmas: list[float] = []  # predict_std at each residual
        self.best_observed: float | None = None
        self.n_failed = 0

    @property
    def n_pairs(self) -> int:
        return len(self.predicted)

    def update(
        self,
        predicted: float,
        observed: float,
        residual: float | None = None,
        sigma: float | None = None,
    ) -> None:
        self.predicted.append(float(predicted))
        self.observed.append(float(observed))
        if residual is not None and sigma is not None:
            self.residuals.append(float(residual))
            self.sigmas.append(float(sigma))

    def note_observed(self, runtime: float) -> None:
        """Track the best successful runtime seen (regret baseline)."""
        if self.best_observed is None or runtime < self.best_observed:
            self.best_observed = float(runtime)

    def rho(self) -> float | None:
        """Rank correlation between predictions and observations."""
        return spearman_rho(self.predicted, self.observed)

    def coverage(self, z_critical: float) -> float | None:
        """Fraction of observations within ±``z_critical`` model-space
        standard deviations of the prediction, after removing the
        *systematic* source→target offset (the running median
        residual): cross-machine transfer shifts every runtime by the
        machines' scale ratio, which rank-based search does not care
        about — what calibration must catch is residual *dispersion*
        far beyond the model's claimed uncertainty.  ``None`` without
        ``predict_std`` evidence."""
        if not self.residuals:
            return None
        center = _median(self.residuals)
        inside = sum(
            1
            for r, s in zip(self.residuals, self.sigmas)
            if abs(r - center) <= z_critical * s
        )
        return inside / len(self.residuals)

    def state_dict(self) -> dict:
        return {
            "predicted": list(self.predicted),
            "observed": list(self.observed),
            "residuals": list(self.residuals),
            "sigmas": list(self.sigmas),
            "best_observed": self.best_observed,
            "n_failed": self.n_failed,
        }

    def load_state(self, state: dict) -> None:
        self.predicted = [float(v) for v in state["predicted"]]
        self.observed = [float(v) for v in state["observed"]]
        self.residuals = [float(v) for v in state["residuals"]]
        self.sigmas = [float(v) for v in state["sigmas"]]
        best = state["best_observed"]
        self.best_observed = None if best is None else float(best)
        self.n_failed = int(state["n_failed"])


@dataclass(frozen=True)
class GuardPolicy:
    """Immutable thresholds of the guard's three-state machine.

    The machine moves on *streaks* of consecutive verdicts, never on a
    single update: ``suspect_patience`` unhealthy updates demote
    ``TRUSTED → SUSPECT``, ``revoke_patience`` strongly-negative ones
    (or ``regret_limit`` pruning-audit regrets) demote ``SUSPECT →
    REVOKED``, and ``recover_patience`` healthy updates restore
    ``SUSPECT → TRUSTED`` — the hysteresis gap between ``suspect_rho``
    and ``recover_rho`` keeps it from flapping.  ``REVOKED`` is
    terminal for the run: a model caught inverting the target's
    ordering does not earn trust back.  No verdict is rendered before
    ``min_evidence`` pairs exist.
    """

    min_evidence: int = 8
    suspect_rho: float = 0.1
    revoke_rho: float = 0.0
    recover_rho: float = 0.5
    suspect_patience: int = 2
    revoke_patience: int = 2
    recover_patience: int = 3
    min_coverage: float = 0.3
    z_critical: float = 3.0
    widen_factor: float = 2.0
    audit_every: int = 4
    regret_limit: int = 2
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.min_evidence < 2:
            raise PolicyError("min_evidence must be >= 2")
        for name in ("revoke_rho", "suspect_rho", "recover_rho"):
            if not -1.0 < getattr(self, name) < 1.0:
                raise PolicyError(
                    f"{name} must be strictly inside (-1, 1), got "
                    f"{getattr(self, name)}"
                )
        if not self.revoke_rho <= self.suspect_rho < self.recover_rho:
            raise PolicyError(
                "need revoke_rho <= suspect_rho < recover_rho (the strict "
                "hysteresis gap keeps the state machine from flapping), got "
                f"{self.revoke_rho} / {self.suspect_rho} / {self.recover_rho}"
            )
        for name in ("suspect_patience", "revoke_patience", "recover_patience",
                     "audit_every", "regret_limit"):
            if getattr(self, name) < 1:
                raise PolicyError(f"{name} must be >= 1")
        if not 0.0 <= self.min_coverage <= 1.0:
            raise PolicyError("min_coverage must be in [0, 1]")
        if self.z_critical <= 0:
            raise PolicyError("z_critical must be positive")
        if self.widen_factor < 1.0:
            raise PolicyError("widen_factor must be >= 1")

    @classmethod
    def disabled(cls) -> "GuardPolicy":
        """A policy that never monitors and never intervenes.

        A search built with it is byte-identical to one built with
        ``guard=None`` — enforced by the golden-trace suite.
        """
        return cls(enabled=False)

    def build(self, surrogate: object | None = None) -> "ModelGuard":
        """A fresh per-run :class:`ModelGuard` under this policy."""
        return ModelGuard(self, surrogate)


@dataclass
class _Transition:
    """Internal record of one state change (stored as plain dicts)."""

    evaluation: int
    frm: str
    to: str
    reason: str
    rho: float | None
    coverage: float | None

    def as_dict(self) -> dict:
        return {
            "evaluation": self.evaluation,
            "from": self.frm,
            "to": self.to,
            "reason": self.reason,
            "rho": self.rho,
            "coverage": self.coverage,
        }


class ModelGuard:
    """Per-run guard instance: monitor + state machine + audit ledger.

    Fed by :class:`repro.search.guarded.GuardedProposer` (every
    observation) and :class:`repro.search.guarded.GuardedGate`
    (rejection/audit bookkeeping).  All mutable state round-trips
    through :meth:`state_dict`/:meth:`load_state` as plain JSON types,
    riding in the engine checkpoint's ``extra`` payload.
    """

    def __init__(self, policy: GuardPolicy, surrogate: object | None = None) -> None:
        self.policy = policy
        self.surrogate = surrogate
        self.monitor = ModelHealthMonitor()
        self.state = TRUSTED
        self.transitions: list[dict] = []
        self.audits = 0
        self.audit_regrets = 0
        self.widened_admits = 0
        self.fallback_proposals = 0
        self._bad_streak = 0
        self._good_streak = 0
        self._revoke_streak = 0
        self._rejections_since_audit = 0
        self._pending_audit: int | None = None

    # -- identity ------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self.policy.enabled

    @property
    def interventions(self) -> int:
        """How often the guard changed what the search would have done."""
        return self.audits + self.widened_admits + self.fallback_proposals

    # -- gate-side hooks ----------------------------------------------
    def note_widened_admit(self) -> None:
        self.widened_admits += 1

    def audit_due(self) -> bool:
        """Count one pruning rejection; every ``audit_every``-th one
        (while no audit is in flight) is promoted to an audit."""
        if self._pending_audit is not None:
            return False
        self._rejections_since_audit += 1
        if self._rejections_since_audit >= self.policy.audit_every:
            self._rejections_since_audit = 0
            return True
        return False

    def begin_audit(self, proposal) -> None:
        self._pending_audit = int(proposal.config.index)

    def note_fallback_proposal(self) -> None:
        self.fallback_proposals += 1

    # -- observation path ---------------------------------------------
    def observe(self, ctx, proposal, runtime: float, failed: bool) -> None:
        """Digest one engine observation and advance the state machine.

        ``runtime`` is the observed (possibly censored) value;
        ``failed`` marks operational failures whose runtimes are
        penalties, not measurements — those count toward
        ``monitor.n_failed`` only.
        """
        audited = False
        config_index = int(proposal.config.index)
        if self._pending_audit is not None and config_index == self._pending_audit:
            audited = True
            self.audits += 1
            self._pending_audit = None
        ok = (not failed) and math.isfinite(runtime) and runtime > 0
        if ok:
            if audited and (
                self.monitor.best_observed is not None
                and runtime < self.monitor.best_observed
            ):
                # A would-be-pruned configuration beat everything the
                # model admitted: direct evidence of pruning regret.
                self.audit_regrets += 1
            predicted = getattr(proposal, "predicted", None)
            if predicted is not None:
                residual, sigma = self._residual(proposal, runtime)
                self.monitor.update(float(predicted), runtime, residual, sigma)
            self.monitor.note_observed(runtime)
        else:
            self.monitor.n_failed += 1
        self._update_state(ctx)
        if self.transitions:
            # Only an active guard leaves a mark on the trace; a guard
            # that stayed TRUSTED throughout keeps the trace identical
            # to an unguarded run.
            ctx.trace.metadata["guard"] = self.metadata()

    def _residual(self, proposal, runtime: float) -> tuple[float, float] | tuple[None, None]:
        """Model-space ``(observed - predicted, predict_std)`` when the
        learner exposes an ensemble spread.  Reuses the prediction the
        gate already paid for — calibration adds no simulated cost."""
        surrogate = self.surrogate
        if surrogate is None or not getattr(surrogate, "supports_std", False):
            return None, None
        sigma = float(surrogate.predict_std([proposal.config])[0])
        if not math.isfinite(sigma) or sigma <= 0:
            return None, None
        predicted = float(proposal.predicted)
        if getattr(surrogate, "log_target", False):
            if predicted <= 0:
                return None, None
            return math.log(runtime) - math.log(predicted), sigma
        return runtime - predicted, sigma

    # -- state machine -------------------------------------------------
    def _update_state(self, ctx) -> None:
        if self.state == REVOKED:
            return
        policy = self.policy
        if self.monitor.n_pairs < policy.min_evidence:
            return
        rho = self.monitor.rho()
        cov = self.monitor.coverage(policy.z_critical)
        rho_bad = rho is not None and rho < policy.suspect_rho
        cov_bad = cov is not None and cov < policy.min_coverage
        if self.state == TRUSTED:
            self._bad_streak = self._bad_streak + 1 if (rho_bad or cov_bad) else 0
            if self._bad_streak >= policy.suspect_patience:
                self._transition(
                    ctx, SUSPECT,
                    f"rank correlation {_fmt(rho)} < {policy.suspect_rho}"
                    if rho_bad else
                    f"interval coverage {_fmt(cov)} < {policy.min_coverage}",
                    rho, cov,
                )
                self._bad_streak = self._good_streak = self._revoke_streak = 0
            return
        # SUSPECT
        if self.audit_regrets >= policy.regret_limit:
            self._transition(
                ctx, REVOKED,
                f"pruning audits found {self.audit_regrets} regret(s)", rho, cov,
            )
            return
        very_bad = (rho is not None and rho < policy.revoke_rho) or (
            rho is None and cov_bad
        )
        self._revoke_streak = self._revoke_streak + 1 if very_bad else 0
        if self._revoke_streak >= policy.revoke_patience:
            self._transition(
                ctx, REVOKED,
                f"rank correlation {_fmt(rho)} < {policy.revoke_rho}", rho, cov,
            )
            return
        healthy = (rho is not None and rho >= policy.recover_rho) and not cov_bad
        self._good_streak = self._good_streak + 1 if healthy else 0
        if self._good_streak >= policy.recover_patience:
            self._transition(
                ctx, TRUSTED,
                f"rank correlation {_fmt(rho)} >= {policy.recover_rho}", rho, cov,
            )
            self._bad_streak = self._good_streak = self._revoke_streak = 0

    def _transition(self, ctx, to: str, reason: str,
                    rho: float | None, cov: float | None) -> None:
        record = _Transition(
            evaluation=ctx.trace.n_evaluations,
            frm=self.state, to=to, reason=reason, rho=rho, coverage=cov,
        )
        self.transitions.append(record.as_dict())
        self.state = to

    # -- reporting -----------------------------------------------------
    def metadata(self) -> dict:
        """Deterministic, JSON-safe summary recorded on the trace."""
        return {
            "state": self.state,
            "transitions": [dict(t) for t in self.transitions],
            "n_pairs": self.monitor.n_pairs,
            "rho": self.monitor.rho(),
            "coverage": self.monitor.coverage(self.policy.z_critical),
            "n_failed": self.monitor.n_failed,
            "audits": self.audits,
            "audit_regrets": self.audit_regrets,
            "widened_admits": self.widened_admits,
            "fallback_proposals": self.fallback_proposals,
        }

    def diagnostics(self) -> dict:
        """Audit-log view: :meth:`metadata` plus process-local encoding
        cache statistics.  Never persisted — cache counters depend on
        process history, which would break bit-identical resume."""
        out = self.metadata()
        cache_stats = getattr(self.surrogate, "cache_stats", None)
        if callable(cache_stats):
            out["encoding_cache"] = cache_stats()
        return out

    # -- persistence ---------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "state": self.state,
            "monitor": self.monitor.state_dict(),
            "transitions": [dict(t) for t in self.transitions],
            "audits": self.audits,
            "audit_regrets": self.audit_regrets,
            "widened_admits": self.widened_admits,
            "fallback_proposals": self.fallback_proposals,
            "bad_streak": self._bad_streak,
            "good_streak": self._good_streak,
            "revoke_streak": self._revoke_streak,
            "rejections_since_audit": self._rejections_since_audit,
            "pending_audit": self._pending_audit,
        }

    def load_state(self, state: dict) -> None:
        if state["state"] not in GUARD_STATES:
            raise ModelError(f"unknown guard state {state['state']!r}")
        self.state = state["state"]
        self.monitor.load_state(state["monitor"])
        self.transitions = [dict(t) for t in state["transitions"]]
        self.audits = int(state["audits"])
        self.audit_regrets = int(state["audit_regrets"])
        self.widened_admits = int(state["widened_admits"])
        self.fallback_proposals = int(state["fallback_proposals"])
        self._bad_streak = int(state["bad_streak"])
        self._good_streak = int(state["good_streak"])
        self._revoke_streak = int(state["revoke_streak"])
        self._rejections_since_audit = int(state["rejections_since_audit"])
        pending = state["pending_audit"]
        self._pending_audit = None if pending is None else int(pending)


def _fmt(value: float | None) -> str:
    return "n/a" if value is None else f"{value:.3f}"
