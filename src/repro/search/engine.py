"""The single search-evaluation loop behind every variant.

The paper's five algorithms (RS, RSp, RSb, RSpf, RSbf), the SMBO
model-based search, the warm-started techniques, and the OpenTuner-
style :class:`~repro.tuner.runner.TuningRun` are all one loop — walk a
candidate source, optionally gate each candidate by a predicted-runtime
threshold, pay for what you evaluate — that the repo used to implement
seven separate times.  :class:`SearchEngine` is that loop, written
once.  It owns every shared concern:

* **clock charging** — evaluation costs, model-query costs raised by
  gates, and the budget-wall remainder charge some variants make;
* **budgets** — the ``nmax`` evaluation budget, the optional proposal
  cap (RSp's ``max_stream_positions``), and
  :class:`~repro.errors.BudgetExhaustedError` from the simulated clock;
* **failure recording** — degraded measurements and recoverable
  :class:`~repro.errors.EvaluationFailure`\\ s become failed/censored
  trace records at their stream position (:func:`record_measurement` /
  :func:`record_failure` live here and the engine is their only
  caller), so common-random-numbers alignment survives faults;
* **stream position accounting** — proposals consumed, skips since the
  last record, ``stream_positions`` metadata;
* **checkpoint/resume** — periodic and final
  :class:`~repro.reliability.checkpoint.CheckpointManager` snapshots,
  restore of the trace/clock/reliability state, and proposer/gate
  state threading through the snapshot's ``extra`` payload.

What *varies* between algorithms is factored into two small
components — a :class:`~repro.search.protocols.Proposer` crossed with a
:class:`~repro.search.protocols.Gate` (see
:mod:`repro.search.proposers` / :mod:`repro.search.gates`) — plus a few
behavioral flags preserving each legacy loop's exact accounting, so
engine-backed variants produce bit-identical traces to the code they
replaced (enforced by ``tests/search/test_golden_equivalence.py``
against committed pre-refactor fixtures).

New compositions cost one :func:`compose` call instead of an eighth
hand-rolled loop; the prune-then-bias hybrid
(:func:`~repro.search.biasing.hybrid_search`) is the first.
"""

from __future__ import annotations

import numpy as np

from repro.errors import BudgetExhaustedError, EvaluationFailure, SearchError
from repro.ml import _native
from repro.search.protocols import EngineContext, Gate, Proposal, Proposer
from repro.search.result import EvaluationRecord, SearchTrace
from repro.searchspace.space import SearchSpace
from repro.spec import UNSET, TunerSpec, resolve_spec

__all__ = [
    "SearchEngine",
    "compose",
    "record_measurement",
    "record_failure",
]


def record_measurement(trace: SearchTrace, config, measurement, elapsed: float,
                       skipped_before: int = 0) -> None:
    """Append one evaluation outcome — successful or degraded — to a trace.

    A measurement exposing ``failed=True`` (e.g. a
    :class:`repro.reliability.resilient.FailedMeasurement`) is recorded
    distinctly from successes; it occupies its position in the shared
    stream so common-random-numbers comparisons stay aligned, but the
    trace never counts it as a best result.
    """
    trace.add(
        EvaluationRecord(
            config=config,
            runtime=measurement.runtime_seconds,
            elapsed=elapsed,
            skipped_before=skipped_before,
            failed=bool(getattr(measurement, "failed", False)),
            censored=bool(getattr(measurement, "censored", False)),
        )
    )


def record_failure(trace: SearchTrace, config, exc: EvaluationFailure,
                   elapsed: float, skipped_before: int = 0) -> None:
    """Record an unhandled evaluation failure as a failed trace entry.

    Used when the evaluator is not wrapped in a
    :class:`~repro.reliability.resilient.ResilientEvaluator`: the
    search itself censors the configuration (a timeout's cap when
    available, ``inf`` otherwise) instead of crashing.
    """
    censored_at = getattr(exc, "censored_at", None)
    trace.add(
        EvaluationRecord(
            config=config,
            runtime=float("inf") if censored_at is None else float(censored_at),
            elapsed=elapsed,
            skipped_before=skipped_before,
            failed=True,
            censored=censored_at is not None,
        )
    )


class SearchEngine:
    """One search = evaluator x proposer x gate, under one accounting.

    Parameters
    ----------
    evaluator:
        The :class:`~repro.search.protocols.Evaluator` whose ``clock``
        the whole search charges.
    proposer:
        The candidate source.
    gate:
        Admission filter; ``None`` admits everything (RS, RSb, the
        techniques).
    nmax:
        Evaluation budget: recorded evaluations, successful or failed.
    name:
        Algorithm label on the trace (and in deterministic RNG keys).
    space:
        The search space (checkpoint records rebuild from it).
    stream:
        The :class:`~repro.search.stream.SharedStream` to re-materialize
        on resume, when the proposer walks one.
    position_cap:
        Hard cap on proposals consumed (RSp's ``max_stream_positions``);
        ``None`` leaves the proposer to exhaust itself.
    failure_mode:
        ``"record"`` turns recoverable evaluation failures into failed
        trace records; ``"raise"`` propagates them (SMBO and the
        technique runs predate failure-aware traces and keep their
        historical contract).
    setup_abort_elapsed:
        Whether a budget wall hit during setup syncs ``total_elapsed``
        to the clock before returning (the stream searches do; SMBO's
        legacy accounting does not).
    charge_remainder_on_exhaust:
        Whether a budget wall hit mid-evaluation charges the remaining
        budget before ending — the partial work until the wall was real
        (:class:`~repro.tuner.runner.TuningRun` semantics).
    rewind_position_on_budget_break:
        Whether the proposal in flight when the budget died is handed
        back, so a resume with a fresh budget retries it.  RSp
        historically advances past it; everything else rewinds.
    stream_positions_metadata:
        Record the proposals-consumed count as
        ``trace.metadata["stream_positions"]`` (RSp's diagnostics).
    checkpoint:
        Optional :class:`~repro.reliability.checkpoint.CheckpointManager`;
        when its file exists the search resumes from it.
    batch_size:
        Propose/gate/score candidates in blocks of up to this many
        instead of one Python-level iteration each (``None`` keeps the
        serial loop).  Purely an execution strategy: the batched loop
        replays the serial loop's per-candidate accounting — every
        clock charge in the same order, the same positions, the same
        records — so traces and checkpoint bytes are identical for
        every batch size (the golden-trace suite enforces this).  Block
        execution engages only for proposers that implement
        ``propose_block``/``rewind`` and degrades candidate-by-candidate
        otherwise; proposers carrying checkpoint ``state()`` (the guard
        wrapper) also stay serial under a checkpoint manager, because a
        mid-block snapshot would capture over-consumed positions.
    """

    def __init__(
        self,
        evaluator,
        proposer: Proposer,
        gate: Gate | None = None,
        *,
        nmax: int,
        name: str,
        space: SearchSpace,
        stream=None,
        position_cap: int | None = None,
        failure_mode: str = "record",
        setup_abort_elapsed: bool = True,
        charge_remainder_on_exhaust: bool = False,
        rewind_position_on_budget_break: bool = True,
        stream_positions_metadata: bool = False,
        checkpoint=None,
        batch_size=UNSET,
        spec: TunerSpec | None = None,
    ) -> None:
        # ``batch_size`` beats ``spec.engine.batch_size`` beats the
        # historical default (None — the serial loop).  The sentinel
        # keeps explicit ``batch_size=None`` meaning "serial", exactly
        # as before the spec layer existed.
        if batch_size is UNSET:
            batch_size = (
                resolve_spec(spec).engine.batch_size
                if spec is not None else None
            )
        if nmax < 1:
            raise SearchError(f"nmax must be >= 1, got {nmax}")
        if failure_mode not in ("record", "raise"):
            raise SearchError(
                f"failure_mode must be 'record' or 'raise', got {failure_mode!r}"
            )
        if batch_size is not None and batch_size < 1:
            raise SearchError(f"batch_size must be >= 1, got {batch_size}")
        self.evaluator = evaluator
        self.proposer = proposer
        self.gate = gate
        self.nmax = nmax
        self.name = name
        self.space = space
        self.stream = stream
        self.position_cap = position_cap
        self.failure_mode = failure_mode
        self.setup_abort_elapsed = setup_abort_elapsed
        self.charge_remainder_on_exhaust = charge_remainder_on_exhaust
        self.rewind_position_on_budget_break = rewind_position_on_budget_break
        self.stream_positions_metadata = stream_positions_metadata
        self.checkpoint = checkpoint
        self.batch_size = batch_size

    # ------------------------------------------------------------------
    def diagnostics(self) -> dict:
        """Execution-mode report: the configured batch size, whether the
        composed proposer supports block proposing, and the native-
        kernel probe outcome (see :func:`repro.ml._native.diagnostics`).
        None of it affects results — only throughput."""
        block_capable = (
            hasattr(self.proposer, "propose_block")
            and hasattr(self.proposer, "rewind")
        )
        return {
            "batch_size": self.batch_size,
            "engine_mode": "batched" if (
                self.batch_size is not None and block_capable
            ) else "serial",
            "block_capable_proposer": block_capable,
            "native": _native.diagnostics(),
        }

    def _extra(self, skipped: int) -> dict:
        """The checkpoint ``extra`` payload: proposer state, plus the
        pending-skip counter when an admission gate is in play."""
        extra = dict(self.proposer.state())
        if self.gate is not None:
            extra["skipped"] = skipped
        return extra

    def run(self) -> SearchTrace:
        """Run the composed search to its budget; returns the trace."""
        trace = SearchTrace(algorithm=self.name)
        clock = self.evaluator.clock
        position = 0
        extra: dict = {}
        if self.checkpoint is not None:
            position, extra = self.checkpoint.restore(
                trace, self.space, evaluator=self.evaluator, stream=self.stream
            )
        ctx = EngineContext(
            evaluator=self.evaluator,
            clock=clock,
            trace=trace,
            nmax=self.nmax,
            name=self.name,
            resumed=position > 0,
            extra=extra,
        )
        skipped = int(extra.get("skipped", 0))
        self.proposer.restore(position, ctx)

        # One-time setup (model fits, pool scoring, cutoffs).  A budget
        # wall here ends the search before it proposed anything.
        try:
            self.proposer.setup(ctx)
            if self.gate is not None:
                self.gate.setup(ctx)
        except BudgetExhaustedError:
            trace.exhausted_budget = True
            if self.setup_abort_elapsed:
                trace.total_elapsed = max(trace.total_elapsed, clock.now)
            return trace

        use_batched = (
            self.batch_size is not None
            and hasattr(self.proposer, "propose_block")
            and hasattr(self.proposer, "rewind")
            # A mid-block periodic snapshot embeds proposer.state();
            # proposers that carry real state there (the guard wrapper)
            # would checkpoint over-consumed positions, so they keep the
            # serial loop whenever a checkpoint manager is attached.
            and not (self.checkpoint is not None and self.proposer.state())
        )
        loop = self._batched_loop if use_batched else self._serial_loop
        position, skipped, sync_elapsed = loop(ctx, trace, clock, position, skipped)

        if self.stream_positions_metadata:
            trace.metadata["stream_positions"] = position
        if sync_elapsed:
            trace.total_elapsed = max(trace.total_elapsed, clock.now)
        if self.checkpoint is not None:
            self.checkpoint.save(
                trace, position=position, evaluator=self.evaluator,
                extra=self._extra(skipped),
            )
        return trace

    def _serial_loop(self, ctx, trace, clock, position, skipped):
        """The reference loop: one proposal per Python-level iteration."""
        sync_elapsed = True
        while trace.n_evaluations < self.nmax and (
            self.position_cap is None or position < self.position_cap
        ):
            proposal = self.proposer.propose(ctx)
            if proposal is None:
                break
            position += 1
            try:
                if self.gate is not None and not self.gate.admit(ctx, proposal):
                    skipped += 1
                    continue
                measurement = self.evaluator.evaluate(proposal.config)
            except BudgetExhaustedError:
                if self.rewind_position_on_budget_break:
                    position -= 1
                if self.charge_remainder_on_exhaust and clock.remaining > 0:
                    # The budget died mid-evaluation: the partial work
                    # until the wall was real, so charge the remainder
                    # instead of silently dropping it.
                    clock.advance(clock.remaining)
                trace.exhausted_budget = True
                sync_elapsed = not self.proposer.budget_break_skips_sync()
                break
            except EvaluationFailure as exc:
                if self.failure_mode == "raise":
                    raise
                censored_at = getattr(exc, "censored_at", None)
                self.proposer.observe(
                    ctx,
                    proposal,
                    float("inf") if censored_at is None else float(censored_at),
                    True,
                    censored_at is not None,
                )
                record_failure(trace, proposal.config, exc, clock.now,
                               skipped_before=skipped)
            else:
                self.proposer.observe(
                    ctx,
                    proposal,
                    measurement.runtime_seconds,
                    bool(getattr(measurement, "failed", False)),
                    bool(getattr(measurement, "censored", False)),
                )
                record_measurement(trace, proposal.config, measurement,
                                   clock.now, skipped_before=skipped)
            skipped = 0
            if self.checkpoint is not None:
                self.checkpoint.maybe_save(
                    trace, position=position, evaluator=self.evaluator,
                    extra=self._extra(skipped),
                )
        return position, skipped, sync_elapsed

    def _batched_loop(self, ctx, trace, clock, position, skipped):
        """Block execution replaying the serial loop's exact accounting.

        Proposals come ``batch_size`` at a time from ``propose_block``;
        gate verdicts are computed as one vector when the gate exposes
        ``admit_charge``/``admit_vector``, with each candidate's model-
        query charge still applied per element in stream order.  Every
        early exit (budget wall, nmax, failure re-raise) hands strictly
        unconsumed proposals back via ``rewind`` so position accounting
        and checkpoint bytes match the serial loop exactly.
        """
        proposer = self.proposer
        gate = self.gate
        evaluator = self.evaluator
        checkpoint = self.checkpoint
        batch = self.batch_size
        sync_elapsed = True
        stop = False
        gate_charge = getattr(gate, "admit_charge", None) if gate is not None else None
        admit_vector = getattr(gate, "admit_vector", None) if gate is not None else None
        while not stop and trace.n_evaluations < self.nmax and (
            self.position_cap is None or position < self.position_cap
        ):
            want = batch
            if self.position_cap is not None:
                want = min(want, self.position_cap - position)
            if gate is None:
                # Ungated searches record every proposal, so the block
                # never needs to overshoot the evaluation budget.
                want = min(want, self.nmax - trace.n_evaluations)
            block = proposer.propose_block(ctx, want)
            from_block = block is not None
            if block is None:
                # No block support right now (model phase, guard not
                # trusted, ...): fall back to one serial proposal.
                proposal = proposer.propose(ctx)
                if proposal is None:
                    break
                block = [proposal]
            elif not block:
                break  # source exhausted, same as serial propose -> None
            verdicts = None
            if (
                from_block
                and admit_vector is not None
                and gate_charge is not None
                and all(p.predicted is not None for p in block)
            ):
                preds = np.fromiter(
                    (p.predicted for p in block), dtype=float, count=len(block)
                )
                verdicts = admit_vector(preds)
            consumed = 0
            for i, proposal in enumerate(block):
                if trace.n_evaluations >= self.nmax:
                    break
                position += 1
                consumed += 1
                try:
                    if gate is not None:
                        if verdicts is not None:
                            if gate_charge:
                                clock.advance(gate_charge)
                            admitted = bool(verdicts[i])
                        else:
                            admitted = gate.admit(ctx, proposal)
                        if not admitted:
                            skipped += 1
                            continue
                    measurement = evaluator.evaluate(proposal.config)
                except BudgetExhaustedError:
                    if self.rewind_position_on_budget_break:
                        position -= 1
                    if self.charge_remainder_on_exhaust and clock.remaining > 0:
                        clock.advance(clock.remaining)
                    trace.exhausted_budget = True
                    sync_elapsed = not proposer.budget_break_skips_sync()
                    stop = True
                    break
                except EvaluationFailure as exc:
                    if self.failure_mode == "raise":
                        if from_block and consumed < len(block):
                            proposer.rewind(len(block) - consumed)
                        raise
                    censored_at = getattr(exc, "censored_at", None)
                    proposer.observe(
                        ctx,
                        proposal,
                        float("inf") if censored_at is None else float(censored_at),
                        True,
                        censored_at is not None,
                    )
                    record_failure(trace, proposal.config, exc, clock.now,
                                   skipped_before=skipped)
                else:
                    proposer.observe(
                        ctx,
                        proposal,
                        measurement.runtime_seconds,
                        bool(getattr(measurement, "failed", False)),
                        bool(getattr(measurement, "censored", False)),
                    )
                    record_measurement(trace, proposal.config, measurement,
                                       clock.now, skipped_before=skipped)
                skipped = 0
                if checkpoint is not None:
                    checkpoint.maybe_save(
                        trace, position=position, evaluator=self.evaluator,
                        extra=self._extra(skipped),
                    )
            if from_block and consumed < len(block):
                proposer.rewind(len(block) - consumed)
        return position, skipped, sync_elapsed


def compose(
    evaluator,
    proposer: Proposer,
    gate: Gate | None = None,
    **options,
) -> SearchEngine:
    """Compose a search from parts; returns the configured engine.

    The decomposition's public construction point: any proposer crossed
    with any gate yields a runnable search under the full shared
    accounting.  ``options`` are :class:`SearchEngine` keyword options
    (``nmax``, ``name``, ``space``, ``checkpoint``, ...).

    >>> proposer = PoolRankProposer(space, surrogate)
    >>> engine = compose(evaluator, proposer,
    ...                  PredictionCutoffGate(proposer, delta_percent=20.0),
    ...                  nmax=100, name="RSpb", space=space)
    >>> trace = engine.run()
    """
    return SearchEngine(evaluator, proposer, gate, **options)
