"""Random search with the biasing strategy (Algorithm 2, RSb).

Phase 1: fit the surrogate on source data and predict the runtimes of a
pool of ``N`` random configurations.

Phase 2: evaluate pool configurations on the target machine in
ascending order of predicted runtime (``argmin`` selection with removal,
as in Algorithm 2), for at most ``nmax`` evaluations.
"""

from __future__ import annotations

import numpy as np

from repro.errors import BudgetExhaustedError, EvaluationFailure, SearchError
from repro.search.random_search import record_failure, record_measurement
from repro.search.result import SearchTrace
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # circular at runtime: transfer imports the searches
    from repro.transfer.surrogate import Surrogate
from repro.searchspace.space import SearchSpace
from repro.utils.rng import spawn_rng

__all__ = ["biased_search"]


def biased_search(
    evaluator,
    space: SearchSpace,
    surrogate: "Surrogate",
    nmax: int = 100,
    pool_size: int = 10_000,
    name: str = "RSb",
    checkpoint=None,
) -> SearchTrace:
    """Run RSb for at most ``nmax`` evaluations.

    Failed evaluations (recoverable
    :class:`~repro.errors.EvaluationFailure`, or degraded measurements
    from a resilient evaluator) are recorded as failed entries at their
    pool rank and the search moves to the next-predicted configuration.
    ``checkpoint`` optionally resumes an interrupted run: the pool is
    redrawn from its deterministic, stateless generator key, so the
    resumed evaluation order is bit-identical to the interrupted one.
    """
    if nmax < 1:
        raise SearchError(f"nmax must be >= 1, got {nmax}")
    if pool_size < 10:
        raise SearchError(f"pool_size must be >= 10, got {pool_size}")

    trace = SearchTrace(algorithm=name)
    clock = evaluator.clock
    start = 0
    if checkpoint is not None:
        start, _ = checkpoint.restore(trace, space, evaluator=evaluator)
    resumed = start > 0

    # On a resumed run the restored clock already paid the fit/predict
    # charges; the pool recomputation itself is deterministic.
    try:
        if not resumed:
            clock.advance(surrogate.fit_seconds)
        pool_rng = spawn_rng("rsb-pool", space.name, name)
        pool = space.sample(pool_rng, min(pool_size, space.cardinality))
        predictions = surrogate.predict(pool)
        if not resumed:
            clock.advance(surrogate.predict_seconds(len(pool)))
    except BudgetExhaustedError:
        trace.exhausted_budget = True
        trace.total_elapsed = clock.now
        return trace

    order = np.argsort(predictions, kind="stable")
    trace.metadata["pool_size"] = len(pool)
    position = start
    for rank in range(start, min(nmax, len(order))):
        config = pool[int(order[rank])]
        try:
            measurement = evaluator.evaluate(config)
        except BudgetExhaustedError:
            trace.exhausted_budget = True
            break
        except EvaluationFailure as exc:
            record_failure(trace, config, exc, clock.now)
        else:
            record_measurement(trace, config, measurement, clock.now)
        position = rank + 1
        if checkpoint is not None:
            checkpoint.maybe_save(trace, position=position, evaluator=evaluator)
    trace.total_elapsed = max(trace.total_elapsed, clock.now)
    if checkpoint is not None:
        checkpoint.save(trace, position=position, evaluator=evaluator)
    return trace
