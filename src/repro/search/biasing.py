"""Random search with the biasing strategy (Algorithm 2, RSb) — and the
prune-then-bias hybrid (RSpb) the engine decomposition makes free.

RSb, phase 1: fit the surrogate on source data and predict the runtimes
of a pool of ``N`` random configurations.

RSb, phase 2: evaluate pool configurations on the target machine in
ascending order of predicted runtime (``argmin`` selection with removal,
as in Algorithm 2), for at most ``nmax`` evaluations.

RSpb additionally gates the sorted pool by RSp's quantile cutoff ``∆``:
only the best-predicted ``δ`` fraction is evaluated, in ascending
predicted order.  It is one :func:`~repro.search.engine.compose` call —
the same :class:`PoolRankProposer` crossed with a
:class:`PredictionCutoffGate` — rather than a third hand-rolled loop.
"""

from __future__ import annotations

from repro.errors import SearchError
from repro.search.engine import SearchEngine, compose
from repro.search.gates import PredictionCutoffGate
from repro.search.guarded import GuardedGate, GuardedProposer, build_guard
from repro.search.proposers import PoolRankProposer
from repro.search.protocols import SurrogateModel
from repro.search.result import SearchTrace
from repro.searchspace.space import SearchSpace
from repro.spec import UNSET, TunerSpec, resolve_spec

__all__ = ["biased_search", "hybrid_search"]


def _guarded_pool_proposer(proposer, guard, surrogate, stream, name):
    """Wrap a pool ranker when a guard is armed; validates the stream.

    A pool ranker's only candidate source *is* the model, so a guarded
    run needs the shared stream as its plain-RS fallback.
    """
    guard_obj = build_guard(guard, surrogate)
    if guard_obj is None:
        return proposer, None
    if stream is None and guard_obj.enabled:
        raise SearchError(
            f"guarded {name} needs stream= as its plain-RS fallback source"
        )
    return GuardedProposer(proposer, guard_obj, stream=stream), guard_obj


def biased_search(
    evaluator,
    space: SearchSpace,
    surrogate: SurrogateModel,
    nmax: int = 100,
    pool_size: int | None = None,
    name: str = "RSb",
    checkpoint=None,
    guard=UNSET,
    stream=None,
    batch_size=UNSET,
    spec: TunerSpec | None = None,
) -> SearchTrace:
    """Run RSb for at most ``nmax`` evaluations.

    Failed evaluations (recoverable
    :class:`~repro.errors.EvaluationFailure`, or degraded measurements
    from a resilient evaluator) are recorded as failed entries at their
    pool rank and the search moves to the next-predicted configuration.
    ``checkpoint`` optionally resumes an interrupted run: the pool is
    redrawn from its deterministic, stateless generator key, so the
    resumed evaluation order is bit-identical to the interrupted one.

    ``guard`` (a :class:`repro.transfer.guard.GuardPolicy` or pre-built
    guard) arms negative-transfer monitoring; a guarded RSb interleaves
    the model ranking with ``stream`` draws while the model is SUSPECT
    and follows ``stream`` alone — plain RS under common random
    numbers — once it is REVOKED, so ``stream`` is required when the
    guard is enabled.  ``guard=None`` and ``GuardPolicy.disabled()``
    are byte-identical to an unguarded run.

    ``spec`` (a :class:`repro.spec.TunerSpec`) supplies defaults for
    ``pool_size``, ``guard``, and ``batch_size`` when those are not
    passed explicitly; the default spec reproduces historical behavior.
    """
    spec = resolve_spec(spec)
    if pool_size is None:
        pool_size = spec.pool.size
    if guard is UNSET:
        guard = spec.guard
    if batch_size is UNSET:
        batch_size = spec.engine.batch_size
    if nmax < 1:
        raise SearchError(f"nmax must be >= 1, got {nmax}")
    if pool_size < 10:
        raise SearchError(f"pool_size must be >= 10, got {pool_size}")
    proposer, _ = _guarded_pool_proposer(
        PoolRankProposer(space, surrogate, pool_size=pool_size),
        guard, surrogate, stream, name,
    )
    engine = SearchEngine(
        evaluator,
        proposer,
        nmax=nmax,
        name=name,
        space=space,
        checkpoint=checkpoint,
        batch_size=batch_size,
    )
    return engine.run()


def hybrid_search(
    evaluator,
    space: SearchSpace,
    surrogate: SurrogateModel,
    nmax: int = 100,
    pool_size: int | None = None,
    delta_percent: float | None = None,
    name: str = "RSpb",
    checkpoint=None,
    guard=UNSET,
    stream=None,
    batch_size=UNSET,
    spec: TunerSpec | None = None,
) -> SearchTrace:
    """Run the prune-then-bias hybrid (RSpb) for at most ``nmax``
    evaluations.

    The surrogate's pool ranking (RSb) is gated by the ``δ``-quantile
    cutoff ``∆`` of its own predictions (RSp): the search exploits the
    model's ordering but refuses to walk into the part of the pool the
    pruning test would have rejected, so a mediocre model's long tail
    costs skipped positions instead of evaluations.  Setup charges one
    model fit and one pool scoring — the gate reuses the proposer's
    predictions, so admission is free, unlike RSp's per-position query
    charge.

    Fault recording and ``checkpoint`` resume behave exactly as in
    :func:`biased_search`; the resumed pool and cutoff are recomputed
    deterministically.  ``trace.metadata`` carries both ``pool_size``
    and the ``cutoff`` ``∆``.

    ``guard``/``stream`` behave as in :func:`biased_search` (the gate
    additionally widens its cutoff and audits under suspicion, as in
    guarded :func:`~repro.search.pruning.pruned_search`).  ``spec``
    supplies defaults for ``pool_size``, ``delta_percent``, ``guard``,
    and ``batch_size`` when those are not passed explicitly.
    """
    spec = resolve_spec(spec)
    if pool_size is None:
        pool_size = spec.pool.size
    if delta_percent is None:
        delta_percent = spec.gate.delta_percent
    if guard is UNSET:
        guard = spec.guard
    if batch_size is UNSET:
        batch_size = spec.engine.batch_size
    if nmax < 1:
        raise SearchError(f"nmax must be >= 1, got {nmax}")
    if pool_size < 10:
        raise SearchError(f"pool_size must be >= 10, got {pool_size}")
    if not 0.0 < delta_percent < 100.0:
        raise SearchError(f"delta_percent must be in (0, 100), got {delta_percent}")
    proposer = PoolRankProposer(space, surrogate, pool_size=pool_size)
    gate = PredictionCutoffGate(proposer, delta_percent=delta_percent)
    proposer, guard_obj = _guarded_pool_proposer(
        proposer, guard, surrogate, stream, name
    )
    if guard_obj is not None:
        gate = GuardedGate(gate, guard_obj)
    engine = compose(
        evaluator,
        proposer,
        gate,
        nmax=nmax,
        name=name,
        space=space,
        checkpoint=checkpoint,
        batch_size=batch_size,
    )
    return engine.run()
