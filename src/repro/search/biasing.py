"""Random search with the biasing strategy (Algorithm 2, RSb).

Phase 1: fit the surrogate on source data and predict the runtimes of a
pool of ``N`` random configurations.

Phase 2: evaluate pool configurations on the target machine in
ascending order of predicted runtime (``argmin`` selection with removal,
as in Algorithm 2), for at most ``nmax`` evaluations.
"""

from __future__ import annotations

import numpy as np

from repro.errors import BudgetExhaustedError, SearchError
from repro.search.result import EvaluationRecord, SearchTrace
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # circular at runtime: transfer imports the searches
    from repro.transfer.surrogate import Surrogate
from repro.searchspace.space import SearchSpace
from repro.utils.rng import spawn_rng

__all__ = ["biased_search"]


def biased_search(
    evaluator,
    space: SearchSpace,
    surrogate: "Surrogate",
    nmax: int = 100,
    pool_size: int = 10_000,
    name: str = "RSb",
) -> SearchTrace:
    """Run RSb for at most ``nmax`` evaluations."""
    if nmax < 1:
        raise SearchError(f"nmax must be >= 1, got {nmax}")
    if pool_size < 10:
        raise SearchError(f"pool_size must be >= 10, got {pool_size}")

    trace = SearchTrace(algorithm=name)
    clock = evaluator.clock

    try:
        clock.advance(surrogate.fit_seconds)
        pool_rng = spawn_rng("rsb-pool", space.name, name)
        pool = space.sample(pool_rng, min(pool_size, space.cardinality))
        predictions = surrogate.predict(pool)
        clock.advance(surrogate.predict_seconds(len(pool)))
    except BudgetExhaustedError:
        trace.exhausted_budget = True
        trace.total_elapsed = clock.now
        return trace

    order = np.argsort(predictions, kind="stable")
    trace.metadata["pool_size"] = len(pool)
    for rank, pool_idx in enumerate(order[:nmax]):
        config = pool[int(pool_idx)]
        try:
            measurement = evaluator.evaluate(config)
        except BudgetExhaustedError:
            trace.exhausted_budget = True
            break
        trace.add(
            EvaluationRecord(
                config=config,
                runtime=measurement.runtime_seconds,
                elapsed=clock.now,
            )
        )
    trace.total_elapsed = max(trace.total_elapsed, clock.now)
    return trace
