"""Candidate sources for the :class:`~repro.search.engine.SearchEngine`.

Each proposer walks one kind of candidate source and yields
:class:`~repro.search.protocols.Proposal`\\ s to the engine:

* :class:`StreamProposer` — the shared random stream, in order (RS;
  with a surrogate attached it also carries per-position predictions
  for RSp's quantile gate, prefetched in vectorized chunks);
* :class:`PoolRankProposer` — a surrogate-scored pool in ascending
  order of predicted runtime (RSb, and the gated hybrid RSpb);
* :class:`ReplayProposer` — the source machine's evaluated
  configurations, in source order or sorted by source runtime
  (RSpf / RSbf);
* :class:`SMBOProposer` — an initial design followed by
  acquisition-maximizing candidates from a surrogate refit on the
  target observations (SMBO, optionally transfer-seeded).

The manipulator-technique adapter (GA, annealing, PSO, the AUC bandit,
...) lives in :mod:`repro.tuner.adapter` — the tuner layer imports the
search layer, never the reverse.

Simulated model costs are charged exactly where the pre-engine loops
charged them; the golden-trace suite holds every proposer to
bit-identical behavior.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.ml import _native
from repro.ml.forest import RandomForestRegressor
from repro.search.protocols import (
    EngineContext,
    Proposal,
    SurrogateModel,
)
from repro.search.stream import SharedStream
from repro.searchspace.encoding import encode_cached, encoding_cache
from repro.searchspace.space import Configuration, SearchSpace
from repro.utils.rng import spawn_rng

__all__ = [
    "BaseProposer",
    "StreamProposer",
    "PoolRankProposer",
    "ReplayProposer",
    "SMBOProposer",
]

_SQRT2 = math.sqrt(2.0)


def _normal_cdf(z: np.ndarray) -> np.ndarray:
    return 0.5 * (1.0 + np.vectorize(math.erf)(z / _SQRT2))


def _normal_pdf(z: np.ndarray) -> np.ndarray:
    return np.exp(-0.5 * z * z) / math.sqrt(2.0 * math.pi)


def _expected_improvement(mu: np.ndarray, sigma: np.ndarray, best: float) -> np.ndarray:
    """EI for minimization in log space."""
    sigma = np.maximum(sigma, 1e-9)
    z = (best - mu) / sigma
    return (best - mu) * _normal_cdf(z) + sigma * _normal_pdf(z)


class BaseProposer:
    """No-op lifecycle defaults; subclasses override what they need."""

    def restore(self, position: int, ctx: EngineContext) -> None:
        pass

    def setup(self, ctx: EngineContext) -> None:
        pass

    def observe(self, ctx: EngineContext, proposal: Proposal, runtime: float,
                failed: bool, censored: bool) -> None:
        pass

    def state(self) -> dict:
        return {}

    def budget_break_skips_sync(self) -> bool:
        return False


class StreamProposer(BaseProposer):
    """Walk a :class:`~repro.search.stream.SharedStream` in order.

    Without a surrogate this is RS's candidate source.  With one, each
    proposal carries the surrogate's runtime prediction for its stream
    position (RSp): predictions for the next ``prefetch`` positions are
    computed in one vectorized call, while the *clock* is still charged
    one query at a time by the gate — per-row predictions are
    independent, so traces are bit-identical for every ``prefetch``.
    """

    def __init__(
        self,
        stream: SharedStream,
        surrogate: SurrogateModel | None = None,
        prefetch: int = 256,
        position_cap: int | None = None,
    ) -> None:
        self.stream = stream
        self.surrogate = surrogate
        self.prefetch = prefetch
        self.position_cap = position_cap
        self._position = 0
        self._buffered = np.empty(0)
        self._buf_start = 0

    def restore(self, position: int, ctx: EngineContext) -> None:
        self._position = position
        self._buffered = np.empty(0)
        self._buf_start = position

    def propose(self, ctx: EngineContext) -> Proposal | None:
        position = self._position
        if self.surrogate is None:
            config = self.stream[position]
            self._position += 1
            return Proposal(config)
        if position - self._buf_start >= len(self._buffered):
            chunk = self.prefetch
            if self.position_cap is not None:
                chunk = min(chunk, self.position_cap - position)
            self._buffered = self.surrogate.predict(
                [self.stream[position + i] for i in range(chunk)]
            )
            self._buf_start = position
        predicted = float(self._buffered[position - self._buf_start])
        config = self.stream[position]
        self._position += 1
        return Proposal(config, predicted)

    def propose_block(self, ctx: EngineContext, count: int) -> list[Proposal]:
        """Up to ``count`` consecutive stream proposals at once.

        The stream is unbounded, so the block is always full.  The
        surrogate path reuses :meth:`propose` — the prediction buffer
        refills in exactly the serial chunk boundaries, keeping the
        memoized pool keys (and therefore traces) bit-identical.
        """
        if self.surrogate is not None:
            return [self.propose(ctx) for _ in range(count)]
        start = self._position
        block = [Proposal(self.stream[start + i]) for i in range(count)]
        self._position += count
        return block

    def rewind(self, count: int) -> None:
        """Hand back the last ``count`` unconsumed proposals.

        The prediction buffer stays valid: it covers positions from
        ``_buf_start`` forward, and a rewind never moves before the
        block's start, which the buffer already covered.
        """
        self._position -= count


class PoolRankProposer(BaseProposer):
    """A surrogate-scored pool, proposed in ascending predicted runtime.

    RSb's candidate source (Algorithm 2's argmin-with-removal is
    equivalent to a stable presort).  Setup charges the model fit and
    the pool-scoring time; a resumed run's restored clock already paid,
    and the pool redraws deterministically from its stateless RNG key.
    Proposals carry their prediction so a cutoff gate (the RSpb hybrid)
    can prune the tail of the ranking without extra model queries.
    """

    def __init__(
        self,
        space: SearchSpace,
        surrogate: SurrogateModel,
        pool_size: int = 10_000,
        rng_label: str = "rsb-pool",
    ) -> None:
        self.space = space
        self.surrogate = surrogate
        self.pool_size = pool_size
        self.rng_label = rng_label
        self.predictions: np.ndarray = np.empty(0)
        self._pool_indices: list[int] | None = None
        self._pool_configs: list[Configuration | None] = []
        self._order: np.ndarray = np.empty(0, dtype=np.int64)
        self._order_upto = 0
        self._rank = 0

    def restore(self, position: int, ctx: EngineContext) -> None:
        self._rank = position

    def setup(self, ctx: EngineContext) -> None:
        clock = ctx.clock
        if not ctx.resumed:
            clock.advance(self.surrogate.fit_seconds)
        pool_rng = spawn_rng(self.rng_label, self.space.name, ctx.name)
        n = min(self.pool_size, self.space.cardinality)
        predict_indices = getattr(self.surrogate, "predict_indices", None)
        sample_indices = getattr(self.space, "sample_indices", None)
        if predict_indices is not None and sample_indices is not None:
            # Bulk path: the pool stays as linear indices — the same
            # RNG draws, the same prediction memo key, the same bytes —
            # and Configuration objects materialize lazily, only for
            # the pool slots the ranking actually reaches.
            indices = sample_indices(pool_rng, n)
            predictions = predict_indices(indices)
            self._pool_indices = [int(i) for i in indices]
            self._pool_configs = [None] * n
        else:
            pool = self.space.sample(pool_rng, n)
            predictions = self.surrogate.predict(pool)
            self._pool_indices = None
            self._pool_configs = list(pool)
        if not ctx.resumed:
            clock.advance(self.surrogate.predict_seconds(n))
        self.predictions = predictions
        self._order = np.empty(0, dtype=np.int64)
        self._order_upto = 0
        ctx.trace.metadata["pool_size"] = n

    @property
    def pool(self) -> list[Configuration]:
        """The scored pool, fully materialized (diagnostic use only —
        the ranking itself never needs every Configuration built)."""
        return [self._config_for(i) for i in range(len(self._pool_configs))]

    def _config_for(self, slot: int) -> Configuration:
        config = self._pool_configs[slot]
        if config is None:
            config = self.space.config_at(self._pool_indices[slot])
            self._pool_configs[slot] = config
        return config

    def _ensure_order(self, upto: int) -> None:
        """Extend the ranking to cover at least ``upto`` positions.

        A search evaluates ``nmax`` of a 10k pool, so a partial stable
        top-k (the native kernel) replaces the full argsort; growth is
        geometric, and the NumPy fallback or a near-full request sorts
        the whole pool once.  The prefix is identical to the stable
        full argsort by construction, so traces do not depend on which
        path ran.
        """
        n = len(self.predictions)
        if upto <= self._order_upto or self._order_upto >= n:
            return
        k = max(64, 2 * upto)
        if k * 2 < n:
            topk = _native.gate_topk(self.predictions, k)
            if topk is not None:
                self._order = topk[0]
                self._order_upto = k
                return
        self._order = np.argsort(self.predictions, kind="stable")
        self._order_upto = n

    def propose(self, ctx: EngineContext) -> Proposal | None:
        if self._rank >= len(self.predictions):
            return None
        self._ensure_order(self._rank + 1)
        idx = int(self._order[self._rank])
        self._rank += 1
        return Proposal(self._config_for(idx), float(self.predictions[idx]))

    def propose_block(self, ctx: EngineContext, count: int) -> list[Proposal]:
        """The next ``count`` pool entries in predicted order (may be
        short, or empty when the pool is exhausted)."""
        n = len(self.predictions)
        end = min(self._rank + count, n)
        self._ensure_order(end)
        block = []
        for rank in range(self._rank, end):
            idx = int(self._order[rank])
            block.append(
                Proposal(self._config_for(idx), float(self.predictions[idx]))
            )
        self._rank = end
        return block

    def rewind(self, count: int) -> None:
        self._rank -= count


class ReplayProposer(BaseProposer):
    """Replay the source machine's evaluated configurations (Ta).

    The model-free controls' candidate source: source order for RSpf
    (whose gate thresholds on the carried *source* runtime), ascending
    source runtime for RSbf.  Restricted to what the source already
    evaluated — which is exactly why the paper sees no performance
    speedups from these variants.
    """

    def __init__(
        self,
        training: Sequence[tuple[Configuration, float]],
        sort: bool = False,
    ) -> None:
        pairs = list(training)
        if sort:
            pairs = sorted(pairs, key=lambda pair: pair[1])
        self.pairs = pairs
        self._index = 0

    def restore(self, position: int, ctx: EngineContext) -> None:
        self._index = position

    def propose(self, ctx: EngineContext) -> Proposal | None:
        if self._index >= len(self.pairs):
            return None
        config, source_runtime = self.pairs[self._index]
        self._index += 1
        return Proposal(config, source_runtime)

    def propose_block(self, ctx: EngineContext, count: int) -> list[Proposal]:
        """The next ``count`` replayed pairs (empty when exhausted)."""
        pairs = self.pairs[self._index : self._index + count]
        self._index += len(pairs)
        return [Proposal(config, runtime) for config, runtime in pairs]

    def rewind(self, count: int) -> None:
        self._index -= count


class SMBOProposer(BaseProposer):
    """Sequential model-based optimization's candidate source.

    Setup builds the initial design — the source surrogate's best pool
    picks when transfer-seeded, a random design otherwise.  Once the
    design is consumed, each proposal refits a random forest on the
    target observations (every ``refit_every`` evaluations, optionally
    blending median-rescaled source observations), scores a fresh
    candidate pool with the acquisition function, and proposes the
    argmax.  Refit and scoring costs are charged *in propose*, outside
    the engine's budget guard: a budget wall mid-refit propagates to the
    caller, exactly as the pre-engine loop behaved.
    """

    def __init__(
        self,
        space: SearchSpace,
        rng,
        *,
        n_initial: int,
        pool_size: int,
        acquisition: str,
        kappa: float,
        source_surrogate: SurrogateModel | None = None,
        source_data: Sequence[tuple[Configuration, float]] | None = None,
        refit_every: int = 1,
        forest: "ForestSpec | None" = None,
    ) -> None:
        from repro.spec import SMBOSpec

        self.space = space
        self.rng = rng
        self.n_initial = n_initial
        self.pool_size = pool_size
        self.acquisition = acquisition
        self.kappa = kappa
        self.source_surrogate = source_surrogate
        self.source_data = source_data
        self.refit_every = refit_every
        # The refit forest's hyperparameters come from the shared
        # ForestSpec default (deduplicated with the surrogate's), not a
        # second hard-coded copy.
        self.forest = forest if forest is not None else SMBOSpec().forest
        self._design: list[Configuration] = []
        self._block_design: list[Configuration] = []
        self._observations: list[tuple[Configuration, float]] = []
        self._evaluated: set[int] = set()
        self._model: RandomForestRegressor | None = None
        self._since_fit = refit_every
        self._last_was_design = False

    def setup(self, ctx: EngineContext) -> None:
        clock = ctx.clock
        if self.source_surrogate is not None:
            clock.advance(self.source_surrogate.fit_seconds)
            n = min(self.pool_size, self.space.cardinality)
            predict_indices = getattr(
                self.source_surrogate, "predict_indices", None
            )
            sample_indices = getattr(self.space, "sample_indices", None)
            if predict_indices is not None and sample_indices is not None:
                # Bulk path: identical RNG draws and predictions (the
                # memo key is the same index tuple), but only the
                # n_initial design picks are materialized.  The design
                # selection keeps the historical *unstable* argsort —
                # its result is reproducible because the prediction
                # array is bit-identical.
                indices = sample_indices(self.rng, n)
                preds = predict_indices(indices)
                clock.advance(self.source_surrogate.predict_seconds(n))
                design = [
                    self.space.config_at(indices[int(i)])
                    for i in np.argsort(preds)[: self.n_initial]
                ]
            else:
                pool = self.space.sample(self.rng, n)
                preds = self.source_surrogate.predict(pool)
                clock.advance(self.source_surrogate.predict_seconds(len(pool)))
                design = [pool[int(i)] for i in np.argsort(preds)[: self.n_initial]]
        else:
            design = self.space.sample(
                self.rng, min(self.n_initial, self.space.cardinality)
            )
        self._design = list(design)
        self._since_fit = self.refit_every  # force a first fit

    def propose(self, ctx: EngineContext) -> Proposal | None:
        if self._design:
            self._last_was_design = True
            return Proposal(self._design.pop(0))
        self._last_was_design = False
        clock = ctx.clock
        if self._since_fit >= self.refit_every or self._model is None:
            self._since_fit = 0
            training = list(self._observations)
            if self.source_data:
                src_med = float(np.median([y for _, y in self.source_data]))
                tgt_med = float(np.median([y for _, y in self._observations]))
                scale = tgt_med / src_med if src_med > 0 else 1.0
                training += [(c, y * scale) for c, y in self.source_data]
            X = encode_cached(self.space, [c for c, _ in training])
            y = np.log([v for _, v in training])
            self._model = RandomForestRegressor.from_spec(self.forest)
            self._model.fit(X, y)
            clock.advance(0.5 + 2e-3 * len(training))  # simulated fit cost
        n = min(self.pool_size, self.space.cardinality)
        sample_indices = getattr(self.space, "sample_indices", None)
        if sample_indices is not None:
            # Bulk path: same RNG draws, same candidate set, but the
            # 1k-row pool is encoded straight from indices and only the
            # acquisition argmax becomes a Configuration.
            indices = [
                i for i in sample_indices(self.rng, n)
                if i not in self._evaluated
            ]
            if not indices:
                return None
            Xc = encoding_cache(self.space).encode_indices(indices)
            winner = lambda scores: Proposal(  # noqa: E731
                self.space.config_at(indices[int(np.argmax(scores))])
            )
        else:
            candidates = self.space.sample(self.rng, n)
            candidates = [c for c in candidates if c.index not in self._evaluated]
            if not candidates:
                return None
            Xc = encode_cached(self.space, candidates)
            winner = lambda scores: Proposal(  # noqa: E731
                candidates[int(np.argmax(scores))]
            )
        mu = self._model.predict(Xc)
        clock.advance(2e-4 * len(Xc))
        if self.acquisition == "mean":
            scores = -mu
        else:
            sigma = self._model.predict_std(Xc)
            if self.acquisition == "lcb":
                scores = -(mu - self.kappa * sigma)
            else:
                best = math.log(min(v for _, v in self._observations))
                scores = _expected_improvement(mu, sigma, best)
        return winner(scores)

    def propose_block(self, ctx: EngineContext, count: int) -> list[Proposal] | None:
        """Design-phase proposals in one block; ``None`` in the model
        phase, where each proposal depends on the previous observation
        and the engine must stay candidate-by-candidate."""
        if not self._design:
            return None
        take = self._design[:count]
        del self._design[:count]
        self._last_was_design = True
        self._block_design = take
        return [Proposal(config) for config in take]

    def rewind(self, count: int) -> None:
        tail = self._block_design[len(self._block_design) - count :]
        self._design[:0] = tail

    def observe(self, ctx: EngineContext, proposal: Proposal, runtime: float,
                failed: bool, censored: bool) -> None:
        self._evaluated.add(proposal.config.index)
        self._observations.append((proposal.config, runtime))
        if not self._last_was_design:
            self._since_fit += 1
