"""Model-free control variants (Section IV-D).

Both are restricted to the configurations the source machine actually
evaluated (``Ta``), which is why the paper observes no *performance*
speedups from them — they cannot discover anything RS did not already
evaluate on the source:

* **RSpf** — computes the cutoff ``∆`` directly from the source
  runtimes (no model) and replays the source's evaluation order,
  skipping configurations whose *source* runtime is above the cutoff.
* **RSbf** — sorts the source configurations by source runtime and
  evaluates them in that order.

Composition: a :class:`ReplayProposer` (source order / sorted) crossed
with a :class:`ReplayThresholdGate` (RSpf) or nothing (RSbf).  Both
variants gained ``checkpoint`` resume with the engine rewrite — the
replayed position is the only proposer state, so a resumed run
continues at the exact source-trace entry it stopped at.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import SearchError
from repro.search.engine import SearchEngine
from repro.search.gates import ReplayThresholdGate
from repro.search.proposers import ReplayProposer
from repro.search.result import SearchTrace
from repro.searchspace.space import Configuration
from repro.spec import UNSET, TunerSpec, resolve_spec

__all__ = ["model_free_pruned_search", "model_free_biased_search"]


def _check_training(training: Sequence[tuple[Configuration, float]]) -> None:
    if not training:
        raise SearchError("model-free variants need non-empty source data Ta")


def model_free_pruned_search(
    evaluator,
    training: Sequence[tuple[Configuration, float]],
    nmax: int = 100,
    delta_percent: float | None = None,
    name: str = "RSpf",
    checkpoint=None,
    batch_size=UNSET,
    spec: TunerSpec | None = None,
) -> SearchTrace:
    """RSpf: threshold replay of the source machine's evaluations.

    ``spec`` (a :class:`repro.spec.TunerSpec`) supplies defaults for
    ``delta_percent`` and ``batch_size`` when not passed explicitly.
    """
    _check_training(training)
    spec = resolve_spec(spec)
    if delta_percent is None:
        delta_percent = spec.gate.delta_percent
    if batch_size is UNSET:
        batch_size = spec.engine.batch_size
    if not 0.0 < delta_percent < 100.0:
        raise SearchError(f"delta_percent must be in (0, 100), got {delta_percent}")
    engine = SearchEngine(
        evaluator,
        ReplayProposer(training),
        ReplayThresholdGate(
            [y for _, y in training], delta_percent=delta_percent
        ),
        nmax=nmax,
        name=name,
        space=training[0][0].space,
        checkpoint=checkpoint,
        batch_size=batch_size,
    )
    return engine.run()


def model_free_biased_search(
    evaluator,
    training: Sequence[tuple[Configuration, float]],
    nmax: int = 100,
    name: str = "RSbf",
    checkpoint=None,
    batch_size=UNSET,
    spec: TunerSpec | None = None,
) -> SearchTrace:
    """RSbf: sorted replay of the source machine's evaluations.

    ``spec`` supplies the default ``batch_size`` when not passed.
    """
    _check_training(training)
    spec = resolve_spec(spec)
    if batch_size is UNSET:
        batch_size = spec.engine.batch_size
    engine = SearchEngine(
        evaluator,
        ReplayProposer(training, sort=True),
        nmax=nmax,
        name=name,
        space=training[0][0].space,
        checkpoint=checkpoint,
        batch_size=batch_size,
    )
    return engine.run()
