"""Model-free control variants (Section IV-D).

Both are restricted to the configurations the source machine actually
evaluated (``Ta``), which is why the paper observes no *performance*
speedups from them — they cannot discover anything RS did not already
evaluate on the source:

* **RSpf** — computes the cutoff ``∆`` directly from the source
  runtimes (no model) and replays the source's evaluation order,
  skipping configurations whose *source* runtime is above the cutoff.
* **RSbf** — sorts the source configurations by source runtime and
  evaluates them in that order.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import BudgetExhaustedError, EvaluationFailure, SearchError
from repro.search.random_search import record_failure, record_measurement
from repro.search.result import SearchTrace
from repro.searchspace.space import Configuration
from repro.utils.stats import quantile

__all__ = ["model_free_pruned_search", "model_free_biased_search"]


def _check_training(training: Sequence[tuple[Configuration, float]]) -> None:
    if not training:
        raise SearchError("model-free variants need non-empty source data Ta")


def model_free_pruned_search(
    evaluator,
    training: Sequence[tuple[Configuration, float]],
    nmax: int = 100,
    delta_percent: float = 20.0,
    name: str = "RSpf",
) -> SearchTrace:
    """RSpf: threshold replay of the source machine's evaluations."""
    _check_training(training)
    if not 0.0 < delta_percent < 100.0:
        raise SearchError(f"delta_percent must be in (0, 100), got {delta_percent}")
    cutoff = quantile([y for _, y in training], delta_percent / 100.0)
    trace = SearchTrace(algorithm=name)
    trace.metadata["cutoff"] = cutoff
    skipped = 0
    for config, source_runtime in training:
        if trace.n_evaluations >= nmax:
            break
        if source_runtime >= cutoff:
            skipped += 1
            continue
        try:
            measurement = evaluator.evaluate(config)
        except BudgetExhaustedError:
            trace.exhausted_budget = True
            break
        except EvaluationFailure as exc:
            record_failure(trace, config, exc, evaluator.clock.now,
                           skipped_before=skipped)
        else:
            record_measurement(trace, config, measurement, evaluator.clock.now,
                               skipped_before=skipped)
        skipped = 0
    trace.total_elapsed = max(trace.total_elapsed, evaluator.clock.now)
    return trace


def model_free_biased_search(
    evaluator,
    training: Sequence[tuple[Configuration, float]],
    nmax: int = 100,
    name: str = "RSbf",
) -> SearchTrace:
    """RSbf: sorted replay of the source machine's evaluations."""
    _check_training(training)
    trace = SearchTrace(algorithm=name)
    for config, _ in sorted(training, key=lambda pair: pair[1]):
        if trace.n_evaluations >= nmax:
            break
        try:
            measurement = evaluator.evaluate(config)
        except BudgetExhaustedError:
            trace.exhausted_budget = True
            break
        except EvaluationFailure as exc:
            record_failure(trace, config, exc, evaluator.clock.now)
        else:
            record_measurement(trace, config, measurement, evaluator.clock.now)
    trace.total_elapsed = max(trace.total_elapsed, evaluator.clock.now)
    return trace
