"""Random search without replacement (RS) — the paper's baseline.

Configurations are drawn uniformly without replacement (each remaining
configuration has probability ``1/(|D|-k+1)`` at iteration ``k``,
Section II) and evaluated until the evaluation budget ``nmax`` is
reached or the simulated time budget runs out.
"""

from __future__ import annotations

from repro.errors import BudgetExhaustedError, EvaluationFailure, SearchError
from repro.search.result import EvaluationRecord, SearchTrace
from repro.search.stream import SharedStream

__all__ = ["random_search", "record_measurement", "record_failure"]


def record_measurement(trace: SearchTrace, config, measurement, elapsed: float,
                       skipped_before: int = 0) -> None:
    """Append one evaluation outcome — successful or degraded — to a trace.

    A measurement exposing ``failed=True`` (e.g. a
    :class:`repro.reliability.resilient.FailedMeasurement`) is recorded
    distinctly from successes; it occupies its position in the shared
    stream so common-random-numbers comparisons stay aligned, but the
    trace never counts it as a best result.
    """
    trace.add(
        EvaluationRecord(
            config=config,
            runtime=measurement.runtime_seconds,
            elapsed=elapsed,
            skipped_before=skipped_before,
            failed=bool(getattr(measurement, "failed", False)),
            censored=bool(getattr(measurement, "censored", False)),
        )
    )


def record_failure(trace: SearchTrace, config, exc: EvaluationFailure,
                   elapsed: float, skipped_before: int = 0) -> None:
    """Record an unhandled evaluation failure as a failed trace entry.

    Used when the evaluator is not wrapped in a
    :class:`~repro.reliability.resilient.ResilientEvaluator`: the
    search itself censors the configuration (a timeout's cap when
    available, ``inf`` otherwise) instead of crashing.
    """
    censored_at = getattr(exc, "censored_at", None)
    trace.add(
        EvaluationRecord(
            config=config,
            runtime=float("inf") if censored_at is None else float(censored_at),
            elapsed=elapsed,
            skipped_before=skipped_before,
            failed=True,
            censored=censored_at is not None,
        )
    )


def random_search(
    evaluator,
    stream: SharedStream,
    nmax: int = 100,
    name: str = "RS",
    checkpoint=None,
) -> SearchTrace:
    """Run RS for at most ``nmax`` evaluations.

    ``evaluator`` is an :class:`~repro.orio.evaluator.OrioEvaluator`-
    like object whose ``evaluate(config)`` returns a measurement with
    ``runtime_seconds`` and whose ``clock`` tracks elapsed search time.
    ``stream`` supplies the (shared) random configuration order.

    A :class:`~repro.errors.BudgetExhaustedError` from the evaluator
    ends the search early with ``exhausted_budget=True`` — the paper's
    X-Gene experience, where full data collection was impossible.
    Recoverable :class:`~repro.errors.EvaluationFailure` errors (and
    degraded measurements from a
    :class:`~repro.reliability.resilient.ResilientEvaluator`) are
    recorded as failed entries at their stream position — no extra
    positions are consumed, so CRN alignment survives faults.

    ``checkpoint`` is an optional
    :class:`~repro.reliability.checkpoint.CheckpointManager`; when its
    file exists the search resumes from it instead of starting over.
    """
    if nmax < 1:
        raise SearchError(f"nmax must be >= 1, got {nmax}")
    trace = SearchTrace(algorithm=name)
    start = 0
    if checkpoint is not None:
        start, _ = checkpoint.restore(
            trace, stream.space, evaluator=evaluator, stream=stream
        )
    position = start
    for k in range(start, nmax):
        config = stream[k]
        try:
            measurement = evaluator.evaluate(config)
        except BudgetExhaustedError:
            trace.exhausted_budget = True
            break
        except EvaluationFailure as exc:
            record_failure(trace, config, exc, evaluator.clock.now)
        else:
            record_measurement(trace, config, measurement, evaluator.clock.now)
        position = k + 1
        if checkpoint is not None:
            checkpoint.maybe_save(trace, position=position, evaluator=evaluator)
    trace.total_elapsed = max(trace.total_elapsed, evaluator.clock.now)
    if checkpoint is not None:
        checkpoint.save(trace, position=position, evaluator=evaluator)
    return trace
