"""Random search without replacement (RS) — the paper's baseline.

Configurations are drawn uniformly without replacement (each remaining
configuration has probability ``1/(|D|-k+1)`` at iteration ``k``,
Section II) and evaluated until the evaluation budget ``nmax`` is
reached or the simulated time budget runs out.
"""

from __future__ import annotations

from repro.errors import BudgetExhaustedError, SearchError
from repro.search.result import EvaluationRecord, SearchTrace
from repro.search.stream import SharedStream

__all__ = ["random_search"]


def random_search(
    evaluator,
    stream: SharedStream,
    nmax: int = 100,
    name: str = "RS",
) -> SearchTrace:
    """Run RS for at most ``nmax`` evaluations.

    ``evaluator`` is an :class:`~repro.orio.evaluator.OrioEvaluator`-
    like object whose ``evaluate(config)`` returns a measurement with
    ``runtime_seconds`` and whose ``clock`` tracks elapsed search time.
    ``stream`` supplies the (shared) random configuration order.

    A :class:`~repro.errors.BudgetExhaustedError` from the evaluator
    ends the search early with ``exhausted_budget=True`` — the paper's
    X-Gene experience, where full data collection was impossible.
    """
    if nmax < 1:
        raise SearchError(f"nmax must be >= 1, got {nmax}")
    trace = SearchTrace(algorithm=name)
    for k in range(nmax):
        config = stream[k]
        try:
            measurement = evaluator.evaluate(config)
        except BudgetExhaustedError:
            trace.exhausted_budget = True
            break
        trace.add(
            EvaluationRecord(
                config=config,
                runtime=measurement.runtime_seconds,
                elapsed=evaluator.clock.now,
            )
        )
    return trace
