"""Random search without replacement (RS) — the paper's baseline.

Configurations are drawn uniformly without replacement (each remaining
configuration has probability ``1/(|D|-k+1)`` at iteration ``k``,
Section II) and evaluated until the evaluation budget ``nmax`` is
reached or the simulated time budget runs out.
"""

from __future__ import annotations

from repro.search.engine import SearchEngine, record_failure, record_measurement
from repro.search.proposers import StreamProposer
from repro.search.result import SearchTrace
from repro.search.stream import SharedStream
from repro.spec import UNSET, TunerSpec, resolve_spec

# record_measurement / record_failure live in the engine (their only
# caller); re-exported here for backward compatibility.
__all__ = ["random_search", "record_measurement", "record_failure"]


def random_search(
    evaluator,
    stream: SharedStream,
    nmax: int = 100,
    name: str = "RS",
    checkpoint=None,
    batch_size=UNSET,
    spec: TunerSpec | None = None,
) -> SearchTrace:
    """Run RS for at most ``nmax`` evaluations.

    ``evaluator`` is an :class:`~repro.orio.evaluator.OrioEvaluator`-
    like object whose ``evaluate(config)`` returns a measurement with
    ``runtime_seconds`` and whose ``clock`` tracks elapsed search time.
    ``stream`` supplies the (shared) random configuration order.

    A :class:`~repro.errors.BudgetExhaustedError` from the evaluator
    ends the search early with ``exhausted_budget=True`` — the paper's
    X-Gene experience, where full data collection was impossible.
    Recoverable :class:`~repro.errors.EvaluationFailure` errors (and
    degraded measurements from a
    :class:`~repro.reliability.resilient.ResilientEvaluator`) are
    recorded as failed entries at their stream position — no extra
    positions are consumed, so CRN alignment survives faults.

    ``checkpoint`` is an optional
    :class:`~repro.reliability.checkpoint.CheckpointManager`; when its
    file exists the search resumes from it instead of starting over.

    ``batch_size`` selects the engine's block execution (``None`` for
    the serial loop); traces are bit-identical either way — see
    :class:`~repro.search.engine.SearchEngine`.  When not passed it
    comes from ``spec`` (a :class:`repro.spec.TunerSpec`; the default
    spec reproduces historical behavior exactly).
    """
    spec = resolve_spec(spec)
    if batch_size is UNSET:
        batch_size = spec.engine.batch_size
    engine = SearchEngine(
        evaluator,
        StreamProposer(stream),
        nmax=nmax,
        name=name,
        space=stream.space,
        stream=stream,
        position_cap=nmax,
        checkpoint=checkpoint,
        batch_size=batch_size,
    )
    return engine.run()
