"""Admission gates for the :class:`~repro.search.engine.SearchEngine`.

A gate decides which proposals are worth paying an evaluation for.  A
rejected proposal consumes its position (the skip is recorded on the
next accepted evaluation's ``skipped_before``) but no evaluation time —
except where the *decision itself* costs simulated time, which the gate
charges to the clock:

* :class:`AcceptAll` — evaluate everything (RS, RSb, the techniques;
  equivalent to passing ``gate=None`` to the engine);
* :class:`QuantileGate` — Algorithm 1's pruning test: a surrogate
  prediction per position, admitted below the ``δ``-quantile cutoff
  ``∆`` of a scored pool, each query charged to the clock (RSp);
* :class:`ReplayThresholdGate` — the model-free pruning test: the same
  cutoff computed directly from *source* runtimes, compared against the
  source runtime carried on each replayed proposal, for free (RSpf);
* :class:`PredictionCutoffGate` — the prune-then-bias hybrid's test:
  the ``δ``-quantile of a pool ranker's own predictions, also free
  because those predictions were already paid for in setup (RSpb).

Every gate mirrors the legacy loops' ``predicted >= cutoff`` skip test
(NaN predictions are evaluated, not skipped) so the golden-trace suite
holds byte-for-byte.
"""

from __future__ import annotations

import numpy as np

from repro.search.protocols import EngineContext, Proposal, SurrogateModel
from repro.search.proposers import PoolRankProposer
from repro.searchspace.space import SearchSpace
from repro.utils.rng import spawn_rng
from repro.utils.stats import quantile

__all__ = [
    "AcceptAll",
    "QuantileGate",
    "ReplayThresholdGate",
    "PredictionCutoffGate",
]


class AcceptAll:
    """Evaluate every proposal (what ``gate=None`` means, reified)."""

    #: Simulated seconds one admission decision charges (free here).
    admit_charge = 0.0

    def setup(self, ctx: EngineContext) -> None:
        pass

    def admit(self, ctx: EngineContext, proposal: Proposal) -> bool:
        return True

    def admit_vector(self, predicted: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`admit` over a block of predictions."""
        return np.ones(len(predicted), dtype=bool)


class QuantileGate:
    """RSp's pruning test (Algorithm 1).

    Setup charges the surrogate fit, samples a pool of ``pool_size``
    configurations from a deterministic RNG key, predicts their
    runtimes (charged as one batch), and sets the cutoff ``∆`` to the
    ``δ``-quantile of those predictions.  Each admission decision
    charges one model query and admits predictions below ``∆``.  On a
    resumed run the restored clock already paid the setup charges; the
    recomputation itself is deterministic and free.
    """

    def __init__(
        self,
        space: SearchSpace,
        surrogate: SurrogateModel,
        delta_percent: float = 20.0,
        pool_size: int = 10_000,
        rng_label: str = "rsp-pool",
    ) -> None:
        self.space = space
        self.surrogate = surrogate
        self.delta_percent = delta_percent
        self.pool_size = pool_size
        self.rng_label = rng_label
        self.cutoff: float | None = None
        self._scored = None  # pool predictions, kept for cutoff_at()

    @classmethod
    def from_spec(
        cls,
        space: SearchSpace,
        surrogate: SurrogateModel,
        spec,
        rng_label: str = "rsp-pool",
    ) -> "QuantileGate":
        """Build the gate from a :class:`repro.spec.TunerSpec` — δ from
        its :class:`~repro.spec.GateSpec`, the pool size from its
        :class:`~repro.spec.PoolSpec`."""
        return cls(
            space,
            surrogate,
            delta_percent=spec.gate.delta_percent,
            pool_size=spec.pool.size,
            rng_label=rng_label,
        )

    def setup(self, ctx: EngineContext) -> None:
        clock = ctx.clock
        if not ctx.resumed:
            clock.advance(self.surrogate.fit_seconds)
        pool_rng = spawn_rng(self.rng_label, self.space.name, ctx.name)
        pool = self.space.sample(pool_rng, min(self.pool_size, self.space.cardinality))
        predictions = self.surrogate.predict(pool)
        if not ctx.resumed:
            clock.advance(self.surrogate.predict_seconds(len(pool)))
        self._scored = predictions
        self.cutoff = quantile(predictions, self.delta_percent / 100.0)
        ctx.trace.metadata["cutoff"] = self.cutoff

    def admit(self, ctx: EngineContext, proposal: Proposal) -> bool:
        ctx.clock.advance(self.surrogate.predict_seconds(1))
        return not (proposal.predicted >= self.cutoff)

    @property
    def admit_charge(self) -> float:
        """Simulated seconds one admission decision charges — the one
        model query :meth:`admit` pays.  The batched engine applies it
        per element, in stream order, so clock bytes match serial."""
        return self.surrogate.predict_seconds(1)

    def admit_vector(self, predicted: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`admit` over a block of predictions.

        Same skip test, same NaN semantics: ``not (p >= cutoff)``
        admits NaN predictions, so the complement form is used."""
        return ~(predicted >= self.cutoff)

    @property
    def delta_fraction(self) -> float:
        return self.delta_percent / 100.0

    def cutoff_at(self, fraction: float) -> float:
        """The cutoff this gate would use at another quantile — how a
        guard widens the pruning test without new model queries (the
        pool predictions were scored, and charged, in setup)."""
        return quantile(self._scored, fraction)


class ReplayThresholdGate:
    """RSpf's model-free pruning test.

    The cutoff is the ``δ``-quantile of the *source* runtimes; each
    replayed proposal carries its source runtime as ``predicted``, so
    admission is a comparison — no model, no clock charge.
    """

    def __init__(
        self,
        source_runtimes,
        delta_percent: float = 20.0,
    ) -> None:
        self.source_runtimes = list(source_runtimes)
        self.delta_percent = delta_percent
        self.cutoff: float | None = None

    #: Admission is a comparison against a carried source runtime: free.
    admit_charge = 0.0

    def setup(self, ctx: EngineContext) -> None:
        self.cutoff = quantile(self.source_runtimes, self.delta_percent / 100.0)
        ctx.trace.metadata["cutoff"] = self.cutoff

    def admit(self, ctx: EngineContext, proposal: Proposal) -> bool:
        return not (proposal.predicted >= self.cutoff)

    def admit_vector(self, predicted: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`admit` (NaN admits, as in the scalar form)."""
        return ~(predicted >= self.cutoff)


class PredictionCutoffGate:
    """The prune-then-bias hybrid's test (RSpb).

    Gates a :class:`~repro.search.proposers.PoolRankProposer`'s sorted
    pool by the ``δ``-quantile of that proposer's own predictions:
    only the best-predicted ``δ`` fraction of the pool is evaluated, in
    ascending predicted order — RSb's exploitation restricted to RSp's
    admissible set.  Free at admission time: the predictions were paid
    for when the pool was scored.
    """

    def __init__(
        self,
        proposer: PoolRankProposer,
        delta_percent: float = 20.0,
    ) -> None:
        self.proposer = proposer
        self.delta_percent = delta_percent
        self.cutoff: float | None = None

    #: The pool predictions were paid for in the proposer's setup: free.
    admit_charge = 0.0

    def setup(self, ctx: EngineContext) -> None:
        # Runs after the proposer's setup, so its pool is scored.
        self.cutoff = quantile(self.proposer.predictions, self.delta_percent / 100.0)
        ctx.trace.metadata["cutoff"] = self.cutoff

    def admit(self, ctx: EngineContext, proposal: Proposal) -> bool:
        return not (proposal.predicted >= self.cutoff)

    def admit_vector(self, predicted: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`admit` (NaN admits, as in the scalar form)."""
        return ~(predicted >= self.cutoff)

    @property
    def delta_fraction(self) -> float:
        return self.delta_percent / 100.0

    def cutoff_at(self, fraction: float) -> float:
        """The cutoff at another quantile of the proposer's pool
        predictions — the guard's quantile-widening hook (free, like
        :meth:`admit`)."""
        return quantile(self.proposer.predictions, fraction)
