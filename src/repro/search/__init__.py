"""Search algorithms: RS and its model-based/model-free variants.

* :func:`random_search` — random search without replacement (RS), the
  paper's baseline (Section II).
* :func:`pruned_search` — RS with the surrogate pruning strategy
  (Algorithm 1, RSp).
* :func:`biased_search` — RS with the surrogate biasing strategy
  (Algorithm 2, RSb).
* :func:`hybrid_search` — the prune-then-bias hybrid (RSpb): the
  biased pool gated by the pruning cutoff ``∆``.
* :func:`model_free_pruned_search` / :func:`model_free_biased_search` —
  the model-free controls RSpf / RSbf (Section IV-D).
* :class:`SharedStream` — the common-random-numbers protocol: RS on the
  source, RS on the target, and RSp on the target all walk the same
  configuration sequence.

All variants are thin factories over one :class:`SearchEngine`
evaluation loop, composed from a Proposer (candidate source) crossed
with a Gate (admission test) — see ``docs/architecture.md`` and
:func:`compose` for building new combinations.  The model-guided
variants additionally take ``guard=`` (a
:class:`repro.transfer.guard.GuardPolicy`), arming
:class:`GuardedProposer`/:class:`GuardedGate` negative-transfer
monitoring with graceful fallback to plain RS.
"""

from repro.search.result import EvaluationRecord, SearchTrace
from repro.search.stream import SharedStream
from repro.search.protocols import SurrogateModel
from repro.search.engine import SearchEngine, compose
from repro.search.guarded import GuardedGate, GuardedProposer
from repro.search.random_search import random_search
from repro.search.pruning import pruned_search
from repro.search.biasing import biased_search, hybrid_search
from repro.search.model_free import model_free_biased_search, model_free_pruned_search

__all__ = [
    "EvaluationRecord",
    "SearchTrace",
    "SharedStream",
    "SurrogateModel",
    "SearchEngine",
    "compose",
    "GuardedProposer",
    "GuardedGate",
    "random_search",
    "pruned_search",
    "biased_search",
    "hybrid_search",
    "model_free_pruned_search",
    "model_free_biased_search",
]
