"""Search algorithms: RS and its model-based/model-free variants.

* :func:`random_search` — random search without replacement (RS), the
  paper's baseline (Section II).
* :func:`pruned_search` — RS with the surrogate pruning strategy
  (Algorithm 1, RSp).
* :func:`biased_search` — RS with the surrogate biasing strategy
  (Algorithm 2, RSb).
* :func:`model_free_pruned_search` / :func:`model_free_biased_search` —
  the model-free controls RSpf / RSbf (Section IV-D).
* :class:`SharedStream` — the common-random-numbers protocol: RS on the
  source, RS on the target, and RSp on the target all walk the same
  configuration sequence.
"""

from repro.search.result import EvaluationRecord, SearchTrace
from repro.search.stream import SharedStream
from repro.search.random_search import random_search
from repro.search.pruning import pruned_search
from repro.search.biasing import biased_search
from repro.search.model_free import model_free_biased_search, model_free_pruned_search

__all__ = [
    "EvaluationRecord",
    "SearchTrace",
    "SharedStream",
    "random_search",
    "pruned_search",
    "biased_search",
    "model_free_pruned_search",
    "model_free_biased_search",
]
