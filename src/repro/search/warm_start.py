"""Warm-started heuristic search — §VII future work.

The paper notes its performance speedups are limited *because* the
underlying search is random, and proposes testing "other sophisticated
search algorithms".  This module supplies that: any
:class:`~repro.tuner.technique.SearchTechnique` (GA, annealing, PSO,
pattern search, or the AUC bandit over all of them) is *warm-started*
from the surrogate — the model's top pool picks are evaluated first and
fed to the technique as its initial population/incumbent — and then the
technique continues the search on the target machine.

With ``seed_evaluations=0`` the function runs the plain (cold) technique
under the same accounting, so warm/cold comparisons are exact.

Composition: a :class:`~repro.tuner.adapter.TechniqueProposer` with a
seed phase, ungated, under the shared engine accounting (evaluation
failures propagate rather than being recorded — the technique runs
predate failure-aware traces and keep their historical contract).
"""

from __future__ import annotations

from repro.errors import SearchError
from repro.search.engine import SearchEngine
from repro.search.protocols import SurrogateModel
from repro.search.result import SearchTrace
from repro.searchspace.space import SearchSpace
from repro.tuner.adapter import TechniqueProposer
from repro.tuner.database import ResultsDatabase
from repro.tuner.manipulator import ConfigurationManipulator
from repro.tuner.technique import SearchTechnique

__all__ = ["warm_started_search"]


def warm_started_search(
    evaluator,
    space: SearchSpace,
    technique: SearchTechnique,
    surrogate: SurrogateModel | None = None,
    nmax: int = 100,
    pool_size: int = 10_000,
    seed_evaluations: int = 10,
    name: str | None = None,
) -> SearchTrace:
    """Run a technique, optionally warm-started from a surrogate.

    The first ``seed_evaluations`` measurements (counted against
    ``nmax``) are the surrogate's best pool predictions; each result is
    fed to the technique before it takes over.
    """
    if nmax < 1:
        raise SearchError(f"nmax must be >= 1, got {nmax}")
    if seed_evaluations < 0:
        raise SearchError(f"seed_evaluations must be >= 0, got {seed_evaluations}")
    if seed_evaluations > 0 and surrogate is None:
        raise SearchError("warm start requires a fitted surrogate")

    label = name or (
        f"{technique.name}+warm" if seed_evaluations else technique.name
    )
    database = ResultsDatabase()
    technique.bind(ConfigurationManipulator(space), database)
    engine = SearchEngine(
        evaluator,
        TechniqueProposer(
            technique,
            database,
            space,
            result_label=label,
            iteration_mode="trace",
            surrogate=surrogate,
            pool_size=pool_size,
            seed_evaluations=seed_evaluations,
        ),
        nmax=nmax,
        name=label,
        space=space,
        failure_mode="raise",
        setup_abort_elapsed=False,
    )
    return engine.run()
