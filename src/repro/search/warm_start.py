"""Warm-started heuristic search — §VII future work.

The paper notes its performance speedups are limited *because* the
underlying search is random, and proposes testing "other sophisticated
search algorithms".  This module supplies that: any
:class:`~repro.tuner.technique.SearchTechnique` (GA, annealing, PSO,
pattern search, or the AUC bandit over all of them) is *warm-started*
from the surrogate — the model's top pool picks are evaluated first and
fed to the technique as its initial population/incumbent — and then the
technique continues the search on the target machine.

With ``seed_evaluations=0`` the function runs the plain (cold) technique
under the same accounting, so warm/cold comparisons are exact.
"""

from __future__ import annotations

import numpy as np

from repro.errors import BudgetExhaustedError, SearchError
from repro.search.result import EvaluationRecord, SearchTrace
from repro.searchspace.space import SearchSpace
from repro.tuner.database import Result, ResultsDatabase
from repro.tuner.manipulator import ConfigurationManipulator
from repro.tuner.technique import SearchTechnique
from repro.utils.rng import spawn_rng
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # circular at runtime: transfer imports the searches
    from repro.transfer.surrogate import Surrogate

__all__ = ["warm_started_search"]


def warm_started_search(
    evaluator,
    space: SearchSpace,
    technique: SearchTechnique,
    surrogate: "Surrogate | None" = None,
    nmax: int = 100,
    pool_size: int = 10_000,
    seed_evaluations: int = 10,
    name: str | None = None,
) -> SearchTrace:
    """Run a technique, optionally warm-started from a surrogate.

    The first ``seed_evaluations`` measurements (counted against
    ``nmax``) are the surrogate's best pool predictions; each result is
    fed to the technique before it takes over.
    """
    if nmax < 1:
        raise SearchError(f"nmax must be >= 1, got {nmax}")
    if seed_evaluations < 0:
        raise SearchError(f"seed_evaluations must be >= 0, got {seed_evaluations}")
    if seed_evaluations > 0 and surrogate is None:
        raise SearchError("warm start requires a fitted surrogate")

    label = name or (
        f"{technique.name}+warm" if seed_evaluations else technique.name
    )
    trace = SearchTrace(algorithm=label)
    clock = evaluator.clock
    database = ResultsDatabase()
    manipulator = ConfigurationManipulator(space)
    technique.bind(manipulator, database)

    def run_one(config) -> bool:
        """Evaluate, record, feed back. Returns False on budget end."""
        cached = database.lookup(config)
        if cached is not None:
            technique.feedback(config, cached.value)
            return True
        try:
            measurement = evaluator.evaluate(config)
        except BudgetExhaustedError:
            trace.exhausted_budget = True
            return False
        value = measurement.runtime_seconds
        database.add(
            Result(config, value, label, elapsed=clock.now,
                   iteration=trace.n_evaluations)
        )
        technique.feedback(config, value)
        trace.add(EvaluationRecord(config=config, runtime=value, elapsed=clock.now))
        return True

    # Phase 1: surrogate-chosen seeds.
    if seed_evaluations > 0:
        assert surrogate is not None
        try:
            clock.advance(surrogate.fit_seconds)
            rng = spawn_rng("warm-start-pool", space.name, label)
            pool = space.sample(rng, min(pool_size, space.cardinality))
            predictions = surrogate.predict(pool)
            clock.advance(surrogate.predict_seconds(len(pool)))
        except BudgetExhaustedError:
            trace.exhausted_budget = True
            return trace
        order = np.argsort(predictions, kind="stable")
        for pool_idx in order[: min(seed_evaluations, nmax)]:
            if not run_one(pool[int(pool_idx)]):
                return trace

    # Phase 2: the technique drives.
    stall = 0
    while trace.n_evaluations < nmax:
        config = technique.propose()
        if database.lookup(config) is not None:
            technique.feedback(config, database.lookup(config).value)
            stall += 1
            if stall > 50 * nmax:
                break
            continue
        stall = 0
        if not run_one(config):
            break
    trace.total_elapsed = max(trace.total_elapsed, clock.now)
    return trace
