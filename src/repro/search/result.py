"""Search traces: what a search evaluated, when, and how good it was."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SearchError
from repro.searchspace.space import Configuration

__all__ = ["EvaluationRecord", "SearchTrace"]


@dataclass(frozen=True)
class EvaluationRecord:
    """One evaluated configuration within a search."""

    config: Configuration
    runtime: float  # measured objective (seconds)
    elapsed: float  # simulated search time when this evaluation completed
    skipped_before: int = 0  # configurations skipped since the previous record


@dataclass
class SearchTrace:
    """The complete history of one search run."""

    algorithm: str
    records: list[EvaluationRecord] = field(default_factory=list)
    total_elapsed: float = 0.0  # includes trailing overhead after last evaluation
    exhausted_budget: bool = False
    metadata: dict = field(default_factory=dict)

    def add(self, record: EvaluationRecord) -> None:
        if self.records and record.elapsed < self.records[-1].elapsed:
            raise SearchError("evaluation records must be time-ordered")
        self.records.append(record)
        self.total_elapsed = max(self.total_elapsed, record.elapsed)

    # ------------------------------------------------------------------
    @property
    def n_evaluations(self) -> int:
        return len(self.records)

    def best(self) -> EvaluationRecord:
        """The best-performing evaluated configuration."""
        if not self.records:
            raise SearchError(f"{self.algorithm}: no evaluations recorded")
        return min(self.records, key=lambda r: r.runtime)

    @property
    def best_runtime(self) -> float:
        return self.best().runtime

    def time_of_best(self) -> float:
        """Elapsed search time at which the final best was first found."""
        return self.best().elapsed

    def time_to_reach(self, runtime: float) -> float | None:
        """Elapsed time when a config with runtime <= ``runtime`` was
        first evaluated, or ``None`` if the search never got there."""
        for r in self.records:
            if r.runtime <= runtime:
                return r.elapsed
        return None

    def best_so_far(self) -> tuple[np.ndarray, np.ndarray]:
        """Step-curve arrays: (elapsed times, best runtime at each).

        Only improvement points are returned (the classic search
        progress curve of Figures 3-5).
        """
        times: list[float] = []
        bests: list[float] = []
        cur = float("inf")
        for r in self.records:
            if r.runtime < cur:
                cur = r.runtime
                times.append(r.elapsed)
                bests.append(cur)
        return np.asarray(times), np.asarray(bests)

    def runtimes(self) -> np.ndarray:
        return np.asarray([r.runtime for r in self.records])

    def configs(self) -> list[Configuration]:
        return [r.config for r in self.records]

    def training_data(self) -> list[tuple[Configuration, float]]:
        """The (x_i, y_i) pairs of Section III — surrogate training data."""
        return [(r.config, r.runtime) for r in self.records]

    def __repr__(self) -> str:
        if not self.records:
            return f"SearchTrace({self.algorithm!r}, empty)"
        return (
            f"SearchTrace({self.algorithm!r}, n={self.n_evaluations}, "
            f"best={self.best_runtime:.4g}s, elapsed={self.total_elapsed:.4g}s)"
        )
