"""Search traces: what a search evaluated, when, and how good it was."""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

import numpy as np

from repro.errors import SearchError
from repro.searchspace.space import Configuration

__all__ = ["EvaluationRecord", "SearchTrace"]


@dataclass(frozen=True)
class EvaluationRecord:
    """One evaluated configuration within a search.

    ``failed`` marks configurations whose evaluation could not be
    recovered (the runtime is then a penalty value, or — when
    ``censored`` — a lower bound such as a timeout cap).  Failed records
    occupy their stream position, keeping common-random-numbers
    comparisons aligned, but never count as a search's best result.
    """

    config: Configuration
    runtime: float  # measured objective (seconds)
    elapsed: float  # simulated search time when this evaluation completed
    skipped_before: int = 0  # configurations skipped since the previous record
    failed: bool = False  # evaluation failed; runtime is penalty/censored
    censored: bool = False  # runtime is a lower bound (e.g. timeout cap)


@dataclass
class SearchTrace:
    """The complete history of one search run."""

    algorithm: str
    records: list[EvaluationRecord] = field(default_factory=list)
    total_elapsed: float = 0.0  # includes trailing overhead after last evaluation
    exhausted_budget: bool = False
    metadata: dict = field(default_factory=dict)

    def add(self, record: EvaluationRecord) -> None:
        if self.records and record.elapsed < self.records[-1].elapsed:
            raise SearchError("evaluation records must be time-ordered")
        self.records.append(record)
        self.total_elapsed = max(self.total_elapsed, record.elapsed)

    # ------------------------------------------------------------------
    @property
    def n_evaluations(self) -> int:
        return len(self.records)

    @property
    def n_failures(self) -> int:
        """How many recorded evaluations failed."""
        return sum(1 for r in self.records if r.failed)

    def successes(self) -> list[EvaluationRecord]:
        """The records whose evaluation produced a real measurement."""
        return [r for r in self.records if not r.failed]

    def failures(self) -> list[EvaluationRecord]:
        """The records whose evaluation failed (censored or penalized)."""
        return [r for r in self.records if r.failed]

    def best(self) -> EvaluationRecord:
        """The best-performing successfully evaluated configuration."""
        successes = self.successes()
        if not successes:
            raise SearchError(
                f"{self.algorithm}: no successful evaluations recorded"
            )
        return min(successes, key=lambda r: r.runtime)

    @property
    def best_runtime(self) -> float:
        return self.best().runtime

    def time_of_best(self) -> float:
        """Elapsed search time at which the final best was first found."""
        return self.best().elapsed

    def time_to_reach(self, runtime: float) -> float | None:
        """Elapsed time when a config with runtime <= ``runtime`` was
        first successfully evaluated, or ``None`` if the search never
        got there."""
        for r in self.records:
            if not r.failed and r.runtime <= runtime:
                return r.elapsed
        return None

    def best_so_far(self) -> tuple[np.ndarray, np.ndarray]:
        """Step-curve arrays: (elapsed times, best runtime at each).

        Only improvement points are returned (the classic search
        progress curve of Figures 3-5); failed evaluations never
        improve the curve.
        """
        times: list[float] = []
        bests: list[float] = []
        cur = float("inf")
        for r in self.records:
            if not r.failed and r.runtime < cur:
                cur = r.runtime
                times.append(r.elapsed)
                bests.append(cur)
        return np.asarray(times), np.asarray(bests)

    def runtimes(self) -> np.ndarray:
        return np.asarray([r.runtime for r in self.records])

    def configs(self) -> list[Configuration]:
        return [r.config for r in self.records]

    def training_data(
        self, include_failed: bool = False
    ) -> list[tuple[Configuration, float]]:
        """The (x_i, y_i) pairs of Section III — surrogate training data.

        Failed evaluations are excluded by default; with
        ``include_failed=True`` they appear with their penalty/censored
        runtime so a censoring-aware learner (see
        :meth:`repro.transfer.surrogate.Surrogate.fit`) can drop or
        impute them explicitly.
        """
        return [
            (r.config, r.runtime)
            for r in self.records
            if include_failed or not r.failed
        ]

    def state_digest(self) -> str:
        """A sha256 digest over the trace's replayable state.

        Covers every record (config index, runtime, elapsed,
        skip/failure/censoring flags), the total elapsed time, and the
        budget-exhaustion flag — everything a resume must reproduce —
        while excluding free-form ``metadata`` (which may carry
        diagnostics that legitimately differ between a chaos run and
        its reference).  Two runs converged to the same search state if
        and only if their digests match; the chaos oracle compares
        exactly this across kill/restart boundaries.
        """
        rows = [
            (r.config.index, repr(r.runtime), repr(r.elapsed),
             r.skipped_before, r.failed, r.censored)
            for r in self.records
        ]
        payload = json.dumps(
            {
                "algorithm": self.algorithm,
                "records": rows,
                "total_elapsed": repr(self.total_elapsed),
                "exhausted_budget": self.exhausted_budget,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def __repr__(self) -> str:
        if not self.records:
            return f"SearchTrace({self.algorithm!r}, empty)"
        failed = f", failed={self.n_failures}" if self.n_failures else ""
        if not self.successes():
            return (
                f"SearchTrace({self.algorithm!r}, n={self.n_evaluations}{failed}, "
                f"elapsed={self.total_elapsed:.4g}s)"
            )
        return (
            f"SearchTrace({self.algorithm!r}, n={self.n_evaluations}{failed}, "
            f"best={self.best_runtime:.4g}s, elapsed={self.total_elapsed:.4g}s)"
        )
