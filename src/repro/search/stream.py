"""Common-random-numbers configuration streams (Section IV-D).

The paper reduces variance by running every algorithm against the same
random draw: RS on the source machine, RS on the target, and RSp on the
target all evaluate configurations *in the same order*; RSp merely
skips some.  A :class:`SharedStream` is that order — a lazily extended,
duplicate-free sequence of uniformly sampled configurations from one
seeded generator.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SearchError
from repro.searchspace.space import Configuration, SearchSpace
from repro.utils.rng import spawn_rng

__all__ = ["SharedStream"]


class SharedStream:
    """A reproducible, duplicate-free configuration sequence."""

    def __init__(self, space: SearchSpace, seed: object = 0, batch: int = 64) -> None:
        if batch < 1:
            raise SearchError(f"batch must be >= 1, got {batch}")
        self.space = space
        self._rng: np.random.Generator = spawn_rng("shared-stream", space.name, str(seed))
        self._batch = batch
        self._configs: list[Configuration] = []
        self._seen: set[int] = set()

    def _extend(self, upto: int) -> None:
        while len(self._configs) < upto:
            remaining = self.space.cardinality - len(self._seen)
            if remaining == 0:
                raise SearchError(
                    f"stream exhausted the whole space ({self.space.cardinality} configs)"
                )
            want = min(self._batch, remaining, upto - len(self._configs) + self._batch)
            indices = self.space.sample_indices(self._rng, min(want, remaining), self._seen)
            for i in indices:
                self._seen.add(i)
                self._configs.append(self.space.config_at(i))

    def __getitem__(self, position: int) -> Configuration:
        if position < 0:
            raise SearchError("stream positions are non-negative")
        self._extend(position + 1)
        return self._configs[position]

    def prefix(self, n: int) -> list[Configuration]:
        """The first ``n`` configurations."""
        self._extend(n)
        return list(self._configs[:n])

    def __iter__(self):
        position = 0
        while True:
            try:
                yield self[position]
            except SearchError:
                return
            position += 1
