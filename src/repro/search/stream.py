"""Common-random-numbers configuration streams (Section IV-D).

The paper reduces variance by running every algorithm against the same
random draw: RS on the source machine, RS on the target, and RSp on the
target all evaluate configurations *in the same order*; RSp merely
skips some.  A :class:`SharedStream` is that order — a lazily extended,
duplicate-free sequence of uniformly sampled configurations from one
seeded generator.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SearchError, StreamExhaustedError
from repro.searchspace.space import Configuration, SearchSpace
from repro.utils.rng import spawn_rng

__all__ = ["SharedStream"]


class SharedStream:
    """A reproducible, duplicate-free configuration sequence."""

    def __init__(self, space: SearchSpace, seed: object = 0, batch: int = 64) -> None:
        if batch < 1:
            raise SearchError(f"batch must be >= 1, got {batch}")
        self.space = space
        self.seed = seed
        self._rng: np.random.Generator = spawn_rng("shared-stream", space.name, str(seed))
        self._batch = batch
        self._configs: list[Configuration] = []
        self._seen: set[int] = set()

    @property
    def materialized(self) -> int:
        """How many stream positions have been generated so far."""
        return len(self._configs)

    def _extend(self, upto: int) -> None:
        while len(self._configs) < upto:
            remaining = self.space.cardinality - len(self._seen)
            if remaining == 0:
                raise StreamExhaustedError(
                    f"stream exhausted the whole space ({self.space.cardinality} configs)"
                )
            # Always extend by one full batch (capped by what is left):
            # the chunk sizes the generator sees are then independent of
            # the access pattern, so prefix(n), random access, and a
            # stream rebuilt after a checkpoint/resume all materialize
            # bit-identical sequences.
            want = min(self._batch, remaining)
            for i in self.space.sample_indices(self._rng, want, self._seen):
                self._seen.add(i)
                self._configs.append(self.space.config_at(i))

    def __getitem__(self, position: int) -> Configuration:
        if position < 0:
            raise SearchError("stream positions are non-negative")
        self._extend(position + 1)
        return self._configs[position]

    def prefix(self, n: int) -> list[Configuration]:
        """The first ``n`` configurations."""
        self._extend(n)
        return list(self._configs[:n])

    def __iter__(self):
        position = 0
        while True:
            try:
                yield self[position]
            except StreamExhaustedError:
                # Clean stop: iterating a stream over a small space
                # simply ends when every configuration has been seen.
                return
            position += 1
