"""Guard wrappers: model-health intervention as a composition layer.

A guarded search is an ordinary :class:`~repro.search.engine.SearchEngine`
composition whose proposer and gate are wrapped.  The wrappers hold no
policy of their own — they ask a *guard* (duck-typed; the canonical
implementation is :class:`repro.transfer.guard.ModelGuard`, which this
module deliberately does not import, keeping the search layer free of
``repro.transfer``) what state the model is in and translate the answer
into search behavior:

========  ==========================================================
state      behavior
========  ==========================================================
trusted    byte-identical delegation to the wrapped proposer/gate —
           a guard that never leaves this state leaves no mark on
           the trace (enforced by the golden-trace suite).
suspect    hedge: :class:`GuardedProposer` interleaves the model's
           ranking with draws from the shared stream (flattening the
           bias ordering), :class:`GuardedGate` widens the pruning
           quantile by the policy's ``widen_factor`` and promotes
           every ``audit_every``-th still-rejected proposal to an
           *audit* evaluation — paid evidence about the region the
           model wants to discard.
revoked    fall back to plain RS: the proposer serves the shared
           stream in order and the gate admits everything without
           charging model queries, so the remainder of the run is
           exactly what plain random search would have done on the
           same stream under common random numbers.
========  ==========================================================

The guard's verdict state rides inside the proposer's checkpoint
``state()`` payload, so a killed guarded run resumes bit-identically —
including in-flight audits and the SUSPECT interleave phase.
"""

from __future__ import annotations

from repro.errors import SearchError
from repro.search.protocols import EngineContext, Proposal
from repro.search.stream import SharedStream

__all__ = ["GuardedProposer", "GuardedGate", "build_guard"]

# The guard-state contract (mirrors repro.transfer.guard.GUARD_STATES;
# string literals keep this module import-free of the transfer layer).
_TRUSTED = "trusted"
_SUSPECT = "suspect"
_REVOKED = "revoked"


def build_guard(guard, surrogate):
    """Normalize a factory's ``guard=`` argument to a guard instance.

    Accepts ``None`` (unguarded), a policy-like object exposing
    ``build(surrogate)`` (e.g. ``repro.transfer.guard.GuardPolicy`` —
    a fresh per-run guard is built around the search's surrogate), or
    an already-built guard instance, which is used as-is.
    """
    if guard is None:
        return None
    build = getattr(guard, "build", None)
    if callable(build):
        guard = build(surrogate)
    for attr in ("enabled", "state", "observe", "state_dict", "load_state"):
        if not hasattr(guard, attr):
            raise SearchError(
                f"guard object {type(guard).__name__} lacks {attr!r}; pass a "
                "GuardPolicy, a ModelGuard, or None"
            )
    return guard


class GuardedProposer:
    """Wrap a proposer with guard-directed fallback to the shared stream.

    ``stream`` is the plain-RS candidate source used while the guard
    distrusts the model (required for pool-ranking proposers, whose
    own source *is* the model; stream-walking proposers like RSp's
    pass ``None`` and simply keep walking their stream).  Positions
    consumed from the wrapped proposer and from the fallback stream
    are tracked separately and checkpointed, so a resume hands each
    source back exactly the progress it made.
    """

    def __init__(self, inner, guard, stream: SharedStream | None = None) -> None:
        self.inner = inner
        self.guard = guard
        self.stream = stream
        self._inner_consumed = 0
        self._fallback_consumed = 0
        self._flip = False
        self._last_origin = "inner"

    # -- lifecycle -----------------------------------------------------
    def restore(self, position: int, ctx: EngineContext) -> None:
        extra = ctx.extra
        saved = extra.get("guard_positions") if self.guard.enabled else None
        if self.guard.enabled and extra.get("guard") is not None:
            self.guard.load_state(extra["guard"])
        if saved is None:
            self._inner_consumed = position
            self._fallback_consumed = 0
            self._flip = False
            self._last_origin = "inner"
            self.inner.restore(position, ctx)
            return
        inner_pos = int(saved["inner"])
        fallback_pos = int(saved["fallback"])
        self._flip = bool(saved["flip"])
        self._last_origin = saved["last_origin"]
        if inner_pos + fallback_pos == position + 1:
            # The engine rewound the in-flight proposal at a budget
            # wall; hand it back to whichever source produced it.
            if self._last_origin == "fallback" and fallback_pos > 0:
                fallback_pos -= 1
            else:
                inner_pos -= 1
        self._inner_consumed = inner_pos
        self._fallback_consumed = fallback_pos
        self.inner.restore(inner_pos, ctx)

    def setup(self, ctx: EngineContext) -> None:
        self.inner.setup(ctx)

    # -- proposing -----------------------------------------------------
    def propose(self, ctx: EngineContext) -> Proposal | None:
        guard = self.guard
        if not guard.enabled or guard.state == _TRUSTED or self.stream is None:
            return self._propose_inner(ctx)
        if guard.state == _REVOKED:
            return self._propose_fallback(ctx)
        # SUSPECT: alternate model ranking with plain stream draws —
        # the bias ordering is flattened, not abandoned.
        self._flip = not self._flip
        if self._flip:
            return self._propose_fallback(ctx)
        proposal = self._propose_inner(ctx)
        if proposal is None:
            return self._propose_fallback(ctx)
        return proposal

    def _propose_inner(self, ctx: EngineContext) -> Proposal | None:
        proposal = self.inner.propose(ctx)
        if proposal is not None:
            self._inner_consumed += 1
            self._last_origin = "inner"
        return proposal

    def _propose_fallback(self, ctx: EngineContext) -> Proposal:
        config = self.stream[self._fallback_consumed]
        self._fallback_consumed += 1
        self._last_origin = "fallback"
        self.guard.note_fallback_proposal()
        return Proposal(config)

    def propose_block(self, ctx: EngineContext, count: int):
        """Block proposals only while the guard cannot intervene.

        With the guard armed and a fallback stream present, any block
        could straddle a TRUSTED -> SUSPECT/REVOKED transition — and a
        rewind could not un-count ``note_fallback_proposal`` calls
        already serialized into the guard's checkpoint state — so those
        runs return ``None`` and stay candidate-by-candidate.  With no
        guard (or no stream, where every state delegates to the inner
        proposer anyway), delegation is byte-identical.
        """
        if self.guard.enabled and self.stream is not None:
            return None
        inner_block = getattr(self.inner, "propose_block", None)
        if inner_block is None:
            return None
        block = inner_block(ctx, count)
        if block:
            self._inner_consumed += len(block)
            self._last_origin = "inner"
        return block

    def rewind(self, count: int) -> None:
        self.inner.rewind(count)
        self._inner_consumed -= count

    # -- feedback / checkpointing --------------------------------------
    def observe(self, ctx: EngineContext, proposal: Proposal, runtime: float,
                failed: bool, censored: bool) -> None:
        if self.guard.enabled:
            self.guard.observe(ctx, proposal, runtime, failed)
        self.inner.observe(ctx, proposal, runtime, failed, censored)

    def state(self) -> dict:
        state = dict(self.inner.state())
        if self.guard.enabled:
            state["guard"] = self.guard.state_dict()
            state["guard_positions"] = {
                "inner": self._inner_consumed,
                "fallback": self._fallback_consumed,
                "flip": self._flip,
                "last_origin": self._last_origin,
            }
        return state

    def budget_break_skips_sync(self) -> bool:
        return self.inner.budget_break_skips_sync()


class GuardedGate:
    """Wrap an admission gate with guard-directed leniency.

    TRUSTED delegates untouched (same charges, same verdicts).
    SUSPECT widens the inner gate's quantile via its ``cutoff_at``
    hook — reusing the pool predictions already paid for — and
    promotes every ``audit_every``-th still-rejected proposal to an
    audit evaluation.  REVOKED admits everything without consulting
    (or charging) the model, completing the fall-back to plain RS.
    Fallback-stream proposals carry no prediction and are always
    admitted — there is nothing left to prune them with.
    """

    def __init__(self, inner, guard) -> None:
        self.inner = inner
        self.guard = guard

    def setup(self, ctx: EngineContext) -> None:
        self.inner.setup(ctx)

    @property
    def admit_charge(self):
        """The inner gate's per-decision charge while the guard is
        dormant; ``None`` once armed, which keeps the engine on the
        scalar :meth:`admit` path where state-dependent widening and
        audit promotion can run per candidate."""
        if self.guard.enabled:
            return None
        return getattr(self.inner, "admit_charge", None)

    def admit_vector(self, predicted):
        if self.guard.enabled:
            return None
        inner_vector = getattr(self.inner, "admit_vector", None)
        if inner_vector is None:
            return None
        return inner_vector(predicted)

    def admit(self, ctx: EngineContext, proposal: Proposal) -> bool:
        guard = self.guard
        if not guard.enabled:
            return self.inner.admit(ctx, proposal)
        if guard.state == _REVOKED:
            return True
        if proposal.predicted is None:
            return True
        admitted = self.inner.admit(ctx, proposal)
        if admitted or guard.state != _SUSPECT:
            return admitted
        widened = self._widened_cutoff()
        if widened is not None and not (proposal.predicted >= widened):
            guard.note_widened_admit()
            return True
        if guard.audit_due():
            guard.begin_audit(proposal)
            return True
        return False

    def _widened_cutoff(self) -> float | None:
        cutoff_at = getattr(self.inner, "cutoff_at", None)
        fraction = getattr(self.inner, "delta_fraction", None)
        if cutoff_at is None or fraction is None:
            return None
        widened = min(fraction * self.guard.policy.widen_factor, 0.95)
        return cutoff_at(widened)
