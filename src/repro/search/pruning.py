"""Random search with the pruning strategy (Algorithm 1, RSp).

Phase 1: fit the surrogate on the source data, sample a pool of ``N``
configurations, predict their runtimes, and set the cutoff ``∆`` to the
``δ``-quantile of those predictions (δ = 20% in the paper).

Phase 2: walk the (shared) random stream; predict each configuration's
runtime; evaluate it on the target only when the prediction is below
``∆``.  Model fitting/prediction time is charged to the search clock.

Composition: a surrogate-carrying :class:`StreamProposer` crossed with
a :class:`QuantileGate` under the shared
:class:`~repro.search.engine.SearchEngine` accounting.
"""

from __future__ import annotations

from repro.errors import SearchError
from repro.search.engine import SearchEngine
from repro.search.gates import QuantileGate
from repro.search.guarded import GuardedGate, GuardedProposer, build_guard
from repro.search.proposers import StreamProposer
from repro.search.protocols import SurrogateModel
from repro.search.result import SearchTrace
from repro.search.stream import SharedStream
from repro.spec import UNSET, TunerSpec, resolve_spec

__all__ = ["pruned_search"]


def pruned_search(
    evaluator,
    stream: SharedStream,
    surrogate: SurrogateModel,
    nmax: int = 100,
    pool_size: int | None = None,
    delta_percent: float | None = None,
    max_stream_positions: int | None = None,
    prefetch: int | None = None,
    name: str = "RSp",
    checkpoint=None,
    guard=UNSET,
    batch_size=UNSET,
    spec: TunerSpec | None = None,
) -> SearchTrace:
    """Run RSp for at most ``nmax`` evaluations.

    ``surrogate`` must already be fitted on the source machine's data
    (its fit time is charged here, since the fit happens as part of the
    target-machine tuning session).  ``max_stream_positions`` bounds
    how far past the budget the stream may be walked when almost
    everything is pruned (default: ``50 * nmax``).

    ``prefetch`` batches the per-position model queries: predictions
    for the next chunk of stream configurations are computed in one
    vectorized call, while the simulated clock is still charged
    per-position exactly as before — per-row predictions are
    independent, so traces are bit-identical for every ``prefetch``.

    Failed evaluations (recoverable
    :class:`~repro.errors.EvaluationFailure`, or degraded measurements
    from a resilient evaluator) are recorded as failed entries at their
    stream position, so CRN alignment with RS survives faults.
    ``checkpoint`` optionally resumes an interrupted run; the pruning
    cutoff is recomputed deterministically on resume without re-charging
    the model-fit time.

    ``guard`` (a :class:`repro.transfer.guard.GuardPolicy` or a
    pre-built guard instance) arms negative-transfer monitoring: the
    surrogate is scored against target observations as they accrue,
    the pruning quantile widens under suspicion (with occasional
    audits of would-be-pruned configurations), and a revoked model
    degrades the run to plain RS on the same stream.  ``guard=None``
    and ``GuardPolicy.disabled()`` are byte-identical to an unguarded
    run.

    ``batch_size`` selects the engine's block execution (``None`` for
    the serial loop); traces are bit-identical either way — see
    :class:`~repro.search.engine.SearchEngine`.

    ``spec`` (a :class:`repro.spec.TunerSpec`) supplies defaults for
    every knob not passed explicitly — ``pool_size``,
    ``delta_percent``, ``prefetch``, ``guard``, ``batch_size`` — and
    the default spec reproduces historical behavior exactly.
    """
    spec = resolve_spec(spec)
    if pool_size is None:
        pool_size = spec.pool.size
    if delta_percent is None:
        delta_percent = spec.gate.delta_percent
    if prefetch is None:
        prefetch = spec.pool.prefetch
    if guard is UNSET:
        guard = spec.guard
    if batch_size is UNSET:
        batch_size = spec.engine.batch_size
    if nmax < 1:
        raise SearchError(f"nmax must be >= 1, got {nmax}")
    if not 0.0 < delta_percent < 100.0:
        raise SearchError(f"delta_percent must be in (0, 100), got {delta_percent}")
    if pool_size < 10:
        raise SearchError(f"pool_size must be >= 10, got {pool_size}")
    if prefetch < 1:
        raise SearchError(f"prefetch must be >= 1, got {prefetch}")
    if max_stream_positions is None:
        max_stream_positions = 50 * nmax

    space = stream.space
    proposer = StreamProposer(
        stream,
        surrogate=surrogate,
        prefetch=prefetch,
        position_cap=max_stream_positions,
    )
    gate = QuantileGate(
        space, surrogate, delta_percent=delta_percent, pool_size=pool_size
    )
    guard_obj = build_guard(guard, surrogate)
    if guard_obj is not None:
        # RSp's proposer already walks the shared stream, so no
        # separate fallback source: REVOKED simply stops paying for
        # (and acting on) model queries.
        proposer = GuardedProposer(proposer, guard_obj)
        gate = GuardedGate(gate, guard_obj)
    engine = SearchEngine(
        evaluator,
        proposer,
        gate,
        nmax=nmax,
        name=name,
        space=space,
        stream=stream,
        position_cap=max_stream_positions,
        # A budget wall during the gate's model query historically
        # advanced past the in-flight position rather than handing it
        # back for a resume to retry.
        rewind_position_on_budget_break=False,
        stream_positions_metadata=True,
        checkpoint=checkpoint,
        batch_size=batch_size,
    )
    return engine.run()
