"""Random search with the pruning strategy (Algorithm 1, RSp).

Phase 1: fit the surrogate on the source data, sample a pool of ``N``
configurations, predict their runtimes, and set the cutoff ``∆`` to the
``δ``-quantile of those predictions (δ = 20% in the paper).

Phase 2: walk the (shared) random stream; predict each configuration's
runtime; evaluate it on the target only when the prediction is below
``∆``.  Model fitting/prediction time is charged to the search clock.
"""

from __future__ import annotations

from repro.errors import BudgetExhaustedError, SearchError
from repro.search.result import EvaluationRecord, SearchTrace
from repro.search.stream import SharedStream
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # circular at runtime: transfer imports the searches
    from repro.transfer.surrogate import Surrogate
from repro.utils.rng import spawn_rng
from repro.utils.stats import quantile

__all__ = ["pruned_search"]


def pruned_search(
    evaluator,
    stream: SharedStream,
    surrogate: "Surrogate",
    nmax: int = 100,
    pool_size: int = 10_000,
    delta_percent: float = 20.0,
    max_stream_positions: int | None = None,
    name: str = "RSp",
) -> SearchTrace:
    """Run RSp for at most ``nmax`` evaluations.

    ``surrogate`` must already be fitted on the source machine's data
    (its fit time is charged here, since the fit happens as part of the
    target-machine tuning session).  ``max_stream_positions`` bounds
    how far past the budget the stream may be walked when almost
    everything is pruned (default: ``50 * nmax``).
    """
    if nmax < 1:
        raise SearchError(f"nmax must be >= 1, got {nmax}")
    if not 0.0 < delta_percent < 100.0:
        raise SearchError(f"delta_percent must be in (0, 100), got {delta_percent}")
    if pool_size < 10:
        raise SearchError(f"pool_size must be >= 10, got {pool_size}")
    if max_stream_positions is None:
        max_stream_positions = 50 * nmax

    space = stream.space
    trace = SearchTrace(algorithm=name)
    clock = evaluator.clock

    # Phase 1: cutoff from the δ% quantile of pool predictions.
    try:
        clock.advance(surrogate.fit_seconds)
        pool_rng = spawn_rng("rsp-pool", space.name, name)
        pool = space.sample(pool_rng, min(pool_size, space.cardinality))
        predictions = surrogate.predict(pool)
        clock.advance(surrogate.predict_seconds(len(pool)))
    except BudgetExhaustedError:
        trace.exhausted_budget = True
        trace.total_elapsed = clock.now
        return trace
    cutoff = quantile(predictions, delta_percent / 100.0)
    trace.metadata["cutoff"] = cutoff

    # Phase 2: walk the shared stream, evaluating only promising configs.
    skipped = 0
    position = 0
    while trace.n_evaluations < nmax and position < max_stream_positions:
        config = stream[position]
        position += 1
        try:
            clock.advance(surrogate.predict_seconds(1))
            if surrogate.predict_one(config) >= cutoff:
                skipped += 1
                continue
            measurement = evaluator.evaluate(config)
        except BudgetExhaustedError:
            trace.exhausted_budget = True
            break
        trace.add(
            EvaluationRecord(
                config=config,
                runtime=measurement.runtime_seconds,
                elapsed=clock.now,
                skipped_before=skipped,
            )
        )
        skipped = 0
    trace.metadata["stream_positions"] = position
    trace.total_elapsed = max(trace.total_elapsed, clock.now)
    return trace
