"""Random search with the pruning strategy (Algorithm 1, RSp).

Phase 1: fit the surrogate on the source data, sample a pool of ``N``
configurations, predict their runtimes, and set the cutoff ``∆`` to the
``δ``-quantile of those predictions (δ = 20% in the paper).

Phase 2: walk the (shared) random stream; predict each configuration's
runtime; evaluate it on the target only when the prediction is below
``∆``.  Model fitting/prediction time is charged to the search clock.
"""

from __future__ import annotations

import numpy as np

from repro.errors import BudgetExhaustedError, EvaluationFailure, SearchError
from repro.search.random_search import record_failure, record_measurement
from repro.search.result import SearchTrace
from repro.search.stream import SharedStream
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # circular at runtime: transfer imports the searches
    from repro.transfer.surrogate import Surrogate
from repro.utils.rng import spawn_rng
from repro.utils.stats import quantile

__all__ = ["pruned_search"]


def pruned_search(
    evaluator,
    stream: SharedStream,
    surrogate: "Surrogate",
    nmax: int = 100,
    pool_size: int = 10_000,
    delta_percent: float = 20.0,
    max_stream_positions: int | None = None,
    prefetch: int = 256,
    name: str = "RSp",
    checkpoint=None,
) -> SearchTrace:
    """Run RSp for at most ``nmax`` evaluations.

    ``surrogate`` must already be fitted on the source machine's data
    (its fit time is charged here, since the fit happens as part of the
    target-machine tuning session).  ``max_stream_positions`` bounds
    how far past the budget the stream may be walked when almost
    everything is pruned (default: ``50 * nmax``).

    ``prefetch`` batches the per-position model queries: predictions
    for the next chunk of stream configurations are computed in one
    vectorized call, while the simulated clock is still charged
    per-position exactly as before — per-row predictions are
    independent, so traces are bit-identical for every ``prefetch``.

    Failed evaluations (recoverable
    :class:`~repro.errors.EvaluationFailure`, or degraded measurements
    from a resilient evaluator) are recorded as failed entries at their
    stream position, so CRN alignment with RS survives faults.
    ``checkpoint`` optionally resumes an interrupted run; the pruning
    cutoff is recomputed deterministically on resume without re-charging
    the model-fit time.
    """
    if nmax < 1:
        raise SearchError(f"nmax must be >= 1, got {nmax}")
    if not 0.0 < delta_percent < 100.0:
        raise SearchError(f"delta_percent must be in (0, 100), got {delta_percent}")
    if pool_size < 10:
        raise SearchError(f"pool_size must be >= 10, got {pool_size}")
    if prefetch < 1:
        raise SearchError(f"prefetch must be >= 1, got {prefetch}")
    if max_stream_positions is None:
        max_stream_positions = 50 * nmax

    space = stream.space
    trace = SearchTrace(algorithm=name)
    clock = evaluator.clock
    position = 0
    skipped = 0
    if checkpoint is not None:
        position, extra = checkpoint.restore(
            trace, space, evaluator=evaluator, stream=stream
        )
        skipped = int(extra.get("skipped", 0))
    resumed = position > 0

    # Phase 1: cutoff from the δ% quantile of pool predictions.  On a
    # resumed run the restored clock already paid for fit/predict, so
    # the (deterministic) recomputation charges nothing.
    try:
        if not resumed:
            clock.advance(surrogate.fit_seconds)
        pool_rng = spawn_rng("rsp-pool", space.name, name)
        pool = space.sample(pool_rng, min(pool_size, space.cardinality))
        predictions = surrogate.predict(pool)
        if not resumed:
            clock.advance(surrogate.predict_seconds(len(pool)))
    except BudgetExhaustedError:
        trace.exhausted_budget = True
        trace.total_elapsed = clock.now
        return trace
    cutoff = quantile(predictions, delta_percent / 100.0)
    trace.metadata["cutoff"] = cutoff

    # Phase 2: walk the shared stream, evaluating only promising configs.
    # Model queries are prefetched in vectorized chunks; the clock is
    # still charged one prediction at a time, in stream order.
    buffered = np.empty(0)
    buf_start = position
    while trace.n_evaluations < nmax and position < max_stream_positions:
        if position - buf_start >= len(buffered):
            chunk = min(prefetch, max_stream_positions - position)
            buffered = surrogate.predict(
                [stream[position + i] for i in range(chunk)]
            )
            buf_start = position
        predicted = float(buffered[position - buf_start])
        config = stream[position]
        position += 1
        try:
            clock.advance(surrogate.predict_seconds(1))
            if predicted >= cutoff:
                skipped += 1
                continue
            measurement = evaluator.evaluate(config)
        except BudgetExhaustedError:
            trace.exhausted_budget = True
            break
        except EvaluationFailure as exc:
            record_failure(trace, config, exc, clock.now, skipped_before=skipped)
        else:
            record_measurement(trace, config, measurement, clock.now,
                               skipped_before=skipped)
        skipped = 0
        if checkpoint is not None:
            checkpoint.maybe_save(trace, position=position, evaluator=evaluator,
                                  extra={"skipped": skipped})
    trace.metadata["stream_positions"] = position
    trace.total_elapsed = max(trace.total_elapsed, clock.now)
    if checkpoint is not None:
        checkpoint.save(trace, position=position, evaluator=evaluator,
                        extra={"skipped": skipped})
    return trace
