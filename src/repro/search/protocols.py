"""Structural interfaces of the search layer.

The search algorithms only ever *use* a surrogate (predict a batch,
charge its simulated cost) — they never construct one.  Declaring that
surface as a :class:`typing.Protocol` here breaks the runtime circular
import that previously forced ``pruning.py``/``biasing.py`` to hide
``from repro.transfer.surrogate import Surrogate`` behind
``TYPE_CHECKING`` blocks: ``repro.transfer`` imports the searches, so
the searches must not import ``repro.transfer``.  Now they import the
protocol from their own package and
:class:`repro.transfer.surrogate.Surrogate` satisfies it structurally.

The module also defines the component protocols of the
:class:`~repro.search.engine.SearchEngine` decomposition:

* a :class:`Proposer` walks a candidate source (a shared random
  stream, a model-ranked pool, a source-machine trace, a search
  technique, a refitted surrogate) and yields :class:`Proposal`\\ s;
* a :class:`Gate` decides which proposals are worth paying an
  evaluation for (accept-all, a predicted-runtime quantile cutoff, a
  source-runtime replay threshold);
* the engine crosses one of each with an evaluator and owns every
  shared concern: clock charging, budgets, failure recording, stream
  position accounting, and checkpoint/resume.

See ``docs/architecture.md`` for the full composition table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol, Sequence, runtime_checkable

from repro.search.result import SearchTrace
from repro.searchspace.space import Configuration

if TYPE_CHECKING:  # annotation-only; numpy is not a runtime dependency here
    import numpy as np

__all__ = [
    "SurrogateModel",
    "Clock",
    "Measurement",
    "Evaluator",
    "Proposal",
    "EngineContext",
    "Proposer",
    "Gate",
]


@runtime_checkable
class SurrogateModel(Protocol):
    """What the searches require of a performance model ``M``.

    :class:`repro.transfer.surrogate.Surrogate` is the canonical
    implementation; anything exposing this surface (a mock, a
    zero-overhead oracle, a remote model client) works the same.
    """

    fit_seconds: float  # simulated cost of the last fit, charged once

    def predict(self, configs: Sequence[Configuration]) -> "np.ndarray":
        """Predicted runtimes for a batch of configurations."""
        ...

    def predict_seconds(self, n: int) -> float:
        """Simulated wall time of predicting ``n`` configurations."""
        ...


class Clock(Protocol):
    """The simulated-time surface the engine charges against."""

    @property
    def now(self) -> float: ...

    @property
    def remaining(self) -> float: ...

    def advance(self, seconds: float) -> float: ...


class Measurement(Protocol):
    """One evaluation outcome (possibly degraded — see ``failed``)."""

    runtime_seconds: float


class Evaluator(Protocol):
    """The evaluation surface: measure a configuration, charge a clock."""

    clock: Clock

    def evaluate(self, config: Configuration) -> Measurement: ...


# ----------------------------------------------------------------------
# Engine components
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Proposal:
    """One candidate the proposer wants considered.

    ``predicted`` carries the score the proposer already knows for the
    candidate — a surrogate prediction for pool rankers, the *source*
    runtime for trace replays — so threshold gates can decide without
    recomputing (or re-charging) anything.
    """

    config: Configuration
    predicted: float | None = None


@dataclass
class EngineContext:
    """Everything a proposer/gate may need from the running engine."""

    evaluator: Evaluator
    clock: Clock
    trace: SearchTrace
    nmax: int
    name: str  # the algorithm label (also keys deterministic RNGs)
    resumed: bool = False  # restored from a checkpoint with progress?
    extra: dict = field(default_factory=dict)  # checkpoint extra payload


class Proposer(Protocol):
    """Walks one candidate source; the engine asks it for proposals.

    Lifecycle: ``restore`` (checkpoint state, even when empty) →
    ``setup`` (one-time work; simulated costs charged to ``ctx.clock``
    only when ``ctx.resumed`` is false, since a restored clock already
    paid) → ``propose``/``observe`` per engine iteration → ``state``
    whenever a checkpoint is written.
    """

    def restore(self, position: int, ctx: EngineContext) -> None: ...

    def setup(self, ctx: EngineContext) -> None: ...

    def propose(self, ctx: EngineContext) -> Proposal | None:
        """The next candidate, or ``None`` when the source is exhausted."""
        ...

    def observe(
        self,
        ctx: EngineContext,
        proposal: Proposal,
        runtime: float,
        failed: bool,
        censored: bool,
    ) -> None:
        """Outcome feedback, delivered before the trace records it."""
        ...

    def state(self) -> dict:
        """JSON-serializable checkpoint payload (merged into ``extra``)."""
        ...

    def budget_break_skips_sync(self) -> bool:
        """Legacy quirk hook: whether a budget break right now ends the
        search *without* syncing ``total_elapsed`` to the clock."""
        ...


class Gate(Protocol):
    """Decides which proposals are worth an evaluation.

    ``admit`` may charge model-query time to ``ctx.clock`` (and may
    therefore raise ``BudgetExhaustedError``, which ends the search
    exactly like a budget-exhausted evaluation).
    """

    def setup(self, ctx: EngineContext) -> None: ...

    def admit(self, ctx: EngineContext, proposal: Proposal) -> bool: ...
