"""Compiler models.

The paper tunes with GNU gcc 4.4.7 ``-O3`` everywhere and additionally
with Intel icc 15.0.1 ``-O3`` on the Intel machines (Section IV-B).
Two compiler behaviours matter for reproducing the results:

* **Auto-vectorization quality.** icc extracts a much larger fraction
  of SIMD peak from plain stride-1 loops than the old gcc.

* **Idiom recognition.** icc recognizes the canonical matrix-multiply
  loop nest and applies its own tiling/unrolling; *manual* source-level
  transformations destroy the idiom and leave the code worse off.  This
  is the paper's own explanation for Figure 5/MM, where "the default
  [variant] without any code transformation is the best on the Xeon
  Phi" and "any additional transformations are detrimental".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CompilationError
from repro.machines.spec import MachineSpec

__all__ = ["CompilerModel", "GCC", "ICC", "get_compiler"]


@dataclass(frozen=True)
class CompilerModel:
    """A compiler + optimization-flag setting (part of β, Section II)."""

    name: str
    version: str
    opt_level: str
    vector_quality: float  # fraction of SIMD speedup realized on clean loops
    scalar_quality: float  # scheduling quality for scalar/unvectorized code
    idiom_kernels: frozenset  # kernel tags whose plain nest is auto-optimized
    idiom_quality: float  # fraction of machine peak the idiom path reaches
    interference_penalty: float  # slowdown for manual transforms on idiom kernels
    compile_rate_factor: float  # multiplier on machine compile throughput
    supported_isas: frozenset
    supports_openmp: bool = True
    idiom_flatten: float = 1.0  # residual source-structure influence on idiom kernels
    # (an aggressive compiler re-canonicalizes a recognized idiom no
    # matter how the source was transformed, so variant-to-variant
    # differences collapse: 1.0 = no collapse, 0.1 = nearly total)

    def __post_init__(self) -> None:
        for attr in ("vector_quality", "scalar_quality", "idiom_quality"):
            v = getattr(self, attr)
            if not 0.0 < v <= 1.0:
                raise CompilationError(f"{self.name}: {attr} must be in (0, 1], got {v}")
        if self.interference_penalty < 0.0:
            raise CompilationError(f"{self.name}: negative interference penalty")

    @property
    def label(self) -> str:
        return f"{self.name}-{self.version} {self.opt_level}"

    def check_supports(self, machine: MachineSpec) -> None:
        """Raise :class:`CompilationError` if this compiler cannot target
        the machine (icc does not target POWER or ARM)."""
        if machine.isa not in self.supported_isas:
            raise CompilationError(
                f"{self.label} cannot target {machine.display_name} (isa {machine.isa})"
            )

    def recognizes_idiom(self, kernel_tag: str) -> bool:
        """Whether the plain loop nest of this kernel is auto-optimized."""
        return kernel_tag in self.idiom_kernels

    def compile_time(self, machine: MachineSpec, n_statements: int) -> float:
        """Simulated seconds to compile a variant with ``n_statements``
        generated statements on ``machine``.

        Code-size explosion from large unroll factors directly raises
        compile time — the mechanism behind the paper's X-Gene data-
        collection failures.
        """
        self.check_supports(machine)
        if n_statements < 1:
            raise CompilationError(f"variant has no statements ({n_statements})")
        rate = machine.compile_statements_per_sec * self.compile_rate_factor
        return machine.compile_overhead_s + n_statements / rate


GCC = CompilerModel(
    name="gcc",
    version="4.4.7",
    opt_level="-O3",
    vector_quality=0.55,
    scalar_quality=0.80,
    idiom_kernels=frozenset(),
    idiom_quality=0.5,
    interference_penalty=0.0,
    compile_rate_factor=1.0,
    supported_isas=frozenset({"x86_64", "ppc64", "aarch64", "k1om"}),
)

ICC = CompilerModel(
    name="icc",
    version="15.0.1",
    opt_level="-O3",
    vector_quality=0.90,
    scalar_quality=0.92,
    idiom_kernels=frozenset({"mm"}),
    idiom_quality=0.80,
    interference_penalty=0.30,
    idiom_flatten=0.10,
    compile_rate_factor=0.7,  # deeper optimization pipeline = slower compiles
    supported_isas=frozenset({"x86_64", "k1om"}),
)

_COMPILERS = {"gcc": GCC, "icc": ICC}


def get_compiler(name: str) -> CompilerModel:
    """Look up a compiler model by name ("gcc" or "icc")."""
    try:
        return _COMPILERS[name.strip().lower()]
    except KeyError:
        raise CompilationError(
            f"unknown compiler {name!r}; known: {sorted(_COMPILERS)}"
        ) from None
