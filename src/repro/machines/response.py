"""Machine response vectors.

The cost model (:mod:`repro.perf.costmodel`) expresses a code variant's
runtime as shared roofline physics modulated by machine-specific
*sensitivities*: how hard register spills hurt, how costly loop
overhead is, how much instruction-cache pressure matters, and so on.
Each machine carries a :class:`ResponseVector` of these sensitivities.

Two machines with nearby response vectors rank configurations almost
identically (the Westmere/Sandybridge situation of Figure 1); a machine
with a distant vector ranks them differently (the X-Gene failure case
of Section V).  :func:`response_distance` quantifies that dissimilarity
— the "empirical methods that can assess the dissimilarity" the paper
calls for in its conclusion.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

__all__ = ["ResponseVector", "response_distance"]


@dataclass(frozen=True)
class ResponseVector:
    """Per-machine sensitivity coefficients for the cost model.

    All fields are dimensionless multipliers around 1.0 (except
    ``noise_sigma``, a lognormal scale).  The cost model multiplies each
    physical penalty term by the matching sensitivity, so a machine
    with ``spill_sensitivity=2.5`` suffers register spills 2.5x more
    than the reference architecture.
    """

    spill_sensitivity: float = 1.0  # register-spill penalty weight
    loop_overhead_sensitivity: float = 1.0  # branch/increment cost weight
    icache_sensitivity: float = 1.0  # unrolled-code-size penalty weight
    latency_sensitivity: float = 1.0  # dependence-chain stall weight
    bandwidth_contention: float = 1.0  # multi-core DRAM contention factor
    prefetch_quality: float = 1.0  # streaming-access mitigation (higher=better)
    tlb_sensitivity: float = 1.0  # large-stride page-walk weight
    vector_alignment_sensitivity: float = 1.0  # penalty for non-multiple-of-VL tiles
    noise_sigma: float = 0.02  # lognormal measurement-noise scale
    quirk_sigma: float = 0.06  # systematic per-configuration quirk scale
    systematic_compression: float = 0.75  # how faithfully code structure maps to time
    # (< 1 compresses systematic differences between variants in log
    # space around the machine's roofline reference point: a mature
    # compiler/microarchitecture expresses source-level structure
    # faithfully; an immature toolchain — first-generation X-Gene —
    # flattens it, leaving idiosyncratic quirks to dominate rankings.)

    def as_array(self) -> np.ndarray:
        """The sensitivities as a vector (``noise_sigma`` excluded)."""
        skip = ("noise_sigma", "quirk_sigma")
        vals = [getattr(self, f.name) for f in fields(self) if f.name not in skip]
        return np.array(vals, dtype=float)

    @staticmethod
    def dimension_names() -> list[str]:
        skip = ("noise_sigma", "quirk_sigma")
        return [f.name for f in fields(ResponseVector) if f.name not in skip]


def response_distance(a: ResponseVector, b: ResponseVector) -> float:
    """Log-space Euclidean distance between two response vectors.

    Zero for identical machines; grows with microarchitectural
    dissimilarity.  Section VII of the paper asks for exactly such a
    quantification; the experiments package correlates this distance
    with the empirically observed cross-machine rank correlation.
    """
    va, vb = a.as_array(), b.as_array()
    if np.any(va <= 0) or np.any(vb <= 0):
        raise ValueError("response sensitivities must be positive")
    return float(np.linalg.norm(np.log(va) - np.log(vb)))
