"""The five evaluation machines (Table II).

The Table II columns (processor, cores, clock, L1/L2/L3, memory) are
taken verbatim from the paper.  The cost-model parameters (bandwidths,
latencies, vector width, registers, issue width) are published-spec
estimates for each processor, recorded here with the reasoning:

* **Sandybridge** (E5-2687W): AVX, 8 DP flops/cycle (4-wide mul + add),
  16 vector registers, 4-wide issue, large OoO window, ~51 GB/s DDR3.
* **Westmere** (E5645): SSE4.2, 4 DP flops/cycle (2-wide mul + add),
  16 vector registers, ~32 GB/s.  Microarchitecturally the previous
  generation of the same product line — its response vector is nearly
  identical to Sandybridge's, which is exactly why the paper observes
  ρ > 0.8 between the two (Figure 1).
* **Xeon Phi** (7120a): 61 in-order cores, 512-bit vectors (8 doubles,
  16 flops/cycle with FMA), 32 vector registers, **no L3**, GDDR5 with
  high bandwidth but high latency.  In-order execution makes it far
  more sensitive to loop overhead, dependence-chain latency and
  alignment than the big cores.
* **Power 7+**: 4.2 GHz, VSX (2-wide FMA pipes → 8 flops/cycle),
  64 vector registers, 128-byte lines, 10 MB eDRAM L3 *per core*,
  aggressive prefetch.  Same big-core OoO design philosophy as the
  Intel servers — so the *high-performing* configuration region
  transfers — but different enough (line size, register file, L3
  organization) to depress the global correlation, matching Figure 4.
* **X-Gene** (APM883208-X1): first-generation ARMv8 server chip; modest
  2-wide OoO core, 2 DP flops/cycle, weak prefetchers, small 8 MB L3,
  low memory bandwidth, and an immature compiler backend (slow
  compilation — the paper could not collect MM/COR data on it).  Its
  response vector is far from every other machine, which is what breaks
  transfer (Section V, "Approach fails on dissimilar machines").
"""

from __future__ import annotations

from repro.errors import MachineError
from repro.machines.response import ResponseVector
from repro.machines.spec import CacheLevel, MachineSpec

__all__ = [
    "WESTMERE",
    "SANDYBRIDGE",
    "XEON_PHI",
    "POWER7",
    "XGENE",
    "MACHINES",
    "get_machine",
    "machine_names",
]

WESTMERE = MachineSpec(
    name="westmere",
    display_name="Intel E5645 (Westmere)",
    vendor="intel",
    isa="x86_64",
    cores=6,
    clock_ghz=2.4,
    caches=(
        CacheLevel("L1", 32, 4, 48),
        CacheLevel("L2", 256, 11, 32),
        CacheLevel("L3", 12 * 1024, 40, 16, shared=True),
    ),
    memory_gb=48,
    dram_bandwidth_gbs=32.0,
    dram_latency_ns=65.0,
    line_bytes=64,
    flops_per_cycle=4.0,
    vector_doubles=2,
    fp_registers=16,
    issue_width=4,
    out_of_order_window=128,
    smt_threads=2,
    compile_statements_per_sec=60_000.0,
    compile_overhead_s=0.8,
    response=ResponseVector(
        spill_sensitivity=1.0,
        loop_overhead_sensitivity=1.0,
        icache_sensitivity=1.0,
        latency_sensitivity=1.0,
        bandwidth_contention=1.0,
        prefetch_quality=1.0,
        tlb_sensitivity=1.0,
        vector_alignment_sensitivity=1.0,
        noise_sigma=0.02,
        quirk_sigma=0.05,
        systematic_compression=0.78,
    ),
)

SANDYBRIDGE = MachineSpec(
    name="sandybridge",
    display_name="Intel E5-2687W (Sandybridge)",
    vendor="intel",
    isa="x86_64",
    cores=8,
    clock_ghz=3.4,
    caches=(
        CacheLevel("L1", 32, 4, 64),
        CacheLevel("L2", 256, 12, 32),
        CacheLevel("L3", 20 * 1024, 38, 16, shared=True),
    ),
    memory_gb=64,
    dram_bandwidth_gbs=51.2,
    dram_latency_ns=60.0,
    line_bytes=64,
    flops_per_cycle=8.0,
    vector_doubles=4,
    fp_registers=16,
    issue_width=4,
    out_of_order_window=168,
    smt_threads=2,
    compile_statements_per_sec=90_000.0,
    compile_overhead_s=0.6,
    response=ResponseVector(
        spill_sensitivity=1.05,
        loop_overhead_sensitivity=0.95,
        icache_sensitivity=1.0,
        latency_sensitivity=0.95,
        bandwidth_contention=0.95,
        prefetch_quality=1.1,
        tlb_sensitivity=1.0,
        vector_alignment_sensitivity=1.05,
        noise_sigma=0.02,
        quirk_sigma=0.06,
        systematic_compression=0.75,
    ),
)

XEON_PHI = MachineSpec(
    name="xeonphi",
    display_name="Intel Xeon Phi 7120a",
    vendor="intel",
    isa="k1om",
    cores=61,
    clock_ghz=1.24,
    caches=(
        CacheLevel("L1", 32, 3, 64),
        CacheLevel("L2", 512, 24, 32),
    ),
    memory_gb=16,
    dram_bandwidth_gbs=170.0,
    dram_latency_ns=300.0,
    line_bytes=64,
    flops_per_cycle=16.0,
    vector_doubles=8,
    fp_registers=32,
    issue_width=2,
    out_of_order_window=0,  # in-order pipeline
    smt_threads=4,
    compile_statements_per_sec=40_000.0,
    compile_overhead_s=2.5,
    response=ResponseVector(
        spill_sensitivity=1.6,
        loop_overhead_sensitivity=2.2,
        icache_sensitivity=1.5,
        latency_sensitivity=2.5,
        bandwidth_contention=1.3,
        prefetch_quality=0.7,
        tlb_sensitivity=1.2,
        vector_alignment_sensitivity=2.0,
        noise_sigma=0.03,
        quirk_sigma=0.13,
        systematic_compression=0.95,
    ),
)

POWER7 = MachineSpec(
    name="power7",
    display_name="IBM Power7+",
    vendor="ibm",
    isa="ppc64",
    cores=6,
    clock_ghz=4.2,
    caches=(
        CacheLevel("L1", 32, 3, 64),
        CacheLevel("L2", 256, 8, 32),
        CacheLevel("L3", 10 * 1024, 27, 24, shared=False),  # 10 MB per core (Table II)
    ),
    memory_gb=128,
    dram_bandwidth_gbs=100.0,
    dram_latency_ns=90.0,
    line_bytes=128,
    flops_per_cycle=8.0,
    vector_doubles=2,
    fp_registers=64,
    issue_width=6,
    out_of_order_window=120,
    smt_threads=4,
    compile_statements_per_sec=55_000.0,
    compile_overhead_s=1.0,
    response=ResponseVector(
        spill_sensitivity=0.6,  # 64 VSX registers forgive register pressure
        loop_overhead_sensitivity=0.85,
        icache_sensitivity=1.3,
        latency_sensitivity=0.9,
        bandwidth_contention=0.85,
        prefetch_quality=1.5,  # aggressive hardware streams
        tlb_sensitivity=0.8,
        vector_alignment_sensitivity=0.9,
        noise_sigma=0.035,
        quirk_sigma=0.14,
        systematic_compression=0.68,
    ),
)

XGENE = MachineSpec(
    name="xgene",
    display_name="AppliedMicro X-Gene APM883208-X1",
    vendor="apm",
    isa="aarch64",
    cores=8,
    clock_ghz=2.4,
    caches=(
        CacheLevel("L1", 32, 5, 16),
        CacheLevel("L2", 256, 21, 12),
        CacheLevel("L3", 8 * 1024, 90, 8, shared=True),
    ),
    memory_gb=16,
    dram_bandwidth_gbs=25.0,
    dram_latency_ns=130.0,
    line_bytes=64,
    flops_per_cycle=2.0,
    vector_doubles=2,
    fp_registers=32,
    issue_width=2,
    out_of_order_window=32,
    smt_threads=1,
    # First-generation ARM server toolchain: very slow compiles — the
    # paper reports compilation times too high to collect MM/COR data.
    compile_statements_per_sec=2_500.0,
    compile_overhead_s=20.0,
    response=ResponseVector(
        spill_sensitivity=3.0,
        loop_overhead_sensitivity=2.4,  # narrow in-order-ish front end: branches cost
        icache_sensitivity=4.0,  # tiny effective I-cache: unrolling turns hostile fast
        latency_sensitivity=2.2,
        bandwidth_contention=1.8,
        prefetch_quality=0.35,
        tlb_sensitivity=2.5,
        vector_alignment_sensitivity=0.5,
        noise_sigma=0.09,
        quirk_sigma=0.55,
        systematic_compression=0.18,
    ),
)

MACHINES: dict[str, MachineSpec] = {
    m.name: m for m in (WESTMERE, SANDYBRIDGE, XEON_PHI, POWER7, XGENE)
}

_ALIASES = {
    "wm": "westmere",
    "sb": "sandybridge",
    "snb": "sandybridge",
    "phi": "xeonphi",
    "xeon_phi": "xeonphi",
    "xeon-phi": "xeonphi",
    "p7": "power7",
    "power": "power7",
    "arm": "xgene",
    "x-gene": "xgene",
}


def machine_names() -> list[str]:
    """Registry keys in Table II order."""
    return list(MACHINES)


def get_machine(name: str) -> MachineSpec:
    """Look a machine up by registry key or common alias."""
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    try:
        return MACHINES[key]
    except KeyError:
        raise MachineError(
            f"unknown machine {name!r}; known: {sorted(MACHINES)}"
        ) from None
