"""Parametric models of the paper's evaluation machines (Table II).

The paper runs on five physical machines; this package replaces them
with analytic architecture models.  A :class:`MachineSpec` carries the
published Table II facts (cores, clock, cache sizes, memory) plus the
microarchitectural parameters the cost model needs (peak flops/cycle,
vector width, register file size, cache/DRAM bandwidths, reorder
capability) and a *response vector* that scales how strongly each
performance effect expresses itself on that machine.  Cross-machine
correlation of configuration runtimes — the phenomenon the paper
exploits — emerges from the shared cost-model physics plus the distance
between response vectors.
"""

from repro.machines.spec import CacheLevel, MachineSpec
from repro.machines.registry import (
    MACHINES,
    SANDYBRIDGE,
    WESTMERE,
    XEON_PHI,
    POWER7,
    XGENE,
    get_machine,
    machine_names,
)
from repro.machines.compiler import CompilerModel, GCC, ICC, get_compiler
from repro.machines.response import ResponseVector, response_distance

__all__ = [
    "CacheLevel",
    "MachineSpec",
    "MACHINES",
    "SANDYBRIDGE",
    "WESTMERE",
    "XEON_PHI",
    "POWER7",
    "XGENE",
    "get_machine",
    "machine_names",
    "CompilerModel",
    "GCC",
    "ICC",
    "get_compiler",
    "ResponseVector",
    "response_distance",
]
