"""Machine specifications (Table II plus cost-model parameters)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MachineError
from repro.machines.response import ResponseVector

__all__ = ["CacheLevel", "MachineSpec"]


@dataclass(frozen=True)
class CacheLevel:
    """One level of the data-cache hierarchy.

    ``bandwidth_bytes_per_cycle`` is per core; ``shared`` marks levels
    whose capacity is divided among the active cores.
    """

    name: str
    size_kb: float
    latency_cycles: float
    bandwidth_bytes_per_cycle: float
    shared: bool = False

    @property
    def size_bytes(self) -> int:
        return int(self.size_kb * 1024)

    def effective_size_bytes(self, active_cores: int) -> int:
        """Capacity available to one core when ``active_cores`` share it."""
        if active_cores < 1:
            raise MachineError(f"active_cores must be >= 1, got {active_cores}")
        if self.shared:
            return max(1, self.size_bytes // active_cores)
        return self.size_bytes


@dataclass(frozen=True)
class MachineSpec:
    """A machine model: Table II facts + microarchitecture + response.

    The Table II columns map to ``cores``, ``clock_ghz``, the cache
    sizes and ``memory_gb``.  The remaining fields parametrize the cost
    model; they are published-spec estimates for each processor and are
    documented per machine in :mod:`repro.machines.registry`.
    """

    name: str  # registry key, e.g. "sandybridge"
    display_name: str  # e.g. "Intel E5-2687W (Sandybridge)"
    vendor: str  # "intel" | "ibm" | "apm"
    isa: str  # "x86_64" | "ppc64" | "aarch64" | "k1om"
    cores: int
    clock_ghz: float
    caches: tuple[CacheLevel, ...]  # ordered L1 -> last level
    memory_gb: float
    dram_bandwidth_gbs: float
    dram_latency_ns: float
    line_bytes: int
    flops_per_cycle: float  # peak DP flops per cycle per core
    vector_doubles: int  # SIMD lanes (doubles)
    fp_registers: int  # architectural FP/vector registers
    issue_width: int
    out_of_order_window: int  # ~ROB size; small => in-order-like
    smt_threads: int = 1
    compile_statements_per_sec: float = 50_000.0  # compiler throughput model
    compile_overhead_s: float = 1.0  # per-variant fixed compile cost
    response: ResponseVector = field(default_factory=ResponseVector)

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise MachineError(f"{self.name}: cores must be >= 1")
        if self.clock_ghz <= 0:
            raise MachineError(f"{self.name}: clock must be positive")
        if not self.caches:
            raise MachineError(f"{self.name}: need at least one cache level")
        sizes = [c.size_kb for c in self.caches]
        if sizes != sorted(sizes):
            raise MachineError(f"{self.name}: cache sizes must be non-decreasing")
        if self.line_bytes not in (32, 64, 128, 256):
            raise MachineError(f"{self.name}: implausible line size {self.line_bytes}")
        if self.vector_doubles < 1 or self.fp_registers < 1:
            raise MachineError(f"{self.name}: invalid vector/register configuration")

    # ------------------------------------------------------------------
    @property
    def clock_hz(self) -> float:
        return self.clock_ghz * 1e9

    @property
    def peak_gflops_core(self) -> float:
        """Peak double-precision GFLOP/s of one core."""
        return self.flops_per_cycle * self.clock_ghz

    @property
    def peak_gflops(self) -> float:
        """Peak double-precision GFLOP/s of the whole chip."""
        return self.peak_gflops_core * self.cores

    @property
    def dram_bytes_per_cycle(self) -> float:
        """Chip-level DRAM bandwidth expressed per core cycle."""
        return self.dram_bandwidth_gbs * 1e9 / self.clock_hz

    def cache(self, name: str) -> CacheLevel:
        for level in self.caches:
            if level.name == name:
                return level
        raise MachineError(f"{self.name} has no cache level {name!r}")

    @property
    def has_l3(self) -> bool:
        return any(c.name == "L3" for c in self.caches)

    def machine_balance(self) -> float:
        """Flops per DRAM byte at peak — the roofline ridge point."""
        chip_flops = self.peak_gflops * 1e9
        return chip_flops / (self.dram_bandwidth_gbs * 1e9)

    def summary_row(self) -> list:
        """The machine's Table II row (name, processor, cores, ...)."""
        by_name = {c.name: c for c in self.caches}
        l3 = by_name.get("L3")
        return [
            self.name,
            self.display_name,
            self.cores,
            self.clock_ghz,
            by_name["L1"].size_kb,
            by_name["L2"].size_kb,
            None if l3 is None else l3.size_kb / 1024.0,
            self.memory_gb,
        ]
