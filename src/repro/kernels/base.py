"""The SPAPT-style kernel abstraction.

A kernel bundles an annotated C source (possibly several annotated
phases), the problem input size, and the tuning search space, and
produces transformed variants and their static metrics for any
configuration.  Metric computation is cached per configuration index —
the same variant is measured on several machines during a transfer
experiment, and the metrics are machine-independent.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SearchSpaceError
from repro.orio.analysis import VariantMetrics, analyze_variant
from repro.orio.annotations import AnnotatedKernel, parse_annotated_blocks
from repro.orio.codegen import generate_c
from repro.orio.transforms.pipeline import TransformedVariant, TransformPlan, compose
from repro.searchspace.space import Configuration, SearchSpace

__all__ = ["KernelInfo", "SpaptKernel"]

_METRICS_CACHE_LIMIT = 250_000


@dataclass(frozen=True)
class KernelInfo:
    """The Table III row of a kernel."""

    name: str
    n_parameters: int
    search_space_size: float
    input_size: str


class SpaptKernel:
    """One SPAPT search problem: kernel + input size + tunable space.

    Subclasses (or factory functions) provide the annotated source, the
    space, and the mapping from configuration booleans to evaluator
    options.
    """

    def __init__(
        self,
        name: str,
        tag: str,
        source: str,
        space: SearchSpace,
        consts: dict[str, int],
        input_size: str,
        boundedness: str,
        description: str = "",
        scalar_option_params: dict[str, str] | None = None,
    ) -> None:
        self.name = name
        self.tag = tag
        self.source = source
        self.space = space
        self.consts = dict(consts)
        self.input_size = input_size
        self.boundedness = boundedness
        self.description = description
        self.scalar_option_params = dict(scalar_option_params or {})
        self.nests: tuple[AnnotatedKernel, ...] = tuple(
            parse_annotated_blocks(source, consts)
        )
        # Every annotation parameter must exist in the space.
        for nest in self.nests:
            for pname in nest.spec.parameter_names():
                if pname not in space:
                    raise SearchSpaceError(
                        f"kernel {name!r}: annotation references unknown parameter {pname!r}"
                    )
        for pname in self.scalar_option_params.values():
            if pname not in space:
                raise SearchSpaceError(
                    f"kernel {name!r}: option bound to unknown parameter {pname!r}"
                )
        self._metrics_cache: dict[int, tuple[VariantMetrics, ...]] = {}

    # ------------------------------------------------------------------
    def info(self) -> KernelInfo:
        """The kernel's Table III row."""
        return KernelInfo(
            name=self.name,
            n_parameters=self.space.dimension,
            search_space_size=float(self.space.cardinality),
            input_size=self.input_size,
        )

    def variants_for(self, config: Configuration) -> list[TransformedVariant]:
        """Composed (transformed) nests for a configuration."""
        self._check_config(config)
        out = []
        for nest in self.nests:
            plan = TransformPlan.from_spec(nest.spec, config)
            out.append(compose(nest.nest, plan))
        return out

    def metrics_for(self, config: Configuration) -> tuple[VariantMetrics, ...]:
        """Static metrics per nest, cached by configuration index."""
        self._check_config(config)
        cached = self._metrics_cache.get(config.index)
        if cached is not None:
            return cached
        metrics = tuple(analyze_variant(v) for v in self.variants_for(config))
        if len(self._metrics_cache) >= _METRICS_CACHE_LIMIT:
            self._metrics_cache.clear()
        self._metrics_cache[config.index] = metrics
        return metrics

    def scalar_options(self, config: Configuration) -> dict[str, object]:
        """Evaluator options (vectorize, scalar replacement, ...) from
        the configuration's boolean parameters."""
        self._check_config(config)
        return {
            option: config[param] for option, param in self.scalar_option_params.items()
        }

    def generate_source(
        self, config: Configuration, max_statements: int = 100_000
    ) -> str:
        """The full generated C text of this configuration's variant(s).

        When the configuration enables scalar replacement (``SCR``),
        the corresponding AST pass is applied so the emitted code shows
        the register-promoted reduction targets.
        """
        from repro.orio.transforms.scalarrep import ScalarReplacement

        scr = bool(self.scalar_options(config).get("scalar_replacement", False))
        parts = []
        loop_vars = set()
        variants = self.variants_for(config)
        if scr:
            rewritten = []
            for variant in variants:
                try:
                    nest = ScalarReplacement().apply(variant.nest)
                except Exception:
                    nest = variant.nest  # not applicable: emit unchanged
                rewritten.append(
                    TransformedVariant(nest=nest, plan=variant.plan, roles=variant.roles)
                )
            variants = rewritten
        for variant in variants:
            for var in variant.roles:
                loop_vars.add(var)
        declare = {v: "int" for v in sorted(loop_vars)}
        for i, variant in enumerate(variants):
            if len(variants) > 1:
                parts.append(f"/* phase {i + 1} */")
            parts.append(
                generate_c(variant.nest, declare=declare if i == 0 else None,
                           max_statements=max_statements)
            )
        return "\n".join(parts)

    def _check_config(self, config: Configuration) -> None:
        if config.space is not self.space:
            raise SearchSpaceError(
                f"configuration is not from kernel {self.name!r}'s search space"
            )

    def __repr__(self) -> str:
        return (
            f"SpaptKernel({self.name!r}, dim={self.space.dimension}, "
            f"|D|={self.space.cardinality:.3g}, input={self.input_size})"
        )
