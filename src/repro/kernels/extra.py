"""Additional SPAPT-style kernels beyond the paper's four.

The SPAPT suite [7] contains many more search problems than the four
the paper evaluates; these extras (BICG, MVT, GEMVER — all
reduction-only kernels, legal under every transformation this library
implements) let downstream studies run broader cross-architecture
sweeps.  They are *extensions*: no paper table/figure depends on them.
"""

from __future__ import annotations

from repro.kernels.base import SpaptKernel
from repro.searchspace import (
    BooleanParameter,
    IntegerParameter,
    PowerOfTwoParameter,
    SearchSpace,
)

__all__ = ["make_bicg", "make_mvt", "make_gemver", "EXTRA_KERNELS"]

BICG_SOURCE = """
/*@ begin Loop (
  transform Composite(
    tile      = [("i", "T1_I"), ("j", "T1_J")],
    unrolljam = [("i", "U_I"), ("j", "U_J")],
    regtile   = [("j", "RT_J")],
    vector    = "VEC",
    scalar_replacement = "SCR"
  )
) @*/
for (i = 0; i <= N-1; i++)
  for (j = 0; j <= N-1; j++) {
    s[j] = s[j] + r[i] * A[i*N+j];
    q[i] = q[i] + A[i*N+j] * p[j];
  }
/*@ end @*/
"""

MVT_SOURCE = """
/*@ begin Loop (
  transform Composite(
    tile      = [("i", "T1_I"), ("j", "T1_J")],
    unrolljam = [("i", "U_I"), ("j", "U_J")],
    regtile   = [("i", "RT_I"), ("j", "RT_J")],
    vector    = "VEC",
    scalar_replacement = "SCR"
  )
) @*/
for (i = 0; i <= N-1; i++)
  for (j = 0; j <= N-1; j++) {
    x1[i] = x1[i] + A[i*N+j] * y1[j];
    x2[i] = x2[i] + A[j*N+i] * y2[j];
  }
/*@ end @*/
"""

GEMVER_SOURCE = """
/*@ begin Loop (
  transform Composite(
    tile      = [("i", "T1_I"), ("j", "T1_J")],
    unrolljam = [("i", "U_I"), ("j", "U_J")],
    regtile   = [("j", "RT_J")],
    vector    = "VEC",
    scalar_replacement = "SCR"
  )
) @*/
for (i = 0; i <= N-1; i++)
  for (j = 0; j <= N-1; j++) {
    B[i*N+j] = A[i*N+j] + u1[i] * v1[j] + u2[i] * v2[j];
    x[i] = x[i] + B[i*N+j] * y[j];
  }
/*@ end @*/
"""


def _two_loop_space(name: str, regtile_i: bool) -> SearchSpace:
    params = [
        IntegerParameter("U_I", 1, 32),
        IntegerParameter("U_J", 1, 32),
        PowerOfTwoParameter("T1_I", 0, 11),
        PowerOfTwoParameter("T1_J", 0, 11),
    ]
    if regtile_i:
        params.append(PowerOfTwoParameter("RT_I", 0, 5))
    params.append(PowerOfTwoParameter("RT_J", 0, 5))
    params += [BooleanParameter("VEC"), BooleanParameter("SCR")]
    return SearchSpace(params, name=name)


def make_bicg(n: int = 8000) -> SpaptKernel:
    """BiCG sub-kernel: ``s = A^T r`` and ``q = A p`` fused (memory bound)."""
    return SpaptKernel(
        name="BICG",
        tag="bicg",
        source=BICG_SOURCE,
        space=_two_loop_space("BICG", regtile_i=False),
        consts={"N": n},
        input_size=str(n),
        boundedness="memory",
        description="BiCG stabilized sub-kernel: fused A^T r and A p.",
        scalar_option_params={"vectorize": "VEC", "scalar_replacement": "SCR"},
    )


def make_mvt(n: int = 8000) -> SpaptKernel:
    """MVT: fused ``x1 += A y1`` and ``x2 += A^T y2`` (memory bound)."""
    return SpaptKernel(
        name="MVT",
        tag="mvt",
        source=MVT_SOURCE,
        space=_two_loop_space("MVT", regtile_i=True),
        consts={"N": n},
        input_size=str(n),
        boundedness="memory",
        description="Matrix-vector product and transpose product, fused.",
        scalar_option_params={"vectorize": "VEC", "scalar_replacement": "SCR"},
    )


def make_gemver(n: int = 4000) -> SpaptKernel:
    """GEMVER: rank-2 update fused with a matvec (memory bound)."""
    return SpaptKernel(
        name="GEMVER",
        tag="gemver",
        source=GEMVER_SOURCE,
        space=_two_loop_space("GEMVER", regtile_i=False),
        consts={"N": n},
        input_size=f"{n}x{n}",
        boundedness="memory",
        description="BLAS gemver core: B = A + u1 v1^T + u2 v2^T; x += B y.",
        scalar_option_params={"vectorize": "VEC", "scalar_replacement": "SCR"},
    )


EXTRA_KERNELS = {
    "bicg": make_bicg,
    "mvt": make_mvt,
    "gemver": make_gemver,
}
