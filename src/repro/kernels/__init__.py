"""The SPAPT test-suite kernels (Section IV-C, Table III).

Each factory builds a fresh :class:`~repro.kernels.base.SpaptKernel`
with the paper's input size by default; pass a smaller ``n`` for
fast tests.  :func:`get_kernel` looks kernels up by name.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.kernels.base import KernelInfo, SpaptKernel
from repro.kernels.mm import make_mm
from repro.kernels.atax import make_atax
from repro.kernels.cor import make_cor
from repro.kernels.lu import make_lu
from repro.kernels.extra import EXTRA_KERNELS, make_bicg, make_gemver, make_mvt

__all__ = [
    "KernelInfo",
    "SpaptKernel",
    "make_mm",
    "make_atax",
    "make_cor",
    "make_lu",
    "make_bicg",
    "make_mvt",
    "make_gemver",
    "EXTRA_KERNELS",
    "KERNELS",
    "get_kernel",
    "kernel_names",
]

# The paper's four problems (Table III)...
KERNELS = {
    "mm": make_mm,
    "atax": make_atax,
    "cor": make_cor,
    "lu": make_lu,
}
# ...plus extension problems from the wider SPAPT suite.
KERNELS.update(EXTRA_KERNELS)


def kernel_names(include_extras: bool = False) -> list[str]:
    """Registry keys in Table III order (paper kernels first)."""
    names = list(KERNELS)
    if include_extras:
        return names
    return [n for n in names if n not in EXTRA_KERNELS]


def get_kernel(name: str, n: int | None = None) -> SpaptKernel:
    """Build a kernel by name, optionally with a custom input size."""
    key = name.strip().lower()
    try:
        factory = KERNELS[key]
    except KeyError:
        raise ReproError(f"unknown kernel {name!r}; known: {sorted(KERNELS)}") from None
    return factory(n) if n is not None else factory()
