"""Correlation (COR) — Table III row 3.

The dominant loop of the correlation computation: the symmetric
cross-product of the standardized data matrix, ``R += D^T D`` over an
``M x M`` problem (default 2000x2000).  Both ``D`` references are
column accesses (stride M) with respect to the innermost loop, so the
kernel streams with poor spatial locality and low flop intensity —
memory bound, as Section IV-C describes.

Search space (12 parameters, |D| ≈ 8.56e10 vs. the paper's 8.57e10;
same construction as MM).
"""

from __future__ import annotations

from repro.kernels.base import SpaptKernel
from repro.searchspace import (
    BooleanParameter,
    IntegerParameter,
    PowerOfTwoParameter,
    SearchSpace,
)

__all__ = ["make_cor"]

COR_SOURCE = """
/*@ begin Loop (
  transform Composite(
    tile      = [("i", "T1_I"), ("j", "T1_J"), ("k", "T1_K")],
    unrolljam = [("i", "U_I"),  ("j", "U_J"),  ("k", "U_K")],
    regtile   = [("i", "RT_I"), ("j", "RT_J"), ("k", "RT_K")],
    vector    = "VEC",
    scalar_replacement = "SCR"
  )
) @*/
for (i = 0; i <= M-1; i++)
  for (j = 0; j <= M-1; j++)
    for (k = 0; k <= M-1; k++)
      R[i*M+j] = R[i*M+j] + D[k*M+i] * D[k*M+j];
/*@ end @*/
"""


def make_cor(m: int = 2000) -> SpaptKernel:
    """Build the COR search problem with input size ``m``."""
    space = SearchSpace(
        [
            IntegerParameter("U_I", 1, 32),
            IntegerParameter("U_J", 1, 32),
            IntegerParameter("U_K", 1, 28),
            PowerOfTwoParameter("T1_I", 0, 11),
            PowerOfTwoParameter("T1_J", 0, 11),
            PowerOfTwoParameter("T1_K", 0, 11),
            PowerOfTwoParameter("RT_I", 0, 5),
            PowerOfTwoParameter("RT_J", 0, 5),
            PowerOfTwoParameter("RT_K", 0, 5),
            BooleanParameter("VEC"),
            BooleanParameter("SCR"),
            BooleanParameter("PAD"),
        ],
        name="COR",
    )
    return SpaptKernel(
        name="COR",
        tag="cor",
        source=COR_SOURCE,
        space=space,
        consts={"M": m},
        input_size=f"{m}x{m}",
        boundedness="memory",
        description="Correlation: symmetric cross-product R += D^T D.",
        scalar_option_params={
            "vectorize": "VEC",
            "scalar_replacement": "SCR",
            "padding": "PAD",
        },
    )
