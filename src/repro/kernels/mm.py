"""Matrix multiplication (MM) — Table III row 1.

Dense double-precision ``C += A * B`` over an ``N x N`` problem
(default N = 2000, matching the paper's 2000x2000 input).  Compute
bound: performance is limited by floating-point throughput, so the
interesting configurations balance register tiling against spills and
expose enough unrolled parallelism to fill the pipelines (Section IV-C
cites the roofline argument [33]).

Search space (12 parameters, |D| ≈ 8.56e10 vs. the paper's 8.58e10;
the per-parameter ranges follow Table I, with ``U_K`` capped at 28 to
match the published space size — SPAPT instances use per-problem
ranges):

=========  =======================  ==========
parameter  meaning                  range
=========  =======================  ==========
U_I/U_J    unroll factors (i, j)    1 .. 32
U_K        unroll factor (k)        1 .. 28
T1_I/J/K   cache tiles              2^0 .. 2^11
RT_I/J/K   register tiles           2^0 .. 2^5
VEC        vectorization pragma     on/off
SCR        scalar replacement       on/off
PAD        array padding/alignment  on/off
=========  =======================  ==========
"""

from __future__ import annotations

from repro.kernels.base import SpaptKernel
from repro.searchspace import (
    BooleanParameter,
    IntegerParameter,
    PowerOfTwoParameter,
    SearchSpace,
)

__all__ = ["make_mm"]

MM_SOURCE = """
/*@ begin Loop (
  transform Composite(
    tile      = [("i", "T1_I"), ("j", "T1_J"), ("k", "T1_K")],
    unrolljam = [("i", "U_I"),  ("j", "U_J"),  ("k", "U_K")],
    regtile   = [("i", "RT_I"), ("j", "RT_J"), ("k", "RT_K")],
    vector    = "VEC",
    scalar_replacement = "SCR"
  )
) @*/
for (i = 0; i <= N-1; i++)
  for (j = 0; j <= N-1; j++)
    for (k = 0; k <= N-1; k++)
      C[i*N+j] = C[i*N+j] + A[i*N+k] * B[k*N+j];
/*@ end @*/
"""


def make_mm(n: int = 2000) -> SpaptKernel:
    """Build the MM search problem with input size ``n``."""
    space = SearchSpace(
        [
            IntegerParameter("U_I", 1, 32),
            IntegerParameter("U_J", 1, 32),
            IntegerParameter("U_K", 1, 28),
            PowerOfTwoParameter("T1_I", 0, 11),
            PowerOfTwoParameter("T1_J", 0, 11),
            PowerOfTwoParameter("T1_K", 0, 11),
            PowerOfTwoParameter("RT_I", 0, 5),
            PowerOfTwoParameter("RT_J", 0, 5),
            PowerOfTwoParameter("RT_K", 0, 5),
            BooleanParameter("VEC"),
            BooleanParameter("SCR"),
            BooleanParameter("PAD"),
        ],
        name="MM",
    )
    return SpaptKernel(
        name="MM",
        tag="mm",
        source=MM_SOURCE,
        space=space,
        consts={"N": n},
        input_size=f"{n}x{n}",
        boundedness="compute",
        description="Dense matrix-matrix multiplication C += A*B.",
        scalar_option_params={
            "vectorize": "VEC",
            "scalar_replacement": "SCR",
            "padding": "PAD",
        },
    )
