"""ATAX — matrix transpose and vector multiplication (Table III row 2).

``y = A^T (A x)`` over an ``N x N`` matrix (default N = 10000).  Two
phases, each annotated separately: ``t = A x`` (row-major streaming)
and ``y = A^T t``.  Memory-bandwidth bound: each element of ``A`` is
touched once per phase with only one multiply-add, so arithmetic
intensity is ~0.25 flops/byte (Section IV-C).

Search space (13 parameters, |D| ≈ 2.5701e12 vs. the paper's 2.57e12).
SPAPT uses heterogeneous per-parameter ranges; the unroll ranges below
(11/21/23/27) are chosen to reproduce the published space cardinality
to 0.002% while keeping the Table I transformation types:

===========  ============================  ==========
parameter    meaning                       range
===========  ============================  ==========
U1_I, U1_J   phase-1 unrolls (i, j)        1..11, 1..21
U2_K, U2_L   phase-2 unrolls (k, l)        1..23, 1..27
T1_I, T1_J   phase-1 cache tiles           2^0 .. 2^11
T2_K, T2_L   phase-2 cache tiles           2^0 .. 2^11
RT1_J        phase-1 register tile (j)     2^0 .. 2^5
RT2_K/RT2_L  phase-2 register tiles        2^0 .. 2^5
VEC, SCR     pragmas                       on/off
===========  ============================  ==========
"""

from __future__ import annotations

from repro.kernels.base import SpaptKernel
from repro.searchspace import (
    BooleanParameter,
    IntegerParameter,
    PowerOfTwoParameter,
    SearchSpace,
)

__all__ = ["make_atax"]

ATAX_SOURCE = """
/*@ begin Loop (
  transform Composite(
    tile      = [("i", "T1_I"), ("j", "T1_J")],
    unrolljam = [("i", "U1_I"), ("j", "U1_J")],
    regtile   = [("j", "RT1_J")],
    vector    = "VEC",
    scalar_replacement = "SCR"
  )
) @*/
for (i = 0; i <= N-1; i++)
  for (j = 0; j <= N-1; j++)
    t[i] = t[i] + A[i*N+j] * x[j];
/*@ end @*/

/*@ begin Loop (
  transform Composite(
    tile      = [("k", "T2_K"), ("l", "T2_L")],
    unrolljam = [("k", "U2_K"), ("l", "U2_L")],
    regtile   = [("k", "RT2_K"), ("l", "RT2_L")],
    vector    = "VEC",
    scalar_replacement = "SCR"
  )
) @*/
for (k = 0; k <= N-1; k++)
  for (l = 0; l <= N-1; l++)
    y[l] = y[l] + A[k*N+l] * t[k];
/*@ end @*/
"""


def make_atax(n: int = 10000) -> SpaptKernel:
    """Build the ATAX search problem with input size ``n``."""
    space = SearchSpace(
        [
            IntegerParameter("U1_I", 1, 11),
            IntegerParameter("U1_J", 1, 21),
            IntegerParameter("U2_K", 1, 23),
            IntegerParameter("U2_L", 1, 27),
            PowerOfTwoParameter("T1_I", 0, 11),
            PowerOfTwoParameter("T1_J", 0, 11),
            PowerOfTwoParameter("T2_K", 0, 11),
            PowerOfTwoParameter("T2_L", 0, 11),
            PowerOfTwoParameter("RT1_J", 0, 5),
            PowerOfTwoParameter("RT2_K", 0, 5),
            PowerOfTwoParameter("RT2_L", 0, 5),
            BooleanParameter("VEC"),
            BooleanParameter("SCR"),
        ],
        name="ATAX",
    )
    return SpaptKernel(
        name="ATAX",
        tag="atax",
        source=ATAX_SOURCE,
        space=space,
        consts={"N": n},
        input_size=str(n),
        boundedness="memory",
        description="Matrix transpose and vector multiplication y = A^T (A x).",
        scalar_option_params={"vectorize": "VEC", "scalar_replacement": "SCR"},
    )
