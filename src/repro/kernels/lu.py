"""LU decomposition (LU) — Table III row 4.

The rank-1 update nest of Gaussian elimination without pivoting,
``A[i][j] -= A[i][k] * A[k][j]`` over the trailing triangular
submatrix (default 2000x2000).  Memory bound: one multiply-subtract
per three array touches (Section IV-C).  Figure 1 of the paper plots
200 variants of exactly this kernel on Westmere and Sandybridge.

The triangular bounds make this the structurally interesting kernel:
tiling introduces ``max(kt, k+1)``-style clamped point loops (see
:mod:`repro.orio.transforms.tile`), and the triangular guards are what
make hoisted tiling of all three loops legal (verified by the
interpreter-equivalence tests).

Search space (9 parameters, |D| = 583,023,888 vs. the paper's 5.83e8,
a 0.004% match):

=========  ====================  ==================
parameter  meaning               range
=========  ====================  ==================
U_K        unroll factor (k)     1 .. 12
U_I, U_J   unroll factors        1 .. 13
T1_K/I/J   cache tiles           2^0 .. 2^10
RT_K/I/J   register tiles        2^0 .. 2^5
=========  ====================  ==================
"""

from __future__ import annotations

from repro.kernels.base import SpaptKernel
from repro.searchspace import (
    IntegerParameter,
    PowerOfTwoParameter,
    SearchSpace,
)

__all__ = ["make_lu"]

LU_SOURCE = """
/*@ begin Loop (
  transform Composite(
    tile      = [("k", "T1_K"), ("i", "T1_I"), ("j", "T1_J")],
    unrolljam = [("k", "U_K"),  ("i", "U_I"),  ("j", "U_J")],
    regtile   = [("k", "RT_K"), ("i", "RT_I"), ("j", "RT_J")]
  )
) @*/
for (k = 0; k <= N-1; k++)
  for (i = k+1; i <= N-1; i++)
    for (j = k+1; j <= N-1; j++)
      A[i*N+j] = A[i*N+j] - A[i*N+k] * A[k*N+j];
/*@ end @*/
"""


def make_lu(n: int = 2000) -> SpaptKernel:
    """Build the LU search problem with input size ``n``."""
    space = SearchSpace(
        [
            IntegerParameter("U_K", 1, 12),
            IntegerParameter("U_I", 1, 13),
            IntegerParameter("U_J", 1, 13),
            PowerOfTwoParameter("T1_K", 0, 10),
            PowerOfTwoParameter("T1_I", 0, 10),
            PowerOfTwoParameter("T1_J", 0, 10),
            PowerOfTwoParameter("RT_K", 0, 5),
            PowerOfTwoParameter("RT_I", 0, 5),
            PowerOfTwoParameter("RT_J", 0, 5),
        ],
        name="LU",
    )
    return SpaptKernel(
        name="LU",
        tag="lu",
        source=LU_SOURCE,
        space=space,
        consts={"N": n},
        input_size=f"{n}x{n}",
        boundedness="memory",
        description="LU decomposition trailing-submatrix update.",
        scalar_option_params={},
    )
