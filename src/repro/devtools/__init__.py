"""Developer tooling that guards the source tree's hygiene.

``repro.devtools.lint`` (also ``make lint``) enforces the import-graph
discipline the engine refactor established — no runtime import cycles,
no ``TYPE_CHECKING``-hidden internal imports — and sweeps the search
package for dead code.
"""
