"""Static hygiene checks for the ``repro`` source tree.

Two checks, both AST-based (the checked code is never imported):

1. **Import cycles.**  Builds the module-level import graph of
   ``repro`` — every ``import``/``from ... import`` executed at module
   import time, i.e. at the top level or inside module-level ``if``/
   ``try``/class bodies — and fails on any cycle.  ``if TYPE_CHECKING:``
   blocks are not a loophole: an internal (``repro.*``) import hidden
   behind ``TYPE_CHECKING`` is *also* an error.  The engine refactor
   removed the last genuine cycle by moving shared interfaces into
   :mod:`repro.search.protocols`; new coupling must be broken the same
   way, not hidden from the runtime.

2. **Dead code.**  Top-level functions and classes in ``repro.search``,
   ``repro.transfer``, and ``repro.reliability`` that no other source
   file, test, benchmark, or example references and that their module
   does not export via ``__all__``; plus private (``_``-prefixed)
   top-level definitions never referenced inside their own module.

Run as ``python -m repro.devtools.lint`` (or ``make lint``).  Exit
status 0 means clean; 1 means findings (one per line on stdout).
"""

from __future__ import annotations

import ast
import os
import re
import sys

__all__ = [
    "collect_modules",
    "module_imports",
    "find_cycles",
    "check_imports",
    "check_dead_code",
    "DEAD_CODE_SUBPACKAGES",
    "run_lint",
    "main",
]

PACKAGE = "repro"


# ----------------------------------------------------------------------
# Module discovery
# ----------------------------------------------------------------------
def collect_modules(src_root: str) -> dict[str, str]:
    """Map dotted module names to file paths under ``src_root/repro``."""
    modules: dict[str, str] = {}
    pkg_root = os.path.join(src_root, PACKAGE)
    for dirpath, dirnames, filenames in os.walk(pkg_root):
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            rel = os.path.relpath(path, src_root)
            parts = rel[:-3].split(os.sep)
            if parts[-1] == "__init__":
                parts = parts[:-1]
            modules[".".join(parts)] = path
    return modules


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name) and test.id == "TYPE_CHECKING":
        return True
    return isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"


def module_imports(name: str, path: str) -> tuple[list, list]:
    """The module's import-time and TYPE_CHECKING-only imports.

    Returns ``(runtime, type_only)`` where each entry is a
    ``(target_module, lineno)`` pair.  Imports inside function bodies
    are lazy — they run when the function is called, not when the
    module is imported — so they cannot create an import cycle and are
    ignored.  Class bodies *do* execute at import time and are walked.
    """
    with open(path, "rb") as fh:
        tree = ast.parse(fh.read(), filename=path)
    is_package = os.path.basename(path) == "__init__.py"
    runtime: list[tuple[str, int]] = []
    type_only: list[tuple[str, int]] = []

    def resolve_from(node: ast.ImportFrom) -> str:
        if node.level == 0:
            return node.module or ""
        # Relative import: climb ``level`` packages from this module.
        parts = name.split(".")
        if not is_package:
            parts = parts[:-1]
        parts = parts[: len(parts) - (node.level - 1)]
        return ".".join(parts + ([node.module] if node.module else []))

    def walk(body, sink) -> None:
        for node in body:
            if isinstance(node, ast.Import):
                sink.extend((alias.name, node.lineno) for alias in node.names)
            elif isinstance(node, ast.ImportFrom):
                # Emit ``base.name`` per alias: when the name is itself a
                # submodule (``from repro.ml import _native``) the true
                # dependency is the submodule, not the package __init__ —
                # longest-prefix resolution collapses plain attribute
                # imports back onto the module that defines them.
                base = resolve_from(node)
                sink.extend(
                    (f"{base}.{alias.name}" if base else alias.name, node.lineno)
                    for alias in node.names
                )
            elif isinstance(node, ast.If):
                gated = type_only if _is_type_checking_test(node.test) else sink
                walk(node.body, gated)
                walk(node.orelse, sink)
            elif isinstance(node, ast.Try):
                walk(node.body, sink)
                for handler in node.handlers:
                    walk(handler.body, sink)
                walk(node.orelse, sink)
                walk(node.finalbody, sink)
            elif isinstance(node, (ast.With, ast.ClassDef)):
                walk(node.body, sink)

    walk(tree.body, runtime)
    return runtime, type_only


def _edge_target(imported: str, modules: dict[str, str]) -> str | None:
    """The known module an import lands on (longest matching prefix)."""
    parts = imported.split(".")
    while parts:
        candidate = ".".join(parts)
        if candidate in modules:
            return candidate
        parts.pop()
    return None


# ----------------------------------------------------------------------
# Check 1: import cycles (and TYPE_CHECKING-hidden internal imports)
# ----------------------------------------------------------------------
def find_cycles(graph: dict[str, set[str]]) -> list[list[str]]:
    """Every elementary cycle's strongly connected component (Tarjan)."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = [0]
    cycles: list[list[str]] = []

    def strongconnect(v: str) -> None:
        # Iterative Tarjan: recursion depth on a big package would be
        # the import chain length, which can exceed Python's limit.
        work = [(v, iter(sorted(graph.get(v, ()))))]
        index[v] = lowlink[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        while work:
            node, edges = work[-1]
            advanced = False
            for w in edges:
                if w not in index:
                    index[w] = lowlink[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(sorted(graph.get(w, ())))))
                    advanced = True
                    break
                if w in on_stack:
                    lowlink[node] = min(lowlink[node], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    component.append(w)
                    if w == node:
                        break
                if len(component) > 1 or node in graph.get(node, ()):
                    cycles.append(sorted(component))

    for v in sorted(graph):
        if v not in index:
            strongconnect(v)
    return cycles


def check_imports(modules: dict[str, str]) -> list[str]:
    errors: list[str] = []
    graph: dict[str, set[str]] = {name: set() for name in modules}
    for name, path in sorted(modules.items()):
        runtime, type_only = module_imports(name, path)
        for imported, lineno in type_only:
            if (imported + ".").startswith(PACKAGE + "."):
                errors.append(
                    f"{path}:{lineno}: TYPE_CHECKING-gated import of internal "
                    f"module {imported!r} — share an interface via a protocol "
                    "module instead of hiding the cycle from the runtime"
                )
        for imported, _lineno in runtime:
            target = _edge_target(imported, modules)
            if target is not None and target != name:
                graph[name].add(target)
    for component in find_cycles(graph):
        errors.append(
            "runtime import cycle: " + " <-> ".join(component)
        )
    return errors


# ----------------------------------------------------------------------
# Check 2: dead code in the search package
# ----------------------------------------------------------------------
def _module_all(tree: ast.Module) -> set[str]:
    exported: set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if "__all__" in targets and isinstance(node.value, (ast.List, ast.Tuple)):
                exported.update(
                    el.value for el in node.value.elts
                    if isinstance(el, ast.Constant) and isinstance(el.value, str)
                )
    return exported


def _word_count(pattern: re.Pattern, text: str) -> int:
    return len(pattern.findall(text))


#: packages swept for dead code by default.
DEAD_CODE_SUBPACKAGES = (
    f"{PACKAGE}.search",
    f"{PACKAGE}.transfer",
    f"{PACKAGE}.reliability",
    f"{PACKAGE}.service",
    f"{PACKAGE}.ml",
    f"{PACKAGE}.perf",
    f"{PACKAGE}.chaos",
    f"{PACKAGE}.meta",
    f"{PACKAGE}.spec",
    f"{PACKAGE}.exec.scrub",
)


def check_dead_code(
    modules: dict[str, str],
    repo_root: str,
    subpackage: str | tuple[str, ...] = DEAD_CODE_SUBPACKAGES,
) -> list[str]:
    """Top-level defs in ``subpackage`` (one name or a tuple of names)
    that nothing references.

    Public names survive if any *other* source/test/benchmark/example
    file mentions them or their module exports them via ``__all__``;
    private names survive if their own module mentions them anywhere
    beyond the definition line.
    """
    errors: list[str] = []
    corpus_dirs = [
        os.path.join(repo_root, d)
        for d in ("src", "tests", "benchmarks", "examples")
        if os.path.isdir(os.path.join(repo_root, d))
    ]
    corpus: dict[str, str] = {}
    for root in corpus_dirs:
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = [d for d in dirnames if d != "__pycache__"]
            for filename in filenames:
                if filename.endswith(".py"):
                    path = os.path.join(dirpath, filename)
                    with open(path, encoding="utf-8") as fh:
                        corpus[path] = fh.read()

    subpackages = (subpackage,) if isinstance(subpackage, str) else tuple(subpackage)
    for name, path in sorted(modules.items()):
        if not any(
            name == pkg or name.startswith(pkg + ".") for pkg in subpackages
        ):
            continue
        source = corpus[path]
        tree = ast.parse(source, filename=path)
        exported = _module_all(tree)
        for node in tree.body:
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            ident = node.name
            if ident.startswith("__"):
                continue
            word = re.compile(rf"\b{re.escape(ident)}\b")
            if ident.startswith("_"):
                # Private: any use inside its own module keeps it alive
                # (the definition itself accounts for one match).
                if _word_count(word, source) <= 1:
                    errors.append(
                        f"{path}:{node.lineno}: private {ident!r} is never "
                        "used in its module"
                    )
                continue
            if ident in exported:
                continue
            used = any(
                _word_count(word, text) > 0
                for other, text in corpus.items()
                if other != path
            )
            if not used:
                errors.append(
                    f"{path}:{node.lineno}: {ident!r} is not exported via "
                    "__all__ and nothing outside its module references it"
                )
    return errors


# ----------------------------------------------------------------------
def _default_roots() -> tuple[str, str]:
    src_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)
    )))
    return src_root, os.path.dirname(src_root)


def run_lint(src_root: str | None = None, repo_root: str | None = None) -> list[str]:
    """All findings for the tree (empty list == clean)."""
    if src_root is None or repo_root is None:
        default_src, default_repo = _default_roots()
        src_root = src_root or default_src
        repo_root = repo_root or default_repo
    modules = collect_modules(src_root)
    return check_imports(modules) + check_dead_code(modules, repo_root)


def main(argv: list[str] | None = None) -> int:
    errors = run_lint()
    for error in errors:
        print(error)
    if errors:
        print(f"lint: {len(errors)} finding(s)")
        return 1
    print("lint: clean (import graph acyclic, no hidden internal imports, "
          "no dead search/transfer/reliability/service/ml/perf/chaos/meta/"
          "spec/scrub code)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
