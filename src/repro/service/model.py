"""Domain records of the service layer: tenants, sessions, jobs, events.

Everything here is a plain dataclass with a JSON-safe ``to_wire()`` /
``from_wire()`` pair — the same shape is journaled by the
:class:`~repro.service.store.SessionStore`, replayed on recovery, and
returned over the transport, so what a client sees is exactly what
crash recovery rebuilds.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

__all__ = [
    "TenantQuota",
    "SessionRecord",
    "JobRecord",
    "Event",
    "SESSION_OPEN",
    "SESSION_CANCELLED",
    "SESSION_CLOSED",
    "JOB_QUEUED",
    "JOB_RUNNING",
    "JOB_COMPLETED",
    "JOB_FAILED",
    "JOB_CANCELLED",
    "JOB_EXPIRED",
    "JOB_SHED",
    "JOB_TERMINAL_STATES",
]

# Session lifecycle.
SESSION_OPEN = "open"
SESSION_CANCELLED = "cancelled"
SESSION_CLOSED = "closed"

# Job lifecycle.  Terminal states are final: recovery never resurrects
# them, clients can stop polling.
JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_COMPLETED = "completed"
JOB_FAILED = "failed"
JOB_CANCELLED = "cancelled"
JOB_EXPIRED = "expired"  # deadline passed before the job ran
JOB_SHED = "shed"  # evicted under overload in favour of higher priority

JOB_TERMINAL_STATES = frozenset(
    {JOB_COMPLETED, JOB_FAILED, JOB_CANCELLED, JOB_EXPIRED, JOB_SHED}
)


@dataclass(frozen=True)
class TenantQuota:
    """Admission limits for one tenant.

    ``eval_budget`` bounds the *total* simulated evaluations a tenant
    may spend across all jobs (queued + running + completed); ``None``
    is unlimited.  ``priority`` orders tenants under overload — higher
    wins dispatch order and survives shedding longer.
    """

    max_live_sessions: int = 4
    max_queued_jobs: int = 16
    eval_budget: int | None = None
    priority: int = 0

    def to_wire(self) -> dict:
        return asdict(self)

    @classmethod
    def from_wire(cls, data: dict) -> "TenantQuota":
        return cls(**data)


@dataclass
class SessionRecord:
    """One tenant session: the unit of attachment and quota accounting."""

    session_id: str
    tenant: str
    state: str = SESSION_OPEN
    attached: bool = True
    meta: dict = field(default_factory=dict)
    created_ts: float = 0.0

    @property
    def live(self) -> bool:
        return self.state == SESSION_OPEN

    def to_wire(self) -> dict:
        return {
            "session_id": self.session_id,
            "tenant": self.tenant,
            "state": self.state,
            "attached": self.attached,
            "meta": self.meta,
            "created_ts": self.created_ts,
        }

    @classmethod
    def from_wire(cls, data: dict) -> "SessionRecord":
        return cls(
            session_id=str(data["session_id"]),
            tenant=str(data["tenant"]),
            state=str(data.get("state", SESSION_OPEN)),
            attached=bool(data.get("attached", True)),
            meta=dict(data.get("meta", {})),
            created_ts=float(data.get("created_ts", 0.0)),
        )


@dataclass
class JobRecord:
    """One asynchronous tuning job inside a session.

    ``deadline`` is absolute unix time (wall clock, so it survives a
    restart); ``cost`` is the job's evaluation budget charge (its
    ``nmax``); ``fingerprint`` keys the result in the run registry —
    identical across restarts, which is what makes recovery re-execute
    nothing.
    """

    job_id: str
    session_id: str
    tenant: str
    payload: dict
    priority: int = 0
    deadline: float | None = None
    cost: int = 0
    state: str = JOB_QUEUED
    attempts: int = 0
    fingerprint: str = ""
    result: dict | None = None
    error: dict | None = None
    submitted_ts: float = 0.0
    finished_ts: float | None = None

    @property
    def terminal(self) -> bool:
        return self.state in JOB_TERMINAL_STATES

    def to_wire(self) -> dict:
        return {
            "job_id": self.job_id,
            "session_id": self.session_id,
            "tenant": self.tenant,
            "payload": self.payload,
            "priority": self.priority,
            "deadline": self.deadline,
            "cost": self.cost,
            "state": self.state,
            "attempts": self.attempts,
            "fingerprint": self.fingerprint,
            "result": self.result,
            "error": self.error,
            "submitted_ts": self.submitted_ts,
            "finished_ts": self.finished_ts,
        }

    @classmethod
    def from_wire(cls, data: dict) -> "JobRecord":
        return cls(
            job_id=str(data["job_id"]),
            session_id=str(data["session_id"]),
            tenant=str(data["tenant"]),
            payload=dict(data.get("payload", {})),
            priority=int(data.get("priority", 0)),
            deadline=(None if data.get("deadline") is None
                      else float(data["deadline"])),
            cost=int(data.get("cost", 0)),
            state=str(data.get("state", JOB_QUEUED)),
            attempts=int(data.get("attempts", 0)),
            fingerprint=str(data.get("fingerprint", "")),
            result=data.get("result"),
            error=data.get("error"),
            submitted_ts=float(data.get("submitted_ts", 0.0)),
            finished_ts=(None if data.get("finished_ts") is None
                         else float(data["finished_ts"])),
        )


@dataclass(frozen=True)
class Event:
    """One progress event a client polls for, in session order.

    ``seq`` is the store-wide journal sequence number — strictly
    increasing, so ``events(session, after=seq)`` is an exact cursor
    that survives restarts and compaction.
    """

    seq: int
    session_id: str
    kind: str  # e.g. "session-created", "job-queued", "job-completed"
    data: dict
    ts: float

    def to_wire(self) -> dict:
        return {
            "seq": self.seq,
            "session_id": self.session_id,
            "kind": self.kind,
            "data": self.data,
            "ts": self.ts,
        }
