"""Crash-safe persistence of session/job lifecycle: the ``SessionStore``.

The store is the service's single source of truth, built on the same
journal mechanics as the grid :class:`~repro.exec.RunRegistry` (one
fsync'd JSONL line per acknowledged state change, torn-tail tolerance,
snapshot-then-swap compaction via :class:`~repro.exec.JsonlJournal`).
The discipline is **journal first, apply second**: a state transition
is written and fsync'd before the in-memory state (or any client
response) reflects it, so a SIGKILL at any instant loses at most a
change that was never acknowledged.  Every journaled transition doubles
as a client-visible :class:`~repro.service.model.Event`, which is what
makes recovery exact: replaying the journal rebuilds both the state
*and* the event stream clients were consuming.

Long-lived services rotate the journal with :meth:`SessionStore.compact`:
the current state (all sessions, all jobs, a bounded tail of events per
live session) is staged as one ``snapshot`` record plus the retained
event lines and atomically swapped in.  Sequence numbers are preserved
across compaction, so client event cursors keep working.  A crash
mid-compaction leaves the old journal intact — recovery never depends
on a compaction having finished.
"""

from __future__ import annotations

import json
import time
import warnings
from collections import deque

from repro.errors import RegistryCorruptionError
from repro.exec.journal import JsonlJournal
from repro.service.model import (
    Event,
    JobRecord,
    SessionRecord,
)

__all__ = ["SessionStore", "STORE_VERSION"]

STORE_VERSION = 1

#: Events kept per live session when compacting (the replayable tail a
#: late or re-attaching client can still see).
DEFAULT_KEEP_EVENTS = 64

#: Events kept in memory across all sessions (older ones are served
#: only until evicted; clients are expected to poll promptly).
DEFAULT_EVENT_BUFFER = 8192


def _encode(record: dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class SessionStore:
    """Journaled, replayable session/job state at one path."""

    def __init__(
        self,
        path,
        keep_events_per_session: int = DEFAULT_KEEP_EVENTS,
        event_buffer: int = DEFAULT_EVENT_BUFFER,
    ) -> None:
        self._journal = JsonlJournal(path)
        self.keep_events_per_session = keep_events_per_session
        self.sessions: dict[str, SessionRecord] = {}
        self.jobs: dict[str, JobRecord] = {}
        self.events: deque[Event] = deque(maxlen=event_buffer)
        self.next_seq = 1
        self.recovered = False  # True when open() replayed an existing journal

    @property
    def path(self) -> str:
        return self._journal.path

    def size_bytes(self) -> int:
        return self._journal.size_bytes()

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def open(self) -> "SessionStore":
        """Replay the journal (if any) into memory; returns ``self``.

        A torn final line — the signature of a crash mid-append — is
        dropped with a warning and truncated; damage anywhere else
        raises :class:`~repro.errors.RegistryCorruptionError` with the
        byte offset, because mid-journal corruption is not a crash
        artifact.
        """
        self.sessions.clear()
        self.jobs.clear()
        self.events.clear()
        self.next_seq = 1
        if not self._journal.exists():
            return self
        n_applied = 0
        for offset, line, is_final in self._journal.iter_lines():
            try:
                record = json.loads(line.decode("utf-8"))
                if not isinstance(record, dict) or "kind" not in record:
                    raise ValueError("not a store record")
                self._apply(record)
            except (ValueError, KeyError, TypeError) as exc:
                if is_final:
                    try:
                        self._journal.repair_tail()
                    except OSError:
                        pass
                    warnings.warn(
                        f"session store {self.path!r}: dropping torn final "
                        f"record at byte offset {offset} ({exc}); the "
                        "transition was never acknowledged",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    break
                raise RegistryCorruptionError(
                    f"session store {self.path!r} is corrupt at byte offset "
                    f"{offset}: {exc}",
                    path=self.path,
                    offset=offset,
                ) from exc
            n_applied += 1
        self.recovered = n_applied > 0
        return self

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def record(
        self,
        kind: str,
        session_id: str,
        data: dict | None = None,
        session: SessionRecord | None = None,
        job: JobRecord | None = None,
        ts: float | None = None,
    ) -> Event:
        """Durably journal one state transition, then apply it.

        The line is fsync'd before anything mutates: when the append
        raises (:class:`~repro.errors.JournalWriteError` under disk
        pressure), the in-memory state is untouched and the caller must
        not acknowledge the transition.  Returns the resulting event.
        """
        record: dict = {
            "v": STORE_VERSION,
            "seq": self.next_seq,
            "kind": kind,
            "sid": session_id,
            "ts": time.time() if ts is None else ts,
        }
        if data:
            record["data"] = data
        if session is not None:
            record["session"] = session.to_wire()
        if job is not None:
            record["job"] = job.to_wire()
        self._journal.append_line(_encode(record))
        return self._apply(record)

    def _apply(self, record: dict) -> Event:
        """Fold one journal record into the in-memory state."""
        if record["kind"] == "snapshot":
            self._apply_snapshot(record)
            return Event(
                seq=int(record["seq"]), session_id="", kind="snapshot",
                data={}, ts=float(record.get("ts", 0.0)),
            )
        seq = int(record["seq"])
        self.next_seq = max(self.next_seq, seq + 1)
        if "session" in record:
            session = SessionRecord.from_wire(record["session"])
            self.sessions[session.session_id] = session
        if "job" in record:
            job = JobRecord.from_wire(record["job"])
            self.jobs[job.job_id] = job
        event = Event(
            seq=seq,
            session_id=str(record.get("sid", "")),
            kind=str(record["kind"]),
            data=dict(record.get("data", {})),
            ts=float(record.get("ts", 0.0)),
        )
        self.events.append(event)
        return event

    def _apply_snapshot(self, record: dict) -> None:
        state = record.get("data", {})
        self.sessions = {
            s["session_id"]: SessionRecord.from_wire(s)
            for s in state.get("sessions", [])
        }
        self.jobs = {
            j["job_id"]: JobRecord.from_wire(j) for j in state.get("jobs", [])
        }
        self.next_seq = max(self.next_seq, int(record["seq"]) + 1)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def events_after(
        self, session_id: str, after: int = 0, limit: int | None = None
    ) -> list[Event]:
        """The session's events with ``seq > after``, oldest first."""
        out = [
            e for e in self.events
            if e.session_id == session_id and e.seq > after
        ]
        return out if limit is None else out[:limit]

    def jobs_for(self, session_id: str) -> list[JobRecord]:
        return [j for j in self.jobs.values() if j.session_id == session_id]

    # ------------------------------------------------------------------
    # Compaction / rotation
    # ------------------------------------------------------------------
    def compact(self) -> int:
        """Atomically rewrite the journal as snapshot + retained events.

        Keeps every session and job record (jobs are the durable audit
        of quota spend) but drops the raw event history down to the
        last ``keep_events_per_session`` events of each live session.
        Returns the journal size in bytes afterwards.  Crash-safe: the
        swap is :meth:`JsonlJournal.rewrite` — old journal or new, never
        a mix, and sequence numbers continue where they left off.
        """
        snapshot: dict = {
            "v": STORE_VERSION,
            "seq": self.next_seq - 1,
            "kind": "snapshot",
            "sid": "",
            "ts": time.time(),
            "data": {
                "sessions": [s.to_wire() for s in self.sessions.values()],
                "jobs": [j.to_wire() for j in self.jobs.values()],
            },
        }
        retained = self._retained_events()
        lines: list[str] = [_encode(snapshot)]
        for event in retained:
            rec: dict = {
                "v": STORE_VERSION,
                "seq": event.seq,
                "kind": event.kind,
                "sid": event.session_id,
                "ts": event.ts,
            }
            if event.data:
                rec["data"] = event.data
            lines.append(_encode(rec))
        self._journal.rewrite(lines)
        self.events = deque(retained, maxlen=self.events.maxlen)
        return self.size_bytes()

    def _retained_events(self) -> list[Event]:
        keep: dict[str, deque[Event]] = {}
        for event in self.events:
            session = self.sessions.get(event.session_id)
            if session is None or not session.live:
                continue
            keep.setdefault(
                event.session_id, deque(maxlen=self.keep_events_per_session)
            ).append(event)
        merged: list[Event] = [e for tail in keep.values() for e in tail]
        merged.sort(key=lambda e: e.seq)
        return merged

    def maybe_compact(self, max_bytes: int) -> bool:
        """Compact when the journal has grown past ``max_bytes``."""
        if max_bytes <= 0 or self.size_bytes() <= max_bytes:
            return False
        self.compact()
        return True

    def clear(self) -> None:
        self._journal.clear()
