"""Crash-safe persistence of session/job lifecycle: the ``SessionStore``.

The store is the service's single source of truth, built on the same
journal mechanics as the grid :class:`~repro.exec.RunRegistry` (one
fsync'd JSONL line per acknowledged state change, torn-tail tolerance,
snapshot-then-swap compaction via :class:`~repro.exec.JsonlJournal`).
The discipline is **journal first, apply second**: a state transition
is written and fsync'd before the in-memory state (or any client
response) reflects it, so a SIGKILL at any instant loses at most a
change that was never acknowledged.  Every journaled transition doubles
as a client-visible :class:`~repro.service.model.Event`, which is what
makes recovery exact: replaying the journal rebuilds both the state
*and* the event stream clients were consuming.

Every append — including the compaction snapshot and its retained
event tail — is wrapped in a per-record CRC32 envelope
(:func:`~repro.exec.journal.frame_line`), so bit rot that still parses
as JSON is *detected* on replay instead of resurrecting quietly wrong
state; unframed legacy journals keep loading, and mid-journal damage
is quarantined and salvaged on :meth:`SessionStore.open` (see
:mod:`repro.exec.scrub`) rather than killing the service.

Long-lived services rotate the journal with :meth:`SessionStore.compact`:
the current state (all sessions, all jobs, a bounded tail of events per
live session) is staged as one ``snapshot`` record plus the retained
event lines and atomically swapped in.  Sequence numbers are preserved
across compaction, so client event cursors keep working.  A crash
mid-compaction leaves the old journal intact — recovery never depends
on a compaction having finished.
"""

from __future__ import annotations

import json
import time
import warnings
from collections import deque

from repro.exec.journal import JsonlJournal, frame_line, unframe_line
from repro.exec.scrub import (
    DamagedLine,
    ScrubReport,
    quarantine_and_rewrite,
    raise_corruption,
    resolve_salvage,
    scan_journal,
)
from repro.service.model import (
    SESSION_OPEN,
    Event,
    JobRecord,
    SessionRecord,
)

__all__ = ["SessionStore", "STORE_VERSION"]

STORE_VERSION = 1

#: Events kept per live session when compacting (the replayable tail a
#: late or re-attaching client can still see).
DEFAULT_KEEP_EVENTS = 64

#: Events kept in memory across all sessions (older ones are served
#: only until evicted; clients are expected to poll promptly).
DEFAULT_EVENT_BUFFER = 8192


def _encode(record: dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class SessionStore:
    """Journaled, replayable session/job state at one path."""

    def __init__(
        self,
        path,
        keep_events_per_session: int = DEFAULT_KEEP_EVENTS,
        event_buffer: int = DEFAULT_EVENT_BUFFER,
    ) -> None:
        self._journal = JsonlJournal(path)
        self.keep_events_per_session = keep_events_per_session
        self.sessions: dict[str, SessionRecord] = {}
        self.jobs: dict[str, JobRecord] = {}
        self.events: deque[Event] = deque(maxlen=event_buffer)
        self.next_seq = 1
        self.recovered = False  # True when open() replayed an existing journal
        self.salvage_report: ScrubReport | None = None
        self.synthesized_sessions = 0  # sessions rebuilt from surviving jobs

    @property
    def salvaged_records(self) -> int:
        """Damaged records quarantined by the last open() (0 when clean)."""
        if self.salvage_report is None:
            return 0
        return len(self.salvage_report.quarantined)

    @property
    def path(self) -> str:
        return self._journal.path

    def size_bytes(self) -> int:
        return self._journal.size_bytes()

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    @staticmethod
    def _decode_line(line: bytes) -> tuple[dict, bool]:
        """Verify one journal line (envelope CRC + store-record shape)."""
        record, framed = unframe_line(line)
        if not isinstance(record, dict) or "kind" not in record:
            raise ValueError("not a store record")
        return record, framed

    def open(self, salvage: str | None = None) -> "SessionStore":
        """Replay the journal (if any) into memory; returns ``self``.

        A torn final line — the signature of a crash mid-append — is
        dropped with a warning and truncated.  Mid-journal damage (a
        failed envelope CRC, an undecodable or unappliable record)
        follows ``salvage`` (``REPRO_SALVAGE`` when ``None``):
        ``"quarantine"`` preserves the damaged lines in the
        ``.quarantine`` sidecar, atomically rewrites the clean journal,
        warns, and keeps replaying — a session whose own record was
        lost but whose jobs survived is re-synthesized from them so
        recovery stays consistent; ``"raise"`` raises
        :class:`~repro.errors.RegistryCorruptionError` with the byte
        offset.
        """
        mode = resolve_salvage(salvage)
        self.sessions.clear()
        self.jobs.clear()
        self.events.clear()
        self.next_seq = 1
        self.salvage_report = None
        self.synthesized_sessions = 0
        if not self._journal.exists():
            self.recovered = False
            return self
        clean, damaged, torn = scan_journal(self._journal, self._decode_line)
        if damaged and mode == "raise":
            raise_corruption("session store", self.path, damaged[0])
        if torn is not None:
            warnings.warn(
                f"session store {self.path!r}: dropping torn final record "
                f"at byte offset {torn.offset} ({torn.reason}); the "
                "transition was never acknowledged",
                RuntimeWarning,
                stacklevel=2,
            )
        n_applied = 0
        survivors: list = []
        for scanned in clean:
            try:
                self._apply(scanned.record)
            except (ValueError, KeyError, TypeError) as exc:
                # Decoded but unappliable: silent corruption that still
                # parses.  Same policy as an envelope failure.
                if mode == "raise":
                    raise_corruption("session store", self.path,
                                     DamagedLine(offset=scanned.offset,
                                                 raw=scanned.line.encode(),
                                                 reason=str(exc)))
                damaged.append(DamagedLine(offset=scanned.offset,
                                           raw=scanned.line.encode("utf-8"),
                                           reason=str(exc)))
                continue
            survivors.append(scanned)
            n_applied += 1
        if damaged:
            damaged.sort(key=lambda d: d.offset)
            quarantine_path, rewritten = quarantine_and_rewrite(
                self._journal, survivors, damaged
            )
            self.salvage_report = ScrubReport(
                path=self.path,
                n_records=len(survivors),
                n_framed=sum(1 for s in survivors if s.framed),
                quarantined=tuple(damaged),
                dropped_partial=torn is not None,
                rewritten=rewritten,
                quarantine_path=quarantine_path,
            )
            self._synthesize_orphan_sessions()
            offsets = ", ".join(str(d.offset) for d in damaged)
            warnings.warn(
                f"session store {self.path!r}: quarantined {len(damaged)} "
                f"damaged record(s) at byte offset(s) {offsets} "
                f"(sidecar: {quarantine_path}); lost transitions are "
                "bounded by the quarantined count",
                RuntimeWarning,
                stacklevel=2,
            )
        self.recovered = n_applied > 0
        return self

    def _synthesize_orphan_sessions(self) -> None:
        """Rebuild sessions whose own record was quarantined.

        Jobs carry their session id and tenant, so a surviving job
        whose session record was lost to bit rot is enough to stand the
        session back up (open, attached) — recovery and quota
        accounting then proceed as if only the damaged record itself
        were missing.
        """
        for job in self.jobs.values():
            if job.session_id and job.session_id not in self.sessions:
                self.sessions[job.session_id] = SessionRecord(
                    session_id=job.session_id,
                    tenant=job.tenant,
                    state=SESSION_OPEN,
                )
                self.synthesized_sessions += 1

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def record(
        self,
        kind: str,
        session_id: str,
        data: dict | None = None,
        session: SessionRecord | None = None,
        job: JobRecord | None = None,
        ts: float | None = None,
    ) -> Event:
        """Durably journal one state transition, then apply it.

        The line is fsync'd before anything mutates: when the append
        raises (:class:`~repro.errors.JournalWriteError` under disk
        pressure), the in-memory state is untouched and the caller must
        not acknowledge the transition.  Returns the resulting event.
        """
        record: dict = {
            "v": STORE_VERSION,
            "seq": self.next_seq,
            "kind": kind,
            "sid": session_id,
            "ts": time.time() if ts is None else ts,
        }
        if data:
            record["data"] = data
        if session is not None:
            record["session"] = session.to_wire()
        if job is not None:
            record["job"] = job.to_wire()
        self._journal.append_line(frame_line(_encode(record)))
        return self._apply(record)

    def _apply(self, record: dict) -> Event:
        """Fold one journal record into the in-memory state."""
        if record["kind"] == "snapshot":
            self._apply_snapshot(record)
            return Event(
                seq=int(record["seq"]), session_id="", kind="snapshot",
                data={}, ts=float(record.get("ts", 0.0)),
            )
        seq = int(record["seq"])
        self.next_seq = max(self.next_seq, seq + 1)
        if "session" in record:
            session = SessionRecord.from_wire(record["session"])
            self.sessions[session.session_id] = session
        if "job" in record:
            job = JobRecord.from_wire(record["job"])
            self.jobs[job.job_id] = job
        event = Event(
            seq=seq,
            session_id=str(record.get("sid", "")),
            kind=str(record["kind"]),
            data=dict(record.get("data", {})),
            ts=float(record.get("ts", 0.0)),
        )
        self.events.append(event)
        return event

    def _apply_snapshot(self, record: dict) -> None:
        state = record.get("data", {})
        self.sessions = {
            s["session_id"]: SessionRecord.from_wire(s)
            for s in state.get("sessions", [])
        }
        self.jobs = {
            j["job_id"]: JobRecord.from_wire(j) for j in state.get("jobs", [])
        }
        self.next_seq = max(self.next_seq, int(record["seq"]) + 1)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def events_after(
        self, session_id: str, after: int = 0, limit: int | None = None
    ) -> list[Event]:
        """The session's events with ``seq > after``, oldest first."""
        out = [
            e for e in self.events
            if e.session_id == session_id and e.seq > after
        ]
        return out if limit is None else out[:limit]

    def jobs_for(self, session_id: str) -> list[JobRecord]:
        return [j for j in self.jobs.values() if j.session_id == session_id]

    # ------------------------------------------------------------------
    # Compaction / rotation
    # ------------------------------------------------------------------
    def compact(self) -> int:
        """Atomically rewrite the journal as snapshot + retained events.

        Keeps every session and job record (jobs are the durable audit
        of quota spend) but drops the raw event history down to the
        last ``keep_events_per_session`` events of each live session.
        Returns the journal size in bytes afterwards.  Crash-safe: the
        swap is :meth:`JsonlJournal.rewrite` — old journal or new, never
        a mix, and sequence numbers continue where they left off.
        """
        snapshot: dict = {
            "v": STORE_VERSION,
            "seq": self.next_seq - 1,
            "kind": "snapshot",
            "sid": "",
            "ts": time.time(),
            "data": {
                "sessions": [s.to_wire() for s in self.sessions.values()],
                "jobs": [j.to_wire() for j in self.jobs.values()],
            },
        }
        retained = self._retained_events()
        lines: list[str] = [frame_line(_encode(snapshot))]
        for event in retained:
            rec: dict = {
                "v": STORE_VERSION,
                "seq": event.seq,
                "kind": event.kind,
                "sid": event.session_id,
                "ts": event.ts,
            }
            if event.data:
                rec["data"] = event.data
            lines.append(frame_line(_encode(rec)))
        self._journal.rewrite(lines)
        self.events = deque(retained, maxlen=self.events.maxlen)
        return self.size_bytes()

    def _retained_events(self) -> list[Event]:
        keep: dict[str, deque[Event]] = {}
        for event in self.events:
            session = self.sessions.get(event.session_id)
            if session is None or not session.live:
                continue
            keep.setdefault(
                event.session_id, deque(maxlen=self.keep_events_per_session)
            ).append(event)
        merged: list[Event] = [e for tail in keep.values() for e in tail]
        merged.sort(key=lambda e: e.seq)
        return merged

    def maybe_compact(self, max_bytes: int) -> bool:
        """Compact when the journal has grown past ``max_bytes``."""
        if max_bytes <= 0 or self.size_bytes() <= max_bytes:
            return False
        self.compact()
        return True

    def clear(self) -> None:
        self._journal.clear()
