"""Structured errors of the service layer.

Two families:

* **Admission errors** (:class:`AdmissionError` and subclasses) are the
  backpressure surface: every rejected request carries a machine-
  readable ``reason`` and a ``retry_after`` hint (seconds), so a client
  under quota pressure or service overload knows *when* to come back
  instead of hammering.  Nothing is ever dropped silently — a request
  either changes journaled state or raises one of these.
* **Lookup/state errors** (:class:`SessionNotFoundError`, ...) are
  plain caller mistakes: wrong id, operating on a closed session.

``to_payload()`` renders any service error into the JSON shape the
transport layer returns, keeping the wire format in one place.
"""

from __future__ import annotations

from repro.errors import ReproError

__all__ = [
    "ServiceError",
    "AdmissionError",
    "QuotaExceededError",
    "QueueFullError",
    "ServiceOverloadedError",
    "SessionNotFoundError",
    "SessionClosedError",
    "JobNotFoundError",
]


class ServiceError(ReproError):
    """Base class for every error raised by the tuning service."""

    #: Stable machine-readable reason code (subclasses override).
    reason = "service-error"

    def to_payload(self) -> dict:
        """The JSON-safe error body the transport layer returns."""
        payload: dict = {
            "error": type(self).__name__,
            "reason": self.reason,
            "message": str(self),
        }
        retry_after = getattr(self, "retry_after", None)
        if retry_after is not None:
            payload["retry_after"] = float(retry_after)
        tenant = getattr(self, "tenant", None)
        if tenant is not None:
            payload["tenant"] = tenant
        return payload


class AdmissionError(ServiceError):
    """A request was rejected by admission control — structured, never
    silent.

    ``retry_after`` is the service's backoff hint in seconds (the
    ``Retry-After`` header over HTTP); ``tenant`` names whose quota or
    priority lost the admission decision.
    """

    reason = "rejected"

    def __init__(self, message: str, retry_after: float = 1.0,
                 tenant: str | None = None) -> None:
        self.retry_after = float(retry_after)
        self.tenant = tenant
        super().__init__(message)


class QuotaExceededError(AdmissionError):
    """A per-tenant quota (live sessions, queued jobs, eval budget) is
    exhausted; the tenant must finish or cancel work before submitting
    more."""

    reason = "quota-exceeded"


class QueueFullError(AdmissionError):
    """The global job queue is at capacity and the request did not
    outrank any queued work; resubmit after ``retry_after``."""

    reason = "queue-full"


class ServiceOverloadedError(AdmissionError):
    """The service is degraded (journal writes failing, shutdown in
    progress) and is shedding load rather than risking state it cannot
    persist."""

    reason = "overloaded"


class SessionNotFoundError(ServiceError):
    """No session with the given id (or it belongs to another tenant)."""

    reason = "session-not-found"


class SessionClosedError(ServiceError):
    """The session exists but is cancelled/closed; no further
    submissions are accepted."""

    reason = "session-closed"


class JobNotFoundError(ServiceError):
    """No job with the given id in this session."""

    reason = "job-not-found"
