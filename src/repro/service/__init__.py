"""Autotuning-as-a-service: the multi-tenant session layer.

This package turns the repo's crash-safe execution stack into a
long-lived service: tenants open **sessions**, submit tuning **jobs**
(probe / search / transfer payloads), and consume a journaled **event
stream** — all multiplexed onto one shared supervised worker pool.

Layering (transport down to domain)::

    transport.ServiceHandler / wsgi_app    dict- or HTTP-shaped requests
      service.TuningService                lifecycle, recovery, pump loop
        quota.AdmissionController          per-tenant quotas, shedding
        jobs.Dispatcher                    batching, deadlines -> run_grid
        store.SessionStore                 fsync'd journal of all state
          exec.JsonlJournal / RunRegistry  shared crash-safe substrate
            worker.execute_job             the domain: SearchEngine et al.

Robustness properties, each covered by tests:

* **crash-safe** — every acknowledged transition is fsync'd before it
  is applied; a SIGKILLed service recovers every session, re-executes
  zero completed cells, and reproduces byte-identical results;
* **bounded** — per-tenant quotas (live sessions, queued jobs, eval
  budget) and a global queue cap; overload sheds the lowest-priority
  work with a journaled verdict, never a silent drop;
* **backpressured** — every rejection is a structured
  :class:`~repro.service.errors.AdmissionError` with a ``retry_after``
  hint;
* **degradable** — when the journal itself cannot be written (disk
  full, permission lost) the service rejects mutations with
  ``overloaded`` instead of corrupting state, and resumes when writes
  succeed again.

Quick start::

    from repro.service import TuningService

    svc = TuningService("/tmp/tuning-svc").open()
    session = svc.create_session("alice")
    job = svc.submit(session.session_id,
                     {"kind": "search", "kernel": "mm", "nmax": 10})
    svc.pump()
    print(svc.job(job.job_id).result)
"""

from repro.service.errors import (
    AdmissionError,
    JobNotFoundError,
    QueueFullError,
    QuotaExceededError,
    ServiceError,
    ServiceOverloadedError,
    SessionClosedError,
    SessionNotFoundError,
)
from repro.service.jobs import Dispatcher, job_fingerprint
from repro.service.model import (
    Event,
    JobRecord,
    SessionRecord,
    TenantQuota,
)
from repro.service.quota import AdmissionController
from repro.service.service import TuningService
from repro.service.store import SessionStore
from repro.service.transport import ServiceHandler, wsgi_app
from repro.service.worker import execute_job, trace_digest

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "Dispatcher",
    "Event",
    "JobNotFoundError",
    "JobRecord",
    "QueueFullError",
    "QuotaExceededError",
    "ServiceError",
    "ServiceHandler",
    "ServiceOverloadedError",
    "SessionClosedError",
    "SessionNotFoundError",
    "SessionRecord",
    "SessionStore",
    "TenantQuota",
    "TuningService",
    "execute_job",
    "job_fingerprint",
    "trace_digest",
    "wsgi_app",
]
