"""The domain bridge: what a service job actually runs.

:func:`execute_job` is the one function the service dispatches onto the
shared :class:`~repro.exec.SupervisedExecutor` fleet.  It is a module-
level pure function of its payload — picklable for worker processes,
deterministic for a given payload — which is precisely what makes the
whole service crash-safe: the job's registry fingerprint is derived
from the payload, so a re-dispatched job after a crash either finds its
journaled result (zero re-execution) or recomputes the bit-identical
value.

Payload kinds:

``probe``
    A cheap deterministic unit of work (hash mixing, optional real
    sleep) — the load- and chaos-test workload.
``search``
    One search variant on one kernel/machine through the real
    :class:`~repro.search.engine.SearchEngine` stack (RS via the shared
    stream); returns the trace summary plus a digest over the full
    record stream, so byte-identical recovery is checkable end to end.
``transfer``
    A full :class:`~repro.transfer.session.TransferSession` cell — the
    paper's experiment as a service job.

``search`` and ``transfer`` payloads optionally carry a ``"spec"``
key: a versioned :class:`~repro.spec.TunerSpec` wire dict (see
:meth:`~repro.spec.TunerSpec.to_dict`) that threads tuner
hyperparameters through the job.  Because the spec is part of the
payload it is part of the job's fingerprint — two jobs differing only
in hyperparameters journal as distinct cells.

Results are JSON-safe dicts: they are journaled, recovered, and
returned to clients as-is.
"""

from __future__ import annotations

import hashlib
import time

from repro.errors import ReproError
from repro.exec.fingerprint import canonical_json
from repro.utils.rng import stable_hash

__all__ = ["execute_job", "trace_digest"]


def trace_digest(trace) -> str:
    """A stable digest over every record of a search trace.

    Two runs produced the same search if and only if their digests
    match — the service's recovery tests assert exactly this across
    SIGKILL/restart boundaries.
    """
    rows = [
        {
            "index": r.config.index,
            "values": dict(r.config),
            "runtime": r.runtime,
            "elapsed": r.elapsed,
            "failed": r.failed,
            "censored": r.censored,
        }
        for r in trace.records
    ]
    payload = canonical_json(
        {"algorithm": trace.algorithm, "records": rows,
         "total_elapsed": trace.total_elapsed}
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _run_probe(payload: dict) -> dict:
    work = int(payload.get("work", 64))
    seed = payload.get("seed", 0)
    sleep_ms = float(payload.get("sleep_ms", 0.0))
    if payload.get("fail"):
        raise ReproError(f"probe asked to fail (seed={seed!r})")
    if sleep_ms > 0:
        time.sleep(sleep_ms / 1000.0)
    acc = 0
    for i in range(work):
        acc = stable_hash("service-probe", seed, acc, i) % (1 << 53)
    return {"kind": "probe", "value": acc, "work": work}


def _payload_spec(payload: dict):
    """Decode the optional ``"spec"`` key of a job payload.

    A :class:`~repro.spec.TunerSpec` wire dict rides inside the JSON
    payload; decoding re-validates every knob, so a malformed or
    version-skewed spec fails the job loudly at dispatch rather than
    silently mistuning the search.  Returns ``None`` when absent.
    """
    wire = payload.get("spec")
    if wire is None:
        return None
    from repro.spec import TunerSpec

    return TunerSpec.from_dict(wire)


def _run_search(payload: dict) -> dict:
    from repro.kernels import get_kernel
    from repro.machines import get_machine
    from repro.orio.evaluator import OrioEvaluator
    from repro.search.random_search import random_search
    from repro.search.stream import SharedStream

    kernel = get_kernel(str(payload.get("kernel", "mm")))
    machine = get_machine(str(payload.get("machine", "sandybridge")))
    nmax = int(payload.get("nmax", 20))
    seed = payload.get("seed", 0)
    spec = _payload_spec(payload)
    evaluator = OrioEvaluator(kernel, machine)
    stream = SharedStream(kernel.space, seed=("service", str(seed)))
    trace = random_search(evaluator, stream, nmax=nmax, spec=spec)
    best = trace.best()
    result = {
        "kind": "search",
        "kernel": kernel.name,
        "machine": machine.name,
        "n_evaluations": trace.n_evaluations,
        "best_runtime": best.runtime,
        "best_config": dict(best.config),
        "total_elapsed": trace.total_elapsed,
        "trace_digest": trace_digest(trace),
    }
    if spec is not None:
        result["spec_fingerprint"] = spec.fingerprint()
    return result


def _run_transfer(payload: dict) -> dict:
    from repro.experiments.harness import build_session

    spec = _payload_spec(payload)
    session = build_session(
        problem=str(payload.get("problem", "MM")),
        source=str(payload.get("source", "westmere")),
        target=str(payload.get("target", "sandybridge")),
        seed=payload.get("seed", 0),
        nmax=int(payload.get("nmax", 30)),
        pool_size=int(payload.get("pool_size", 2000)),
        variants=tuple(payload.get("variants", ("RSp", "RSb"))),
        spec=spec,
    )
    outcome = session.run()
    result = {
        "kind": "transfer",
        "kernel": outcome.kernel,
        "source": outcome.source,
        "target": outcome.target,
        "reports": {
            name: {
                "performance": rep.performance,
                "search_time": rep.search_time,
                "best_variant_runtime": rep.best_variant_runtime,
            }
            for name, rep in outcome.reports.items()
        },
        "trace_digests": {
            name: trace_digest(trace)
            for name, trace in sorted(outcome.traces.items())
        },
    }
    if spec is not None:
        result["spec_fingerprint"] = spec.fingerprint()
    return result


_KINDS = {
    "probe": _run_probe,
    "search": _run_search,
    "transfer": _run_transfer,
}


def execute_job(payload: dict) -> dict:
    """Run one service job payload to its JSON-safe result dict."""
    kind = str(payload.get("kind", ""))
    runner = _KINDS.get(kind)
    if runner is None:
        raise ReproError(
            f"unknown job kind {kind!r}; known: {sorted(_KINDS)}"
        )
    return runner(payload)
